"""Telemetry exporters: JSON timeline, Chrome trace events, text report.

Three views of one :class:`~repro.telemetry.probe.Telemetry` recording:

* :func:`timeline_dict` / :func:`write_json_timeline` — the raw windowed
  series and kernel phases as one JSON document, for notebooks and
  calibration scripts;
* :func:`chrome_trace_dict` / :func:`write_chrome_trace` — the Trace
  Event Format consumed by Perfetto (https://ui.perfetto.dev) and
  ``chrome://tracing``: kernels as complete ("X") slices, every windowed
  metric and pipe-occupancy series as counter ("C") tracks;
* :func:`text_report` — a terminal-friendly summary (phases, busiest
  windows, peak pipe occupancy).

At the simulator's 1 GHz clock one cycle is one nanosecond, so trace
timestamps (microseconds) are ``cycles / 1000``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from .probe import Telemetry

#: Trace Event Format timestamps are microseconds; cycles are nanoseconds
#: at the paper's 1 GHz clock.
_CYCLES_PER_US = 1000.0


def timeline_dict(telemetry: Telemetry) -> Dict[str, object]:
    """The full recording as one JSON-serializable dict."""
    return {
        "meta": dict(telemetry.meta),
        "summary": telemetry.summary(),
        "windows": [window.to_dict() for window in telemetry.windows],
        "kernel_phases": [phase.to_dict() for phase in telemetry.phases],
        "pipe_occupancy": {
            name: {
                "bytes_per_cycle": data["bytes_per_cycle"],
                "window_capacity": data["window_capacity"],
                "series": [list(point) for point in data["series"]],
            }
            for name, data in telemetry.pipe_occupancy.items()
        },
    }


def write_json_timeline(telemetry: Telemetry, path) -> None:
    """Write :func:`timeline_dict` to ``path``."""
    Path(path).write_text(json.dumps(timeline_dict(telemetry), indent=2))


# ----------------------------------------------------------------------
# Chrome trace events (Perfetto)
# ----------------------------------------------------------------------


def _counter(name: str, ts_cycles: float, value: float, tid: int = 0) -> dict:
    return {
        "name": name,
        "ph": "C",
        "ts": ts_cycles / _CYCLES_PER_US,
        "pid": 0,
        "tid": tid,
        "args": {"value": value},
    }


def chrome_trace_dict(telemetry: Telemetry) -> Dict[str, object]:
    """The recording in Trace Event Format (JSON object form)."""
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {
                "name": f"{telemetry.meta.get('workload', '?')} on "
                f"{telemetry.meta.get('system', '?')}"
            },
        }
    ]
    for phase in telemetry.phases:
        events.append(
            {
                "name": f"kernel {phase.label}",
                "cat": "kernel",
                "ph": "X",
                "ts": phase.start_cycle / _CYCLES_PER_US,
                "dur": max(phase.duration, 0.001) / _CYCLES_PER_US,
                "pid": 0,
                "tid": 0,
                "args": {
                    "ctas": phase.ctas,
                    "records": phase.records,
                    "quiesce_tail_cycles": phase.quiesce_tail,
                },
            }
        )
        if phase.quiesce_tail > 0:
            events.append(
                {
                    "name": f"quiesce {phase.label}",
                    "cat": "quiesce",
                    "ph": "X",
                    "ts": phase.end_cycle / _CYCLES_PER_US,
                    "dur": phase.quiesce_tail / _CYCLES_PER_US,
                    "pid": 0,
                    "tid": 0,
                    "args": {},
                }
            )
    for window in telemetry.windows:
        ts = window.start
        events.append(_counter("l1 hit rate", ts, window.l1_hit_rate))
        events.append(_counter("l1.5 hit rate", ts, window.l15_hit_rate))
        events.append(_counter("l2 hit rate", ts, window.l2_hit_rate))
        events.append(_counter("remote fraction", ts, window.remote_fraction))
        events.append(_counter("issue utilization", ts, window.issue_utilization))
        events.append(_counter("inter-GPM GB/s", ts, window.link_bandwidth))
        events.append(_counter("records", ts, window.records))
    for name, data in telemetry.pipe_occupancy.items():
        capacity = data["window_capacity"]
        for start, occupied in data["series"]:
            fraction = occupied / capacity if capacity else 0.0
            events.append(_counter(f"occupancy {name}", start, fraction))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(telemetry.meta),
    }


def write_chrome_trace(telemetry: Telemetry, path) -> None:
    """Write :func:`chrome_trace_dict` to ``path`` (Perfetto-loadable)."""
    Path(path).write_text(json.dumps(chrome_trace_dict(telemetry)))


# ----------------------------------------------------------------------
# plain-text report
# ----------------------------------------------------------------------


def text_report(telemetry: Telemetry, busiest: int = 5) -> str:
    """Terminal-friendly digest of one recording."""
    meta = telemetry.meta
    summary = telemetry.summary()
    lines = [
        f"telemetry: {meta.get('workload', '?')} on {meta.get('system', '?')}",
        f"  {summary['cycles']:,.0f} cycles, {summary['kernels']} kernels, "
        f"{summary['windows']} windows of {meta.get('window_cycles', 0):,.0f} cycles",
        f"  l1 hit {summary['l1_hit_rate']:.1%}, l2 hit {summary['l2_hit_rate']:.1%}, "
        f"remote {summary['remote_fraction']:.1%}, "
        f"issue util {summary['issue_utilization']:.1%}",
        f"  quiesce tails {summary['quiesce_tail_cycles']:,.0f} cycles total",
    ]
    if summary["peak_pipe"]:
        lines.append(
            f"  peak pipe occupancy: {summary['peak_pipe']} at "
            f"{summary['peak_pipe_occupancy']:.1%} "
            f"(window @ {summary['peak_pipe_window_start']:,.0f} cycles)"
        )
    if telemetry.phases:
        lines.append("  kernel phases:")
        for phase in telemetry.phases:
            lines.append(
                f"    #{phase.index} {phase.label}: "
                f"[{phase.start_cycle:,.0f}, {phase.end_cycle:,.0f}] "
                f"{phase.ctas} CTAs, {phase.records} records, "
                f"quiesce tail {phase.quiesce_tail:,.0f}"
            )
    ranked = sorted(telemetry.windows, key=lambda w: -w.link_bytes)[:busiest]
    ranked = [window for window in ranked if window.link_bytes]
    if ranked:
        lines.append(f"  busiest windows by inter-GPM traffic (top {len(ranked)}):")
        for window in ranked:
            lines.append(
                f"    [{window.start:,.0f}, {window.end:,.0f}): "
                f"{window.link_bandwidth:,.0f} GB/s, "
                f"l2 hit {window.l2_hit_rate:.0%}, "
                f"remote {window.remote_fraction:.0%}, "
                f"issue util {window.issue_utilization:.0%}"
            )
    return "\n".join(lines)
