"""Telemetry and profiling subsystem for the timing model.

Attach a :class:`Telemetry` probe to a run to record windowed time series
(cache hit rates, remote fractions, issue utilization, per-pipe bandwidth
occupancy), per-kernel phase records, and export them as a JSON timeline,
a Perfetto-loadable Chrome trace, or a plain-text report::

    from repro import Simulator, Telemetry, baseline_mcm_gpu
    from repro.telemetry import write_chrome_trace

    probe = Telemetry(window_cycles=4096)
    result = Simulator(baseline_mcm_gpu(), telemetry=probe).run("Stream")
    write_chrome_trace(probe, "trace.json")

The probe is strictly read-only: results are bit-identical with or
without it, and a run without a probe pays nothing beyond one dormant
float comparison per record (see :mod:`repro.telemetry.probe`).
"""

from .export import (
    chrome_trace_dict,
    text_report,
    timeline_dict,
    write_chrome_trace,
    write_json_timeline,
)
from .probe import DEFAULT_WINDOW_CYCLES, KernelPhase, Telemetry, WindowSample

__all__ = [
    "DEFAULT_WINDOW_CYCLES",
    "KernelPhase",
    "Telemetry",
    "WindowSample",
    "chrome_trace_dict",
    "text_report",
    "timeline_dict",
    "write_chrome_trace",
    "write_json_timeline",
]
