"""Windowed telemetry probe for the timing model.

The simulator's end-of-run counters answer *how much* (total link bytes,
final hit rates) but not *when* — yet the paper's headline evidence is
time-aggregated behaviour: a link that saturates only during one kernel's
store burst (the Section 5.4 Streamcluster anomaly) looks identical, in
totals, to one that is mildly busy throughout.  A :class:`Telemetry`
instance attached to a :class:`~repro.core.gpu.GPUSystem` records:

* **windowed samples** — per-window deltas of every architectural counter
  (cache hits/misses per level, local/remote routing, issue-port busy
  cycles, DRAM and link traffic), taken as the event loop's monotone
  ready-time stream crosses fixed window boundaries;
* **kernel phases** — start/end cycle, CTA and record counts, and the
  store-drain quiesce tail of every kernel launch;
* **pipe occupancy** — per-:class:`~repro.memory.bandwidth.BandwidthPipe`
  reserved bytes per window, read directly from each pipe's bucket map
  after the run (the bucket map *is* the time series, so this costs the
  hot path nothing).

Zero-overhead-when-off contract
-------------------------------
The default is no probe at all (``system.telemetry is None``).  The engine
then keeps its sampling boundary at ``+inf``, so the only residue on the
hot path is a single always-false float comparison per record; no counters,
no allocations, no branches taken.  Results are bit-identical with the
probe attached or absent — telemetry only *reads* simulator state, at
window boundaries and at run end, and never perturbs timing.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.gpu import GPUSystem

#: Default sampling window in cycles.  Coarse enough that a suite workload
#: produces tens of windows, fine enough to localize a saturation burst.
DEFAULT_WINDOW_CYCLES = 4096.0


@dataclass(frozen=True)
class WindowSample:
    """Counter deltas over one sampling window ``[start, end)``.

    The ``*_hits`` fields are *total* lookup-hit deltas, matching the
    per-level :class:`~repro.memory.cache.CacheStats` counters (so
    ``sum(w.l1_hits) == result.l1.hits``); the write-touch share of each
    is broken out in ``l1_write_hits``/``l15_write_hits`` so the derived
    hit *rates* can be load-only — the Figure 6/7 quantity.
    """

    start: float
    end: float
    records: int
    loads: int
    stores: int
    remote_loads: int
    remote_stores: int
    l1_hits: int
    l1_misses: int
    l15_hits: int
    l15_misses: int
    l2_hits: int
    l2_misses: int
    local_requests: int
    remote_requests: int
    issue_busy_cycles: float
    dram_bytes: int
    link_bytes: int
    n_sms: int
    #: Store touch-hits included in ``l1_hits`` (see class docstring).
    l1_write_hits: int = 0
    #: Store touch-hits included in ``l15_hits``.
    l15_write_hits: int = 0

    @property
    def duration(self) -> float:
        """Window length in cycles."""
        return self.end - self.start

    @staticmethod
    def _rate(hits: int, misses: int) -> float:
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def l1_hit_rate(self) -> float:
        """Load-only L1 hit ratio within this window (0.0 when untouched).

        Write touch-hits are excluded — at a write-through level a store
        can only hit or bypass, so counting it would inflate the rate the
        paper reports for Figures 6/7.
        """
        return self._rate(self.l1_hits - self.l1_write_hits, self.l1_misses)

    @property
    def l15_hit_rate(self) -> float:
        """Load-only L1.5 hit ratio within this window (Figure 6/7 quantity)."""
        return self._rate(self.l15_hits - self.l15_write_hits, self.l15_misses)

    @property
    def l2_hit_rate(self) -> float:
        """Memory-side L2 hit ratio within this window."""
        return self._rate(self.l2_hits, self.l2_misses)

    @property
    def remote_fraction(self) -> float:
        """Fraction of routed (post-L1) requests homed remotely."""
        total = self.local_requests + self.remote_requests
        return self.remote_requests / total if total else 0.0

    @property
    def issue_utilization(self) -> float:
        """Mean fraction of SM issue capacity consumed this window."""
        if self.duration <= 0 or self.n_sms == 0:
            return 0.0
        return self.issue_busy_cycles / (self.duration * self.n_sms)

    @property
    def link_bandwidth(self) -> float:
        """Inter-GPM traffic in bytes/cycle (== GB/s at 1 GHz)."""
        if self.duration <= 0:
            return 0.0
        return self.link_bytes / self.duration

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (fields plus the derived rates) for exporters."""
        data = asdict(self)
        data["l1_hit_rate"] = self.l1_hit_rate
        data["l15_hit_rate"] = self.l15_hit_rate
        data["l2_hit_rate"] = self.l2_hit_rate
        data["remote_fraction"] = self.remote_fraction
        data["issue_utilization"] = self.issue_utilization
        data["link_bandwidth"] = self.link_bandwidth
        return data


@dataclass(frozen=True)
class KernelPhase:
    """One kernel launch's timeline record."""

    label: str
    index: int
    start_cycle: float
    end_cycle: float
    quiesce_end_cycle: float
    ctas: int
    records: int

    @property
    def duration(self) -> float:
        """Cycles from launch to last warp retirement."""
        return self.end_cycle - self.start_cycle

    @property
    def quiesce_tail(self) -> float:
        """Cycles spent draining buffered stores after the last retirement."""
        tail = self.quiesce_end_cycle - self.end_cycle
        return tail if tail > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (fields plus derived durations) for exporters."""
        data = asdict(self)
        data["duration"] = self.duration
        data["quiesce_tail"] = self.quiesce_tail
        return data


class _Snapshot:
    """Cumulative counter capture used to form window deltas."""

    __slots__ = (
        "records",
        "loads",
        "stores",
        "remote_loads",
        "remote_stores",
        "l1_hits",
        "l1_misses",
        "l1_write_hits",
        "l15_hits",
        "l15_misses",
        "l15_write_hits",
        "l2_hits",
        "l2_misses",
        "local_requests",
        "remote_requests",
        "issue_busy_cycles",
        "dram_bytes",
        "link_bytes",
    )

    def __init__(self, system: "GPUSystem", records: int) -> None:
        self.records = records
        memsys = system.memsys
        self.loads, self.stores, self.remote_loads, self.remote_stores = (
            memsys.counter_snapshot()
        )
        l1_hits = l1_misses = l1_write_hits = 0
        l15_hits = l15_misses = l15_write_hits = 0
        l2_hits = l2_misses = 0
        local = remote = 0
        busy = 0.0
        dram = 0
        for gpm in system.gpms:
            for sm in gpm.sms:
                stats = sm.l1.stats
                l1_hits += stats.hits
                l1_misses += stats.misses
                l1_write_hits += stats.write_hits
                busy += sm.issue_busy_cycles
            if gpm.l15 is not None:
                l15_hits += gpm.l15.stats.hits
                l15_misses += gpm.l15.stats.misses
                l15_write_hits += gpm.l15.stats.write_hits
            l2_hits += gpm.l2.stats.hits
            l2_misses += gpm.l2.stats.misses
            local += gpm.xbar.local_requests
            remote += gpm.xbar.remote_requests
            dram += gpm.dram.pipe.bytes_transferred
        self.l1_hits, self.l1_misses = l1_hits, l1_misses
        self.l1_write_hits = l1_write_hits
        self.l15_hits, self.l15_misses = l15_hits, l15_misses
        self.l15_write_hits = l15_write_hits
        self.l2_hits, self.l2_misses = l2_hits, l2_misses
        self.local_requests, self.remote_requests = local, remote
        self.issue_busy_cycles = busy
        self.dram_bytes = dram
        self.link_bytes = system.ring.total_link_bytes


class Telemetry:
    """Probe/sampler attached to one :class:`~repro.core.gpu.GPUSystem`.

    The engine drives the lifecycle: :meth:`begin_run` at reset,
    :meth:`take_window` whenever the event stream crosses the next window
    boundary, :meth:`record_phase` per kernel, :meth:`end_run` at
    completion.  A probe is reusable — each ``begin_run`` starts a fresh
    recording — but holds only the most recent run's data.
    """

    def __init__(self, window_cycles: float = DEFAULT_WINDOW_CYCLES) -> None:
        if window_cycles <= 0:
            raise ValueError(f"window_cycles must be positive, got {window_cycles}")
        self.window_cycles = float(window_cycles)
        self.windows: List[WindowSample] = []
        self.phases: List[KernelPhase] = []
        #: pipe name -> {"bytes_per_cycle": float, "series": [(start, bytes)]}
        self.pipe_occupancy: Dict[str, Dict[str, object]] = {}
        self.meta: Dict[str, object] = {}
        self._last: Optional[_Snapshot] = None
        self._last_time = 0.0

    # ------------------------------------------------------------------
    # lifecycle (called by the simulation engine)
    # ------------------------------------------------------------------

    def begin_run(self, system: "GPUSystem", workload_name: str) -> float:
        """Start recording a fresh run; returns the first window boundary."""
        self.windows = []
        self.phases = []
        self.pipe_occupancy = {}
        self.meta = {
            "workload": workload_name,
            "system": system.config.name,
            "window_cycles": self.window_cycles,
        }
        self._last = _Snapshot(system, 0)
        self._last_time = 0.0
        return self.window_cycles

    def take_window(self, now: float, system: "GPUSystem", records: int) -> float:
        """Close the window(s) behind ``now``; returns the next boundary.

        Gaps in the event stream longer than one window produce a single
        wider sample rather than a run of empty ones — every sample carries
        its own ``start``/``end``, and all derived metrics are rates.
        """
        width = self.window_cycles
        end = math.floor(now / width) * width
        if end <= self._last_time:
            end = self._last_time + width
        self._capture(end, system, records)
        return end + width

    def end_run(self, cycles: float, system: "GPUSystem", records: int) -> None:
        """Close the final partial window and harvest pipe bucket maps."""
        if cycles > self._last_time:
            self._capture(cycles, system, records)
        self.meta["cycles"] = cycles
        self._collect_pipe_occupancy(system)

    def record_phase(
        self,
        label: str,
        index: int,
        start_cycle: float,
        end_cycle: float,
        quiesce_end_cycle: float,
        ctas: int,
        records: int,
    ) -> None:
        """Append one kernel's phase record (engine calls this per kernel)."""
        self.phases.append(
            KernelPhase(
                label=label,
                index=index,
                start_cycle=start_cycle,
                end_cycle=end_cycle,
                quiesce_end_cycle=quiesce_end_cycle,
                ctas=ctas,
                records=records,
            )
        )

    # ------------------------------------------------------------------

    def _capture(self, end: float, system: "GPUSystem", records: int) -> None:
        snap = _Snapshot(system, records)
        last = self._last
        self.windows.append(
            WindowSample(
                start=self._last_time,
                end=end,
                records=snap.records - last.records,
                loads=snap.loads - last.loads,
                stores=snap.stores - last.stores,
                remote_loads=snap.remote_loads - last.remote_loads,
                remote_stores=snap.remote_stores - last.remote_stores,
                l1_hits=snap.l1_hits - last.l1_hits,
                l1_misses=snap.l1_misses - last.l1_misses,
                l1_write_hits=snap.l1_write_hits - last.l1_write_hits,
                l15_hits=snap.l15_hits - last.l15_hits,
                l15_misses=snap.l15_misses - last.l15_misses,
                l15_write_hits=snap.l15_write_hits - last.l15_write_hits,
                l2_hits=snap.l2_hits - last.l2_hits,
                l2_misses=snap.l2_misses - last.l2_misses,
                local_requests=snap.local_requests - last.local_requests,
                remote_requests=snap.remote_requests - last.remote_requests,
                issue_busy_cycles=snap.issue_busy_cycles - last.issue_busy_cycles,
                dram_bytes=snap.dram_bytes - last.dram_bytes,
                link_bytes=snap.link_bytes - last.link_bytes,
                n_sms=system.total_sms,
            )
        )
        self._last = snap
        self._last_time = end

    def _collect_pipe_occupancy(self, system: "GPUSystem") -> None:
        pipes = []
        for gpm in system.gpms:
            pipes.append(gpm.dram.pipe)
        for link in system.ring.links:
            pipes.append(link.request_pipe)
            pipes.append(link.response_pipe)
        for pipe in pipes:
            series = pipe.occupancy_windows(self.window_cycles)
            if series:
                self.pipe_occupancy[pipe.name] = {
                    "bytes_per_cycle": pipe.bytes_per_cycle,
                    "window_capacity": pipe.bytes_per_cycle * self.window_cycles,
                    "series": series,
                }

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------

    def peak_pipe_occupancy(self) -> Tuple[str, float, float]:
        """``(pipe name, window start, fraction)`` of the busiest window.

        Fraction is of the pipe's window capacity; ``("", 0.0, 0.0)`` when
        no pipe carried traffic.
        """
        best = ("", 0.0, 0.0)
        for name, data in self.pipe_occupancy.items():
            capacity = data["window_capacity"]
            for start, occupied in data["series"]:
                fraction = occupied / capacity if capacity else 0.0
                if fraction > best[2]:
                    best = (name, start, fraction)
        return best

    def summary(self) -> Dict[str, object]:
        """Compact, picklable per-run digest for cross-process aggregation."""
        last = self._last
        peak_name, peak_start, peak_fraction = self.peak_pipe_occupancy()
        quiesce_tail = sum(phase.quiesce_tail for phase in self.phases)
        cycles = float(self.meta.get("cycles", self._last_time) or 0.0)
        total_sms = self.windows[0].n_sms if self.windows else 0
        issue_util = 0.0
        if last is not None and cycles > 0 and total_sms:
            issue_util = last.issue_busy_cycles / (cycles * total_sms)
        return {
            "workload": self.meta.get("workload", ""),
            "system": self.meta.get("system", ""),
            "cycles": cycles,
            "windows": len(self.windows),
            "kernels": len(self.phases),
            "quiesce_tail_cycles": quiesce_tail,
            "peak_pipe": peak_name,
            "peak_pipe_window_start": peak_start,
            "peak_pipe_occupancy": peak_fraction,
            # Load-only, like WindowSample.l1_hit_rate (Figure 6/7 quantity).
            "l1_hit_rate": WindowSample._rate(
                last.l1_hits - last.l1_write_hits, last.l1_misses
            )
            if last
            else 0.0,
            "l2_hit_rate": WindowSample._rate(last.l2_hits, last.l2_misses)
            if last
            else 0.0,
            "remote_fraction": (
                last.remote_requests / (last.local_requests + last.remote_requests)
                if last and (last.local_requests + last.remote_requests)
                else 0.0
            ),
            "issue_utilization": issue_util,
        }
