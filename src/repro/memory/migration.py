"""Dynamic page migration on top of first-touch placement.

The paper's placement policy is static first touch (Section 5.3); its
related work (Section 7) cites the classic NUMA literature on *dynamic*
page placement [Wilson & Aglietti, TPC-C].  This extension implements the
natural follow-on: a page whose accesses keep arriving from one *other*
GPM migrates there.

Mechanics: the policy keeps, per page, a small saturating counter of
consecutive remote accesses from a single GPM.  When it exceeds
``threshold``, the page is re-homed to that GPM.  The memory system
charges the migration copy (page-sized DRAM read + write plus a ring
transfer) through the normal bandwidth models, so over-eager migration
shows up as real cost — the classic ping-pong failure mode is measurable,
not hidden.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .placement import PlacementPolicy


class MigratingFirstTouch(PlacementPolicy):
    """First-touch placement with threshold-triggered page migration.

    Parameters
    ----------
    n_partitions:
        Number of DRAM partitions.
    threshold:
        Consecutive remote accesses from one GPM that trigger migration.
    max_migrations_per_page:
        Cap on how often a single page may move (ping-pong damper).
    """

    def __init__(
        self,
        n_partitions: int,
        threshold: int = 64,
        max_migrations_per_page: int = 2,
    ) -> None:
        super().__init__(n_partitions)
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if max_migrations_per_page < 0:
            raise ValueError("max_migrations_per_page must be non-negative")
        self.threshold = threshold
        self.max_migrations_per_page = max_migrations_per_page
        self._page_home: Dict[int, int] = {}
        # page -> (candidate gpm, consecutive count, migrations so far)
        self._pressure: Dict[int, Tuple[int, int, int]] = {}
        self.first_touch_allocations = 0
        self.migrations = 0
        #: Set by partition_of_page when the access it served triggered a
        #: migration; the memory system pops it to charge the copy cost.
        self.pending_migration: Optional[Tuple[int, int, int]] = None

    def partition_of_page(self, page_addr: int, requester_gpm: int) -> int:
        home = self._page_home.get(page_addr)
        if home is None:
            home = requester_gpm % self.n_partitions
            self._page_home[page_addr] = home
            self.first_touch_allocations += 1
            return home
        if requester_gpm == home:
            # A local access resets remote pressure.
            if page_addr in self._pressure:
                candidate, _, moved = self._pressure[page_addr]
                self._pressure[page_addr] = (candidate, 0, moved)
            return home

        candidate, count, moved = self._pressure.get(page_addr, (requester_gpm, 0, 0))
        if candidate != requester_gpm:
            # Contended page: pressure from multiple GPMs cancels out —
            # migrating a genuinely shared page would just ping-pong.
            self._pressure[page_addr] = (requester_gpm, 1, moved)
            return home
        count += 1
        if count >= self.threshold and moved < self.max_migrations_per_page:
            old_home = home
            self._page_home[page_addr] = requester_gpm
            self._pressure[page_addr] = (requester_gpm, 0, moved + 1)
            self.migrations += 1
            self.pending_migration = (page_addr, old_home, requester_gpm)
            return requester_gpm
        self._pressure[page_addr] = (candidate, count, moved)
        return home

    def reset(self) -> None:
        self._page_home.clear()
        self._pressure.clear()
        self.first_touch_allocations = 0
        self.migrations = 0
        self.pending_migration = None

    @property
    def pages_mapped(self) -> int:
        """Number of distinct pages allocated so far."""
        return len(self._page_home)

    def home_of(self, page_addr: int) -> Optional[int]:
        """Current home of ``page_addr`` (None if untouched)."""
        return self._page_home.get(page_addr)
