"""Order-insensitive bandwidth reservation used by DRAM and package links.

Every finite-bandwidth resource in the simulator (a DRAM partition, one
virtual network of one link direction) is a :class:`BandwidthPipe`.  The
engine charges a whole memory transaction's path in a single pass, so a
pipe sees charges whose timestamps are *not* monotone — a response booked
150 cycles in the future may be followed by a request booked now.  A naive
``busy_until`` cursor would head-of-line-block the later-issued but
earlier-timed charge behind the future one, producing runaway latency
feedback.

Instead the pipe reserves capacity on a bucketed timeline: time is divided
into fixed-width buckets, each holding ``bandwidth * bucket_cycles`` bytes.
A transfer starting at ``now`` consumes free capacity from its bucket
forward; its finish time is where its last byte lands.  Reservations are
commutative — the order charges arrive in no longer matters beyond which
transfer gets the earlier capacity — while both serialization *and*
queuing-under-contention are preserved at bucket granularity.
"""

from __future__ import annotations

from fractions import Fraction

#: Default bucket width in cycles.  Small enough to resolve per-wave
#: queuing (DRAM service of one line is ~0.17 cycles; a kernel wave spans
#: thousands), large enough that bucket dictionaries stay compact.
DEFAULT_BUCKET_CYCLES = 16.0


class BandwidthPipe:
    """A finite-bandwidth resource with bucketed capacity reservation.

    Parameters
    ----------
    bytes_per_cycle:
        Service bandwidth.  At the paper's 1 GHz clock, ``x`` GB/s is
        ``x`` bytes/cycle, which keeps configurations readable.
    bucket_cycles:
        Reservation granularity.
    """

    __slots__ = (
        "name",
        "bytes_per_cycle",
        "bucket_cycles",
        "bucket_capacity",
        "bytes_transferred",
        "transfers",
        "busy_until",
        "_used",
        "_full_prefix",
    )

    def __init__(
        self,
        bytes_per_cycle: float,
        name: str = "pipe",
        bucket_cycles: float = DEFAULT_BUCKET_CYCLES,
    ) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError(f"bytes_per_cycle must be positive, got {bytes_per_cycle}")
        if bucket_cycles <= 0:
            raise ValueError(f"bucket_cycles must be positive, got {bucket_cycles}")
        self.name = name
        self.bytes_per_cycle = bytes_per_cycle
        self.bucket_cycles = bucket_cycles
        self.bucket_capacity = bytes_per_cycle * bucket_cycles
        self.bytes_transferred = 0
        self.transfers = 0
        #: Latest finish time handed out so far (diagnostics only; not used
        #: for admission).
        self.busy_until = 0.0
        self._used: dict = {}
        # All buckets with index < _full_prefix are completely full; lets
        # heavily backlogged pipes skip ahead instead of rescanning.
        self._full_prefix = 0

    def transfer(self, now: float, n_bytes: int) -> float:
        """Reserve capacity for ``n_bytes`` starting no earlier than ``now``.

        Returns the cycle at which the last byte has been delivered.  The
        caller adds any fixed propagation latency on top.
        """
        if now < 0:
            raise ValueError(f"transfer time must be non-negative, got {now}")
        self.bytes_transferred += n_bytes
        self.transfers += 1

        used = self._used
        capacity = self.bucket_capacity
        bucket_cycles = self.bucket_cycles
        full_prefix = self._full_prefix
        bucket = int(now / bucket_cycles)
        if bucket < full_prefix:
            bucket = full_prefix

        # Fast path: the whole transfer fits in its first candidate bucket.
        occupied = used.get(bucket, 0.0)
        new_occupancy = occupied + n_bytes
        if new_occupancy <= capacity:
            used[bucket] = new_occupancy
            finish = (bucket + new_occupancy / capacity) * bucket_cycles
            if new_occupancy >= capacity and bucket == full_prefix:
                self._advance_full_prefix(bucket + 1)
        else:
            remaining = float(n_bytes)
            while True:
                free = capacity - occupied
                if free > 0.0:
                    take = remaining if remaining < free else free
                    occupied += take
                    used[bucket] = occupied
                    remaining -= take
                    if remaining <= 0.0:
                        finish = (bucket + occupied / capacity) * bucket_cycles
                        if occupied >= capacity and bucket == self._full_prefix:
                            self._advance_full_prefix(bucket + 1)
                        break
                if occupied >= capacity and bucket == self._full_prefix:
                    # Route through _advance_full_prefix so the prefix also
                    # skips any contiguous run of buckets already filled by
                    # out-of-order charges; a bare ``bucket + 1`` here left
                    # backlogged pipes rescanning that run on every transfer.
                    self._advance_full_prefix(bucket + 1)
                bucket += 1
                if bucket < self._full_prefix:
                    bucket = self._full_prefix
                occupied = used.get(bucket, 0.0)

        floor = now + n_bytes / self.bytes_per_cycle
        if finish < floor:
            finish = floor
        if finish > self.busy_until:
            self.busy_until = finish
        return finish

    def transfer_run(self, now: float, n_bytes: int, count: int) -> float:
        """Reserve ``count`` back-to-back transfers of ``n_bytes`` each.

        Bit-identical to ``count`` sequential :meth:`transfer` calls at the
        same ``now`` — the greedy bucket fill is associative, every charge
        shares the same bandwidth floor, and per-charge finish times are
        monotone in charge order — so only the *last* finish (the value a
        caller charging a run actually consumes) needs computing.  Returns
        that last finish time.  The array-backed memory walker uses this to
        collapse a record's DRAM line charges into one reservation.
        """
        if now < 0:
            raise ValueError(f"transfer time must be non-negative, got {now}")
        total = n_bytes * count
        self.bytes_transferred += total
        self.transfers += count

        used = self._used
        capacity = self.bucket_capacity
        bucket_cycles = self.bucket_cycles
        full_prefix = self._full_prefix
        bucket = int(now / bucket_cycles)
        if bucket < full_prefix:
            bucket = full_prefix

        occupied = used.get(bucket, 0.0)
        new_occupancy = occupied + total
        if new_occupancy <= capacity:
            used[bucket] = new_occupancy
            finish = (bucket + new_occupancy / capacity) * bucket_cycles
            if new_occupancy >= capacity and bucket == full_prefix:
                self._advance_full_prefix(bucket + 1)
        else:
            remaining = float(total)
            while True:
                free = capacity - occupied
                if free > 0.0:
                    take = remaining if remaining < free else free
                    occupied += take
                    used[bucket] = occupied
                    remaining -= take
                    if remaining <= 0.0:
                        finish = (bucket + occupied / capacity) * bucket_cycles
                        if occupied >= capacity and bucket == self._full_prefix:
                            self._advance_full_prefix(bucket + 1)
                        break
                if occupied >= capacity and bucket == self._full_prefix:
                    self._advance_full_prefix(bucket + 1)
                bucket += 1
                if bucket < self._full_prefix:
                    bucket = self._full_prefix
                occupied = used.get(bucket, 0.0)

        # The floor of the *last* charge in the run: it starts at ``now``
        # like the others and moves n_bytes at full bandwidth.
        floor = now + n_bytes / self.bytes_per_cycle
        if finish < floor:
            finish = floor
        if finish > self.busy_until:
            self.busy_until = finish
        return finish

    def reserve(self, now: float, n_bytes: int) -> float:
        """Bucket walk of :meth:`transfer` without the bookkeeping.

        Reserves capacity exactly like :meth:`transfer` but leaves the
        byte/transfer counters and ``busy_until`` untouched and does *not*
        apply the bandwidth floor — the generated memory walkers charge
        pipes inline, derive the counters per kernel from their own tallies,
        and apply the floor themselves.  Internal fast-path API: callers
        outside the walker codegen should use :meth:`transfer`.
        """
        if now < 0:
            raise ValueError(f"transfer time must be non-negative, got {now}")
        used = self._used
        capacity = self.bucket_capacity
        bucket_cycles = self.bucket_cycles
        full_prefix = self._full_prefix
        bucket = int(now / bucket_cycles)
        if bucket < full_prefix:
            bucket = full_prefix

        occupied = used.get(bucket, 0.0)
        new_occupancy = occupied + n_bytes
        if new_occupancy <= capacity:
            used[bucket] = new_occupancy
            finish = (bucket + new_occupancy / capacity) * bucket_cycles
            if new_occupancy >= capacity and bucket == full_prefix:
                self._advance_full_prefix(bucket + 1)
            return finish
        remaining = float(n_bytes)
        while True:
            free = capacity - occupied
            if free > 0.0:
                take = remaining if remaining < free else free
                occupied += take
                used[bucket] = occupied
                remaining -= take
                if remaining <= 0.0:
                    finish = (bucket + occupied / capacity) * bucket_cycles
                    if occupied >= capacity and bucket == self._full_prefix:
                        self._advance_full_prefix(bucket + 1)
                    return finish
            if occupied >= capacity and bucket == self._full_prefix:
                self._advance_full_prefix(bucket + 1)
            bucket += 1
            if bucket < self._full_prefix:
                bucket = self._full_prefix
            occupied = used.get(bucket, 0.0)

    def reserve_run(self, now: float, n_bytes: int, count: int) -> float:
        """Counter-free flavor of :meth:`transfer_run` (see :meth:`reserve`)."""
        return self.reserve(now, n_bytes * count)

    def _advance_full_prefix(self, start: int) -> None:
        """Move ``_full_prefix`` to ``start``, then past any contiguous run
        of already-full buckets (filled earlier by out-of-order charges)."""
        used = self._used
        capacity = self.bucket_capacity
        prefix = start
        while used.get(prefix, 0.0) >= capacity:
            prefix += 1
        self._full_prefix = prefix

    def utilization(self, elapsed_cycles: float) -> float:
        """Fraction of peak bandwidth consumed over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        return self.bytes_transferred / (self.bytes_per_cycle * elapsed_cycles)

    def occupancy_windows(self, window_cycles: float):
        """Reserved bytes per time window, read straight from the bucket map.

        The bucket map *is* the pipe's time series: bucket ``i`` holds the
        bytes reserved for delivery in ``[i, i+1) * bucket_cycles``.  This
        aggregates it into coarser windows of ``window_cycles`` and returns
        a sorted list of ``(window_start_cycle, bytes)`` pairs, skipping
        empty windows.  Telemetry reads this after a run completes, so the
        hot path carries no extra bookkeeping.
        """
        if window_cycles <= 0:
            raise ValueError(f"window_cycles must be positive, got {window_cycles}")
        if not self._used:
            return []
        # A bucket belongs to the window containing its *start cycle*:
        # window = floor(bucket * bucket_cycles / window_cycles).  Computed
        # with Fraction-exact integer math — the old float division
        # ``int(bucket / (window_cycles / bucket_cycles))`` misassigned
        # boundary buckets whenever the cycle widths had no exact float
        # ratio (e.g. bucket_cycles=0.7, window_cycles=2.1).
        ratio = Fraction(self.bucket_cycles) / Fraction(window_cycles)
        numerator, denominator = ratio.numerator, ratio.denominator
        windows: dict = {}
        for bucket, occupied in self._used.items():
            window = bucket * numerator // denominator
            windows[window] = windows.get(window, 0.0) + occupied
        return [
            (window * window_cycles, occupied)
            for window, occupied in sorted(windows.items())
        ]

    def overfull_buckets(self, tolerance: float = 1e-9):
        """Buckets whose reservations exceed capacity, as ``(index, bytes)``.

        The reservation algorithm never admits more than ``bucket_capacity``
        bytes into one bucket, so a non-empty return value means the pipe's
        accounting is corrupt — this is the live-validation probe for the
        "bucket occupancy <= capacity" invariant.  ``tolerance`` absorbs
        float rounding from fractional byte splits.
        """
        limit = self.bucket_capacity * (1.0 + tolerance)
        return [
            (bucket, occupied)
            for bucket, occupied in self._used.items()
            if occupied > limit
        ]

    def reset(self) -> None:
        """Clear timing and counters (used when re-running on one system)."""
        self.busy_until = 0.0
        self.bytes_transferred = 0
        self.transfers = 0
        self._used.clear()
        self._full_prefix = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BandwidthPipe(name={self.name!r}, bw={self.bytes_per_cycle}B/cyc)"
