"""Page / address placement policies across DRAM partitions.

The baseline MCM-GPU interleaves addresses at line granularity across all
physical DRAM partitions for maximum bandwidth utilization (Section 3.2).
The optimized design replaces this with a *first-touch* policy (Section 5.3,
Figure 11): the first GPM to touch a page gets the page in its local
partition.  A page-granularity round-robin policy is included because the
paper mentions evaluating it for the multi-GPU baseline (Section 6.1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict


class PlacementPolicy(ABC):
    """Maps a (page, requesting GPM) pair to a DRAM partition index."""

    def __init__(self, n_partitions: int) -> None:
        if n_partitions <= 0:
            raise ValueError(f"n_partitions must be positive, got {n_partitions}")
        self.n_partitions = n_partitions

    @abstractmethod
    def partition_of_page(self, page_addr: int, requester_gpm: int) -> int:
        """Return the partition holding ``page_addr``, allocating if new."""

    def reset(self) -> None:
        """Forget all mappings (new simulation on the same system)."""

    @property
    def name(self) -> str:
        """Short identifier used in configuration digests and reports."""
        return type(self).__name__


class FineGrainInterleave(PlacementPolicy):
    """Baseline policy: line-granularity interleave across partitions.

    Stateless — the partition is a pure function of the address, so pages
    are effectively striped across all partitions and roughly
    ``(n-1)/n`` of all accesses are remote on an ``n``-GPM ring.

    This policy operates at *line* granularity; the page argument of
    :meth:`partition_of_page` is actually ignored by the memory system,
    which calls :meth:`partition_of_line` directly for interleaved systems.
    """

    def partition_of_page(self, page_addr: int, requester_gpm: int) -> int:
        return page_addr % self.n_partitions

    def partition_of_line(self, line_addr: int) -> int:
        """Line-granularity home computation used on the access path."""
        return line_addr % self.n_partitions

    @property
    def is_line_interleaved(self) -> bool:
        """Marks the policy as line-granular for the page-table fast path."""
        return True


class FirstTouchPlacement(PlacementPolicy):
    """Optimized policy: a page lives in the partition of its first toucher.

    Combined with distributed CTA scheduling this keeps the bulk of DRAM
    accesses local to the GPM (Figure 11) and lets locality persist across
    kernel re-launches (Figure 12) because CTA indices are re-bound to the
    same GPM every launch.
    """

    def __init__(self, n_partitions: int) -> None:
        super().__init__(n_partitions)
        self._page_map: Dict[int, int] = {}
        self.first_touch_allocations = 0

    def partition_of_page(self, page_addr: int, requester_gpm: int) -> int:
        partition = self._page_map.get(page_addr)
        if partition is None:
            partition = requester_gpm % self.n_partitions
            self._page_map[page_addr] = partition
            self.first_touch_allocations += 1
        return partition

    def reset(self) -> None:
        self._page_map.clear()
        self.first_touch_allocations = 0

    @property
    def pages_mapped(self) -> int:
        """Number of distinct pages allocated so far."""
        return len(self._page_map)

    def partition_histogram(self) -> Dict[int, int]:
        """Pages per partition — useful for balance diagnostics."""
        histogram = {partition: 0 for partition in range(self.n_partitions)}
        for partition in self._page_map.values():
            histogram[partition] += 1
        return histogram


class RoundRobinPagePlacement(PlacementPolicy):
    """Pages assigned to partitions round-robin in first-touch order.

    Explored by the paper for the multi-GPU baseline, where it produced
    "very low and inconsistent performance" (Section 6.1) — it destroys
    requester locality while still camping whole pages on one partition.
    """

    def __init__(self, n_partitions: int) -> None:
        super().__init__(n_partitions)
        self._page_map: Dict[int, int] = {}
        self._next_partition = 0

    def partition_of_page(self, page_addr: int, requester_gpm: int) -> int:
        partition = self._page_map.get(page_addr)
        if partition is None:
            partition = self._next_partition
            self._page_map[page_addr] = partition
            self._next_partition = (self._next_partition + 1) % self.n_partitions
        return partition

    def reset(self) -> None:
        self._page_map.clear()
        self._next_partition = 0

    @property
    def pages_mapped(self) -> int:
        """Number of distinct pages allocated so far."""
        return len(self._page_map)


def _make_migrating(n_partitions: int):
    from .migration import MigratingFirstTouch

    return MigratingFirstTouch(n_partitions)


#: Registry used by configuration code to build policies by name.
PLACEMENT_POLICIES = {
    "interleave": FineGrainInterleave,
    "first_touch": FirstTouchPlacement,
    "round_robin_page": RoundRobinPagePlacement,
    "migrating_first_touch": _make_migrating,
}


def make_placement(name: str, n_partitions: int) -> PlacementPolicy:
    """Instantiate a placement policy from its registry name."""
    try:
        policy_cls = PLACEMENT_POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(PLACEMENT_POLICIES))
        raise ValueError(f"unknown placement policy {name!r}; expected one of: {known}")
    return policy_cls(n_partitions)
