"""Set-associative cache model with exact LRU replacement.

All caches in the simulated hierarchy (per-SM L1, GPM-side L1.5, memory-side
L2) are instances of :class:`SetAssocCache`.  The model is functional, not
cycle-accurate: it answers hit/miss questions and tracks dirty state so the
memory system can charge the right latency and generate write-back traffic.

Implementation notes
--------------------
Each set is a plain ``dict`` mapping line address to a dirty flag.  Python
dictionaries preserve insertion order, so LRU is implemented by removing and
re-inserting a key on every touch; the least recently used line is then the
first key of the dict.  This is both exact and fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

from .address import is_power_of_two


class WritePolicy(Enum):
    """How a cache handles stores.

    ``WRITE_THROUGH`` caches (L1 and L1.5 in the paper, to keep software
    coherence simple) forward every store to the next level and never hold
    dirty data.  ``WRITE_BACK`` caches (memory-side L2) absorb stores and
    emit the line to DRAM only on eviction.
    """

    WRITE_THROUGH = "write_through"
    WRITE_BACK = "write_back"


class AllocationPolicy(Enum):
    """Which accesses are allowed to allocate into a cache.

    The paper's GPM-side L1.5 cache is evaluated with an ``ALL`` policy and a
    ``REMOTE_ONLY`` policy (Section 5.1.2); remote-only wins and is the
    configuration used by the optimized MCM-GPU.
    """

    ALL = "all"
    REMOTE_ONLY = "remote_only"


@dataclass
class CacheStats:
    """Counters accumulated by a :class:`SetAssocCache` over a simulation.

    ``hits``/``misses`` count the lookup path and include write touches:
    a write-through store that finds its line resident refreshes it and
    counts a hit (tracked separately in ``write_hits``), matching how the
    counters have always been reported.  ``bypasses`` counts no-allocate
    requests that found no resident line — for the write-through levels
    that is exactly the store probe-misses that are forwarded downstream
    untouched, so every store is accounted for as either a ``write_hit``
    or a ``bypass``.  The paper's Figure 6/7 hit-rate quantities are
    *load* hit rates; use :attr:`load_hit_rate` for those.
    """

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    flushes: int = 0
    bypasses: int = 0
    #: Lookup hits whose access was a write (store touches at the
    #: write-through levels, write-allocate lookups at the L2).
    write_hits: int = 0
    #: Lookup misses whose access was a write (only the write-allocate L2
    #: can take these; write-through store probe-misses are ``bypasses``).
    write_misses: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses that went through the lookup path."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit ratio over *all* lookups (loads and write touches alike).

        0.0 when the cache was never accessed.  For the load-only quantity
        the paper reports in Figures 6/7, use :attr:`load_hit_rate`.
        """
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    @property
    def read_hits(self) -> int:
        """Lookup hits that served a load."""
        return self.hits - self.write_hits

    @property
    def read_misses(self) -> int:
        """Lookup misses taken by a load."""
        return self.misses - self.write_misses

    @property
    def read_accesses(self) -> int:
        """Load lookups only (no write touches)."""
        return self.read_hits + self.read_misses

    @property
    def load_hit_rate(self) -> float:
        """Load-only hit ratio — the Figure 6/7 quantity.

        Excludes write touches entirely; 0.0 when no load was looked up.
        """
        reads = self.read_hits + self.read_misses
        if not reads:
            return 0.0
        return self.read_hits / reads

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return a new ``CacheStats`` with counters from both operands."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            writebacks=self.writebacks + other.writebacks,
            flushes=self.flushes + other.flushes,
            bypasses=self.bypasses + other.bypasses,
            write_hits=self.write_hits + other.write_hits,
            write_misses=self.write_misses + other.write_misses,
        )


#: Access outcomes returned by :meth:`SetAssocCache.access`: a
#: ``(hit, writeback_line)`` tuple.  ``writeback_line`` is the address of a
#: dirty line displaced by the access (the caller charges the resulting
#: DRAM write traffic) or ``None``.  Plain tuples keep the hot path free of
#: per-access object allocation.
HIT = (True, None)
MISS = (False, None)


class SetAssocCache:
    """An exact-LRU set-associative cache.

    Parameters
    ----------
    size_bytes:
        Total capacity.  A zero size yields a legal cache that misses on
        every access (used to disable a level without special-casing).
    line_bytes:
        Line size; must be a power of two.
    ways:
        Associativity.  Capacities smaller than one way per set are rejected.
    write_policy:
        See :class:`WritePolicy`.
    name:
        Label used in reports and error messages.
    """

    def __init__(
        self,
        size_bytes: int,
        line_bytes: int = 128,
        ways: int = 16,
        write_policy: WritePolicy = WritePolicy.WRITE_BACK,
        name: str = "cache",
    ) -> None:
        if size_bytes < 0:
            raise ValueError(f"size_bytes must be non-negative, got {size_bytes}")
        if not is_power_of_two(line_bytes):
            raise ValueError(f"line_bytes must be a power of two, got {line_bytes}")
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")

        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.write_policy = write_policy
        self.stats = CacheStats()

        total_lines = size_bytes // line_bytes
        if size_bytes and total_lines == 0:
            raise ValueError(
                f"{name}: size {size_bytes}B is smaller than one line ({line_bytes}B)"
            )
        if total_lines and total_lines < ways:
            # Degenerate but usable: clamp associativity to the line count.
            ways = total_lines
        self.ways = ways
        self.n_sets = max(1, total_lines // ways) if total_lines else 0
        self._sets: List[Dict[int, bool]] = [dict() for _ in range(self.n_sets)]
        self._track_dirty = write_policy is WritePolicy.WRITE_BACK

    @property
    def enabled(self) -> bool:
        """False for zero-capacity caches, which miss unconditionally."""
        return self.n_sets > 0

    @property
    def capacity_lines(self) -> int:
        """Total number of lines the cache can hold."""
        return self.n_sets * self.ways

    def _set_for(self, line_addr: int) -> Dict[int, bool]:
        return self._sets[line_addr % self.n_sets]

    def access(self, line_addr: int, is_write: bool = False, allocate: bool = True):
        """Look up ``line_addr``, optionally allocating it on a miss.

        Returns a ``(hit, writeback_line)`` tuple; when a dirty line is
        displaced by the allocation its address is reported as
        ``writeback_line`` (otherwise ``None``).

        A write to a ``WRITE_THROUGH`` cache updates the line (if present or
        allocated) but never marks it dirty — the caller must forward the
        store downstream.
        """
        stats = self.stats
        if not self._sets:
            if not allocate:
                # A disabled level holds nothing, so a no-allocate probe is
                # a bypass exactly as it is on an enabled level (and as
                # ``touch_store`` already counts it): the request forwards
                # downstream without touching the lookup-path counters.
                stats.bypasses += 1
                return MISS
            stats.misses += 1
            if is_write:
                stats.write_misses += 1
            return MISS

        cache_set = self._sets[line_addr % self.n_sets]
        track_dirty = is_write and self._track_dirty

        if line_addr in cache_set:
            stats.hits += 1
            if is_write:
                stats.write_hits += 1
            dirty = cache_set.pop(line_addr) or track_dirty
            cache_set[line_addr] = dirty
            return HIT

        if not allocate:
            # No-allocate requests that find nothing are bypasses, not
            # lookup misses: the request is forwarded downstream untouched
            # and must not dilute the hit rate (see CacheStats docstring).
            stats.bypasses += 1
            return MISS
        stats.misses += 1
        if is_write:
            stats.write_misses += 1

        writeback = None
        if len(cache_set) >= self.ways:
            victim_addr = next(iter(cache_set))
            victim_dirty = cache_set.pop(victim_addr)
            if victim_dirty:
                stats.writebacks += 1
                writeback = victim_addr
        cache_set[line_addr] = track_dirty
        if writeback is None:
            return MISS
        return (False, writeback)

    def probe(self, line_addr: int) -> bool:
        """Return True when the line is resident, without touching LRU state."""
        if not self.enabled:
            return False
        return line_addr in self._set_for(line_addr)

    def touch_store(self, line_addr: int) -> bool:
        """Fused probe + write-touch for the no-allocate store path.

        One dict lookup replaces the ``probe()`` / ``access(is_write=True,
        allocate=False)`` pair the store path used to make per line — this
        is the hottest cache operation in a simulation.  A resident line
        counts a hit (tracked as a write hit), is refreshed in LRU order,
        and is marked dirty only in write-back caches; an absent line
        counts a ``bypass`` — the store is forwarded downstream without
        allocating, so it is neither a hit nor a miss of the lookup path.
        Returns residency.
        """
        stats = self.stats
        if self._sets:
            cache_set = self._sets[line_addr % self.n_sets]
            if line_addr in cache_set:
                stats.hits += 1
                stats.write_hits += 1
                cache_set[line_addr] = cache_set.pop(line_addr) or self._track_dirty
                return True
        stats.bypasses += 1
        return False

    def flush(self) -> List[int]:
        """Invalidate the whole cache, returning dirty lines for write-back.

        Models the software-coherence flush at kernel boundaries
        (Section 5.1.1).  Write-through caches never hold dirty lines, so the
        returned list is empty for them.  A disabled (zero-capacity) cache
        holds nothing and counts nothing: its ``flushes`` stat stays zero so
        telemetry never reports phantom activity for an absent level.
        """
        if not self._sets:
            return []
        if not self._track_dirty:
            # Write-through caches never hold dirty lines; skip the
            # per-line dirty scan (kernel-boundary flushes of every L1 are
            # on the hot path of multi-kernel simulations).
            for cache_set in self._sets:
                cache_set.clear()
            self.stats.flushes += 1
            return []
        dirty_lines: List[int] = []
        for cache_set in self._sets:
            dirty_lines.extend(addr for addr, dirty in cache_set.items() if dirty)
            cache_set.clear()
        self.stats.flushes += 1
        self.stats.writebacks += len(dirty_lines)
        return dirty_lines

    def reset_stats(self) -> None:
        """Zero all counters without touching cache contents.

        Zeroes the existing ``CacheStats`` object in place rather than
        replacing it: the array-backed fast path builds per-SM walkers
        that bind stats objects once per system, and those bindings must
        survive ``reset()`` between runs.
        """
        stats = self.stats
        stats.hits = 0
        stats.misses = 0
        stats.writebacks = 0
        stats.flushes = 0
        stats.bypasses = 0
        stats.write_hits = 0
        stats.write_misses = 0

    def resident_lines(self) -> int:
        """Number of valid lines currently held."""
        return sum(len(cache_set) for cache_set in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssocCache(name={self.name!r}, size={self.size_bytes}B, "
            f"sets={self.n_sets}, ways={self.ways}, policy={self.write_policy.value})"
        )
