"""Page table: resolves line addresses to home DRAM partitions.

This is the driver-level mechanism of Section 5.3 — the paper implements
first-touch placement "in the software layer by extending current GPU driver
functionality".  The page table glues an :class:`~repro.memory.address.AddressMap`
to a :class:`~repro.memory.placement.PlacementPolicy` and counts how many
resolutions were local vs. remote, which feeds the locality metrics.
"""

from __future__ import annotations

from typing import Dict

from .address import AddressMap
from .placement import FineGrainInterleave, PlacementPolicy


class PageTable:
    """Resolves the home partition of every memory access.

    Parameters
    ----------
    address_map:
        Line/page geometry.
    policy:
        Placement policy; line-interleaved policies bypass page lookup
        entirely (the partition is a pure function of the line address).
    """

    def __init__(self, address_map: AddressMap, policy: PlacementPolicy) -> None:
        self.address_map = address_map
        self.policy = policy
        self._line_interleaved = isinstance(policy, FineGrainInterleave)
        self.local_resolutions = 0
        self.remote_resolutions = 0

    @property
    def n_partitions(self) -> int:
        """Number of DRAM partitions addresses can map to."""
        return self.policy.n_partitions

    def home_partition(self, line_addr: int, requester_gpm: int) -> int:
        """Home partition of ``line_addr`` for a request from ``requester_gpm``.

        First-touch policies may allocate the page as a side effect, exactly
        like a first-reference page fault handled by the driver.
        """
        if self._line_interleaved:
            partition = line_addr % self.policy.n_partitions
        else:
            page = self.address_map.page_of_line(line_addr)
            partition = self.policy.partition_of_page(page, requester_gpm)
        if partition == requester_gpm:
            self.local_resolutions += 1
        else:
            self.remote_resolutions += 1
        return partition

    @property
    def locality_fraction(self) -> float:
        """Fraction of resolutions that landed on the requester's partition."""
        total = self.local_resolutions + self.remote_resolutions
        if not total:
            return 0.0
        return self.local_resolutions / total

    def locality_by_partition(self) -> Dict[str, int]:
        """Summary counters for reports."""
        return {
            "local": self.local_resolutions,
            "remote": self.remote_resolutions,
        }

    def reset(self) -> None:
        """Clear mappings and counters for a fresh simulation."""
        self.policy.reset()
        self.local_resolutions = 0
        self.remote_resolutions = 0
