"""Memory-system substrate: addressing, caches, DRAM, and page placement."""

from .address import LINE_BYTES, AddressMap, is_power_of_two
from .bandwidth import BandwidthPipe
from .cache import AllocationPolicy, CacheStats, SetAssocCache, WritePolicy
from .dram import DRAMPartition
from .migration import MigratingFirstTouch
from .page_table import PageTable
from .placement import (
    PLACEMENT_POLICIES,
    FineGrainInterleave,
    FirstTouchPlacement,
    PlacementPolicy,
    RoundRobinPagePlacement,
    make_placement,
)

__all__ = [
    "LINE_BYTES",
    "AddressMap",
    "is_power_of_two",
    "BandwidthPipe",
    "AllocationPolicy",
    "CacheStats",
    "SetAssocCache",
    "WritePolicy",
    "DRAMPartition",
    "MigratingFirstTouch",
    "PageTable",
    "PLACEMENT_POLICIES",
    "FineGrainInterleave",
    "FirstTouchPlacement",
    "PlacementPolicy",
    "RoundRobinPagePlacement",
    "make_placement",
]
