"""DRAM partition model.

Each GPM owns one local DRAM partition (Figure 3).  A partition is a fixed
access latency in front of a :class:`~repro.memory.bandwidth.BandwidthPipe`;
internally a real partition stripes across several channels, but because the
paper interleaves addresses finely across channels *within* a partition we
fold the channels into one aggregate pipe.
"""

from __future__ import annotations

from .bandwidth import BandwidthPipe


class DRAMPartition:
    """One GPM's local DRAM partition.

    Parameters
    ----------
    bandwidth_bytes_per_cycle:
        Peak partition bandwidth (768 GB/s -> 768.0 at 1 GHz in the paper's
        baseline 4-partition, 3 TB/s configuration).
    latency_cycles:
        Closed-page access latency (100 ns -> 100 cycles in Table 3).
    line_bytes:
        Transfer granularity for reads and write-backs.
    """

    def __init__(
        self,
        bandwidth_bytes_per_cycle: float,
        latency_cycles: float = 100.0,
        line_bytes: int = 128,
        name: str = "dram",
    ) -> None:
        if latency_cycles < 0:
            raise ValueError(f"latency_cycles must be non-negative, got {latency_cycles}")
        self.name = name
        self.latency_cycles = latency_cycles
        self.line_bytes = line_bytes
        self.pipe = BandwidthPipe(bandwidth_bytes_per_cycle, name=f"{name}.pipe")
        self.reads = 0
        self.writes = 0

    def read_line(self, now: float) -> float:
        """Fetch one line; returns the completion cycle."""
        self.reads += 1
        finish = self.pipe.transfer(now, self.line_bytes)
        return finish + self.latency_cycles

    def write_line(self, now: float) -> float:
        """Write one line (e.g. an L2 write-back); returns the completion cycle.

        Writes consume bandwidth but the requester does not wait for the
        array update, so callers typically ignore the returned time.
        """
        self.writes += 1
        return self.pipe.transfer(now, self.line_bytes)

    @property
    def bytes_read(self) -> int:
        """Total bytes fetched from the array."""
        return self.reads * self.line_bytes

    @property
    def bytes_written(self) -> int:
        """Total bytes written to the array."""
        return self.writes * self.line_bytes

    @property
    def total_bytes(self) -> int:
        """All traffic through the partition."""
        return self.pipe.bytes_transferred

    def reset(self) -> None:
        """Clear counters and timing state."""
        self.pipe.reset()
        self.reads = 0
        self.writes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DRAMPartition(name={self.name!r}, bw={self.pipe.bytes_per_cycle}B/cyc, "
            f"lat={self.latency_cycles}cyc)"
        )
