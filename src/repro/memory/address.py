"""Address arithmetic helpers shared by the memory subsystem.

The simulator works on *line addresses* (byte address divided by the cache
line size) as early as possible: workload generators emit line addresses,
caches and page tables consume them.  This module centralizes the conversion
math so line size and page size stay consistent across components.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Cache line size used throughout the paper's configurations (Table 3).
LINE_BYTES = 128


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class AddressMap:
    """Converts between byte, line, and page addresses.

    Parameters
    ----------
    line_bytes:
        Cache line size in bytes.  Must be a power of two.
    page_bytes:
        Virtual memory page size in bytes.  Must be a power of two and a
        multiple of ``line_bytes`` so a page always contains whole lines.
    """

    line_bytes: int = LINE_BYTES
    page_bytes: int = 1024

    def __post_init__(self) -> None:
        if not is_power_of_two(self.line_bytes):
            raise ValueError(f"line_bytes must be a power of two, got {self.line_bytes}")
        if not is_power_of_two(self.page_bytes):
            raise ValueError(f"page_bytes must be a power of two, got {self.page_bytes}")
        if self.page_bytes % self.line_bytes:
            raise ValueError(
                f"page_bytes ({self.page_bytes}) must be a multiple of "
                f"line_bytes ({self.line_bytes})"
            )

    @property
    def lines_per_page(self) -> int:
        """Number of cache lines in one page."""
        return self.page_bytes // self.line_bytes

    def line_of_byte(self, byte_addr: int) -> int:
        """Line address containing ``byte_addr``."""
        return byte_addr // self.line_bytes

    def byte_of_line(self, line_addr: int) -> int:
        """First byte address of line ``line_addr``."""
        return line_addr * self.line_bytes

    def page_of_line(self, line_addr: int) -> int:
        """Page address containing line ``line_addr``."""
        return line_addr // self.lines_per_page

    def page_of_byte(self, byte_addr: int) -> int:
        """Page address containing ``byte_addr``."""
        return byte_addr // self.page_bytes

    def lines_in_footprint(self, footprint_bytes: int) -> int:
        """Number of whole lines covering ``footprint_bytes`` (rounded up)."""
        return -(-footprint_bytes // self.line_bytes)

    def pages_in_footprint(self, footprint_bytes: int) -> int:
        """Number of whole pages covering ``footprint_bytes`` (rounded up)."""
        return -(-footprint_bytes // self.page_bytes)
