"""Data-movement energy model (Table 2 of the paper).

The paper's efficiency argument (Sections 2.3 and 6.2) rests on the energy
cost per bit of each integration tier: on-chip wires at 80 fJ/bit,
on-package GRS links at 0.5 pJ/bit, on-board links at 10 pJ/bit, and
system-level interconnect at 250 pJ/bit.  This module turns the byte
counters a simulation produces into an interconnect-energy breakdown so the
MCM-vs-multi-GPU comparison can be made in joules as well as cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict


class IntegrationTier(Enum):
    """The four integration domains of Table 2."""

    CHIP = "chip"
    PACKAGE = "package"
    BOARD = "board"
    SYSTEM = "system"


#: Energy per bit for each tier, in picojoules (Table 2).
ENERGY_PJ_PER_BIT: Dict[IntegrationTier, float] = {
    IntegrationTier.CHIP: 0.080,
    IntegrationTier.PACKAGE: 0.5,
    IntegrationTier.BOARD: 10.0,
    IntegrationTier.SYSTEM: 250.0,
}

#: Approximate peak bandwidth available in each tier (GB/s), as quoted in
#: Table 2 ("10s TB/s" on chip, 1.5 TB/s package, 256 GB/s board,
#: 12.5 GB/s system).
TIER_BANDWIDTH_GBPS: Dict[IntegrationTier, float] = {
    IntegrationTier.CHIP: 20000.0,
    IntegrationTier.PACKAGE: 1500.0,
    IntegrationTier.BOARD: 256.0,
    IntegrationTier.SYSTEM: 12.5,
}

#: DRAM array access energy, pJ/bit — not in Table 2, but needed so total
#: memory-system energy is not dominated by a free DRAM.  Typical HBM-class
#: figure.
DRAM_PJ_PER_BIT = 4.0


def energy_joules(n_bytes: float, tier: IntegrationTier) -> float:
    """Energy to move ``n_bytes`` across one tier's interconnect."""
    return n_bytes * 8.0 * ENERGY_PJ_PER_BIT[tier] * 1e-12


def dram_energy_joules(n_bytes: float) -> float:
    """Energy for ``n_bytes`` of DRAM array traffic."""
    return n_bytes * 8.0 * DRAM_PJ_PER_BIT * 1e-12


@dataclass(frozen=True)
class EnergyBreakdown:
    """Interconnect + DRAM energy of one simulation, in joules."""

    on_chip_joules: float
    inter_module_joules: float
    dram_joules: float
    inter_module_tier: IntegrationTier

    @property
    def total_joules(self) -> float:
        """All accounted data-movement energy."""
        return self.on_chip_joules + self.inter_module_joules + self.dram_joules

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary for reports."""
        return {
            "on_chip_joules": self.on_chip_joules,
            "inter_module_joules": self.inter_module_joules,
            "dram_joules": self.dram_joules,
            "total_joules": self.total_joules,
            "inter_module_tier": self.inter_module_tier.value,
        }


def breakdown_from_traffic(
    on_chip_bytes: float,
    inter_module_bytes: float,
    dram_bytes: float,
    inter_module_tier: IntegrationTier = IntegrationTier.PACKAGE,
) -> EnergyBreakdown:
    """Build an :class:`EnergyBreakdown` from raw byte counters.

    ``inter_module_tier`` selects the per-bit cost of the link traffic:
    PACKAGE for MCM-GPU ring traffic, BOARD for multi-GPU traffic.
    """
    return EnergyBreakdown(
        on_chip_joules=energy_joules(on_chip_bytes, IntegrationTier.CHIP),
        inter_module_joules=energy_joules(inter_module_bytes, inter_module_tier),
        dram_joules=dram_energy_joules(dram_bytes),
        inter_module_tier=inter_module_tier,
    )
