"""Generated per-GPM memory walkers (partial evaluation of the hot path).

The fused walkers in :mod:`repro.core.memsys` collapse a record's memory
batch into one closure call, but they still pay, per line, for work that
is invariant for a given system: homing dispatch over a tuple of candidate
homes, bound-method calls into every :class:`BandwidthPipe` on the path,
latency attribute loads, and per-SM deferred-counter cells folded SM by SM.

This module instead *generates* walker source for each GPM with every
system-invariant decision resolved at build time:

* home dispatch unrolled into literal ``if home == g`` chains (and removed
  entirely for single-partition systems);
* every pipe charge inlined: the bucket-reservation fast path of
  ``BandwidthPipe.transfer`` runs as straight-line code with literal bucket
  constants, falling back to ``BandwidthPipe.reserve`` for the rare
  multi-bucket spill;
* pipe byte/transfer counters derived once per kernel from per-home
  tallies (ring message sizes are fixed per direction), and ``busy_until``
  tracked in shared max-cells folded once per kernel;
* all pure-count statistics accumulated in one shared per-GPM counter list
  and folded into the real stats objects at kernel boundaries.

Each GPM also gets a second walker flavor, ``walk_u``, selected by the
engine for kernels whose address columns are globally unique: such a
kernel can never hit in the write-through, kernel-flushed L1/L1.5 levels,
so their dict mutations are skipped wholesale.  Counters advance
identically (every access is a miss/bypass there by construction) and the
skipped allocations could only have produced clean evictions, so no
traffic is lost; the levels' transient residency differs within the
kernel but is invalidated at the boundary before anything reads it.

Everything observable — SimResult fields, cache/DRAM/pipe counters, LRU
state of the persistent L2 — is bit-identical to the per-line reference
path; tests/test_perf_identity.py pins this across the config matrix.
"""

from __future__ import annotations

from typing import Dict, List


class UnsupportedWalk(Exception):
    """Raised when a system's shape cannot be specialized (caller falls
    back to the generic fused walker)."""


def _ind(level: int, text: str) -> str:
    return "    " * level + text


# Compiled factory code objects keyed by their exact source.  Identical
# system shapes regenerate identical source, so repeat Simulator
# constructions (benchmark repeats, sweeps) skip ``compile`` — by far the
# dominant cost of specialization — and pay only source assembly + exec.
_CODE_CACHE: Dict[str, object] = {}


class _GpmCodegen:
    """Emits one GPM's ``_factory(sm, ctx) -> (walk, walk_u, flush)``."""

    def __init__(self, memsys, gpm_id, pipe_cells, uniform_l2, uniform_l15,
                 line_bytes, header_bytes):
        self.memsys = memsys
        self.gpms = memsys._gpms
        self.n = len(self.gpms)
        self.gid = gpm_id
        self.gpm = self.gpms[gpm_id]
        self.pipe_cells = pipe_cells
        self.uniform_l2 = uniform_l2
        self.uniform_l15 = uniform_l15
        self.request_bytes = header_bytes
        self.response_bytes = line_bytes + header_bytes
        self.store_bytes = line_bytes + header_bytes

        self._bound: Dict[str, object] = {}
        self.ctx_names: List[str] = []
        self.ctx_values: List[object] = []
        self._pipe_names: Dict[int, dict] = {}
        self.counters: Dict[str, int] = {}
        self.gc: list = []

        page_table = memsys._page_table
        policy = page_table.policy
        self.interleaved = page_table._line_interleaved
        self.partition_of_page = policy.partition_of_page
        page_map = getattr(policy, "_page_map", None)
        self.page_map_get = page_map.get if page_map is not None else None

        gpm = self.gpm
        sms = gpm.sms
        l1_shapes = {
            (sm.l1.n_sets, sm.l1.ways, sm.l1._track_dirty, sm.l1_hit_latency)
            for sm in sms
        }
        if len(l1_shapes) != 1:
            raise UnsupportedWalk(f"gpm {gpm_id}: non-uniform L1 shapes")
        self.l1_n_sets, self.l1_ways, self.l1_track, self.l1_hit = l1_shapes.pop()

        self.has_l15 = gpm.has_l15
        self.caches_local = gpm.l15_caches_local
        self.l15 = gpm.l15
        self.xbar_lat = gpm.xbar_latency
        self.own_l2_hit = gpm.l2_hit_latency
        self.l15_pen = gpm.l15_miss_penalty
        self.l15_hit = gpm.l15_hit_latency
        self.local_extra = (
            self.l15_pen + self.own_l2_hit if self.caches_local else self.own_l2_hit
        )
        self.own_dram = gpm.dram

    # -- binding helpers -------------------------------------------------

    def bind(self, name: str, value) -> str:
        known = self._bound.get(name)
        if known is not None:
            if known is not value:  # pragma: no cover - generator invariant
                raise UnsupportedWalk(f"ctx name collision: {name}")
            return name
        self._bound[name] = value
        self.ctx_names.append(name)
        self.ctx_values.append(value)
        return name

    def cell(self, name: str) -> str:
        index = self.counters.get(name)
        if index is None:
            index = self.counters[name] = len(self.counters)
        return f"_GC[{index}]"

    def pipe_names(self, pipe) -> dict:
        names = self._pipe_names.get(id(pipe))
        if names is not None:
            return names
        cell = self.pipe_cells.get(id(pipe))
        if cell is None:
            cell = self.pipe_cells[id(pipe)] = (pipe, [0.0])
        k = len(self._pipe_names)
        names = {
            "U": self.bind(f"_U{k}", pipe._used),
            "G": self.bind(f"_G{k}", pipe._used.get),
            "P": self.bind(f"_P{k}", pipe),
            "A": self.bind(f"_A{k}", pipe._advance_full_prefix),
            "R": self.bind(f"_R{k}", pipe.reserve),
            "RN": self.bind(f"_RN{k}", pipe.reserve_run),
            "M": self.bind(f"_M{k}", cell[1]),
            "bc": repr(pipe.bucket_cycles),
            "cap": repr(pipe.bucket_capacity),
            "bw": pipe.bytes_per_cycle,
        }
        self._pipe_names[id(pipe)] = names
        return names

    def l2_set_expr(self, home: int) -> str:
        n_sets = self.gpms[home].l2.n_sets
        if self.uniform_l2 and self.uniform_l2 == n_sets:
            return "trip[3]"
        return f"line % {n_sets}"

    def l15_set_expr(self) -> str:
        n_sets = self.l15.n_sets
        if self.uniform_l15 and self.uniform_l15 == n_sets:
            return "trip[4]"
        return f"line % {n_sets}"

    # -- charge emission -------------------------------------------------

    def _emit_charge(self, out, ind, pipe, tvar, n_bytes):
        """Inline ``pipe.transfer(tvar, n_bytes)``; floored finish in ``_f``.

        Counters and ``busy_until`` are deferred: byte/transfer totals are
        derived from the per-home tallies at fold time, and the max-cell
        update here feeds the once-per-kernel ``busy_until`` fold.
        """
        p = self.pipe_names(pipe)
        floor = repr(n_bytes / p["bw"])
        out += [
            _ind(ind, f"_b = int({tvar} / {p['bc']})"),
            _ind(ind, f"_fp = {p['P']}._full_prefix"),
            _ind(ind, "if _b < _fp:"),
            _ind(ind + 1, "_b = _fp"),
            _ind(ind, f"_o = {p['G']}(_b, 0.0)"),
            _ind(ind, f"_n = _o + {n_bytes}"),
            _ind(ind, f"if _n <= {p['cap']}:"),
            _ind(ind + 1, f"{p['U']}[_b] = _n"),
            _ind(ind + 1, f"_f = (_b + _n / {p['cap']}) * {p['bc']}"),
            _ind(ind + 1, f"if _n >= {p['cap']} and _b == _fp:"),
            _ind(ind + 2, f"{p['A']}(_b + 1)"),
            _ind(ind, "else:"),
            _ind(ind + 1, f"_f = {p['R']}({tvar}, {n_bytes})"),
            _ind(ind, f"_g = {tvar} + {floor}"),
            _ind(ind, "if _f < _g:"),
            _ind(ind + 1, "_f = _g"),
            _ind(ind, f"if _f > {p['M']}[0]:"),
            _ind(ind + 1, f"{p['M']}[0] = _f"),
        ]

    def _emit_run_charge(self, out, ind, pipe, tvar, n_bytes, count_var):
        """Inline ``pipe.transfer_run(tvar, n_bytes, count_var)`` likewise."""
        p = self.pipe_names(pipe)
        floor = repr(n_bytes / p["bw"])
        out += [
            _ind(ind, f"_n2 = {n_bytes} * {count_var}"),
            _ind(ind, f"_b = int({tvar} / {p['bc']})"),
            _ind(ind, f"_fp = {p['P']}._full_prefix"),
            _ind(ind, "if _b < _fp:"),
            _ind(ind + 1, "_b = _fp"),
            _ind(ind, f"_o = {p['G']}(_b, 0.0)"),
            _ind(ind, "_n = _o + _n2"),
            _ind(ind, f"if _n <= {p['cap']}:"),
            _ind(ind + 1, f"{p['U']}[_b] = _n"),
            _ind(ind + 1, f"_f = (_b + _n / {p['cap']}) * {p['bc']}"),
            _ind(ind + 1, f"if _n >= {p['cap']} and _b == _fp:"),
            _ind(ind + 2, f"{p['A']}(_b + 1)"),
            _ind(ind, "else:"),
            _ind(ind + 1, f"_f = {p['RN']}({tvar}, {n_bytes}, {count_var})"),
            _ind(ind, f"_g = {tvar} + {floor}"),
            _ind(ind, "if _f < _g:"),
            _ind(ind + 1, "_f = _g"),
            _ind(ind, f"if _f > {p['M']}[0]:"),
            _ind(ind + 1, f"{p['M']}[0] = _f"),
        ]

    def _emit_hops(self, out, ind, links, direction, n_bytes, tvar):
        for link in links:
            pipe = getattr(link, direction)
            self._emit_charge(out, ind, pipe, tvar, n_bytes)
            out.append(_ind(ind, f"{tvar} = _f + {link.latency_cycles!r}"))

    # -- path emission ---------------------------------------------------

    def _emit_home(self, out, ind):
        if self.interleaved:
            out.append(_ind(ind, "home = trip[2]"))
        elif self.page_map_get is not None:
            g = self.bind("_PMG", self.page_map_get)
            p = self.bind("_POP", self.partition_of_page)
            out.append(_ind(ind, f"home = {g}(trip[2])"))
            out.append(_ind(ind, "if home is None:"))
            out.append(_ind(ind + 1, f"home = {p}(trip[2], {self.gid})"))
        else:
            p = self.bind("_POP", self.partition_of_page)
            out.append(_ind(ind, f"home = {p}(trip[2], {self.gid})"))

    def _emit_l15_read(self, out, ind, unique, penalized):
        """L1.5 probe on the read path; miss falls through with ``_t`` set."""
        l15s = self.bind("_L15S", self.l15._sets)
        if unique:
            out.append(_ind(ind, f"{self.cell('15m')} += 1"))
        else:
            out += [
                _ind(ind, f"_cs = {l15s}[{self.l15_set_expr()}]"),
                _ind(ind, "_d = _cs.pop(line, None)"),
                _ind(ind, "if _d is not None:"),
                _ind(ind + 1, f"{self.cell('15h')} += 1"),
                _ind(ind + 1, "_cs[line] = _d"),
                _ind(ind + 1, f"done = base_time + {self.l15_hit!r}"),
                _ind(ind + 1, "if done > mem_done:"),
                _ind(ind + 2, "mem_done = done"),
                _ind(ind + 1, "continue"),
                _ind(ind, f"{self.cell('15m')} += 1"),
                _ind(ind, f"if len(_cs) >= {self.l15.ways}:"),
                _ind(ind + 1, "if _cs.pop(next(iter(_cs))):"),
                _ind(ind + 2, f"{self.cell('15wb')} += 1"),
                _ind(ind, "_cs[line] = False"),
            ]
        if penalized:
            out.append(_ind(ind, f"_t = base_time + {self.l15_pen!r}"))

    def _emit_l15_store(self, out, ind, unique):
        if unique:
            out.append(_ind(ind, f"{self.cell('15byp')} += 1"))
            return
        l15s = self.bind("_L15S", self.l15._sets)
        insert = "True" if self.l15._track_dirty else "_d"
        out += [
            _ind(ind, f"_cs = {l15s}[{self.l15_set_expr()}]"),
            _ind(ind, "_d = _cs.pop(line, None)"),
            _ind(ind, "if _d is not None:"),
            _ind(ind + 1, f"{self.cell('15h')} += 1"),
            _ind(ind + 1, f"{self.cell('15wh')} += 1"),
            _ind(ind + 1, f"_cs[line] = {insert}"),
            _ind(ind, "else:"),
            _ind(ind + 1, f"{self.cell('15byp')} += 1"),
        ]

    def _emit_local_read(self, out, ind, unique):
        c = self.cell
        out.append(_ind(ind, f"{c('lh')} += 1"))
        if self.caches_local:
            self._emit_l15_read(out, ind, unique, penalized=False)
        l2 = self.gpm.l2
        if l2.n_sets:
            l2s = self.bind(f"_L2S{self.gid}", l2._sets)
            out += [
                _ind(ind, f"_cs = {l2s}[{self.l2_set_expr(self.gid)}]"),
                _ind(ind, "_d = _cs.pop(line, None)"),
                _ind(ind, "if _d is not None:"),
                _ind(ind + 1, f"{c(f'l2h{self.gid}')} += 1"),
                _ind(ind + 1, "_cs[line] = _d"),
                _ind(ind + 1, "if local_time > mem_done:"),
                _ind(ind + 2, "mem_done = local_time"),
                _ind(ind + 1, "continue"),
                _ind(ind, f"{c(f'l2m{self.gid}')} += 1"),
                _ind(ind, f"if len(_cs) >= {l2.ways}:"),
                _ind(ind + 1, "if _cs.pop(next(iter(_cs))):"),
                _ind(ind + 2, f"{c(f'l2wb{self.gid}')} += 1"),
                _ind(ind + 2, f"{c(f'dw{self.gid}')} += 1"),
                _ind(ind + 2, "local_fills += 1"),
                _ind(ind, "_cs[line] = False"),
            ]
        else:
            out.append(_ind(ind, f"{c(f'l2m{self.gid}')} += 1"))
        out.append(_ind(ind, f"{c(f'dr{self.gid}')} += 1"))
        out.append(_ind(ind, "local_fills += 1"))

    def _emit_remote_read(self, out, ind, home, unique):
        c = self.cell
        out.append(_ind(ind, f"{c('rh')} += 1"))
        out.append(_ind(ind, f"{c('rld')} += 1"))
        if self.has_l15:
            self._emit_l15_read(out, ind, unique, penalized=True)
        else:
            out.append(_ind(ind, "_t = base_time"))
        out.append(_ind(ind, f"{c(f'rgr{home}')} += 1"))
        routes = self.memsys._ring._routes
        self._emit_hops(out, ind, routes[self.gid][home], "request_pipe",
                        self.request_bytes, "_t")
        out.append(_ind(ind, f"_t = _t + {self.gpms[home].l2_hit_latency!r}"))
        l2 = self.gpms[home].l2
        dram = self.gpms[home].dram
        resp = routes[home][self.gid]
        if l2.n_sets:
            l2s = self.bind(f"_L2S{home}", l2._sets)
            out += [
                _ind(ind, f"_cs = {l2s}[{self.l2_set_expr(home)}]"),
                _ind(ind, "_d = _cs.pop(line, None)"),
                _ind(ind, "if _d is not None:"),
                _ind(ind + 1, f"{c(f'l2h{home}')} += 1"),
                _ind(ind + 1, "_cs[line] = _d"),
            ]
            self._emit_hops(out, ind + 1, resp, "response_pipe",
                            self.response_bytes, "_t")
            out += [
                _ind(ind + 1, "if _t > mem_done:"),
                _ind(ind + 2, "mem_done = _t"),
                _ind(ind + 1, "continue"),
                _ind(ind, f"{c(f'l2m{home}')} += 1"),
                _ind(ind, "_fl = 1"),
                _ind(ind, f"if len(_cs) >= {l2.ways}:"),
                _ind(ind + 1, "if _cs.pop(next(iter(_cs))):"),
                _ind(ind + 2, f"{c(f'l2wb{home}')} += 1"),
                _ind(ind + 2, f"{c(f'dw{home}')} += 1"),
                _ind(ind + 2, "_fl = 2"),
                _ind(ind, "_cs[line] = False"),
            ]
        else:
            out.append(_ind(ind, f"{c(f'l2m{home}')} += 1"))
            out.append(_ind(ind, "_fl = 1"))
        out.append(_ind(ind, f"{c(f'dr{home}')} += 1"))
        self._emit_run_charge(out, ind, dram.pipe, "_t", dram.line_bytes, "_fl")
        out.append(_ind(ind, f"_t = _f + {dram.latency_cycles!r}"))
        self._emit_hops(out, ind, resp, "response_pipe", self.response_bytes, "_t")
        out.append(_ind(ind, "if _t > mem_done:"))
        out.append(_ind(ind + 1, "mem_done = _t"))

    def _emit_local_store(self, out, ind, unique):
        c = self.cell
        out.append(_ind(ind, f"{c('lh')} += 1"))
        if self.caches_local:
            self._emit_l15_store(out, ind, unique)
        l2 = self.gpm.l2
        if l2.n_sets:
            l2s = self.bind(f"_L2S{self.gid}", l2._sets)
            hit_insert = "True" if l2._track_dirty else "_d"
            miss_insert = "True" if l2._track_dirty else "False"
            out += [
                _ind(ind, f"_cs = {l2s}[{self.l2_set_expr(self.gid)}]"),
                _ind(ind, "_d = _cs.pop(line, None)"),
                _ind(ind, "if _d is not None:"),
                _ind(ind + 1, f"{c(f'l2h{self.gid}')} += 1"),
                _ind(ind + 1, f"{c(f'l2wh{self.gid}')} += 1"),
                _ind(ind + 1, f"_cs[line] = {hit_insert}"),
                _ind(ind + 1, "continue"),
                _ind(ind, f"{c(f'l2m{self.gid}')} += 1"),
                _ind(ind, f"{c(f'l2wm{self.gid}')} += 1"),
                _ind(ind, f"if len(_cs) >= {l2.ways}:"),
                _ind(ind + 1, "if _cs.pop(next(iter(_cs))):"),
                _ind(ind + 2, f"{c(f'l2wb{self.gid}')} += 1"),
                _ind(ind + 2, f"{c(f'dw{self.gid}')} += 1"),
                _ind(ind + 2, "local_fills += 1"),
                _ind(ind, f"_cs[line] = {miss_insert}"),
            ]
        else:
            out.append(_ind(ind, f"{c(f'l2m{self.gid}')} += 1"))
            out.append(_ind(ind, f"{c(f'l2wm{self.gid}')} += 1"))
        out.append(_ind(ind, f"{c(f'dr{self.gid}')} += 1"))
        out.append(_ind(ind, "local_fills += 1"))

    def _emit_remote_store(self, out, ind, home, unique):
        c = self.cell
        out.append(_ind(ind, f"{c('rh')} += 1"))
        out.append(_ind(ind, f"{c('rst')} += 1"))
        if self.has_l15:
            self._emit_l15_store(out, ind, unique)
        out.append(_ind(ind, "_t = store_time"))
        out.append(_ind(ind, f"{c(f'rgs{home}')} += 1"))
        routes = self.memsys._ring._routes
        self._emit_hops(out, ind, routes[self.gid][home], "request_pipe",
                        self.store_bytes, "_t")
        out.append(_ind(ind, f"_t = _t + {self.gpms[home].l2_hit_latency!r}"))
        l2 = self.gpms[home].l2
        dram = self.gpms[home].dram
        if l2.n_sets:
            l2s = self.bind(f"_L2S{home}", l2._sets)
            hit_insert = "True" if l2._track_dirty else "_d"
            miss_insert = "True" if l2._track_dirty else "False"
            out += [
                _ind(ind, f"_cs = {l2s}[{self.l2_set_expr(home)}]"),
                _ind(ind, "_d = _cs.pop(line, None)"),
                _ind(ind, "if _d is not None:"),
                _ind(ind + 1, f"{c(f'l2h{home}')} += 1"),
                _ind(ind + 1, f"{c(f'l2wh{home}')} += 1"),
                _ind(ind + 1, f"_cs[line] = {hit_insert}"),
                _ind(ind + 1, "continue"),
                _ind(ind, f"{c(f'l2m{home}')} += 1"),
                _ind(ind, f"{c(f'l2wm{home}')} += 1"),
                _ind(ind, "_fl = 1"),
                _ind(ind, f"if len(_cs) >= {l2.ways}:"),
                _ind(ind + 1, "if _cs.pop(next(iter(_cs))):"),
                _ind(ind + 2, f"{c(f'l2wb{home}')} += 1"),
                _ind(ind + 2, f"{c(f'dw{home}')} += 1"),
                _ind(ind + 2, "_fl = 2"),
                _ind(ind, f"_cs[line] = {miss_insert}"),
            ]
        else:
            out.append(_ind(ind, f"{c(f'l2m{home}')} += 1"))
            out.append(_ind(ind, f"{c(f'l2wm{home}')} += 1"))
            out.append(_ind(ind, "_fl = 1"))
        out.append(_ind(ind, f"{c(f'dr{home}')} += 1"))
        self._emit_run_charge(out, ind, dram.pipe, "_t", dram.line_bytes, "_fl")

    # -- walker assembly -------------------------------------------------

    def _emit_dispatch(self, out, ind, emit_local, emit_remote, unique):
        if self.n == 1:
            emit_local(out, ind, unique)
            return
        self._emit_home(out, ind)
        out.append(_ind(ind, f"if home == {self.gid}:"))
        emit_local(out, ind + 1, unique)
        others = [h for h in range(self.n) if h != self.gid]
        for i, home in enumerate(others):
            if i < len(others) - 1:
                out.append(_ind(ind, f"elif home == {home}:"))
            else:
                out.append(_ind(ind, "else:"))
            emit_remote(out, ind + 1, home, unique)

    def _emit_walk(self, out, name, unique):
        c = self.cell
        out.append(_ind(1, f"def {name}(now, reads, writes):"))
        out.append(_ind(2, "nonlocal c_l1h, c_l1m, c_l1wb, c_l1byp, c_l1wh"))
        out.append(_ind(2, "mem_done = now"))
        out.append(_ind(2, "if reads:"))
        out.append(_ind(3, f"{c('loads')} += len(reads)"))
        out.append(_ind(3, f"hit_time = now + {self.l1_hit!r}"))
        miss_ind = 3
        iterable = "misses"
        if not self.l1_n_sets or unique:
            out.append(_ind(3, "c_l1m += len(reads)"))
            iterable = "reads"
        else:
            out += [
                _ind(3, "misses = None"),
                _ind(3, "for trip in reads:"),
                _ind(4, "line = trip[0]"),
                _ind(4, "_cs = l1_sets[trip[1]]"),
                _ind(4, "_d = _cs.pop(line, None)"),
                _ind(4, "if _d is not None:"),
                _ind(5, "c_l1h += 1"),
                _ind(5, "_cs[line] = _d"),
                _ind(5, "continue"),
                _ind(4, "c_l1m += 1"),
                _ind(4, f"if len(_cs) >= {self.l1_ways}:"),
                _ind(5, "if _cs.pop(next(iter(_cs))):"),
                _ind(6, "c_l1wb += 1"),
                _ind(4, "_cs[line] = False"),
                _ind(4, "if misses is None:"),
                _ind(5, "misses = [trip]"),
                _ind(4, "else:"),
                _ind(5, "misses.append(trip)"),
                _ind(3, "if misses is None:"),
                _ind(4, "mem_done = hit_time"),
                _ind(3, "else:"),
            ]
            miss_ind = 4
        out.append(_ind(miss_ind, f"base_time = hit_time + {self.xbar_lat!r}"))
        out.append(_ind(miss_ind, f"local_time = base_time + {self.local_extra!r}"))
        out.append(_ind(miss_ind, "local_fills = 0"))
        out.append(_ind(miss_ind, f"for trip in {iterable}:"))
        body = miss_ind + 1
        out.append(_ind(body, "line = trip[0]"))
        self._emit_dispatch(out, body, self._emit_local_read,
                            self._emit_remote_read, unique)
        out.append(_ind(miss_ind, "if local_fills:"))
        own = self.own_dram
        self._emit_run_charge(out, miss_ind + 1, own.pipe, "local_time",
                              own.line_bytes, "local_fills")
        out += [
            _ind(miss_ind + 1, f"done = _f + {own.latency_cycles!r}"),
            _ind(miss_ind + 1, "if done > mem_done:"),
            _ind(miss_ind + 2, "mem_done = done"),
        ]

        out.append(_ind(2, "if writes:"))
        out.append(_ind(3, f"{c('stores')} += len(writes)"))
        out.append(_ind(3, f"store_time = now + {self.xbar_lat!r}"))
        out.append(_ind(3, f"local_write_time = store_time + {self.own_l2_hit!r}"))
        out.append(_ind(3, "local_fills = 0"))
        if not self.l1_n_sets or unique:
            out.append(_ind(3, "c_l1byp += len(writes)"))
        out.append(_ind(3, "for trip in writes:"))
        out.append(_ind(4, "line = trip[0]"))
        if self.l1_n_sets and not unique:
            l1_insert = "True" if self.l1_track else "_d"
            out += [
                _ind(4, "_cs = l1_sets[trip[1]]"),
                _ind(4, "_d = _cs.pop(line, None)"),
                _ind(4, "if _d is not None:"),
                _ind(5, "c_l1h += 1"),
                _ind(5, "c_l1wh += 1"),
                _ind(5, f"_cs[line] = {l1_insert}"),
                _ind(4, "else:"),
                _ind(5, "c_l1byp += 1"),
            ]
        self._emit_dispatch(out, 4, self._emit_local_store,
                            self._emit_remote_store, unique)
        out.append(_ind(3, "if local_fills:"))
        self._emit_run_charge(out, 4, own.pipe, "local_write_time",
                              own.line_bytes, "local_fills")
        out.append(_ind(2, "return mem_done"))

    def build(self):
        """Compile the factory; returns ``(factory, ctx_tuple, gc_list)``."""
        self.bind("_GC", self.gc)
        body: List[str] = []
        self._emit_walk(body, "walk", unique=False)
        self._emit_walk(body, "walk_u", unique=True)

        lines = [
            "def _factory(sm, ctx):",
            _ind(1, "(" + ", ".join(self.ctx_names) + ",) = ctx"),
            _ind(1, "l1_sets = sm.l1._sets"),
            _ind(1, "l1_stats = sm.l1.stats"),
            _ind(1, "c_l1h = 0"),
            _ind(1, "c_l1m = 0"),
            _ind(1, "c_l1wb = 0"),
            _ind(1, "c_l1byp = 0"),
            _ind(1, "c_l1wh = 0"),
        ]
        lines += body
        lines += [
            _ind(1, "def flush():"),
            _ind(2, "nonlocal c_l1h, c_l1m, c_l1wb, c_l1byp, c_l1wh"),
            _ind(2, "if c_l1h or c_l1m or c_l1byp:"),
            _ind(3, "st = l1_stats"),
            _ind(3, "st.hits += c_l1h"),
            _ind(3, "st.misses += c_l1m"),
            _ind(3, "st.writebacks += c_l1wb"),
            _ind(3, "st.bypasses += c_l1byp"),
            _ind(3, "st.write_hits += c_l1wh"),
            _ind(3, "c_l1h = 0"),
            _ind(3, "c_l1m = 0"),
            _ind(3, "c_l1wb = 0"),
            _ind(3, "c_l1byp = 0"),
            _ind(3, "c_l1wh = 0"),
            _ind(1, "return walk, walk_u, flush"),
        ]
        source = "\n".join(lines)
        code = _CODE_CACHE.get(source)
        if code is None:
            code = compile(source, f"<walker-gpm{self.gid}>", "exec")
            _CODE_CACHE[source] = code
        namespace: dict = {}
        exec(code, namespace)
        self.gc.extend([0] * len(self.counters))
        return namespace["_factory"], tuple(self.ctx_values), self.gc


def _make_gpm_fold(memsys, gpm_id, gc, idx, line_bytes, header_bytes):
    """Once-per-kernel fold of one GPM's shared tallies into real stats.

    Pipe byte/transfer totals are derived here: request messages are
    ``header_bytes``, responses and stores carry a line plus the header,
    and every DRAM charge is one line.
    """
    gpms = memsys._gpms
    gpm = gpms[gpm_id]
    page_table = memsys._page_table
    xbar = gpm.xbar
    l15 = gpm.l15
    routes = memsys._ring._routes
    response_bytes = line_bytes + header_bytes

    # Resolve every counter index once; cells a GPM's walkers never emit
    # (e.g. remote tallies on a single-partition system) read a shared
    # always-zero slot so the fold body stays branch-free.
    zero = len(gc)  # one extra slot appended below, never incremented
    gc.append(0)

    def at(name):
        return idx.get(name, zero)

    i_loads, i_stores = idx["loads"], idx["stores"]
    i_rld, i_rst = at("rld"), at("rst")
    i_lh, i_rh = at("lh"), at("rh")
    i_15 = (at("15h"), at("15m"), at("15wb"), at("15wh"), at("15byp"))
    per_home = []
    for home in range(len(gpms)):
        target = gpms[home]
        links = None
        if home != gpm_id:
            links = (tuple(routes[gpm_id][home]), tuple(routes[home][gpm_id]))
        per_home.append(
            (
                target.l2.stats,
                (at(f"l2h{home}"), at(f"l2m{home}"), at(f"l2wb{home}"),
                 at(f"l2wh{home}"), at(f"l2wm{home}")),
                target.dram,
                at(f"dr{home}"),
                at(f"dw{home}"),
                at(f"rgr{home}"),
                at(f"rgs{home}"),
                links,
            )
        )

    def fold():
        if not (gc[i_loads] or gc[i_stores]):
            return
        memsys.loads += gc[i_loads]
        memsys.stores += gc[i_stores]
        memsys.remote_loads += gc[i_rld]
        memsys.remote_stores += gc[i_rst]
        local_homes = gc[i_lh]
        remote_homes = gc[i_rh]
        page_table.local_resolutions += local_homes
        page_table.remote_resolutions += remote_homes
        xbar.local_requests += local_homes
        xbar.remote_requests += remote_homes
        if l15 is not None:
            stats = l15.stats
            stats.hits += gc[i_15[0]]
            stats.misses += gc[i_15[1]]
            stats.writebacks += gc[i_15[2]]
            stats.write_hits += gc[i_15[3]]
            stats.bypasses += gc[i_15[4]]
        for l2_stats, l2i, dram, i_dr, i_dw, i_rgr, i_rgs, links in per_home:
            l2_stats.hits += gc[l2i[0]]
            l2_stats.misses += gc[l2i[1]]
            l2_stats.writebacks += gc[l2i[2]]
            l2_stats.write_hits += gc[l2i[3]]
            l2_stats.write_misses += gc[l2i[4]]
            reads = gc[i_dr]
            writes = gc[i_dw]
            dram.reads += reads
            dram.writes += writes
            pipe = dram.pipe
            charges = reads + writes
            pipe.transfers += charges
            pipe.bytes_transferred += dram.line_bytes * charges
            if links is not None:
                ring_reads = gc[i_rgr]
                ring_stores = gc[i_rgs]
                if ring_reads or ring_stores:
                    for link in links[0]:
                        pipe = link.request_pipe
                        pipe.transfers += ring_reads + ring_stores
                        pipe.bytes_transferred += (
                            header_bytes * ring_reads + response_bytes * ring_stores
                        )
                    for link in links[1]:
                        pipe = link.response_pipe
                        pipe.transfers += ring_reads
                        pipe.bytes_transferred += response_bytes * ring_reads
        for i in range(len(gc)):
            gc[i] = 0

    return fold


def _make_pipe_fold(pipe_cells):
    """Once-per-kernel fold of the shared ``busy_until`` max-cells."""
    cells = tuple(pipe_cells.values())

    def fold():
        for pipe, cell in cells:
            latest = cell[0]
            if latest:
                if latest > pipe.busy_until:
                    pipe.busy_until = latest
                cell[0] = 0.0

    return fold


def build_walkers(memsys):
    """Generate ``(walk, walk_u)`` pairs for every SM of ``memsys``.

    Registers the deferred-counter folds on ``memsys._walker_flushes`` (the
    engine runs them at the end of every kernel drain).  Raises
    :class:`UnsupportedWalk` for system shapes the generator cannot
    specialize; the caller falls back to the generic fused walker.
    """
    from .memsys import LINE_BYTES, REQUEST_HEADER_BYTES

    gpms = memsys._gpms
    n = len(gpms)
    # Only ring interconnects precompute per-(src, dst) link routes; other
    # topologies (e.g. all-to-all) take the generic fused walker.
    routes = getattr(memsys._ring, "_routes", None)
    if routes is None or (n > 1 and not routes):
        raise UnsupportedWalk("interconnect without precomputed ring routes")

    l2_counts = {gpm.l2.n_sets for gpm in gpms}
    uniform_l2 = l2_counts.pop() if len(l2_counts) == 1 else 0
    l15_counts = {gpm.l15.n_sets if gpm.has_l15 else 0 for gpm in gpms}
    uniform_l15 = l15_counts.pop() if len(l15_counts) == 1 else 0

    pipe_cells: dict = {}
    walkers = []
    flushes = memsys._walker_flushes
    for gpm in gpms:
        generator = _GpmCodegen(
            memsys, gpm.gpm_id, pipe_cells, uniform_l2, uniform_l15,
            LINE_BYTES, REQUEST_HEADER_BYTES,
        )
        factory, ctx, gc = generator.build()
        for sm in gpm.sms:
            walk, walk_u, l1_flush = factory(sm, ctx)
            walkers.append((walk, walk_u))
            flushes.append(l1_flush)
        flushes.append(
            _make_gpm_fold(memsys, gpm.gpm_id, gc, generator.counters,
                           LINE_BYTES, REQUEST_HEADER_BYTES)
        )
    flushes.append(_make_pipe_fold(pipe_cells))
    return walkers
