"""Package-level area/power budget model (lumos-style cost accounting).

Turns any :class:`~repro.core.config.SystemConfig` into a silicon cost —
area in mm² and peak power in watts, broken down by component — so the
explore layer can answer "best achievable performance under a fixed
package budget" instead of just "fastest configuration".  The structure
follows the lumos ``mpsoc.py`` exemplar: per-unit area/power constants
for logic and SRAM, PHY cost proportional to installed bandwidth, and a
budget object that renders a feasibility verdict.

Constants are calibrated so the paper's 4-GPM baseline lands near a
plausible big-GPU package (~600 mm² of silicon, ~340 W peak): 1.6 mm²
and 0.9 W per SM reflect a P100-class die (56 SMs + uncore in 610 mm²
at 300 W), SRAM at 1.5 mm²/MB, and PHY area proportional to installed
bandwidth.  Energy-proportional link and DRAM power reuse the Table 2
per-bit figures from :mod:`repro.core.energy` — including the
previously-unreferenced :data:`~repro.core.energy.TIER_BANDWIDTH_GBPS`
practical bandwidth ceilings, which back the per-tier bandwidth
feasibility check.  SRAM capacities are divided by
:data:`~repro.core.config.MEMORY_SCALE` to recover full-scale silicon
from the simulator's scaled-capacity configs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from ..interconnect.topology import total_fabric_bandwidth
from .config import MEMORY_SCALE
from .energy import (
    DRAM_PJ_PER_BIT,
    ENERGY_PJ_PER_BIT,
    TIER_BANDWIDTH_GBPS,
    IntegrationTier,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .config import SystemConfig

#: Area of one SM including its share of uncore logic, mm².
AREA_PER_SM_MM2 = 1.6
#: Area of one MB of on-die SRAM (cache arrays + tags + control), mm².
SRAM_MM2_PER_MB = 1.5
#: DRAM interface PHY area per GB/s of interface bandwidth, mm².
DRAM_PHY_MM2_PER_GBPS = 0.02
#: Inter-module link PHY area per GB/s, per endpoint, mm² (GRS-class).
LINK_PHY_MM2_PER_GBPS = 0.01
#: Peak power of one busy SM, watts.
WATTS_PER_SM = 0.9
#: Leakage + refresh power per MB of SRAM, watts.
SRAM_WATTS_PER_MB = 0.05

MB = float(1 << 20)


@dataclass(frozen=True)
class PackageCost:
    """Area/power breakdown of one configuration's package."""

    #: Configuration name the cost was computed for.
    system: str
    sm_area_mm2: float
    sram_area_mm2: float
    dram_phy_area_mm2: float
    link_phy_area_mm2: float
    sm_watts: float
    sram_watts: float
    dram_watts: float
    link_watts: float

    @property
    def area_mm2(self) -> float:
        """Total silicon area of the package."""
        return (
            self.sm_area_mm2
            + self.sram_area_mm2
            + self.dram_phy_area_mm2
            + self.link_phy_area_mm2
        )

    @property
    def power_w(self) -> float:
        """Peak package power."""
        return self.sm_watts + self.sram_watts + self.dram_watts + self.link_watts

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary for reports and artifacts."""
        return {
            "system": self.system,
            "sm_area_mm2": self.sm_area_mm2,
            "sram_area_mm2": self.sram_area_mm2,
            "dram_phy_area_mm2": self.dram_phy_area_mm2,
            "link_phy_area_mm2": self.link_phy_area_mm2,
            "area_mm2": self.area_mm2,
            "sm_watts": self.sm_watts,
            "sram_watts": self.sram_watts,
            "dram_watts": self.dram_watts,
            "link_watts": self.link_watts,
            "power_w": self.power_w,
        }


def full_scale_sram_mb(config: "SystemConfig") -> float:
    """Total cache SRAM at full scale (undoes ``MEMORY_SCALE``), MB."""
    scaled_bytes = (
        config.total_sms * config.gpm.sm.l1.size_bytes
        + config.total_l15_bytes
        + config.total_l2_bytes
    )
    return scaled_bytes / MEMORY_SCALE / MB


def package_cost(config: "SystemConfig") -> PackageCost:
    """Cost out one configuration's package.

    Link PHY area charges every undirected fabric edge at both endpoints
    (via the topology registry's installed-bandwidth total, so the
    hierarchical fabric's fixed-rate board links are priced at their
    actual bandwidth, not the package-link setting).  Link and DRAM
    power are energy-proportional at peak: Table 2 pJ/bit times
    installed bandwidth.
    """
    sram_mb = full_scale_sram_mb(config)
    fabric_gbps = (
        total_fabric_bandwidth(config.topology, config.n_gpms, config.link_bandwidth)
        if config.n_gpms > 1
        else 0.0
    )
    dram_gbps = config.total_dram_bandwidth
    tier = IntegrationTier(config.link_tier)
    # W per GB/s at p pJ/bit: 8 bits/byte * p pJ/bit * 1e9 B/s * 1e-12 J/pJ.
    link_w_per_gbps = 8.0 * ENERGY_PJ_PER_BIT[tier] * 1e-3
    dram_w_per_gbps = 8.0 * DRAM_PJ_PER_BIT * 1e-3
    return PackageCost(
        system=config.name,
        sm_area_mm2=config.total_sms * AREA_PER_SM_MM2,
        sram_area_mm2=sram_mb * SRAM_MM2_PER_MB,
        dram_phy_area_mm2=dram_gbps * DRAM_PHY_MM2_PER_GBPS,
        link_phy_area_mm2=2.0 * fabric_gbps * LINK_PHY_MM2_PER_GBPS,
        sm_watts=config.total_sms * WATTS_PER_SM,
        sram_watts=sram_mb * SRAM_WATTS_PER_MB,
        dram_watts=dram_gbps * dram_w_per_gbps,
        link_watts=fabric_gbps * link_w_per_gbps,
    )


def bandwidth_feasible(config: "SystemConfig") -> bool:
    """Whether the per-link setting fits its tier's practical ceiling.

    Checks ``config.link_bandwidth`` against Table 2's
    :data:`~repro.core.energy.TIER_BANDWIDTH_GBPS` for the config's link
    tier (1.5 TB/s package, 256 GB/s board, ...).  Single-module systems
    are trivially feasible.  The monolithic presets' idealized 32 TB/s
    on-die fabric intentionally exceeds the chip-tier figure — they model
    the paper's *unbuildable* reference and report as infeasible here.
    """
    if config.n_gpms <= 1:
        return True
    ceiling = TIER_BANDWIDTH_GBPS[IntegrationTier(config.link_tier)]
    return config.link_bandwidth <= ceiling


@dataclass(frozen=True)
class BudgetSpec:
    """A fixed package budget: maximum area and peak power."""

    area_mm2: float
    power_w: float
    name: str = "budget"


#: Default study budget: a generous-but-finite future package (reticle-
#: stitched interposer, ~2.5x today's biggest die, 1.5 kW liquid-cooled).
#: Sized so 8 GPMs fit every topology, 16 GPMs fit only port-frugal
#: fabrics (fully-connected link PHY blows the area), and 64 GPMs fit
#: nothing — the budget cliff the scale-out study is built around.
DEFAULT_BUDGET = BudgetSpec(area_mm2=2500.0, power_w=1500.0, name="default-package")


@dataclass(frozen=True)
class BudgetVerdict:
    """Feasibility of one configuration under one budget."""

    cost: PackageCost
    budget: BudgetSpec
    area_ok: bool
    power_ok: bool
    bandwidth_ok: bool

    @property
    def feasible(self) -> bool:
        """True when every budget dimension is satisfied."""
        return self.area_ok and self.power_ok and self.bandwidth_ok

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary for reports and artifacts."""
        return {
            "system": self.cost.system,
            "budget": self.budget.name,
            "area_mm2": self.cost.area_mm2,
            "power_w": self.cost.power_w,
            "area_ok": self.area_ok,
            "power_ok": self.power_ok,
            "bandwidth_ok": self.bandwidth_ok,
            "feasible": self.feasible,
        }


def evaluate_budget(
    config: "SystemConfig", budget: BudgetSpec = DEFAULT_BUDGET
) -> BudgetVerdict:
    """Cost out a configuration and check it against a budget."""
    cost = package_cost(config)
    return BudgetVerdict(
        cost=cost,
        budget=budget,
        area_ok=cost.area_mm2 <= budget.area_mm2,
        power_ok=cost.power_w <= budget.power_w,
        bandwidth_ok=bandwidth_feasible(config),
    )
