"""Factory functions for every machine configuration the paper evaluates.

Full-scale capacities are quoted from the paper and scaled through
:data:`~repro.core.config.MEMORY_SCALE`; bandwidths and latencies are used
at face value (bytes/cycle == GB/s at the 1 GHz clock).

The configurations:

* :func:`baseline_mcm_gpu` — Table 3: 4 GPMs x 64 SMs, 16 MB memory-side L2,
  3 TB/s DRAM, 768 GB/s ring links, centralized scheduler, fine-grain
  address interleave.
* :func:`mcm_gpu_with_l15` — Section 5.1 design-space points (8/16/32 MB
  L1.5, all vs remote-only allocation, iso-transistor L2 rebalance).
* :func:`optimized_mcm_gpu` — Section 5.4: remote-only L1.5 + distributed
  CTA scheduling + first-touch placement (8 MB L1.5 + 8 MB L2 is the best
  configuration once first-touch is on, Figure 13).
* :func:`monolithic_gpu` — single-die GPU of any SM count with L2 and DRAM
  bandwidth scaled proportionally (used for Figure 2 and the
  buildable/unbuildable comparison points).
* :func:`multi_gpu` — Section 6: two maximally-sized 128-SM GPUs on a board
  link, baseline and optimized (GPU-side remote cache) flavors.
"""

from __future__ import annotations

from typing import Optional

from ..memory.cache import AllocationPolicy, WritePolicy
from .config import MEMORY_SCALE, CacheConfig, GPMConfig, SMConfig, SystemConfig

MB = 1 << 20
KB = 1 << 10

#: Full-scale per-SM L1 capacity (Table 3).
L1_BYTES_FULL = 128 * KB
#: Full-scale total memory-side L2 of the 256-SM machines (Table 3).
L2_TOTAL_BYTES_FULL = 16 * MB
#: Residual L2 kept when the entire L2 is rebalanced into L1.5 caches
#: (footnote 3: "a small cache capacity of 32KB is maintained ... to
#: accelerate atomic operations") — per GPM.
L2_RESIDUAL_BYTES_FULL = 32 * KB

#: DRAM bandwidth per 32 SMs (GB/s) used by the Figure 2 scaling rule
#: ("384 GB/s for a 32-SM GPU and 3 TB/s for a 256-SM GPU").
DRAM_GBPS_PER_32_SMS = 384.0
#: Memory-side L2 per 32 SMs, full scale (16 MB / 256 SMs).
L2_BYTES_PER_32_SMS_FULL = 2 * MB

#: Latencies (cycles) for each hierarchy level.
L1_HIT_LATENCY = 4.0
L15_HIT_LATENCY = 25.0
L2_HIT_LATENCY = 30.0

#: Scaled page size; stands for a 64 KB GPU page at full scale.
PAGE_BYTES = 2 * KB


def _l1_config(scale: float) -> CacheConfig:
    return CacheConfig(
        size_bytes=max(512, int(L1_BYTES_FULL * scale)),
        ways=4,
        hit_latency=L1_HIT_LATENCY,
        write_policy=WritePolicy.WRITE_THROUGH,
    )


def _l2_config(total_bytes_full: int, n_gpms: int, scale: float) -> CacheConfig:
    per_gpm = total_bytes_full // n_gpms
    return CacheConfig(
        size_bytes=max(512, int(per_gpm * scale)),
        ways=16,
        hit_latency=L2_HIT_LATENCY,
        write_policy=WritePolicy.WRITE_BACK,
    )


def _l15_config(
    total_bytes_full: int,
    n_gpms: int,
    scale: float,
    remote_only: bool,
) -> CacheConfig:
    per_gpm = total_bytes_full // n_gpms
    return CacheConfig(
        size_bytes=max(512, int(per_gpm * scale)),
        ways=16,
        hit_latency=L15_HIT_LATENCY,
        write_policy=WritePolicy.WRITE_THROUGH,
        allocation=AllocationPolicy.REMOTE_ONLY if remote_only else AllocationPolicy.ALL,
    )


def _sm_config(scale: float) -> SMConfig:
    return SMConfig(l1=_l1_config(scale))


def baseline_mcm_gpu(
    n_gpms: int = 4,
    sms_per_gpm: int = 64,
    link_bandwidth: float = 768.0,
    scale: float = MEMORY_SCALE,
    name: Optional[str] = None,
) -> SystemConfig:
    """Table 3 baseline: no L1.5, centralized scheduling, interleave."""
    gpm = GPMConfig(
        n_sms=sms_per_gpm,
        sm=_sm_config(scale),
        l2=_l2_config(L2_TOTAL_BYTES_FULL, n_gpms, scale),
        l15=None,
        dram_bandwidth=768.0,
        dram_latency=100.0,
    )
    return SystemConfig(
        name=name or f"mcm-baseline-{int(link_bandwidth)}",
        n_gpms=n_gpms,
        gpm=gpm,
        link_bandwidth=link_bandwidth,
        scheduler="centralized",
        placement="interleave",
        page_bytes=PAGE_BYTES,
    )


def mcm_gpu_with_l15(
    l15_total_mb: int = 16,
    remote_only: bool = True,
    scheduler: str = "centralized",
    placement: str = "interleave",
    link_bandwidth: float = 768.0,
    scale: float = MEMORY_SCALE,
    n_gpms: int = 4,
    sms_per_gpm: int = 64,
    name: Optional[str] = None,
) -> SystemConfig:
    """Section 5.1 design points: L1.5 capacity rebalanced from the L2.

    The iso-transistor rule (Section 5.1.2): an 8 MB L1.5 leaves 8 MB of
    L2; a 16 MB L1.5 leaves only the 32 KB-per-GPM residual; a 32 MB L1.5
    doubles the transistor budget and also leaves the residual L2.
    """
    if l15_total_mb not in (8, 16, 32):
        raise ValueError(f"the paper evaluates 8/16/32 MB L1.5, got {l15_total_mb}")
    if l15_total_mb == 8:
        l2_total_full = L2_TOTAL_BYTES_FULL // 2
    else:
        l2_total_full = L2_RESIDUAL_BYTES_FULL * n_gpms
    gpm = GPMConfig(
        n_sms=sms_per_gpm,
        sm=_sm_config(scale),
        l2=_l2_config(l2_total_full, n_gpms, scale),
        l15=_l15_config(l15_total_mb * MB, n_gpms, scale, remote_only),
        dram_bandwidth=768.0,
        dram_latency=100.0,
    )
    alloc = "remote" if remote_only else "all"
    return SystemConfig(
        name=name or f"mcm-l15-{l15_total_mb}mb-{alloc}-{scheduler}-{placement}",
        n_gpms=n_gpms,
        gpm=gpm,
        link_bandwidth=link_bandwidth,
        scheduler=scheduler,
        placement=placement,
        page_bytes=PAGE_BYTES,
    )


def optimized_mcm_gpu(
    l15_total_mb: int = 8,
    link_bandwidth: float = 768.0,
    scale: float = MEMORY_SCALE,
    name: Optional[str] = None,
) -> SystemConfig:
    """Section 5.4: remote-only L1.5 + distributed scheduling + first touch.

    With first-touch placement most traffic is local, so the 8 MB L1.5 +
    8 MB L2 split beats the 16 MB L1.5 + residual L2 split (Figure 13);
    8 MB is therefore the default.
    """
    return mcm_gpu_with_l15(
        l15_total_mb=l15_total_mb,
        remote_only=True,
        scheduler="distributed",
        placement="first_touch",
        link_bandwidth=link_bandwidth,
        scale=scale,
        name=name or f"mcm-optimized-{l15_total_mb}mb",
    )


#: On-die fabric parameters for monolithic GPUs: effectively unlimited
#: bandwidth ("10s of TB/s" on chip, Table 2) at crossbar-scale latency.
ON_DIE_FABRIC_BANDWIDTH = 32768.0
ON_DIE_FABRIC_LATENCY = 6.0
#: Number of memory-partition slices a big GPU die is organized into.
#: Keeping the slice structure identical to the MCM-GPU makes the
#: monolithic reference structurally fair — the only differences are the
#: fabric's bandwidth/latency and the absence of NUMA optimizations.
MONOLITHIC_SLICES = 4


def monolithic_gpu(
    n_sms: int = 128,
    scale: float = MEMORY_SCALE,
    name: Optional[str] = None,
) -> SystemConfig:
    """A single-die GPU with L2 and DRAM bandwidth scaled to its SM count.

    Follows Figure 2's proportional-scaling rule.  ``n_sms=128`` is the
    "largest implementable" GPU; ``n_sms=256`` is the unbuildable
    reference.  Structurally the die is four SM/L2/DRAM slices — like the
    MCM-GPU's GPMs — joined by an on-die fabric with near-unlimited
    bandwidth and crossbar latency; cross-slice traffic costs chip-tier
    energy (80 fJ/bit) instead of package-tier.
    """
    if n_sms <= 0 or n_sms % 32:
        raise ValueError(f"n_sms must be a positive multiple of 32, got {n_sms}")
    units = n_sms // 32
    gpm = GPMConfig(
        n_sms=n_sms // MONOLITHIC_SLICES,
        sm=_sm_config(scale),
        l2=_l2_config(units * L2_BYTES_PER_32_SMS_FULL, MONOLITHIC_SLICES, scale),
        l15=None,
        dram_bandwidth=units * DRAM_GBPS_PER_32_SMS / MONOLITHIC_SLICES,
        dram_latency=100.0,
    )
    return SystemConfig(
        name=name or f"monolithic-{n_sms}",
        n_gpms=MONOLITHIC_SLICES,
        gpm=gpm,
        link_bandwidth=ON_DIE_FABRIC_BANDWIDTH,
        hop_latency=ON_DIE_FABRIC_LATENCY,
        scheduler="centralized",
        placement="interleave",
        page_bytes=PAGE_BYTES,
        link_tier="chip",
    )


def multi_gpu(
    optimized: bool = False,
    n_gpus: int = 2,
    sms_per_gpu: int = 128,
    board_bandwidth_aggregate: float = 256.0,
    board_hop_latency: float = 320.0,
    scale: float = MEMORY_SCALE,
    name: Optional[str] = None,
) -> SystemConfig:
    """Section 6: discrete GPUs joined by a board link, exposed as one GPU.

    The baseline already applies distributed scheduling and first-touch
    placement (Section 6.1 — finer-grain options performed "very poorly").
    The optimized flavor additionally moves half of each GPU's memory-side
    cache into a GPU-side remote-only cache, mirroring the L1.5 idea.
    """
    per_gpu_l2_full = 8 * MB
    if optimized:
        l2 = _l2_config(per_gpu_l2_full // 2 * n_gpus, n_gpus, scale)
        l15: Optional[CacheConfig] = _l15_config(
            per_gpu_l2_full // 2 * n_gpus, n_gpus, scale, remote_only=True
        )
    else:
        l2 = _l2_config(per_gpu_l2_full * n_gpus, n_gpus, scale)
        l15 = None
    gpm = GPMConfig(
        n_sms=sms_per_gpu,
        sm=_sm_config(scale),
        l2=l2,
        l15=l15,
        dram_bandwidth=1536.0,
        dram_latency=100.0,
    )
    flavor = "optimized" if optimized else "baseline"
    return SystemConfig(
        name=name or f"multi-gpu-{flavor}",
        n_gpms=n_gpus,
        gpm=gpm,
        # link_bandwidth is the per-link *total* (both directions); the
        # board's aggregate 256 GB/s is one link between the two GPUs.
        link_bandwidth=board_bandwidth_aggregate,
        hop_latency=board_hop_latency,
        scheduler="distributed",
        placement="first_touch",
        page_bytes=PAGE_BYTES,
        link_tier="board",
    )
