"""GPU module (GPM): a cluster of SMs with its memory-system slice.

Mirrors Figure 3/5 of the paper: each GPM holds SMs with private L1s, an
optional GPM-side L1.5 cache (the Section 5.1 addition), a memory-side L2
slice that caches only the local DRAM partition, the partition itself, and
a crossbar that fronts the ring.
"""

from __future__ import annotations

from typing import List, Optional

from ..interconnect.crossbar import GPMCrossbar
from ..memory.cache import AllocationPolicy, CacheStats, SetAssocCache
from ..memory.dram import DRAMPartition
from .config import GPMConfig
from .sm import SM


class GPM:
    """One GPU module and its local memory system slice."""

    def __init__(self, gpm_id: int, config: GPMConfig, first_sm_id: int) -> None:
        self.gpm_id = gpm_id
        self.config = config
        self.sms: List[SM] = [
            SM(first_sm_id + index, gpm_id, config.sm) for index in range(config.n_sms)
        ]
        self.l2 = SetAssocCache(
            size_bytes=config.l2.size_bytes,
            line_bytes=config.l2.line_bytes,
            ways=config.l2.ways,
            write_policy=config.l2.write_policy,
            name=f"gpm{gpm_id}.l2",
        )
        self.l15: Optional[SetAssocCache] = None
        self.l15_allocation = AllocationPolicy.REMOTE_ONLY
        self.l15_hit_latency = 0.0
        if config.l15 is not None and config.l15.size_bytes > 0:
            self.l15 = SetAssocCache(
                size_bytes=config.l15.size_bytes,
                line_bytes=config.l15.line_bytes,
                ways=config.l15.ways,
                write_policy=config.l15.write_policy,
                name=f"gpm{gpm_id}.l15",
            )
            self.l15_allocation = config.l15.allocation
            self.l15_hit_latency = config.l15.hit_latency
        self.dram = DRAMPartition(
            bandwidth_bytes_per_cycle=config.dram_bandwidth,
            latency_cycles=config.dram_latency,
            line_bytes=config.l2.line_bytes,
            name=f"gpm{gpm_id}.dram",
        )
        self.xbar = GPMCrossbar(gpm_id, latency_cycles=config.xbar_latency)
        # Flat hot-path attributes (avoid nested config lookups per access).
        self.xbar_latency = config.xbar_latency
        self.l2_hit_latency = config.l2.hit_latency
        self.l15_miss_penalty = config.l15_miss_penalty
        self.has_l15 = self.l15 is not None and self.l15.enabled
        #: True when the L1.5 uses the ALL allocation policy and therefore
        #: sits on the *local* request path as well (Section 5.1.2).
        self.l15_caches_local = (
            self.has_l15 and self.l15_allocation is AllocationPolicy.ALL
        )

    def kernel_boundary_flush(self) -> None:
        """Invalidate L1s and the L1.5 at a kernel boundary.

        Models the software-coherence flush of Section 5.1.1.  Both levels
        are write-through, so the flush produces no write-back traffic; the
        memory-side L2 is *not* flushed (it is coherent by construction —
        one home location per line).
        """
        for sm in self.sms:
            sm.l1.flush()
        if self.l15 is not None:
            self.l15.flush()

    def aggregate_l1_stats(self) -> CacheStats:
        """Sum of all per-SM L1 counters."""
        total = CacheStats()
        for sm in self.sms:
            total = total.merge(sm.l1.stats)
        return total

    def reset(self) -> None:
        """Reset all SM, cache, crossbar and DRAM state between runs."""
        for sm in self.sms:
            sm.reset()
        self.l2.flush()
        self.l2.reset_stats()
        if self.l15 is not None:
            self.l15.flush()
            self.l15.reset_stats()
        self.dram.reset()
        self.xbar.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GPM(id={self.gpm_id}, sms={len(self.sms)}, l15={self.has_l15})"
