"""Top-level GPU system: GPMs, ring network, page table.

One :class:`GPUSystem` instance describes any of the paper's machines —
an MCM-GPU, a monolithic GPU (one module, unused ring), or a multi-GPU
board (two big modules behind a slow ring) — entirely driven by its
:class:`~repro.core.config.SystemConfig`.
"""

from __future__ import annotations

from typing import List

from ..interconnect.topology import build_network
from ..memory.address import AddressMap
from ..memory.page_table import PageTable
from ..memory.placement import make_placement
from .config import SystemConfig
from .gpm import GPM
from .memsys import MemorySystem
from .sm import SM


class GPUSystem:
    """A fully instantiated simulated GPU."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.address_map = AddressMap(
            line_bytes=config.line_bytes, page_bytes=config.page_bytes
        )
        self.page_table = PageTable(
            self.address_map,
            make_placement(config.placement, config.n_gpms),
        )
        #: The inter-GPM fabric.  Named ``ring`` for historical reasons;
        #: the topology registry can hand back any registered network
        #: (ring, fully connected, mesh, torus, hierarchical).
        self.ring = build_network(
            config.topology,
            config.n_gpms,
            config.link_bandwidth,
            config.hop_latency,
        )
        self.gpms: List[GPM] = []
        next_sm_id = 0
        for gpm_id in range(config.n_gpms):
            self.gpms.append(GPM(gpm_id, config.gpm, next_sm_id))
            next_sm_id += config.gpm.n_sms
        self.memsys = MemorySystem(self)
        #: Optional :class:`~repro.telemetry.probe.Telemetry` probe.  None
        #: (the default) means no recording and no hot-path work; the
        #: engine reads this once per run.
        self.telemetry = None
        #: Optional :class:`~repro.validate.invariants.LiveValidator`.  None
        #: (the default) disables live invariant checking; the engine reads
        #: this once per run and calls it at kernel boundaries only.
        self.validator = None

    @property
    def n_gpms(self) -> int:
        """Number of GPU modules."""
        return len(self.gpms)

    @property
    def total_sms(self) -> int:
        """SM count across all modules."""
        return sum(len(gpm.sms) for gpm in self.gpms)

    def all_sms(self) -> List[SM]:
        """SMs in GPM-major order (gpm0.sm0, gpm0.sm1, ...)."""
        return [sm for gpm in self.gpms for sm in gpm.sms]

    def sms_interleaved(self) -> List[SM]:
        """SMs interleaved across GPMs (gpm0.sm0, gpm1.sm0, ...).

        This is the order a centralized global scheduler hands out CTAs in:
        consecutive CTAs land on different GPMs, the behavior Figure 8(a)
        illustrates.
        """
        per_gpm = [gpm.sms for gpm in self.gpms]
        longest = max(len(sms) for sms in per_gpm)
        ordered: List[SM] = []
        for slot in range(longest):
            for sms in per_gpm:
                if slot < len(sms):
                    ordered.append(sms[slot])
        return ordered

    def attach_telemetry(self, telemetry) -> None:
        """Attach a telemetry probe to subsequent runs (None detaches).

        The probe only reads simulator state, so attaching one never
        changes simulation results.
        """
        self.telemetry = telemetry

    def attach_validator(self, validator) -> None:
        """Attach a live invariant validator to subsequent runs (None detaches).

        The validator only reads structural state (cache occupancy, pipe
        bucket maps, slot counters) at kernel boundaries, so attaching one
        never changes simulation results.
        """
        self.validator = validator

    def kernel_boundary_flush(self) -> None:
        """Flush the software-coherent levels (L1, L1.5) on all modules."""
        for gpm in self.gpms:
            gpm.kernel_boundary_flush()

    def quiesce_time(self) -> float:
        """Cycle at which all in-flight memory traffic has drained.

        Buffered stores charge DRAM and ring bandwidth at their natural
        times without blocking the issuing warp, so the memory system can
        still be busy after the last warp retires.  A kernel is complete
        only once this backlog drains (the implicit memory fence at kernel
        boundaries); the engine takes ``max(last retire, quiesce_time)``.
        """
        latest = 0.0
        for gpm in self.gpms:
            if gpm.dram.pipe.busy_until > latest:
                latest = gpm.dram.pipe.busy_until
        for link in self.ring.links:
            for pipe in (link.request_pipe, link.response_pipe):
                if pipe.busy_until > latest:
                    latest = pipe.busy_until
        return latest

    def reset(self) -> None:
        """Return the system to a pristine state for a fresh simulation."""
        for gpm in self.gpms:
            gpm.reset()
        self.ring.reset()
        self.page_table.reset()
        self.memsys.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GPUSystem(name={self.config.name!r}, gpms={self.n_gpms}, sms={self.total_sms})"


def build_system(config: SystemConfig) -> GPUSystem:
    """Construct a :class:`GPUSystem` from a configuration."""
    return GPUSystem(config)
