"""Configuration dataclasses for every simulated system.

All bandwidths are expressed in **bytes per cycle**.  The simulator runs at
the paper's 1 GHz GPU clock (Table 3), so a figure quoted in GB/s converts
numerically 1:1 (768 GB/s == 768 bytes/cycle), which keeps configurations
directly comparable against the paper's text.

Capacities honor a global :data:`MEMORY_SCALE` so the pure-Python simulator
can run workloads whose *footprint-to-capacity ratios* match the paper
without simulating multi-gigabyte traces; see DESIGN.md ("Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Optional

from ..memory.cache import AllocationPolicy, WritePolicy
from ..memory.placement import PLACEMENT_POLICIES
from .energy import IntegrationTier

#: Scale factor applied to cache capacities and workload footprints.  The
#: ratio between them — what drives hit rates — is preserved exactly.
MEMORY_SCALE = 1.0 / 32.0

#: Simulation clock in Hz; used only for unit conversions in reports.
CLOCK_HZ = 1.0e9

#: Bumped whenever a timing-model constant changes (packet overheads,
#: channel structure, ...) or engine scheduling order changes (rev 6:
#: ``_launch`` refills an empty CTA's slot greedily on the same SM, which
#: moves CTA placement for kernels whose initial wave has empty traces;
#: rev 7: antipodal ring routes tie-break by source parity instead of
#: always clockwise, which moves half the opposite-corner traffic onto the
#: previously idle direction on even-sized rings; rev 8: the degenerate
#: two-node ring collapses to a single physical link pair — the general
#: construction built two parallel pairs of which routing could only ever
#: use one, stranding half the modeled link bandwidth).  Included in
#: configuration digests so the disk result cache never serves results
#: from an older model.
MODEL_REV = 8


def scaled_bytes(full_size_bytes: int, scale: float = MEMORY_SCALE) -> int:
    """Apply the memory scale to a capacity, keeping at least one line."""
    return max(128, int(full_size_bytes * scale))


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policies of one cache level.

    ``size_bytes`` of zero disables the level (it misses on every access),
    which lets experiment code sweep a level out without restructuring the
    hierarchy.
    """

    size_bytes: int
    ways: int = 16
    line_bytes: int = 128
    hit_latency: float = 30.0
    write_policy: WritePolicy = WritePolicy.WRITE_BACK
    allocation: AllocationPolicy = AllocationPolicy.ALL

    def scaled(self, scale: float = MEMORY_SCALE) -> "CacheConfig":
        """Return a copy with capacity scaled by ``scale`` (zero stays zero)."""
        if self.size_bytes == 0:
            return self
        return replace(self, size_bytes=scaled_bytes(self.size_bytes, scale))

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (enums as their values) for JSON serialization."""
        return {
            "size_bytes": self.size_bytes,
            "ways": self.ways,
            "line_bytes": self.line_bytes,
            "hit_latency": self.hit_latency,
            "write_policy": self.write_policy.value,
            "allocation": self.allocation.value,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CacheConfig":
        """Inverse of :meth:`to_dict`."""
        payload = dict(data)
        payload["write_policy"] = WritePolicy(payload["write_policy"])
        payload["allocation"] = AllocationPolicy(payload["allocation"])
        return cls(**payload)


@dataclass(frozen=True)
class SMConfig:
    """Streaming-multiprocessor parameters.

    The simulator executes *warp groups* rather than individual warps: one
    group stands for ``warps_per_group`` paper warps advancing together.
    Table 3's 64 warps/SM becomes 8 groups of 8.
    """

    l1: CacheConfig
    warp_groups: int = 8
    warps_per_group: int = 8
    issue_throughput: float = 4.0
    max_resident_ctas: int = 4

    @property
    def max_warps(self) -> int:
        """Paper-equivalent warp capacity of the SM."""
        return self.warp_groups * self.warps_per_group

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON serialization."""
        return {
            "l1": self.l1.to_dict(),
            "warp_groups": self.warp_groups,
            "warps_per_group": self.warps_per_group,
            "issue_throughput": self.issue_throughput,
            "max_resident_ctas": self.max_resident_ctas,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SMConfig":
        """Inverse of :meth:`to_dict`."""
        payload = dict(data)
        payload["l1"] = CacheConfig.from_dict(payload["l1"])
        return cls(**payload)


@dataclass(frozen=True)
class GPMConfig:
    """One GPU module: SMs, GPM-side L1.5, memory-side L2, local DRAM."""

    n_sms: int
    sm: SMConfig
    l2: CacheConfig
    l15: Optional[CacheConfig] = None
    dram_bandwidth: float = 768.0
    dram_latency: float = 100.0
    xbar_latency: float = 5.0
    #: Extra lookup latency charged to remote requests that miss in the
    #: L1.5 (the tag check sits on the critical path before the ring).
    l15_miss_penalty: float = 8.0

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON serialization."""
        return {
            "n_sms": self.n_sms,
            "sm": self.sm.to_dict(),
            "l2": self.l2.to_dict(),
            "l15": None if self.l15 is None else self.l15.to_dict(),
            "dram_bandwidth": self.dram_bandwidth,
            "dram_latency": self.dram_latency,
            "xbar_latency": self.xbar_latency,
            "l15_miss_penalty": self.l15_miss_penalty,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GPMConfig":
        """Inverse of :meth:`to_dict`."""
        payload = dict(data)
        payload["sm"] = SMConfig.from_dict(payload["sm"])
        payload["l2"] = CacheConfig.from_dict(payload["l2"])
        if payload.get("l15") is not None:
            payload["l15"] = CacheConfig.from_dict(payload["l15"])
        return cls(**payload)


@dataclass(frozen=True)
class SystemConfig:
    """A complete simulated GPU: one or more GPMs behind a ring network.

    The same structure describes all four machine classes of the paper:

    * ``n_gpms=4`` with on-package link parameters — the MCM-GPU;
    * ``n_gpms=1`` — a monolithic GPU (links unused);
    * ``n_gpms=2`` with board-class link parameters — a multi-GPU system;
    * any of the above with ``scheduler``/``placement``/``l15`` toggled —
      the paper's optimization studies.
    """

    name: str
    n_gpms: int
    gpm: GPMConfig
    link_bandwidth: float = 768.0
    hop_latency: float = 32.0
    scheduler: str = "centralized"
    placement: str = "interleave"
    page_bytes: int = 1024
    line_bytes: int = 128
    #: Integration tier of the inter-module links ("package" for MCM rings,
    #: "board" for multi-GPU); selects the energy cost per bit (Table 2).
    link_tier: str = "package"
    #: Inter-GPM topology, validated against the
    #: :mod:`repro.interconnect.topology` registry: "ring" (the paper's
    #: baseline), "fully_connected", "mesh", "torus", or "hierarchical"
    #: (package rings bridged by a fixed board ring).
    topology: str = "ring"

    def __post_init__(self) -> None:
        if self.n_gpms <= 0:
            raise ValueError(f"n_gpms must be positive, got {self.n_gpms}")
        if self.n_gpms > 1 and self.link_bandwidth <= 0:
            raise ValueError("multi-module systems need positive link bandwidth")
        if self.scheduler not in ("centralized", "distributed", "dynamic"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        # Imported here, not at module top: keeps config importable without
        # pulling the whole interconnect package in at definition time.
        from ..interconnect.topology import get_topology

        get_topology(self.topology)  # raises ValueError with known names
        if self.placement not in PLACEMENT_POLICIES:
            known = ", ".join(sorted(PLACEMENT_POLICIES))
            raise ValueError(
                f"unknown placement {self.placement!r}; expected one of: {known}"
            )
        valid_tiers = tuple(tier.value for tier in IntegrationTier)
        if self.link_tier not in valid_tiers:
            raise ValueError(
                f"unknown link_tier {self.link_tier!r}; "
                f"expected one of: {', '.join(valid_tiers)}"
            )

    @property
    def total_sms(self) -> int:
        """SM count across all GPMs."""
        return self.n_gpms * self.gpm.n_sms

    @property
    def total_dram_bandwidth(self) -> float:
        """Aggregate DRAM bandwidth in bytes/cycle (== GB/s at 1 GHz)."""
        return self.n_gpms * self.gpm.dram_bandwidth

    @property
    def total_l2_bytes(self) -> int:
        """Aggregate memory-side L2 capacity."""
        return self.n_gpms * self.gpm.l2.size_bytes

    @property
    def total_l15_bytes(self) -> int:
        """Aggregate GPM-side L1.5 capacity (zero when the level is absent)."""
        if self.gpm.l15 is None:
            return 0
        return self.n_gpms * self.gpm.l15.size_bytes

    @property
    def max_resident_ctas(self) -> int:
        """CTAs the whole machine can hold concurrently."""
        return self.total_sms * self.gpm.sm.max_resident_ctas

    def digest(self) -> str:
        """Stable string identifying this configuration (for result caches).

        Every field that can change a simulation's outcome (or a cached
        result's derived metrics, e.g. ``link_tier`` selecting the energy
        cost per bit) must appear here: the disk result cache is keyed by
        this string, so an omission makes distinct configurations collide.
        Changing the digest format self-invalidates old cache entries —
        stale keys simply never match again (see ``ResultCache.prune``).
        """
        l15 = self.gpm.l15
        l15_part = (
            "none"
            if l15 is None or l15.size_bytes == 0
            else f"{l15.size_bytes}x{l15.ways}:{l15.allocation.value}"
        )
        l15_lat = 0.0 if l15 is None else l15.hit_latency
        sm = self.gpm.sm
        return (
            f"r{MODEL_REV}|{self.name}|g{self.n_gpms}x{self.gpm.n_sms}"
            f"|sm:{sm.warp_groups}x{sm.warps_per_group}"
            f"@{sm.issue_throughput}:{sm.max_resident_ctas}"
            f"|l1:{sm.l1.size_bytes}x{sm.l1.ways}|l15:{l15_part}"
            f"|l2:{self.gpm.l2.size_bytes}x{self.gpm.l2.ways}"
            f"|lat:{sm.l1.hit_latency}:{l15_lat}:{self.gpm.l2.hit_latency}"
            f"|xbar:{self.gpm.xbar_latency}:{self.gpm.l15_miss_penalty}"
            f"|dram:{self.gpm.dram_bandwidth}@{self.gpm.dram_latency}"
            f"|link:{self.link_bandwidth}@{self.hop_latency}:{self.topology}"
            f":{self.link_tier}"
            f"|sched:{self.scheduler}|place:{self.placement}|pg:{self.page_bytes}"
            f"|ln:{self.line_bytes}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-serializable) of the whole configuration.

        Round-trips through :meth:`from_dict`; used to serialize sweep
        candidates into ``explore/`` artifacts.
        """
        return {
            "name": self.name,
            "n_gpms": self.n_gpms,
            "gpm": self.gpm.to_dict(),
            "link_bandwidth": self.link_bandwidth,
            "hop_latency": self.hop_latency,
            "scheduler": self.scheduler,
            "placement": self.placement,
            "page_bytes": self.page_bytes,
            "line_bytes": self.line_bytes,
            "link_tier": self.link_tier,
            "topology": self.topology,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SystemConfig":
        """Inverse of :meth:`to_dict` (unknown keys rejected loudly)."""
        payload = dict(data)
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown SystemConfig fields: {unknown}")
        payload["gpm"] = GPMConfig.from_dict(payload["gpm"])
        return cls(**payload)
