"""Configuration dataclasses for every simulated system.

All bandwidths are expressed in **bytes per cycle**.  The simulator runs at
the paper's 1 GHz GPU clock (Table 3), so a figure quoted in GB/s converts
numerically 1:1 (768 GB/s == 768 bytes/cycle), which keeps configurations
directly comparable against the paper's text.

Capacities honor a global :data:`MEMORY_SCALE` so the pure-Python simulator
can run workloads whose *footprint-to-capacity ratios* match the paper
without simulating multi-gigabyte traces; see DESIGN.md ("Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..memory.cache import AllocationPolicy, WritePolicy

#: Scale factor applied to cache capacities and workload footprints.  The
#: ratio between them — what drives hit rates — is preserved exactly.
MEMORY_SCALE = 1.0 / 32.0

#: Simulation clock in Hz; used only for unit conversions in reports.
CLOCK_HZ = 1.0e9

#: Bumped whenever a timing-model constant changes (packet overheads,
#: channel structure, ...) or engine scheduling order changes (rev 6:
#: ``_launch`` refills an empty CTA's slot greedily on the same SM, which
#: moves CTA placement for kernels whose initial wave has empty traces;
#: rev 7: antipodal ring routes tie-break by source parity instead of
#: always clockwise, which moves half the opposite-corner traffic onto the
#: previously idle direction on even-sized rings).  Included in
#: configuration digests so the disk result cache never serves results
#: from an older model.
MODEL_REV = 7


def scaled_bytes(full_size_bytes: int, scale: float = MEMORY_SCALE) -> int:
    """Apply the memory scale to a capacity, keeping at least one line."""
    return max(128, int(full_size_bytes * scale))


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policies of one cache level.

    ``size_bytes`` of zero disables the level (it misses on every access),
    which lets experiment code sweep a level out without restructuring the
    hierarchy.
    """

    size_bytes: int
    ways: int = 16
    line_bytes: int = 128
    hit_latency: float = 30.0
    write_policy: WritePolicy = WritePolicy.WRITE_BACK
    allocation: AllocationPolicy = AllocationPolicy.ALL

    def scaled(self, scale: float = MEMORY_SCALE) -> "CacheConfig":
        """Return a copy with capacity scaled by ``scale`` (zero stays zero)."""
        if self.size_bytes == 0:
            return self
        return replace(self, size_bytes=scaled_bytes(self.size_bytes, scale))


@dataclass(frozen=True)
class SMConfig:
    """Streaming-multiprocessor parameters.

    The simulator executes *warp groups* rather than individual warps: one
    group stands for ``warps_per_group`` paper warps advancing together.
    Table 3's 64 warps/SM becomes 8 groups of 8.
    """

    l1: CacheConfig
    warp_groups: int = 8
    warps_per_group: int = 8
    issue_throughput: float = 4.0
    max_resident_ctas: int = 4

    @property
    def max_warps(self) -> int:
        """Paper-equivalent warp capacity of the SM."""
        return self.warp_groups * self.warps_per_group


@dataclass(frozen=True)
class GPMConfig:
    """One GPU module: SMs, GPM-side L1.5, memory-side L2, local DRAM."""

    n_sms: int
    sm: SMConfig
    l2: CacheConfig
    l15: Optional[CacheConfig] = None
    dram_bandwidth: float = 768.0
    dram_latency: float = 100.0
    xbar_latency: float = 5.0
    #: Extra lookup latency charged to remote requests that miss in the
    #: L1.5 (the tag check sits on the critical path before the ring).
    l15_miss_penalty: float = 8.0


@dataclass(frozen=True)
class SystemConfig:
    """A complete simulated GPU: one or more GPMs behind a ring network.

    The same structure describes all four machine classes of the paper:

    * ``n_gpms=4`` with on-package link parameters — the MCM-GPU;
    * ``n_gpms=1`` — a monolithic GPU (links unused);
    * ``n_gpms=2`` with board-class link parameters — a multi-GPU system;
    * any of the above with ``scheduler``/``placement``/``l15`` toggled —
      the paper's optimization studies.
    """

    name: str
    n_gpms: int
    gpm: GPMConfig
    link_bandwidth: float = 768.0
    hop_latency: float = 32.0
    scheduler: str = "centralized"
    placement: str = "interleave"
    page_bytes: int = 1024
    line_bytes: int = 128
    #: Integration tier of the inter-module links ("package" for MCM rings,
    #: "board" for multi-GPU); selects the energy cost per bit (Table 2).
    link_tier: str = "package"
    #: Inter-GPM topology: "ring" (the paper's baseline) or
    #: "fully_connected" (the Section 3.2 alternative explored by the
    #: topology_study experiment).
    topology: str = "ring"

    def __post_init__(self) -> None:
        if self.n_gpms <= 0:
            raise ValueError(f"n_gpms must be positive, got {self.n_gpms}")
        if self.n_gpms > 1 and self.link_bandwidth <= 0:
            raise ValueError("multi-module systems need positive link bandwidth")
        if self.scheduler not in ("centralized", "distributed", "dynamic"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.topology not in ("ring", "fully_connected"):
            raise ValueError(f"unknown topology {self.topology!r}")

    @property
    def total_sms(self) -> int:
        """SM count across all GPMs."""
        return self.n_gpms * self.gpm.n_sms

    @property
    def total_dram_bandwidth(self) -> float:
        """Aggregate DRAM bandwidth in bytes/cycle (== GB/s at 1 GHz)."""
        return self.n_gpms * self.gpm.dram_bandwidth

    @property
    def total_l2_bytes(self) -> int:
        """Aggregate memory-side L2 capacity."""
        return self.n_gpms * self.gpm.l2.size_bytes

    @property
    def total_l15_bytes(self) -> int:
        """Aggregate GPM-side L1.5 capacity (zero when the level is absent)."""
        if self.gpm.l15 is None:
            return 0
        return self.n_gpms * self.gpm.l15.size_bytes

    @property
    def max_resident_ctas(self) -> int:
        """CTAs the whole machine can hold concurrently."""
        return self.total_sms * self.gpm.sm.max_resident_ctas

    def digest(self) -> str:
        """Stable string identifying this configuration (for result caches)."""
        l15 = self.gpm.l15
        l15_part = (
            "none"
            if l15 is None or l15.size_bytes == 0
            else f"{l15.size_bytes}:{l15.allocation.value}"
        )
        l15_lat = 0.0 if l15 is None else l15.hit_latency
        return (
            f"r{MODEL_REV}|{self.name}|g{self.n_gpms}x{self.gpm.n_sms}"
            f"|l1:{self.gpm.sm.l1.size_bytes}|l15:{l15_part}"
            f"|l2:{self.gpm.l2.size_bytes}"
            f"|lat:{self.gpm.sm.l1.hit_latency}:{l15_lat}:{self.gpm.l2.hit_latency}"
            f"|dram:{self.gpm.dram_bandwidth}@{self.gpm.dram_latency}"
            f"|link:{self.link_bandwidth}@{self.hop_latency}:{self.topology}"
            f"|sched:{self.scheduler}|place:{self.placement}|pg:{self.page_bytes}"
        )
