"""Streaming multiprocessor (SM) runtime state.

The SM is modeled as an in-order issue engine shared by its resident warp
groups (Section 4: "SMs are modeled as in-order execution processors that
accurately model warp-level parallelism").  Timing is captured by a single
``clock`` — the cycle at which the SM's issue ports next become free — and
by each warp group's own readiness, managed by the simulation engine.
"""

from __future__ import annotations

from ..memory.cache import SetAssocCache
from .config import SMConfig


class SM:
    """Runtime state of one SM.

    Parameters
    ----------
    sm_id:
        Global SM index across the whole GPU.
    gpm_id:
        Index of the GPM (or discrete GPU) this SM lives on.
    config:
        Static SM parameters.
    """

    __slots__ = (
        "sm_id",
        "gpm_id",
        "config",
        "l1",
        "l1_hit_latency",
        "issue_throughput",
        "clock",
        "free_cta_slots",
        "ctas_launched",
        "issue_busy_cycles",
    )

    def __init__(self, sm_id: int, gpm_id: int, config: SMConfig) -> None:
        self.sm_id = sm_id
        self.gpm_id = gpm_id
        self.config = config
        self.l1_hit_latency = config.l1.hit_latency
        self.issue_throughput = config.issue_throughput
        self.l1 = SetAssocCache(
            size_bytes=config.l1.size_bytes,
            line_bytes=config.l1.line_bytes,
            ways=config.l1.ways,
            write_policy=config.l1.write_policy,
            name=f"sm{sm_id}.l1",
        )
        self.clock = 0.0
        self.free_cta_slots = config.max_resident_ctas
        self.ctas_launched = 0
        #: Cycles the issue ports have been occupied; ``busy / elapsed`` is
        #: the SM's issue utilization (sampled per window by telemetry).
        self.issue_busy_cycles = 0.0

    def occupy_slot(self) -> None:
        """Claim one CTA slot; the scheduler must check availability first."""
        if self.free_cta_slots <= 0:
            raise RuntimeError(f"SM {self.sm_id} has no free CTA slot")
        self.free_cta_slots -= 1
        self.ctas_launched += 1

    def release_slot(self) -> None:
        """Return a CTA slot when a resident CTA retires."""
        if self.free_cta_slots >= self.config.max_resident_ctas:
            raise RuntimeError(f"SM {self.sm_id} released more slots than it holds")
        self.free_cta_slots += 1

    def charge_issue(self, start: float, n_instructions: float) -> None:
        """Occupy the issue ports for ``n_instructions`` starting at ``start``.

        ``issue_throughput`` instructions retire per cycle across the SM's
        warp schedulers, so a batch holds the ports for
        ``n_instructions / issue_throughput`` cycles.
        """
        busy = n_instructions / self.issue_throughput
        self.clock = start + busy
        self.issue_busy_cycles += busy

    def reset(self) -> None:
        """Clear timing state and the L1 between simulations."""
        self.clock = 0.0
        self.free_cta_slots = self.config.max_resident_ctas
        self.ctas_launched = 0
        self.issue_busy_cycles = 0.0
        self.l1.flush()
        self.l1.reset_stats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SM(sm_id={self.sm_id}, gpm={self.gpm_id}, clock={self.clock:.0f})"
