"""The memory-system request path.

This module is the heart of the timing model: every load and store issued
by a warp group walks this path and comes back with a completion cycle.

Read path (Figure 5)::

    L1 (per SM, write-through)
      -> page table: which partition is home?
        local  -> xbar -> memory-side L2 slice -> DRAM partition
        remote -> [L1.5 GPM-side cache] -> ring hops -> remote L2 -> DRAM
                  <- ring hops (line response) ; fill L1.5

Stores are write-through/no-allocate at L1 and L1.5 and write-back with
write-allocate at the memory-side L2.  Store completion is decoupled from
the requester (write buffering): the warp group does not wait, but every
byte still consumes link and DRAM bandwidth, so heavy write traffic slows
the machine through contention — the effect behind the paper's
Streamcluster anomaly (Section 5.4).

All latencies are cycles; all bandwidth interactions go through the shared
:class:`~repro.memory.bandwidth.BandwidthPipe` instances so contention is
captured globally.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..interconnect.link import REQUEST, RESPONSE
from ..memory.migration import MigratingFirstTouch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .gpu import GPUSystem
    from .sm import SM

#: Bytes of command/address/ECC/flow-control overhead per ring message
#: (GRS packetization; calibrated against the Figure 4 sensitivity curve).
REQUEST_HEADER_BYTES = 64
#: Cache line payload size on the ring.
LINE_BYTES = 128
#: Latency credited to a buffered store as seen by the issuing warp group.
STORE_ACK_LATENCY = 1.0


class MemorySystem:
    """Routes memory requests through caches, the ring, and DRAM."""

    def __init__(self, system: "GPUSystem") -> None:
        self.system = system
        self.loads = 0
        self.stores = 0
        self.remote_loads = 0
        self.remote_stores = 0
        # Hot-path bindings: resolved once so per-access work is attribute-
        # lookup free.  The set of GPMs and the ring never change after
        # construction.
        self._gpms = system.gpms
        self._ring = system.ring
        self._page_table = system.page_table
        self._migrating_policy = (
            system.page_table.policy
            if isinstance(system.page_table.policy, MigratingFirstTouch)
            else None
        )
        self.migration_bytes = 0

    # ------------------------------------------------------------------
    # public API used by the simulation engine
    # ------------------------------------------------------------------

    def load(self, now: float, sm: "SM", line_addr: int) -> float:
        """Issue a load; returns the cycle its data arrives at the SM."""
        self.loads += 1
        hit, _ = sm.l1.access(line_addr)
        l1_latency = sm.l1_hit_latency
        if hit:
            return now + l1_latency

        gpm_id = sm.gpm_id
        gpm = self._gpms[gpm_id]
        time = now + l1_latency + gpm.xbar_latency
        home = self._page_table.home_partition(line_addr, gpm_id)
        if self._migrating_policy is not None and self._migrating_policy.pending_migration:
            self._charge_migration(time)
        if gpm.xbar.classify(home):
            if gpm.l15_caches_local:
                l15_hit, _ = gpm.l15.access(line_addr)
                if l15_hit:
                    return time + gpm.l15_hit_latency
                time += gpm.l15_miss_penalty
            return self._partition_read(time, home, line_addr)

        self.remote_loads += 1
        if gpm.has_l15:
            l15_hit, _ = gpm.l15.access(line_addr)
            if l15_hit:
                return time + gpm.l15_hit_latency
            time += gpm.l15_miss_penalty

        ring = self._ring
        time = ring.transfer(time, gpm_id, home, REQUEST_HEADER_BYTES, REQUEST)
        time = self._partition_read(time, home, line_addr)
        return ring.transfer(time, home, gpm_id, LINE_BYTES + REQUEST_HEADER_BYTES, RESPONSE)

    def store(self, now: float, sm: "SM", line_addr: int) -> float:
        """Issue a store; returns the (buffered) ack cycle for the warp group.

        Bandwidth on the ring and at the home partition is charged at the
        store's natural times even though the requester does not wait.
        """
        self.stores += 1
        # Write-through, no-allocate: update the line if present, then
        # forward downstream unconditionally.
        l1 = sm.l1
        if l1.probe(line_addr):
            l1.access(line_addr, is_write=True, allocate=False)

        gpm_id = sm.gpm_id
        gpm = self._gpms[gpm_id]
        time = now + gpm.xbar_latency
        home = self._page_table.home_partition(line_addr, gpm_id)
        if self._migrating_policy is not None and self._migrating_policy.pending_migration:
            self._charge_migration(time)
        if gpm.xbar.classify(home):
            if gpm.l15_caches_local and gpm.l15.probe(line_addr):
                gpm.l15.access(line_addr, is_write=True, allocate=False)
            self._partition_write(time, home, line_addr)
            return now + STORE_ACK_LATENCY

        self.remote_stores += 1
        if gpm.has_l15 and gpm.l15.probe(line_addr):
            # Keep the remote copy coherent-by-value; still write through.
            gpm.l15.access(line_addr, is_write=True, allocate=False)
        time = self._ring.transfer(
            time, gpm_id, home, LINE_BYTES + REQUEST_HEADER_BYTES, REQUEST
        )
        self._partition_write(time, home, line_addr)
        return now + STORE_ACK_LATENCY

    # ------------------------------------------------------------------
    # page migration (MigratingFirstTouch extension)
    # ------------------------------------------------------------------

    def _charge_migration(self, now: float) -> None:
        """Charge the bandwidth cost of a page copy between partitions.

        The copy runs asynchronously (the triggering access is served from
        the new home immediately), but its DRAM read, ring transfer, and
        DRAM write consume real bandwidth at ``now`` — over-eager
        migration therefore costs measurable throughput.
        """
        policy = self._migrating_policy
        page_addr, old_home, new_home = policy.pending_migration
        policy.pending_migration = None
        address_map = self.system.address_map
        page_bytes = address_map.page_bytes
        lines = address_map.lines_per_page
        source = self._gpms[old_home]
        destination = self._gpms[new_home]
        source.dram.pipe.transfer(now, page_bytes)
        source.dram.reads += lines
        arrival = self._ring.transfer(now, old_home, new_home, page_bytes, REQUEST)
        destination.dram.pipe.transfer(arrival, page_bytes)
        destination.dram.writes += lines
        self.migration_bytes += page_bytes

    # ------------------------------------------------------------------
    # home-partition access (memory-side L2 in front of local DRAM)
    # ------------------------------------------------------------------

    def _partition_read(self, now: float, home: int, line_addr: int) -> float:
        gpm = self._gpms[home]
        hit, writeback = gpm.l2.access(line_addr)
        time = now + gpm.l2_hit_latency
        if writeback is not None:
            gpm.dram.write_line(time)
        if hit:
            return time
        return gpm.dram.read_line(time)

    def _partition_write(self, now: float, home: int, line_addr: int) -> float:
        gpm = self._gpms[home]
        hit, writeback = gpm.l2.access(line_addr, is_write=True)
        time = now + gpm.l2_hit_latency
        if writeback is not None:
            gpm.dram.write_line(time)
        if hit:
            return time
        # Write-allocate: the line is fetched into the L2 before the merge.
        return gpm.dram.read_line(time)

    # ------------------------------------------------------------------

    @property
    def accesses(self) -> int:
        """Total loads and stores observed."""
        return self.loads + self.stores

    def counter_snapshot(self):
        """``(loads, stores, remote_loads, remote_stores)`` right now.

        Telemetry samples this at window boundaries to form per-window
        deltas; it is read-only and never touches timing state.
        """
        return (self.loads, self.stores, self.remote_loads, self.remote_stores)

    @property
    def remote_fraction(self) -> float:
        """Fraction of L1-missing traffic whose home partition was remote."""
        routed = sum(gpm.xbar.total_requests for gpm in self.system.gpms)
        if not routed:
            return 0.0
        remote = sum(gpm.xbar.remote_requests for gpm in self.system.gpms)
        return remote / routed

    def reset(self) -> None:
        """Clear counters for a fresh simulation."""
        self.loads = 0
        self.stores = 0
        self.remote_loads = 0
        self.remote_stores = 0
        self.migration_bytes = 0
