"""The memory-system request path.

This module is the heart of the timing model: every load and store issued
by a warp group walks this path and comes back with a completion cycle.

Read path (Figure 5)::

    L1 (per SM, write-through)
      -> page table: which partition is home?
        local  -> xbar -> memory-side L2 slice -> DRAM partition
        remote -> [L1.5 GPM-side cache] -> ring hops -> remote L2 -> DRAM
                  <- ring hops (line response) ; fill L1.5

Stores are write-through/no-allocate at L1 and L1.5 and write-back with
write-allocate at the memory-side L2.  Store completion is decoupled from
the requester (write buffering): the warp group does not wait, but every
byte still consumes link and DRAM bandwidth, so heavy write traffic slows
the machine through contention — the effect behind the paper's
Streamcluster anomaly (Section 5.4).

All latencies are cycles; all bandwidth interactions go through the shared
:class:`~repro.memory.bandwidth.BandwidthPipe` instances so contention is
captured globally.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..interconnect.link import REQUEST, RESPONSE
from ..memory.migration import MigratingFirstTouch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .gpu import GPUSystem
    from .sm import SM

#: Bytes of command/address/ECC/flow-control overhead per ring message
#: (GRS packetization; calibrated against the Figure 4 sensitivity curve).
REQUEST_HEADER_BYTES = 64
#: Cache line payload size on the ring.
LINE_BYTES = 128
#: Latency credited to a buffered store as seen by the issuing warp group.
STORE_ACK_LATENCY = 1.0


class MemorySystem:
    """Routes memory requests through caches, the ring, and DRAM."""

    def __init__(self, system: "GPUSystem") -> None:
        self.system = system
        self.loads = 0
        self.stores = 0
        self.remote_loads = 0
        self.remote_stores = 0
        # Hot-path bindings: resolved once so per-access work is attribute-
        # lookup free.  The set of GPMs and the ring never change after
        # construction.
        self._gpms = system.gpms
        self._ring = system.ring
        self._page_table = system.page_table
        self._migrating_policy = (
            system.page_table.policy
            if isinstance(system.page_table.policy, MigratingFirstTouch)
            else None
        )
        self.migration_bytes = 0

    # ------------------------------------------------------------------
    # public API used by the simulation engine
    # ------------------------------------------------------------------

    def load(self, now: float, sm: "SM", line_addr: int) -> float:
        """Issue a load; returns the cycle its data arrives at the SM."""
        self.loads += 1
        hit, _ = sm.l1.access(line_addr)
        l1_latency = sm.l1_hit_latency
        if hit:
            return now + l1_latency

        gpm_id = sm.gpm_id
        gpm = self._gpms[gpm_id]
        time = now + l1_latency + gpm.xbar_latency
        home = self._page_table.home_partition(line_addr, gpm_id)
        if self._migrating_policy is not None and self._migrating_policy.pending_migration:
            self._charge_migration(time)
        if gpm.xbar.classify(home):
            if gpm.l15_caches_local:
                l15_hit, _ = gpm.l15.access(line_addr)
                if l15_hit:
                    return time + gpm.l15_hit_latency
                time += gpm.l15_miss_penalty
            return self._partition_read(time, home, line_addr)

        self.remote_loads += 1
        if gpm.has_l15:
            l15_hit, _ = gpm.l15.access(line_addr)
            if l15_hit:
                return time + gpm.l15_hit_latency
            time += gpm.l15_miss_penalty

        ring = self._ring
        time = ring.transfer(time, gpm_id, home, REQUEST_HEADER_BYTES, REQUEST)
        time = self._partition_read(time, home, line_addr)
        return ring.transfer(time, home, gpm_id, LINE_BYTES + REQUEST_HEADER_BYTES, RESPONSE)

    def store(self, now: float, sm: "SM", line_addr: int) -> float:
        """Issue a store; returns the (buffered) ack cycle for the warp group.

        Bandwidth on the ring and at the home partition is charged at the
        store's natural times even though the requester does not wait.
        """
        self.stores += 1
        # Write-through, no-allocate: update the line if present, then
        # forward downstream unconditionally.  The fused touch counts a
        # write hit when the line is resident and a bypass when it is not,
        # so every store lands in exactly one counter (the probe-miss case
        # used to vanish from the stats entirely).
        sm.l1.touch_store(line_addr)

        gpm_id = sm.gpm_id
        gpm = self._gpms[gpm_id]
        time = now + gpm.xbar_latency
        home = self._page_table.home_partition(line_addr, gpm_id)
        if self._migrating_policy is not None and self._migrating_policy.pending_migration:
            self._charge_migration(time)
        if gpm.xbar.classify(home):
            if gpm.l15_caches_local:
                gpm.l15.touch_store(line_addr)
            self._partition_write(time, home, line_addr)
            return now + STORE_ACK_LATENCY

        self.remote_stores += 1
        if gpm.has_l15:
            # Keep the remote copy coherent-by-value; still write through.
            gpm.l15.touch_store(line_addr)
        time = self._ring.transfer(
            time, gpm_id, home, LINE_BYTES + REQUEST_HEADER_BYTES, REQUEST
        )
        self._partition_write(time, home, line_addr)
        return now + STORE_ACK_LATENCY

    # ------------------------------------------------------------------
    # bulk request paths (engine hot loop)
    # ------------------------------------------------------------------
    #
    # One TraceRecord issues its whole read list and write list together.
    # These bulk paths walk the lines in the same order and perform the
    # same state mutations as per-line load()/store() calls — results are
    # bit-identical (tests/test_perf_identity.py pins this) — but resolve
    # the overwhelmingly common L1 hit with inline dict operations and
    # hoist every per-request attribute lookup out of the line loop.

    def load_batch(self, now: float, sm: "SM", lines) -> float:
        """Issue a record's read list; returns the latest arrival cycle.

        Equivalent to ``max(load(now, sm, line) for line in lines)`` with
        ``now`` as the floor for an empty list.
        """
        self.loads += len(lines)
        l1 = sm.l1
        stats = l1.stats
        sets = l1._sets
        n_sets = l1.n_sets
        ways = l1.ways
        hit_time = now + sm.l1_hit_latency
        mem_done = now
        misses = None
        for line in lines:
            if n_sets:
                cache_set = sets[line % n_sets]
                if line in cache_set:
                    # Inline L1 read hit: refresh LRU, preserve dirty state.
                    stats.hits += 1
                    cache_set[line] = cache_set.pop(line)
                    if hit_time > mem_done:
                        mem_done = hit_time
                    continue
                stats.misses += 1
                if len(cache_set) >= ways:
                    if cache_set.pop(next(iter(cache_set))):
                        stats.writebacks += 1
                cache_set[line] = False
            else:
                stats.misses += 1
            if misses is None:
                misses = [line]
            else:
                misses.append(line)
        if misses is None:
            return mem_done

        gpm_id = sm.gpm_id
        gpm = self._gpms[gpm_id]
        base_time = hit_time + gpm.xbar_latency
        page_table = self._page_table
        # Inlined PageTable.home_partition / Crossbar.classify: the homing
        # arithmetic is done in-loop and the pure-count counters are
        # accumulated locally and flushed once per batch (their totals are
        # order-insensitive and nothing reads them mid-record).
        policy = page_table.policy
        line_interleaved = page_table._line_interleaved
        n_partitions = policy.n_partitions
        lines_per_page = page_table.address_map.lines_per_page
        partition_of_page = policy.partition_of_page
        migrating = self._migrating_policy
        # Mapped-page fast path: a plain dict hit skips the policy call.
        # Migrating policies do per-access work inside partition_of_page,
        # so the shortcut is disabled for them.
        page_map = None if migrating is not None else getattr(policy, "_page_map", None)
        local_homes = 0
        remote_homes = 0
        l15 = gpm.l15
        l15_caches_local = gpm.l15_caches_local
        has_l15 = gpm.has_l15
        l15_hit_latency = gpm.l15_hit_latency
        l15_miss_penalty = gpm.l15_miss_penalty
        partition_read = self._partition_read
        # Inlined RingNetwork.transfer: precomputed shortest-path link
        # tuples, walked directly (same hop order, same pipe charges).
        routes = self._ring._routes
        request_routes = routes[gpm_id] if routes else None
        remote_loads = 0
        for line in misses:
            if line_interleaved:
                home = line % n_partitions
            else:
                page = line // lines_per_page
                if page_map is None:
                    home = partition_of_page(page, gpm_id)
                else:
                    home = page_map.get(page)
                    if home is None:
                        home = partition_of_page(page, gpm_id)
            if migrating is not None and migrating.pending_migration:
                self._charge_migration(base_time)
            if home == gpm_id:
                local_homes += 1
                if l15_caches_local:
                    l15_hit, _ = l15.access(line)
                    if l15_hit:
                        done = base_time + l15_hit_latency
                        if done > mem_done:
                            mem_done = done
                        continue
                    done = partition_read(base_time + l15_miss_penalty, home, line)
                else:
                    done = partition_read(base_time, home, line)
            else:
                remote_homes += 1
                remote_loads += 1
                time = base_time
                if has_l15:
                    l15_hit, _ = l15.access(line)
                    if l15_hit:
                        done = base_time + l15_hit_latency
                        if done > mem_done:
                            mem_done = done
                        continue
                    time = base_time + l15_miss_penalty
                for link in request_routes[home]:
                    time = (
                        link.request_pipe.transfer(time, REQUEST_HEADER_BYTES)
                        + link.latency_cycles
                    )
                time = partition_read(time, home, line)
                for link in routes[home][gpm_id]:
                    time = (
                        link.response_pipe.transfer(time, LINE_BYTES + REQUEST_HEADER_BYTES)
                        + link.latency_cycles
                    )
                done = time
            if done > mem_done:
                mem_done = done
        self.remote_loads += remote_loads
        page_table.local_resolutions += local_homes
        page_table.remote_resolutions += remote_homes
        xbar = gpm.xbar
        xbar.local_requests += local_homes
        xbar.remote_requests += remote_homes
        return mem_done

    def store_batch(self, now: float, sm: "SM", lines) -> None:
        """Issue a record's write list (buffered; the caller never waits).

        Equivalent to calling :meth:`store` once per line, in order.
        """
        self.stores += len(lines)
        l1 = sm.l1
        stats = l1.stats
        sets = l1._sets
        n_sets = l1.n_sets
        track_dirty = l1._track_dirty
        gpm_id = sm.gpm_id
        gpm = self._gpms[gpm_id]
        time = now + gpm.xbar_latency
        page_table = self._page_table
        # Same inlining discipline as load_batch: homing arithmetic in-loop,
        # pure-count page-table/crossbar counters flushed once per batch.
        policy = page_table.policy
        line_interleaved = page_table._line_interleaved
        n_partitions = policy.n_partitions
        lines_per_page = page_table.address_map.lines_per_page
        partition_of_page = policy.partition_of_page
        migrating = self._migrating_policy
        page_map = None if migrating is not None else getattr(policy, "_page_map", None)
        local_homes = 0
        remote_homes = 0
        l15 = gpm.l15
        l15_caches_local = gpm.l15_caches_local
        has_l15 = gpm.has_l15
        partition_write = self._partition_write
        routes = self._ring._routes
        request_routes = routes[gpm_id] if routes else None
        store_bytes = LINE_BYTES + REQUEST_HEADER_BYTES
        remote_stores = 0
        for line in lines:
            # Inline write-through no-allocate touch (see touch_store).
            if n_sets:
                cache_set = sets[line % n_sets]
                if line in cache_set:
                    stats.hits += 1
                    stats.write_hits += 1
                    cache_set[line] = cache_set.pop(line) or track_dirty
                else:
                    stats.bypasses += 1
            else:
                stats.bypasses += 1
            if line_interleaved:
                home = line % n_partitions
            else:
                page = line // lines_per_page
                if page_map is None:
                    home = partition_of_page(page, gpm_id)
                else:
                    home = page_map.get(page)
                    if home is None:
                        home = partition_of_page(page, gpm_id)
            if migrating is not None and migrating.pending_migration:
                self._charge_migration(time)
            if home == gpm_id:
                local_homes += 1
                if l15_caches_local:
                    l15.touch_store(line)
                partition_write(time, home, line)
            else:
                remote_homes += 1
                remote_stores += 1
                if has_l15:
                    l15.touch_store(line)
                arrival = time
                for link in request_routes[home]:
                    arrival = (
                        link.request_pipe.transfer(arrival, store_bytes)
                        + link.latency_cycles
                    )
                partition_write(arrival, home, line)
        self.remote_stores += remote_stores
        page_table.local_resolutions += local_homes
        page_table.remote_resolutions += remote_homes
        xbar = gpm.xbar
        xbar.local_requests += local_homes
        xbar.remote_requests += remote_homes

    # ------------------------------------------------------------------
    # page migration (MigratingFirstTouch extension)
    # ------------------------------------------------------------------

    def _charge_migration(self, now: float) -> None:
        """Charge the bandwidth cost of a page copy between partitions.

        The copy runs asynchronously (the triggering access is served from
        the new home immediately), but its DRAM read, ring transfer, and
        DRAM write consume real bandwidth at ``now`` — over-eager
        migration therefore costs measurable throughput.
        """
        policy = self._migrating_policy
        page_addr, old_home, new_home = policy.pending_migration
        policy.pending_migration = None
        address_map = self.system.address_map
        page_bytes = address_map.page_bytes
        lines = address_map.lines_per_page
        source = self._gpms[old_home]
        destination = self._gpms[new_home]
        source.dram.pipe.transfer(now, page_bytes)
        source.dram.reads += lines
        arrival = self._ring.transfer(now, old_home, new_home, page_bytes, REQUEST)
        destination.dram.pipe.transfer(arrival, page_bytes)
        destination.dram.writes += lines
        self.migration_bytes += page_bytes

    # ------------------------------------------------------------------
    # home-partition access (memory-side L2 in front of local DRAM)
    # ------------------------------------------------------------------

    # Both partition paths inline the L2 lookup and the DRAM pipe charge:
    # they mirror ``SetAssocCache.access`` / ``DRAMPartition`` line for
    # line (same counters, same LRU dict operations, same pipe-charge
    # order: write-back before fill), trading the two hottest remaining
    # call chains for direct dict work.  ``stats`` is re-resolved per call
    # because ``reset_stats`` replaces the stats object between runs.

    def _partition_read(self, now: float, home: int, line_addr: int) -> float:
        gpm = self._gpms[home]
        l2 = gpm.l2
        stats = l2.stats
        time = now + gpm.l2_hit_latency
        n_sets = l2.n_sets
        dram = gpm.dram
        if n_sets:
            cache_set = l2._sets[line_addr % n_sets]
            if line_addr in cache_set:
                stats.hits += 1
                cache_set[line_addr] = cache_set.pop(line_addr)
                return time
            stats.misses += 1
            if len(cache_set) >= l2.ways:
                if cache_set.pop(next(iter(cache_set))):
                    stats.writebacks += 1
                    dram.writes += 1
                    dram.pipe.transfer(time, dram.line_bytes)
            cache_set[line_addr] = False
        else:
            stats.misses += 1
        dram.reads += 1
        return dram.pipe.transfer(time, dram.line_bytes) + dram.latency_cycles

    def _partition_write(self, now: float, home: int, line_addr: int) -> float:
        gpm = self._gpms[home]
        l2 = gpm.l2
        stats = l2.stats
        time = now + gpm.l2_hit_latency
        n_sets = l2.n_sets
        dram = gpm.dram
        track_dirty = l2._track_dirty
        if n_sets:
            cache_set = l2._sets[line_addr % n_sets]
            if line_addr in cache_set:
                stats.hits += 1
                stats.write_hits += 1
                cache_set[line_addr] = cache_set.pop(line_addr) or track_dirty
                return time
            stats.misses += 1
            stats.write_misses += 1
            if len(cache_set) >= l2.ways:
                if cache_set.pop(next(iter(cache_set))):
                    stats.writebacks += 1
                    dram.writes += 1
                    dram.pipe.transfer(time, dram.line_bytes)
            cache_set[line_addr] = track_dirty
        else:
            stats.misses += 1
            stats.write_misses += 1
        # Write-allocate: the line is fetched into the L2 before the merge.
        dram.reads += 1
        return dram.pipe.transfer(time, dram.line_bytes) + dram.latency_cycles

    # ------------------------------------------------------------------

    @property
    def accesses(self) -> int:
        """Total loads and stores observed."""
        return self.loads + self.stores

    def counter_snapshot(self):
        """``(loads, stores, remote_loads, remote_stores)`` right now.

        Telemetry samples this at window boundaries to form per-window
        deltas; it is read-only and never touches timing state.
        """
        return (self.loads, self.stores, self.remote_loads, self.remote_stores)

    @property
    def remote_fraction(self) -> float:
        """Fraction of L1-missing traffic whose home partition was remote."""
        routed = sum(gpm.xbar.total_requests for gpm in self.system.gpms)
        if not routed:
            return 0.0
        remote = sum(gpm.xbar.remote_requests for gpm in self.system.gpms)
        return remote / routed

    def reset(self) -> None:
        """Clear counters for a fresh simulation."""
        self.loads = 0
        self.stores = 0
        self.remote_loads = 0
        self.remote_stores = 0
        self.migration_bytes = 0
