"""The memory-system request path.

This module is the heart of the timing model: every load and store issued
by a warp group walks this path and comes back with a completion cycle.

Read path (Figure 5)::

    L1 (per SM, write-through)
      -> page table: which partition is home?
        local  -> xbar -> memory-side L2 slice -> DRAM partition
        remote -> [L1.5 GPM-side cache] -> ring hops -> remote L2 -> DRAM
                  <- ring hops (line response) ; fill L1.5

Stores are write-through/no-allocate at L1 and L1.5 and write-back with
write-allocate at the memory-side L2.  Store completion is decoupled from
the requester (write buffering): the warp group does not wait, but every
byte still consumes link and DRAM bandwidth, so heavy write traffic slows
the machine through contention — the effect behind the paper's
Streamcluster anomaly (Section 5.4).

All latencies are cycles; all bandwidth interactions go through the shared
:class:`~repro.memory.bandwidth.BandwidthPipe` instances so contention is
captured globally.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..interconnect.link import REQUEST, RESPONSE
from ..memory.migration import MigratingFirstTouch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .gpu import GPUSystem
    from .sm import SM

#: Bytes of command/address/ECC/flow-control overhead per ring message
#: (GRS packetization; calibrated against the Figure 4 sensitivity curve).
REQUEST_HEADER_BYTES = 64
#: Cache line payload size on the ring.
LINE_BYTES = 128
#: Latency credited to a buffered store as seen by the issuing warp group.
STORE_ACK_LATENCY = 1.0


class MemorySystem:
    """Routes memory requests through caches, the ring, and DRAM."""

    def __init__(self, system: "GPUSystem") -> None:
        self.system = system
        self.loads = 0
        self.stores = 0
        self.remote_loads = 0
        self.remote_stores = 0
        # Hot-path bindings: resolved once so per-access work is attribute-
        # lookup free.  The set of GPMs and the ring never change after
        # construction.
        self._gpms = system.gpms
        self._ring = system.ring
        self._page_table = system.page_table
        self._migrating_policy = (
            system.page_table.policy
            if isinstance(system.page_table.policy, MigratingFirstTouch)
            else None
        )
        self.migration_bytes = 0
        # Lazily built per-(src, dst) route table for non-ring topologies
        # (see _link_routes); rings expose their own table directly.
        self._route_table = None
        # Deferred-counter flush hooks installed by make_walkers(); empty
        # whenever the walker fast path is not in use.
        self._walker_flushes: list = []

    # ------------------------------------------------------------------
    # public API used by the simulation engine
    # ------------------------------------------------------------------

    def load(self, now: float, sm: "SM", line_addr: int) -> float:
        """Issue a load; returns the cycle its data arrives at the SM."""
        self.loads += 1
        hit, _ = sm.l1.access(line_addr)
        l1_latency = sm.l1_hit_latency
        if hit:
            return now + l1_latency

        gpm_id = sm.gpm_id
        gpm = self._gpms[gpm_id]
        time = now + l1_latency + gpm.xbar_latency
        home = self._page_table.home_partition(line_addr, gpm_id)
        if self._migrating_policy is not None and self._migrating_policy.pending_migration:
            self._charge_migration(time)
        if gpm.xbar.classify(home):
            if gpm.l15_caches_local:
                l15_hit, _ = gpm.l15.access(line_addr)
                if l15_hit:
                    return time + gpm.l15_hit_latency
                time += gpm.l15_miss_penalty
            return self._partition_read(time, home, line_addr)

        self.remote_loads += 1
        if gpm.has_l15:
            l15_hit, _ = gpm.l15.access(line_addr)
            if l15_hit:
                return time + gpm.l15_hit_latency
            time += gpm.l15_miss_penalty

        ring = self._ring
        time = ring.transfer(time, gpm_id, home, REQUEST_HEADER_BYTES, REQUEST)
        time = self._partition_read(time, home, line_addr)
        return ring.transfer(time, home, gpm_id, LINE_BYTES + REQUEST_HEADER_BYTES, RESPONSE)

    def store(self, now: float, sm: "SM", line_addr: int) -> float:
        """Issue a store; returns the (buffered) ack cycle for the warp group.

        Bandwidth on the ring and at the home partition is charged at the
        store's natural times even though the requester does not wait.
        """
        self.stores += 1
        # Write-through, no-allocate: update the line if present, then
        # forward downstream unconditionally.  The fused touch counts a
        # write hit when the line is resident and a bypass when it is not,
        # so every store lands in exactly one counter (the probe-miss case
        # used to vanish from the stats entirely).
        sm.l1.touch_store(line_addr)

        gpm_id = sm.gpm_id
        gpm = self._gpms[gpm_id]
        time = now + gpm.xbar_latency
        home = self._page_table.home_partition(line_addr, gpm_id)
        if self._migrating_policy is not None and self._migrating_policy.pending_migration:
            self._charge_migration(time)
        if gpm.xbar.classify(home):
            if gpm.l15_caches_local:
                gpm.l15.touch_store(line_addr)
            self._partition_write(time, home, line_addr)
            return now + STORE_ACK_LATENCY

        self.remote_stores += 1
        if gpm.has_l15:
            # Keep the remote copy coherent-by-value; still write through.
            gpm.l15.touch_store(line_addr)
        time = self._ring.transfer(
            time, gpm_id, home, LINE_BYTES + REQUEST_HEADER_BYTES, REQUEST
        )
        self._partition_write(time, home, line_addr)
        return now + STORE_ACK_LATENCY

    def _link_routes(self):
        """Per-(src, dst) link sequences for the inlined transfer walks.

        Rings expose their precomputed ``_routes`` table directly; other
        topologies (e.g. all-to-all) get a table built once from the
        public ``route()`` API.  Link objects are reset in place, so the
        table stays valid across runs.
        """
        routes = getattr(self._ring, "_routes", None)
        if routes is not None:
            return routes
        if self._route_table is None:
            n = len(self._gpms)
            ring = self._ring
            self._route_table = [
                [tuple(ring.route(src, dst)) for dst in range(n)]
                for src in range(n)
            ]
        return self._route_table

    # ------------------------------------------------------------------
    # bulk request paths (engine hot loop)
    # ------------------------------------------------------------------
    #
    # One TraceRecord issues its whole read list and write list together.
    # These bulk paths walk the lines in the same order and perform the
    # same state mutations as per-line load()/store() calls — results are
    # bit-identical (tests/test_perf_identity.py pins this) — but resolve
    # the overwhelmingly common L1 hit with inline dict operations and
    # hoist every per-request attribute lookup out of the line loop.

    def load_batch(self, now: float, sm: "SM", lines) -> float:
        """Issue a record's read list; returns the latest arrival cycle.

        Equivalent to ``max(load(now, sm, line) for line in lines)`` with
        ``now`` as the floor for an empty list.
        """
        self.loads += len(lines)
        l1 = sm.l1
        stats = l1.stats
        sets = l1._sets
        n_sets = l1.n_sets
        ways = l1.ways
        hit_time = now + sm.l1_hit_latency
        mem_done = now
        misses = None
        for line in lines:
            if n_sets:
                cache_set = sets[line % n_sets]
                if line in cache_set:
                    # Inline L1 read hit: refresh LRU, preserve dirty state.
                    stats.hits += 1
                    cache_set[line] = cache_set.pop(line)
                    if hit_time > mem_done:
                        mem_done = hit_time
                    continue
                stats.misses += 1
                if len(cache_set) >= ways:
                    if cache_set.pop(next(iter(cache_set))):
                        stats.writebacks += 1
                cache_set[line] = False
            else:
                stats.misses += 1
            if misses is None:
                misses = [line]
            else:
                misses.append(line)
        if misses is None:
            return mem_done

        gpm_id = sm.gpm_id
        gpm = self._gpms[gpm_id]
        base_time = hit_time + gpm.xbar_latency
        page_table = self._page_table
        # Inlined PageTable.home_partition / Crossbar.classify: the homing
        # arithmetic is done in-loop and the pure-count counters are
        # accumulated locally and flushed once per batch (their totals are
        # order-insensitive and nothing reads them mid-record).
        policy = page_table.policy
        line_interleaved = page_table._line_interleaved
        n_partitions = policy.n_partitions
        lines_per_page = page_table.address_map.lines_per_page
        partition_of_page = policy.partition_of_page
        migrating = self._migrating_policy
        # Mapped-page fast path: a plain dict hit skips the policy call.
        # Migrating policies do per-access work inside partition_of_page,
        # so the shortcut is disabled for them.
        page_map = None if migrating is not None else getattr(policy, "_page_map", None)
        local_homes = 0
        remote_homes = 0
        l15 = gpm.l15
        l15_caches_local = gpm.l15_caches_local
        has_l15 = gpm.has_l15
        l15_hit_latency = gpm.l15_hit_latency
        l15_miss_penalty = gpm.l15_miss_penalty
        partition_read = self._partition_read
        # Inlined RingNetwork.transfer: precomputed shortest-path link
        # tuples, walked directly (same hop order, same pipe charges).
        routes = self._link_routes()
        request_routes = routes[gpm_id] if routes else None
        remote_loads = 0
        for line in misses:
            if line_interleaved:
                home = line % n_partitions
            else:
                page = line // lines_per_page
                if page_map is None:
                    home = partition_of_page(page, gpm_id)
                else:
                    home = page_map.get(page)
                    if home is None:
                        home = partition_of_page(page, gpm_id)
            if migrating is not None and migrating.pending_migration:
                self._charge_migration(base_time)
            if home == gpm_id:
                local_homes += 1
                if l15_caches_local:
                    l15_hit, _ = l15.access(line)
                    if l15_hit:
                        done = base_time + l15_hit_latency
                        if done > mem_done:
                            mem_done = done
                        continue
                    done = partition_read(base_time + l15_miss_penalty, home, line)
                else:
                    done = partition_read(base_time, home, line)
            else:
                remote_homes += 1
                remote_loads += 1
                time = base_time
                if has_l15:
                    l15_hit, _ = l15.access(line)
                    if l15_hit:
                        done = base_time + l15_hit_latency
                        if done > mem_done:
                            mem_done = done
                        continue
                    time = base_time + l15_miss_penalty
                for link in request_routes[home]:
                    time = (
                        link.request_pipe.transfer(time, REQUEST_HEADER_BYTES)
                        + link.latency_cycles
                    )
                time = partition_read(time, home, line)
                for link in routes[home][gpm_id]:
                    time = (
                        link.response_pipe.transfer(time, LINE_BYTES + REQUEST_HEADER_BYTES)
                        + link.latency_cycles
                    )
                done = time
            if done > mem_done:
                mem_done = done
        self.remote_loads += remote_loads
        page_table.local_resolutions += local_homes
        page_table.remote_resolutions += remote_homes
        xbar = gpm.xbar
        xbar.local_requests += local_homes
        xbar.remote_requests += remote_homes
        return mem_done

    def store_batch(self, now: float, sm: "SM", lines) -> None:
        """Issue a record's write list (buffered; the caller never waits).

        Equivalent to calling :meth:`store` once per line, in order.
        """
        self.stores += len(lines)
        l1 = sm.l1
        stats = l1.stats
        sets = l1._sets
        n_sets = l1.n_sets
        track_dirty = l1._track_dirty
        gpm_id = sm.gpm_id
        gpm = self._gpms[gpm_id]
        time = now + gpm.xbar_latency
        page_table = self._page_table
        # Same inlining discipline as load_batch: homing arithmetic in-loop,
        # pure-count page-table/crossbar counters flushed once per batch.
        policy = page_table.policy
        line_interleaved = page_table._line_interleaved
        n_partitions = policy.n_partitions
        lines_per_page = page_table.address_map.lines_per_page
        partition_of_page = policy.partition_of_page
        migrating = self._migrating_policy
        page_map = None if migrating is not None else getattr(policy, "_page_map", None)
        local_homes = 0
        remote_homes = 0
        l15 = gpm.l15
        l15_caches_local = gpm.l15_caches_local
        has_l15 = gpm.has_l15
        partition_write = self._partition_write
        routes = self._link_routes()
        request_routes = routes[gpm_id] if routes else None
        store_bytes = LINE_BYTES + REQUEST_HEADER_BYTES
        remote_stores = 0
        for line in lines:
            # Inline write-through no-allocate touch (see touch_store).
            if n_sets:
                cache_set = sets[line % n_sets]
                if line in cache_set:
                    stats.hits += 1
                    stats.write_hits += 1
                    cache_set[line] = cache_set.pop(line) or track_dirty
                else:
                    stats.bypasses += 1
            else:
                stats.bypasses += 1
            if line_interleaved:
                home = line % n_partitions
            else:
                page = line // lines_per_page
                if page_map is None:
                    home = partition_of_page(page, gpm_id)
                else:
                    home = page_map.get(page)
                    if home is None:
                        home = partition_of_page(page, gpm_id)
            if migrating is not None and migrating.pending_migration:
                self._charge_migration(time)
            if home == gpm_id:
                local_homes += 1
                if l15_caches_local:
                    l15.touch_store(line)
                partition_write(time, home, line)
            else:
                remote_homes += 1
                remote_stores += 1
                if has_l15:
                    l15.touch_store(line)
                arrival = time
                for link in request_routes[home]:
                    arrival = (
                        link.request_pipe.transfer(arrival, store_bytes)
                        + link.latency_cycles
                    )
                partition_write(arrival, home, line)
        self.remote_stores += remote_stores
        page_table.local_resolutions += local_homes
        page_table.remote_resolutions += remote_homes
        xbar = gpm.xbar
        xbar.local_requests += local_homes
        xbar.remote_requests += remote_homes

    # ------------------------------------------------------------------
    # array-backed fast path (per-SM fused walkers)
    # ------------------------------------------------------------------
    #
    # The walker consumes geometry-specialized records — read/write lists
    # of (line, l1_set, home_key) triples precomputed by whole-column
    # numpy ops in ColumnarCTATrace.fast_groups — and walks one record's
    # memory batch with every residual Python step fused into a single
    # closure: L1/L1.5/L2 dict mutations, homing resolution from the
    # precomputed key, and pipe charges.  Same line order, same state
    # mutations, same charge times as per-line load()/store(); the only
    # reorderings are (a) pure-count counters accumulated in closure cells
    # and flushed at kernel boundaries (nothing reads them mid-kernel) and
    # (b) a record's *local* DRAM line charges collapsed into one
    # BandwidthPipe.transfer_run — all local lines in a record charge the
    # same pipe at the same cycle with the same byte count, so the greedy
    # bucket fill is associative and only the last finish is observable.
    # tests/test_perf_identity.py pins bit-identity across the matrix.

    def walk_geometry(self, packed: bool = True) -> "WalkGeometry":
        """The :class:`WalkGeometry` traces are specialized against."""
        from ..workloads.trace import WalkGeometry

        page_table = self._page_table
        policy = page_table.policy
        gpms = self._gpms
        sm0 = gpms[0].sms[0]
        # L2/L1.5 set indices are precomputable only when the level has one
        # set count across every GPM (0 = walkers derive the index).
        l2_counts = {gpm.l2.n_sets for gpm in gpms}
        n_l2_sets = l2_counts.pop() if len(l2_counts) == 1 else 0
        l15_counts = {
            gpm.l15.n_sets if gpm.has_l15 else 0 for gpm in gpms
        }
        n_l15_sets = l15_counts.pop() if len(l15_counts) == 1 else 0
        return WalkGeometry(
            packed=packed,
            n_l1_sets=sm0.l1.n_sets if packed else 0,
            line_interleaved=page_table._line_interleaved if packed else False,
            n_partitions=policy.n_partitions if packed else 0,
            lines_per_page=page_table.address_map.lines_per_page if packed else 0,
            issue_throughput=sm0.issue_throughput,
            n_l2_sets=n_l2_sets if packed else 0,
            n_l15_sets=n_l15_sets if packed else 0,
        )

    def make_walkers(self):
        """Build per-SM ``(walk, walk_unique)`` pairs, or ``None``.

        The pairs come from the per-GPM code generator in
        :mod:`repro.core.walkgen`; ``walk_unique`` is the flavor the engine
        selects for kernels with globally unique address columns.  System
        shapes the generator cannot specialize fall back to the generic
        fused walker (used for both flavors).  Migrating placement policies
        interleave page-copy charges with line charges and do per-access
        work inside homing, so they keep the ``load_batch``/``store_batch``
        path entirely.  Must be called after ``system.reset()`` — walkers
        bind the current stats objects.
        """
        self._walker_flushes = []
        if self._migrating_policy is not None:
            return None
        if not hasattr(self._ring, "_routes"):
            # Both walker flavors prebind a ring's precomputed link routes;
            # other topologies (e.g. all-to-all) charge transfers through
            # the network object and keep the batch path.
            return None
        from .walkgen import UnsupportedWalk, build_walkers

        try:
            return build_walkers(self)
        except UnsupportedWalk:
            self._walker_flushes = []
            return [
                (walk, walk)
                for walk in (
                    self._make_walker(sm) for gpm in self._gpms for sm in gpm.sms
                )
            ]

    def flush_walk_counters(self) -> None:
        """Fold the walkers' deferred counters into the real stats objects.

        Called at the end of every kernel drain (before live validation
        and cache flushes read the counters) and is idempotent — cells are
        zeroed as they are flushed.
        """
        for flush in self._walker_flushes:
            flush()

    def _make_walker(self, sm: "SM"):
        """Fused per-record memory walk for ``sm`` (see block comment)."""
        gpm_id = sm.gpm_id
        gpms = self._gpms
        gpm = gpms[gpm_id]
        l1 = sm.l1
        l1_sets = l1._sets
        l1_n_sets = l1.n_sets
        l1_ways = l1.ways
        l1_track_dirty = l1._track_dirty
        l1_stats = l1.stats
        l1_hit_latency = sm.l1_hit_latency
        xbar_latency = gpm.xbar_latency
        xbar = gpm.xbar

        page_table = self._page_table
        policy = page_table.policy
        line_interleaved = page_table._line_interleaved
        partition_of_page = policy.partition_of_page
        page_map = getattr(policy, "_page_map", None)
        page_map_get = page_map.get if page_map is not None else None

        l15 = gpm.l15
        l15_caches_local = gpm.l15_caches_local
        has_l15 = gpm.has_l15
        l15_hit_latency = gpm.l15_hit_latency
        l15_miss_penalty = gpm.l15_miss_penalty
        if l15 is not None:
            l15_sets = l15._sets
            l15_n_sets = l15.n_sets
            l15_ways = l15.ways
            l15_track_dirty = l15._track_dirty
            l15_stats = l15.stats
        else:
            l15_sets = None
            l15_n_sets = 0
            l15_ways = 0
            l15_track_dirty = False
            l15_stats = None

        n_homes = len(gpms)
        l2_sets_by = [g.l2._sets for g in gpms]
        l2_n_sets_by = [g.l2.n_sets for g in gpms]
        l2_ways_by = [g.l2.ways for g in gpms]
        l2_track_by = [g.l2._track_dirty for g in gpms]
        l2_stats_by = [g.l2.stats for g in gpms]
        l2_hit_by = [g.l2_hit_latency for g in gpms]
        drams = [g.dram for g in gpms]
        dram_run_by = [g.dram.pipe.transfer_run for g in gpms]

        own_l2_sets = l2_sets_by[gpm_id]
        own_l2_n_sets = l2_n_sets_by[gpm_id]
        own_l2_ways = l2_ways_by[gpm_id]
        own_l2_track = l2_track_by[gpm_id]
        own_l2_stats = l2_stats_by[gpm_id]
        own_l2_hit = l2_hit_by[gpm_id]
        own_dram = drams[gpm_id]
        own_dram_run = dram_run_by[gpm_id]
        own_line_bytes = own_dram.line_bytes
        own_dram_latency = own_dram.latency_cycles
        # Constant local-path charge time offset past base_time: the
        # optional L1.5 miss penalty (ALL allocation policy) plus the L2
        # hit latency, identical for every local line of a record.
        local_extra = (
            l15_miss_penalty + own_l2_hit if l15_caches_local else own_l2_hit
        )

        # Ring hops as prebound (pipe.transfer, latency) pairs per home;
        # same link walk and charge order as RingNetwork.transfer.
        routes = self._link_routes()
        if routes:
            req_hops = [
                tuple(
                    (link.request_pipe.transfer, link.latency_cycles)
                    for link in routes[gpm_id][home]
                )
                for home in range(n_homes)
            ]
            resp_hops = [
                tuple(
                    (link.response_pipe.transfer, link.latency_cycles)
                    for link in routes[home][gpm_id]
                )
                for home in range(n_homes)
            ]
        else:
            req_hops = resp_hops = None
        request_bytes = REQUEST_HEADER_BYTES
        response_bytes = LINE_BYTES + REQUEST_HEADER_BYTES
        store_bytes = LINE_BYTES + REQUEST_HEADER_BYTES

        # Deferred pure-count counters (flushed per kernel; order-free).
        c_loads = 0
        c_stores = 0
        c_remote_loads = 0
        c_remote_stores = 0
        c_local_homes = 0
        c_remote_homes = 0
        c_l1_hits = 0
        c_l1_misses = 0
        c_l1_writebacks = 0
        c_l1_bypasses = 0
        c_l1_write_hits = 0

        def walk(now, reads, writes):
            nonlocal c_loads, c_stores, c_remote_loads, c_remote_stores
            nonlocal c_local_homes, c_remote_homes
            nonlocal c_l1_hits, c_l1_misses, c_l1_writebacks
            nonlocal c_l1_bypasses, c_l1_write_hits
            mem_done = now
            if reads:
                c_loads += len(reads)
                hit_time = now + l1_hit_latency
                misses = None
                if l1_n_sets:
                    for trip in reads:
                        line = trip[0]
                        cache_set = l1_sets[trip[1]]
                        dirty = cache_set.pop(line, None)
                        if dirty is not None:
                            c_l1_hits += 1
                            cache_set[line] = dirty
                            continue
                        c_l1_misses += 1
                        if len(cache_set) >= l1_ways:
                            if cache_set.pop(next(iter(cache_set))):
                                c_l1_writebacks += 1
                        cache_set[line] = False
                        if misses is None:
                            misses = [trip]
                        else:
                            misses.append(trip)
                else:
                    c_l1_misses += len(reads)
                    misses = reads
                if misses is None:
                    # Every line hit: the batch completes at L1 latency.
                    mem_done = hit_time
                else:
                    base_time = hit_time + xbar_latency
                    local_time = base_time + local_extra
                    local_fills = 0
                    for trip in misses:
                        line = trip[0]
                        home_key = trip[2]
                        if line_interleaved:
                            home = home_key
                        elif page_map_get is not None:
                            home = page_map_get(home_key)
                            if home is None:
                                home = partition_of_page(home_key, gpm_id)
                        else:
                            home = partition_of_page(home_key, gpm_id)
                        if home == gpm_id:
                            c_local_homes += 1
                            if l15_caches_local:
                                if l15_n_sets:
                                    cache_set = l15_sets[line % l15_n_sets]
                                    dirty = cache_set.pop(line, None)
                                    if dirty is not None:
                                        l15_stats.hits += 1
                                        cache_set[line] = dirty
                                        done = base_time + l15_hit_latency
                                        if done > mem_done:
                                            mem_done = done
                                        continue
                                    l15_stats.misses += 1
                                    if len(cache_set) >= l15_ways:
                                        if cache_set.pop(next(iter(cache_set))):
                                            l15_stats.writebacks += 1
                                    cache_set[line] = False
                                else:
                                    l15_stats.misses += 1
                            # Local memory-side L2; DRAM line charges are
                            # batched into one run after the loop.
                            if own_l2_n_sets:
                                cache_set = own_l2_sets[line % own_l2_n_sets]
                                dirty = cache_set.pop(line, None)
                                if dirty is not None:
                                    own_l2_stats.hits += 1
                                    cache_set[line] = dirty
                                    if local_time > mem_done:
                                        mem_done = local_time
                                    continue
                                own_l2_stats.misses += 1
                                if len(cache_set) >= own_l2_ways:
                                    if cache_set.pop(next(iter(cache_set))):
                                        own_l2_stats.writebacks += 1
                                        own_dram.writes += 1
                                        local_fills += 1
                                cache_set[line] = False
                            else:
                                own_l2_stats.misses += 1
                            own_dram.reads += 1
                            local_fills += 1
                        else:
                            c_remote_homes += 1
                            c_remote_loads += 1
                            time = base_time
                            if has_l15:
                                if l15_n_sets:
                                    cache_set = l15_sets[line % l15_n_sets]
                                    dirty = cache_set.pop(line, None)
                                    if dirty is not None:
                                        l15_stats.hits += 1
                                        cache_set[line] = dirty
                                        done = base_time + l15_hit_latency
                                        if done > mem_done:
                                            mem_done = done
                                        continue
                                    l15_stats.misses += 1
                                    if len(cache_set) >= l15_ways:
                                        if cache_set.pop(next(iter(cache_set))):
                                            l15_stats.writebacks += 1
                                    cache_set[line] = False
                                else:
                                    l15_stats.misses += 1
                                time = base_time + l15_miss_penalty
                            for hop_transfer, hop_latency in req_hops[home]:
                                time = hop_transfer(time, request_bytes) + hop_latency
                            time = time + l2_hit_by[home]
                            n_sets = l2_n_sets_by[home]
                            stats = l2_stats_by[home]
                            if n_sets:
                                cache_set = l2_sets_by[home][line % n_sets]
                                dirty = cache_set.pop(line, None)
                                if dirty is not None:
                                    stats.hits += 1
                                    cache_set[line] = dirty
                                    done = time
                                    for hop_transfer, hop_latency in resp_hops[home]:
                                        done = (
                                            hop_transfer(done, response_bytes)
                                            + hop_latency
                                        )
                                    if done > mem_done:
                                        mem_done = done
                                    continue
                                stats.misses += 1
                                dram = drams[home]
                                fills = 1
                                if len(cache_set) >= l2_ways_by[home]:
                                    if cache_set.pop(next(iter(cache_set))):
                                        stats.writebacks += 1
                                        dram.writes += 1
                                        fills = 2
                                cache_set[line] = False
                            else:
                                stats.misses += 1
                                dram = drams[home]
                                fills = 1
                            dram.reads += 1
                            done = (
                                dram_run_by[home](time, dram.line_bytes, fills)
                                + dram.latency_cycles
                            )
                            for hop_transfer, hop_latency in resp_hops[home]:
                                done = hop_transfer(done, response_bytes) + hop_latency
                            if done > mem_done:
                                mem_done = done
                    if local_fills:
                        done = (
                            own_dram_run(local_time, own_line_bytes, local_fills)
                            + own_dram_latency
                        )
                        if done > mem_done:
                            mem_done = done
            if writes:
                c_stores += len(writes)
                store_time = now + xbar_latency
                local_write_time = store_time + own_l2_hit
                local_fills = 0
                for trip in writes:
                    line = trip[0]
                    # Inline write-through no-allocate L1 touch.
                    if l1_n_sets:
                        cache_set = l1_sets[trip[1]]
                        dirty = cache_set.pop(line, None)
                        if dirty is not None:
                            c_l1_hits += 1
                            c_l1_write_hits += 1
                            cache_set[line] = dirty or l1_track_dirty
                        else:
                            c_l1_bypasses += 1
                    else:
                        c_l1_bypasses += 1
                    home_key = trip[2]
                    if line_interleaved:
                        home = home_key
                    elif page_map_get is not None:
                        home = page_map_get(home_key)
                        if home is None:
                            home = partition_of_page(home_key, gpm_id)
                    else:
                        home = partition_of_page(home_key, gpm_id)
                    if home == gpm_id:
                        c_local_homes += 1
                        if l15_caches_local:
                            if l15_n_sets:
                                cache_set = l15_sets[line % l15_n_sets]
                                dirty = cache_set.pop(line, None)
                                if dirty is not None:
                                    l15_stats.hits += 1
                                    l15_stats.write_hits += 1
                                    cache_set[line] = dirty or l15_track_dirty
                                else:
                                    l15_stats.bypasses += 1
                            else:
                                l15_stats.bypasses += 1
                        if own_l2_n_sets:
                            cache_set = own_l2_sets[line % own_l2_n_sets]
                            dirty = cache_set.pop(line, None)
                            if dirty is not None:
                                own_l2_stats.hits += 1
                                own_l2_stats.write_hits += 1
                                cache_set[line] = dirty or own_l2_track
                                continue
                            own_l2_stats.misses += 1
                            own_l2_stats.write_misses += 1
                            if len(cache_set) >= own_l2_ways:
                                if cache_set.pop(next(iter(cache_set))):
                                    own_l2_stats.writebacks += 1
                                    own_dram.writes += 1
                                    local_fills += 1
                            cache_set[line] = own_l2_track
                        else:
                            own_l2_stats.misses += 1
                            own_l2_stats.write_misses += 1
                        # Write-allocate fill, batched like the read path.
                        own_dram.reads += 1
                        local_fills += 1
                    else:
                        c_remote_homes += 1
                        c_remote_stores += 1
                        if has_l15:
                            if l15_n_sets:
                                cache_set = l15_sets[line % l15_n_sets]
                                dirty = cache_set.pop(line, None)
                                if dirty is not None:
                                    l15_stats.hits += 1
                                    l15_stats.write_hits += 1
                                    cache_set[line] = dirty or l15_track_dirty
                                else:
                                    l15_stats.bypasses += 1
                            else:
                                l15_stats.bypasses += 1
                        time = store_time
                        for hop_transfer, hop_latency in req_hops[home]:
                            time = hop_transfer(time, store_bytes) + hop_latency
                        time = time + l2_hit_by[home]
                        n_sets = l2_n_sets_by[home]
                        stats = l2_stats_by[home]
                        track_dirty = l2_track_by[home]
                        if n_sets:
                            cache_set = l2_sets_by[home][line % n_sets]
                            dirty = cache_set.pop(line, None)
                            if dirty is not None:
                                stats.hits += 1
                                stats.write_hits += 1
                                cache_set[line] = dirty or track_dirty
                                continue
                            stats.misses += 1
                            stats.write_misses += 1
                            dram = drams[home]
                            fills = 1
                            if len(cache_set) >= l2_ways_by[home]:
                                if cache_set.pop(next(iter(cache_set))):
                                    stats.writebacks += 1
                                    dram.writes += 1
                                    fills = 2
                            cache_set[line] = track_dirty
                        else:
                            stats.misses += 1
                            stats.write_misses += 1
                            dram = drams[home]
                            fills = 1
                        dram.reads += 1
                        dram_run_by[home](time, dram.line_bytes, fills)
                if local_fills:
                    own_dram_run(local_write_time, own_line_bytes, local_fills)
            return mem_done

        def flush():
            nonlocal c_loads, c_stores, c_remote_loads, c_remote_stores
            nonlocal c_local_homes, c_remote_homes
            nonlocal c_l1_hits, c_l1_misses, c_l1_writebacks
            nonlocal c_l1_bypasses, c_l1_write_hits
            if not (c_loads or c_stores):
                return
            self.loads += c_loads
            self.stores += c_stores
            self.remote_loads += c_remote_loads
            self.remote_stores += c_remote_stores
            page_table.local_resolutions += c_local_homes
            page_table.remote_resolutions += c_remote_homes
            xbar.local_requests += c_local_homes
            xbar.remote_requests += c_remote_homes
            l1_stats.hits += c_l1_hits
            l1_stats.misses += c_l1_misses
            l1_stats.writebacks += c_l1_writebacks
            l1_stats.bypasses += c_l1_bypasses
            l1_stats.write_hits += c_l1_write_hits
            c_loads = 0
            c_stores = 0
            c_remote_loads = 0
            c_remote_stores = 0
            c_local_homes = 0
            c_remote_homes = 0
            c_l1_hits = 0
            c_l1_misses = 0
            c_l1_writebacks = 0
            c_l1_bypasses = 0
            c_l1_write_hits = 0

        self._walker_flushes.append(flush)
        return walk

    # ------------------------------------------------------------------
    # page migration (MigratingFirstTouch extension)
    # ------------------------------------------------------------------

    def _charge_migration(self, now: float) -> None:
        """Charge the bandwidth cost of a page copy between partitions.

        The copy runs asynchronously (the triggering access is served from
        the new home immediately), but its DRAM read, ring transfer, and
        DRAM write consume real bandwidth at ``now`` — over-eager
        migration therefore costs measurable throughput.
        """
        policy = self._migrating_policy
        page_addr, old_home, new_home = policy.pending_migration
        policy.pending_migration = None
        address_map = self.system.address_map
        page_bytes = address_map.page_bytes
        lines = address_map.lines_per_page
        source = self._gpms[old_home]
        destination = self._gpms[new_home]
        source.dram.pipe.transfer(now, page_bytes)
        source.dram.reads += lines
        arrival = self._ring.transfer(now, old_home, new_home, page_bytes, REQUEST)
        destination.dram.pipe.transfer(arrival, page_bytes)
        destination.dram.writes += lines
        self.migration_bytes += page_bytes

    # ------------------------------------------------------------------
    # home-partition access (memory-side L2 in front of local DRAM)
    # ------------------------------------------------------------------

    # Both partition paths inline the L2 lookup and the DRAM pipe charge:
    # they mirror ``SetAssocCache.access`` / ``DRAMPartition`` line for
    # line (same counters, same LRU dict operations, same pipe-charge
    # order: write-back before fill), trading the two hottest remaining
    # call chains for direct dict work.  (``reset_stats`` now zeroes the
    # stats object in place, so binding it per call is a convenience, not
    # a correctness requirement.)

    def _partition_read(self, now: float, home: int, line_addr: int) -> float:
        gpm = self._gpms[home]
        l2 = gpm.l2
        stats = l2.stats
        time = now + gpm.l2_hit_latency
        n_sets = l2.n_sets
        dram = gpm.dram
        if n_sets:
            cache_set = l2._sets[line_addr % n_sets]
            if line_addr in cache_set:
                stats.hits += 1
                cache_set[line_addr] = cache_set.pop(line_addr)
                return time
            stats.misses += 1
            if len(cache_set) >= l2.ways:
                if cache_set.pop(next(iter(cache_set))):
                    stats.writebacks += 1
                    dram.writes += 1
                    dram.pipe.transfer(time, dram.line_bytes)
            cache_set[line_addr] = False
        else:
            stats.misses += 1
        dram.reads += 1
        return dram.pipe.transfer(time, dram.line_bytes) + dram.latency_cycles

    def _partition_write(self, now: float, home: int, line_addr: int) -> float:
        gpm = self._gpms[home]
        l2 = gpm.l2
        stats = l2.stats
        time = now + gpm.l2_hit_latency
        n_sets = l2.n_sets
        dram = gpm.dram
        track_dirty = l2._track_dirty
        if n_sets:
            cache_set = l2._sets[line_addr % n_sets]
            if line_addr in cache_set:
                stats.hits += 1
                stats.write_hits += 1
                cache_set[line_addr] = cache_set.pop(line_addr) or track_dirty
                return time
            stats.misses += 1
            stats.write_misses += 1
            if len(cache_set) >= l2.ways:
                if cache_set.pop(next(iter(cache_set))):
                    stats.writebacks += 1
                    dram.writes += 1
                    dram.pipe.transfer(time, dram.line_bytes)
            cache_set[line_addr] = track_dirty
        else:
            stats.misses += 1
            stats.write_misses += 1
        # Write-allocate: the line is fetched into the L2 before the merge.
        dram.reads += 1
        return dram.pipe.transfer(time, dram.line_bytes) + dram.latency_cycles

    # ------------------------------------------------------------------

    @property
    def accesses(self) -> int:
        """Total loads and stores observed."""
        return self.loads + self.stores

    def counter_snapshot(self):
        """``(loads, stores, remote_loads, remote_stores)`` right now.

        Telemetry samples this at window boundaries to form per-window
        deltas; it is read-only and never touches timing state.
        """
        return (self.loads, self.stores, self.remote_loads, self.remote_stores)

    @property
    def remote_fraction(self) -> float:
        """Fraction of L1-missing traffic whose home partition was remote."""
        routed = sum(gpm.xbar.total_requests for gpm in self.system.gpms)
        if not routed:
            return 0.0
        remote = sum(gpm.xbar.remote_requests for gpm in self.system.gpms)
        return remote / routed

    def reset(self) -> None:
        """Clear counters for a fresh simulation."""
        self.loads = 0
        self.stores = 0
        self.remote_loads = 0
        self.remote_stores = 0
        self.migration_bytes = 0
