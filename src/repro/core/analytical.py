"""Analytical models: link sizing (Section 3.3.1) and a fast predictor tier.

Two layers live here:

* The paper's first-principles **link sizing model** — with ``n`` GPMs,
  per-partition DRAM bandwidth ``b``, and an L2 hit rate ``h``, each
  memory-side L2 slice supplies ``b / (1 - h)`` of demand bandwidth
  (``2b`` at the assumed ~50% hit rate).  Under a statistically uniform
  address distribution a fraction ``(n-1)/n`` of each slice's supply is
  consumed by remote GPMs, and on a ring every message additionally
  occupies one link per hop.  The headline result reproduced here: for
  the 4-GPM, 3 TB/s machine the bandwidth demand through each GPM's ring
  ports is ``4b`` (= 3 TB/s), so "link bandwidth settings of less than
  3 TB/s are expected to result in performance degradation due to NUMA
  effects" — which Figure 4 then confirms in simulation.

* A per-(workload, config) **analytical predictor**
  (:func:`predict_cycles`) that estimates kernel cycles and link traffic
  from a static :class:`~repro.workloads.characterize.WorkloadProfile`
  plus the config's topology/link/cache/placement knobs — no simulation.
  It mirrors the exact simulator's cost structure (issue throughput,
  DRAM and link bandwidth pipes, memory latency chains) as a smooth max
  of bound terms.  It is *not* bit-accurate; `repro.validate.analytical`
  calibrates its error against the golden store and the successive-
  halving router only ever uses it conservatively, within those blessed
  error bands (see `repro.explore.analytical`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Tuple

from ..interconnect import topology as _topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (config imports nothing from us)
    from .config import SystemConfig
    from ..workloads.characterize import WorkloadProfile

#: Bytes of a remote request header on the inter-GPM network (memsys).
REQUEST_HEADER_BYTES = 64.0
#: Placement policies that spread lines uniformly across partitions.
UNIFORM_PLACEMENTS = frozenset({"interleave", "round_robin_page"})
#: Fraction of the profile's measured first-touch page locality each CTA
#: scheduler realizes.  The distributed scheduler's contiguous-block CTA
#: binding is exactly what the locality table measures (1.0); the dynamic
#: scheduler's finer batches and work stealing give up some of it; the
#: centralized scheduler re-binds CTAs arbitrarily on every launch, so
#: first-touch placement recovers nothing over uniform (0.0).
SCHEDULER_LOCALITY = {
    "distributed": 1.0,
    "dynamic": 0.8,
    "centralized": 0.0,
}
#: Exponent of the smooth-max (p-norm) combining the bound terms.
SMOOTH_MAX_P = 4.0
#: Link serialization overlap model.  Unlike DRAM service (absorbed into
#: the latency chains' round-trip term), link serialization in the exact
#: simulator is charged per hop *inside* each remote round trip, so a
#: fraction of it extends the critical path even when the fabric is far
#: from saturated.  Two regimes, fitted against exact-simulator
#: bandwidth sweeps:
#:
#: * Uniform placements spread traffic evenly over every link and both
#:   virtual channels, so queueing is mild and roughly
#:   utilization-independent: a constant ``UNIFORM`` fraction of the
#:   serialization cycles lands on the critical path.
#: * First-touch concentrates the residual remote traffic on few homes
#:   (shared pages are homed wherever the first-touching block lives),
#:   so the balanced capacity is optimistic and the exposed fraction
#:   grows with utilization: ``BASE + SLOPE * link_k / core``, capped at
#:   fully additive.
LINK_SERIAL_UNIFORM = 0.08
LINK_SERIAL_BASE = 0.30
LINK_SERIAL_SLOPE = 0.30


def supply_bandwidth_per_partition(dram_bandwidth_per_partition: float, l2_hit_rate: float) -> float:
    """Demand bandwidth one memory-side L2 slice can satisfy.

    A hit rate of ``h`` amplifies DRAM bandwidth by ``1 / (1 - h)``: for
    every miss serviced by DRAM, ``h / (1 - h)`` further requests are
    served from the cache.
    """
    if not 0.0 <= l2_hit_rate < 1.0:
        raise ValueError(f"l2_hit_rate must be in [0, 1), got {l2_hit_rate}")
    return dram_bandwidth_per_partition / (1.0 - l2_hit_rate)


def ring_average_hops(n_gpms: int) -> float:
    """Mean shortest-path hop count between distinct nodes of a ring."""
    if n_gpms <= 1:
        return 0.0
    total = 0
    for distance in range(1, n_gpms):
        total += min(distance, n_gpms - distance)
    return total / (n_gpms - 1)


def average_hops(n_gpms: int, topology: str = "ring") -> float:
    """Mean shortest-path hops between distinct nodes for a topology.

    Dispatches through the :mod:`repro.interconnect.topology` registry
    (BFS over the fabric's edge list); unknown topologies fail loudly.
    For the ring this matches :func:`ring_average_hops` exactly.
    """
    return _topology.average_hops(topology, n_gpms)


def remote_distance_pmf(n_gpms: int, topology: str = "ring") -> List[Tuple[int, float]]:
    """Distribution of shortest-path hop counts to a *remote* node.

    Returns ``[(hops, probability), ...]`` over the ``n - 1`` remote
    destinations of one node, uniformly weighted, computed by BFS from
    the topology registry's edge list.  The latency model needs the full
    distribution (not just the mean): a trace record's memory time is
    the *max* over its accesses' round trips, and the slowest leg is
    governed by the tail of this distribution, which stretches with
    fabric size.
    """
    return _topology.remote_distance_pmf(topology, n_gpms)


def topology_ports(n_gpms: int, topology: str = "ring") -> float:
    """Mean directional links touching one GPM (its network port count).

    Derived from the registry's edge list (``2 * links / n``), so it is
    exact for node-symmetric fabrics — a ring of three or more nodes
    gives every GPM four directional links, the degenerate two-node ring
    has a single pair (two ports), all-to-all has an in/out pair per
    peer — and an average for irregular ones (mesh corner nodes have
    fewer ports than interior nodes).
    """
    if n_gpms <= 1:
        return 0.0
    return _topology.mean_ports(topology, n_gpms)


def topology_link_count(n_gpms: int, topology: str = "ring") -> int:
    """Distinct directional links in the fabric (two per physical pair)."""
    return _topology.link_count(topology, n_gpms)


@dataclass(frozen=True)
class BandwidthRequirement:
    """Output of the sizing model, all figures in GB/s (== bytes/cycle)."""

    #: Traffic leaving each GPM for remote consumers.
    egress_per_gpm: float
    #: Traffic arriving at each GPM from remote suppliers.
    ingress_per_gpm: float
    #: Total link-hop volume across the whole fabric (egress x average hops).
    total_link_hop_volume: float
    #: Bandwidth demand through one GPM's network ports — the quantity that
    #: must not exceed the GPM's aggregate link bandwidth.
    per_gpm_link_demand: float
    #: Average volume per directional link.
    per_link_volume: float
    #: Distinct directional links in the fabric.
    n_links: int = 0
    #: Mean directional links touching one GPM.
    ports_per_gpm: float = 0.0


def required_link_bandwidth(
    n_gpms: int,
    dram_bandwidth_per_partition: float,
    l2_hit_rate: float = 0.5,
    topology: str = "ring",
) -> BandwidthRequirement:
    """Size the inter-GPM links for full DRAM utilization (Section 3.3.1).

    For ``n_gpms=4``, ``b=768`` GB/s, ``h=0.5`` this reproduces the paper's
    ``4b`` (3 TB/s) per-GPM demand: each slice supplies ``2b``; ``3/4`` of
    that is remote, so egress = ingress = ``1.5b`` per GPM; the 4/3 average
    hop count adds pass-through traffic, and the volume through each GPM's
    four directional ring ports works out to ``4b``.

    Degenerate and non-ring fabrics are counted exactly: a two-node ring
    has one neighbor pair (two directional links, two ports per GPM — not
    the four a larger ring has), and a fully connected fabric has an
    in/out link pair per peer with single-hop delivery, so per-GPM demand
    is exactly egress + ingress (no pass-through traffic).
    """
    if n_gpms <= 0:
        raise ValueError(f"n_gpms must be positive, got {n_gpms}")
    supply = supply_bandwidth_per_partition(dram_bandwidth_per_partition, l2_hit_rate)
    if n_gpms == 1:
        return BandwidthRequirement(0.0, 0.0, 0.0, 0.0, 0.0, 0, 0)
    remote_fraction = (n_gpms - 1) / n_gpms
    egress = supply * remote_fraction
    total_egress = egress * n_gpms
    avg_hops = average_hops(n_gpms, topology)
    total_volume = total_egress * avg_hops
    n_links = topology_link_count(n_gpms, topology)
    ports = topology_ports(n_gpms, topology)
    per_link = total_volume / n_links
    # Volume through one GPM's ports: every hop of every message enters
    # one port and leaves another, so port-volume is evenly split when
    # traffic is uniform — per-link average times the port count.
    per_gpm = per_link * ports
    return BandwidthRequirement(
        egress_per_gpm=egress,
        ingress_per_gpm=egress,
        total_link_hop_volume=total_volume,
        per_gpm_link_demand=per_gpm,
        per_link_volume=per_link,
        n_links=n_links,
        ports_per_gpm=ports,
    )


def expected_slowdown_bound(
    link_bandwidth_per_gpm: float,
    required_per_gpm: float,
) -> float:
    """Upper bound on achievable throughput fraction from link sizing alone.

    If the links provide less than the required bandwidth, DRAM cannot be
    kept busy and throughput of a bandwidth-bound workload is capped at
    ``provided / required``.  Values >= 1 mean the links are not the
    bottleneck.
    """
    if required_per_gpm <= 0:
        return 1.0
    return min(1.0, link_bandwidth_per_gpm / required_per_gpm)


@dataclass(frozen=True)
class CollapsePoint:
    """Where a topology's fabric stops keeping DRAM busy at scale.

    Two independent bounds, both as the minimum per-link bandwidth
    *setting* (GB/s, the ``config.link_bandwidth`` knob) at which the
    fabric just meets uniform-traffic demand; below either, bandwidth-
    bound workloads degrade:

    * **port-limited** — the average directional link must carry its
      share of hop volume within its half-duplex capacity;
    * **bisection-limited** — traffic crossing the half-split must fit
      the bisection bandwidth.  For the hierarchical fabric the bisection
      is a *fixed* board ring that does not scale with the link setting,
      so past a node count no setting suffices (``math.inf``).
    """

    topology: str
    n_gpms: int
    #: Uniform cross-half traffic demand, GB/s (both directions).
    bisection_demand: float
    #: Minimum link setting to satisfy the per-link volume bound.
    port_limited_gbps: float
    #: Minimum link setting to satisfy the bisection bound (inf when the
    #: fabric's fixed bottleneck is below demand at any setting).
    bisection_limited_gbps: float

    @property
    def collapse_gbps(self) -> float:
        """The binding bound: the larger of the two minima."""
        return max(self.port_limited_gbps, self.bisection_limited_gbps)

    @property
    def board_limited(self) -> bool:
        """True when no link setting can meet demand (fixed bottleneck)."""
        return math.isinf(self.bisection_limited_gbps)

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary for reports and artifacts (inf as ``null``)."""
        bisection = self.bisection_limited_gbps
        collapse = self.collapse_gbps
        return {
            "topology": self.topology,
            "n_gpms": self.n_gpms,
            "bisection_demand_gbps": self.bisection_demand,
            "port_limited_gbps": self.port_limited_gbps,
            "bisection_limited_gbps": None if math.isinf(bisection) else bisection,
            "collapse_gbps": None if math.isinf(collapse) else collapse,
            "board_limited": self.board_limited,
        }


def bisection_collapse(
    n_gpms: int,
    topology: str = "ring",
    dram_bandwidth_per_partition: float = 768.0,
    l2_hit_rate: float = 0.5,
) -> CollapsePoint:
    """Find a topology's collapse point under uniform traffic.

    Uses the Section 3.3.1 demand model (each L2 slice supplies
    ``b / (1 - h)``, a ``(n-1)/n`` fraction of it remote) and the
    topology registry's bisection accounting.  The 4-GPM ring reproduces
    the paper's sizing result: both bounds land at the 1.5 TB/s setting
    below which Figure 4 shows degradation.
    """
    if n_gpms <= 1:
        return CollapsePoint(topology, n_gpms, 0.0, 0.0, 0.0)
    requirement = required_link_bandwidth(
        n_gpms, dram_bandwidth_per_partition, l2_hit_rate, topology
    )
    # Port bound: the mean directional link carries per_link_volume and
    # has capacity link_setting / 2.
    port_limited = 2.0 * requirement.per_link_volume
    # Bisection bound: egress spread uniformly over n-1 destinations;
    # ordered cross-half pairs each carry egress / (n-1).
    half = n_gpms // 2
    cross_pairs = 2 * half * (n_gpms - half)
    demand = requirement.egress_per_gpm * cross_pairs / (n_gpms - 1)
    # bisection(setting) = fixed + slope * setting, from two probes.
    fixed = _topology.bisection_bandwidth(topology, n_gpms, 0.0)
    slope = _topology.bisection_bandwidth(topology, n_gpms, 1.0) - fixed
    if demand <= fixed:
        bisection_limited = 0.0
    elif slope <= 0.0:
        bisection_limited = math.inf
    else:
        bisection_limited = (demand - fixed) / slope
    return CollapsePoint(
        topology=topology,
        n_gpms=n_gpms,
        bisection_demand=demand,
        port_limited_gbps=port_limited,
        bisection_limited_gbps=bisection_limited,
    )


# ---------------------------------------------------------------------------
# Per-(workload, config) analytical predictor
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AnalyticalPrediction:
    """Predicted execution profile of one (workload, config) pair.

    ``cycles`` is the headline quantity; the bound terms it was combined
    from and the cache/traffic estimates behind them are kept for
    reports and calibration diagnostics.  All byte figures are workload
    totals; ``per_gpm_link_demand`` is bytes/cycle at the predicted
    runtime.
    """

    workload: str
    system: str
    cycles: float
    issue_cycles: float
    dram_cycles: float
    link_cycles: float
    latency_cycles: float
    l1_hit_rate: float
    l15_hit_rate: float
    l2_hit_rate: float
    remote_fraction: float
    link_bytes: float
    dram_bytes: float
    per_gpm_link_demand: float

    def to_dict(self) -> Dict[str, float]:
        """Flat dictionary for reports and calibration artifacts."""
        return {
            "workload": self.workload,
            "system": self.system,
            "cycles": self.cycles,
            "issue_cycles": self.issue_cycles,
            "dram_cycles": self.dram_cycles,
            "link_cycles": self.link_cycles,
            "latency_cycles": self.latency_cycles,
            "l1_hit_rate": self.l1_hit_rate,
            "l15_hit_rate": self.l15_hit_rate,
            "l2_hit_rate": self.l2_hit_rate,
            "remote_fraction": self.remote_fraction,
            "link_bytes": self.link_bytes,
            "dram_bytes": self.dram_bytes,
            "per_gpm_link_demand": self.per_gpm_link_demand,
        }


def predicted_remote_fraction(profile: "WorkloadProfile", config: "SystemConfig") -> float:
    """Fraction of post-L1 traffic homed on a remote partition.

    Uniform placements (fine-grain interleave, round-robin pages) pin
    this at ``(n-1)/n``.  First-touch-style placements are evaluated
    against the profile's measured page-locality table at the config's
    page size and GPM count — the fraction of accesses whose CTA shares a
    contiguous CTA block with the page's first toucher — scaled by how
    much of that block binding the scheduler actually realizes
    (:data:`SCHEDULER_LOCALITY`).
    """
    n = config.n_gpms
    if n <= 1:
        return 0.0
    uniform = (n - 1) / n
    if config.placement in UNIFORM_PLACEMENTS:
        return uniform
    realized = SCHEDULER_LOCALITY.get(config.scheduler, 0.5)
    measured = profile.page_local_fraction(config.page_bytes, n)
    local = realized * measured + (1.0 - realized) * (1.0 / n)
    return max(0.0, 1.0 - local)


def _l1_hit_rate(profile: "WorkloadProfile", config: "SystemConfig") -> float:
    """Per-CTA reuse captured by the private L1, with capacity pressure."""
    accesses = profile.per_cta_accesses
    distinct = profile.per_cta_distinct_lines
    if accesses <= 0:
        return 0.0
    reuse = max(0.0, 1.0 - distinct / accesses)
    sm = config.gpm.sm
    l1_lines = sm.l1.size_bytes / max(1, sm.l1.line_bytes)
    working_set = max(1.0, distinct * sm.max_resident_ctas)
    return reuse * min(1.0, l1_lines / working_set)


def _expected_max_latency(atoms, draws: float) -> float:
    """Expected maximum of ``draws`` iid samples from a discrete latency law.

    ``atoms`` is ``[(latency, probability), ...]``; the engine completes a
    record's accesses in parallel and advances the CTA's chain at the
    *last* completion, so the per-record memory time is an order
    statistic, not a mean.  ``E[max] = sum lat * (F(lat)^k - F(lat-)^k)``
    over the sorted support; fewer than one draw falls back to the mean.
    """
    if draws <= 1.0:
        return sum(lat * p for lat, p in atoms)
    expectation = 0.0
    cdf = 0.0
    prev_pow = 0.0
    for lat, p in sorted(atoms):
        if p <= 0.0:
            continue
        cdf = min(1.0, cdf + p)
        pow_k = cdf**draws
        expectation += lat * (pow_k - prev_pow)
        prev_pow = pow_k
    return expectation


def _shared_cache_hit_rate(
    demand: float,
    distinct: float,
    capacity_lines: float,
) -> float:
    """Reuse x capacity-coverage model for a shared (L1.5/L2) level."""
    if demand <= 0 or distinct <= 0:
        return 0.0
    reuse = max(0.0, 1.0 - distinct / demand)
    coverage = min(1.0, capacity_lines / distinct)
    return reuse * coverage


def predict_cycles(profile: "WorkloadProfile", config: "SystemConfig") -> AnalyticalPrediction:
    """Predict total cycles and link traffic for one (workload, config).

    The model mirrors the exact simulator's cost structure with four
    bound terms — issue/DRAM/latency combined by a smooth max (p-norm,
    so concurrent bottlenecks overlap rather than add) plus a partially
    overlapped link-serialization term:

    * **issue** — every record issues ``compute + accesses`` instruction
      slots through each SM's issue port (``charge_issue`` in the
      engine);
    * **dram** — post-cache line fills and write-backs through the
      aggregate DRAM bandwidth;
    * **link** — remote request/response hop-bytes (64 B headers, 192 B
      line responses, matching ``core.memsys``) through the fabric's
      aggregate directional-link bandwidth;
    * **latency** — CTA waves times each warp group's serial
      record chain at the average memory round-trip latency.
    """
    n = config.n_gpms
    gpm = config.gpm
    line = float(config.line_bytes)
    total_sms = max(1, n * gpm.n_sms)

    # Workload totals, extrapolated from the sampled profile.
    ctas = max(1, profile.n_ctas)
    kernels = max(1, profile.kernel_launches)
    accesses_k = profile.per_cta_accesses * ctas
    stores_k = accesses_k * profile.store_fraction
    loads_k = accesses_k - stores_k
    compute_k = profile.compute_per_access * accesses_k
    distinct_total = max(1.0, profile.distinct_lines_estimate)

    # --- cache filtering -------------------------------------------------
    l1_hit = _l1_hit_rate(profile, config)
    post_l1_loads = loads_k * (1.0 - l1_hit)
    remote_frac = predicted_remote_fraction(profile, config)
    remote_loads = post_l1_loads * remote_frac
    local_loads = post_l1_loads - remote_loads
    remote_stores = stores_k * remote_frac

    # L1.5: a per-GPM cache in front of the fabric.  With REMOTE_ONLY
    # allocation it filters exactly the remote load stream (the only
    # traffic whose round trip it can save); stores write through it.
    l15 = gpm.l15
    l15_hit = 0.0
    if l15 is not None and l15.size_bytes > 0 and remote_loads > 0:
        l15_lines = l15.size_bytes / max(1, l15.line_bytes)
        # Each GPM's remote working set: its share of distinct lines that
        # are homed elsewhere, plus shared lines pulled by every GPM.
        private = distinct_total * (1.0 - profile.shared_line_fraction)
        shared = distinct_total * profile.shared_line_fraction
        remote_distinct_per_gpm = remote_frac * private / n + shared * (n - 1) / n
        l15_hit = _shared_cache_hit_rate(
            remote_loads / n, max(1.0, remote_distinct_per_gpm), l15_lines
        )
    remote_loads_after_l15 = remote_loads * (1.0 - l15_hit)

    # Memory-side L2 (not flushed between kernels: reuse accumulates
    # across the whole workload).
    l2_demand_k = local_loads + remote_loads_after_l15 + stores_k
    l2_lines = n * gpm.l2.size_bytes / max(1, gpm.l2.line_bytes)
    l2_hit = _shared_cache_hit_rate(l2_demand_k * kernels, distinct_total, l2_lines)

    # --- bound terms (per kernel) ---------------------------------------
    instr_k = compute_k + accesses_k
    issue_k = (instr_k / total_sms) / max(1e-9, gpm.sm.issue_throughput)

    dram_bytes_k = l2_demand_k * (1.0 - l2_hit) * line
    dram_k = dram_bytes_k / max(1e-9, n * gpm.dram_bandwidth)

    hops = average_hops(n, config.topology)
    response_bytes = line + REQUEST_HEADER_BYTES
    # Each link direction carries two virtual networks (request: read
    # commands + write data; response: read data — interconnect.link),
    # each granted the full per-direction bandwidth (bw/2 of the
    # full-duplex per-link total).  The serialization bound is therefore
    # set by the *busier channel*, not the combined byte count.
    request_bytes_k = hops * (
        remote_loads_after_l15 * REQUEST_HEADER_BYTES + remote_stores * response_bytes
    )
    response_bytes_k = hops * remote_loads_after_l15 * response_bytes
    link_bytes_k = request_bytes_k + response_bytes_k
    n_links = topology_link_count(n, config.topology)
    # Aggregate per-channel capacity: n_links directions, each at half the
    # per-link full-duplex total.  Rev 7 introduced this split to fix a
    # "systematic 2-GPM underprediction" — which turned out to be partly
    # the simulator's stranded-link bug (two parallel pairs of which
    # routing used one).  Since rev 8 the two-node ring really does have
    # n_links == 2 physical directions, so this count is the fabric's
    # honest capacity with no compensation baked in.
    channel_capacity = n_links * config.link_bandwidth / 2.0
    uniform_traffic = config.placement in UNIFORM_PLACEMENTS
    if channel_capacity <= 0:
        link_k = link_floor = 0.0
    else:
        # Balanced serialization floor: the bytes of the busier virtual
        # channel cannot cross the fabric faster than its capacity.
        link_floor = max(request_bytes_k, response_bytes_k) / channel_capacity
        # First-touch hot-spotting: combined bytes over per-channel
        # capacity approximates the loss from concentrated homes.
        link_k = link_floor if uniform_traffic else link_bytes_k / channel_capacity

    # --- latency term ----------------------------------------------------
    # A record's accesses complete in parallel and the CTA's chain waits
    # for the last one, so per-record memory time is the expected *max*
    # over its loads' round-trip latencies — built from the full hop-
    # distance distribution (the tail stretches with ring size).
    sm = gpm.sm
    l2_lat = gpm.xbar_latency + gpm.l2.hit_latency + (1.0 - l2_hit) * gpm.dram_latency
    load_atoms = [(sm.l1.hit_latency, l1_hit), (l2_lat, (1.0 - l1_hit) * (1.0 - remote_frac))]
    remote_p = (1.0 - l1_hit) * remote_frac
    has_l15 = l15 is not None and l15.size_bytes > 0
    if has_l15:
        load_atoms.append((l15.hit_latency, remote_p * l15_hit))
        remote_p *= 1.0 - l15_hit
    for distance, p in remote_distance_pmf(n, config.topology):
        round_trip = 2.0 * distance * config.hop_latency + l2_lat
        if has_l15:
            round_trip += l15.hit_latency + gpm.l15_miss_penalty
        load_atoms.append((round_trip, remote_p * p))
    loads_per_record = (
        profile.per_cta_accesses
        * (1.0 - profile.store_fraction)
        / max(1.0, profile.per_cta_records)
    )
    per_record = max(
        profile.compute_per_record,
        _expected_max_latency(load_atoms, loads_per_record),
    )
    records_per_group = profile.per_cta_records / max(1.0, profile.groups_per_cta)
    waves = math.ceil(ctas / (total_sms * max(1, sm.max_resident_ctas)))
    latency_k = waves * records_per_group * per_record

    # --- combine ---------------------------------------------------------
    # Issue, DRAM, and latency overlap (concurrent CTAs hide each other's
    # stalls), so they combine as a smooth max.  Link serialization rides
    # inside the remote round trips and partially extends the critical
    # path (see LINK_SERIAL_*), with the balanced per-channel bound as a
    # hard floor.
    p = SMOOTH_MAX_P
    core = (
        max(0.0, issue_k) ** p + max(0.0, dram_k) ** p + max(0.0, latency_k) ** p
    ) ** (1.0 / p)
    if link_k > 0.0 and core > 0.0:
        if uniform_traffic:
            overlap = LINK_SERIAL_UNIFORM
        else:
            overlap = min(1.0, LINK_SERIAL_BASE + LINK_SERIAL_SLOPE * link_k / core)
        kernel_cycles = max(core + link_k * overlap, link_floor)
    else:
        kernel_cycles = max(core, link_k)
    cycles = max(1.0, kernels * kernel_cycles)

    link_bytes = link_bytes_k * kernels
    return AnalyticalPrediction(
        workload=profile.name,
        system=config.name,
        cycles=cycles,
        issue_cycles=issue_k * kernels,
        dram_cycles=dram_k * kernels,
        link_cycles=link_k * kernels,
        latency_cycles=latency_k * kernels,
        l1_hit_rate=l1_hit,
        l15_hit_rate=l15_hit,
        l2_hit_rate=l2_hit,
        remote_fraction=remote_frac,
        link_bytes=link_bytes,
        dram_bytes=dram_bytes_k * kernels,
        per_gpm_link_demand=(link_bytes / cycles) * topology_ports(n, config.topology) / max(1, n_links)
        if n_links
        else 0.0,
    )


def predict_speedup(
    profile: "WorkloadProfile",
    candidate: "SystemConfig",
    baseline: "SystemConfig",
) -> float:
    """Predicted speedup of ``candidate`` over ``baseline`` on one workload.

    Any constant calibration scale on predicted cycles cancels in the
    ratio, which is why the router only needs a *score* error band, not
    absolute-cycle accuracy.
    """
    return predict_cycles(profile, baseline).cycles / predict_cycles(profile, candidate).cycles


def predict_suite_score(
    profiles: Iterable["WorkloadProfile"],
    candidate: "SystemConfig",
    baseline: "SystemConfig",
) -> float:
    """Geomean predicted speedup over a workload suite — the rung score."""
    log_sum = 0.0
    count = 0
    for profile in profiles:
        log_sum += math.log(predict_speedup(profile, candidate, baseline))
        count += 1
    if count == 0:
        raise ValueError("predict_suite_score needs at least one profile")
    return math.exp(log_sum / count)


def predicted_objectives(
    profiles: Iterable["WorkloadProfile"],
    candidate: "SystemConfig",
    baseline: "SystemConfig",
) -> Dict[str, float]:
    """Analytical stand-in for ``explore.search.objectives_of``.

    Same keys (``geomean_speedup`` / ``link_bandwidth`` /
    ``energy_joules`` / ``area_mm2``) so screened-out candidates still
    rank and plot, with energy derived from predicted traffic through
    the same per-tier energy model the simulator uses and area from the
    budget cost model (exact — no prediction involved).
    """
    from .budget import package_cost
    from .energy import IntegrationTier, breakdown_from_traffic

    tier = IntegrationTier(candidate.link_tier)
    log_sum = 0.0
    count = 0
    energy = 0.0
    for profile in profiles:
        base = predict_cycles(profile, baseline)
        cand = predict_cycles(profile, candidate)
        log_sum += math.log(base.cycles / cand.cycles)
        count += 1
        accesses = profile.per_cta_accesses * max(1, profile.n_ctas) * max(1, profile.kernel_launches)
        breakdown = breakdown_from_traffic(
            on_chip_bytes=accesses * candidate.line_bytes,
            inter_module_bytes=cand.link_bytes,
            dram_bytes=cand.dram_bytes,
            inter_module_tier=tier,
        )
        energy += breakdown.total_joules
    if count == 0:
        raise ValueError("predicted_objectives needs at least one profile")
    return {
        "geomean_speedup": math.exp(log_sum / count),
        "link_bandwidth": float(candidate.link_bandwidth),
        "energy_joules": energy,
        "area_mm2": package_cost(candidate).area_mm2,
    }
