"""Analytical on-package bandwidth sizing model (Section 3.3.1).

The paper sizes inter-GPM links from first principles before simulating:
with ``n`` GPMs, per-partition DRAM bandwidth ``b``, and an L2 hit rate
``h``, each memory-side L2 slice supplies ``b / (1 - h)`` of demand
bandwidth (``2b`` at the assumed ~50% hit rate).  Under a statistically
uniform address distribution a fraction ``(n-1)/n`` of each slice's supply
is consumed by remote GPMs, and on a ring every message additionally
occupies one link per hop.

The headline result reproduced here: for the 4-GPM, 3 TB/s machine the
bandwidth demand through each GPM's ring ports is ``4b`` (= 3 TB/s), so
"link bandwidth settings of less than 3 TB/s are expected to result in
performance degradation due to NUMA effects" — which Figure 4 then
confirms in simulation.
"""

from __future__ import annotations

from dataclasses import dataclass


def supply_bandwidth_per_partition(dram_bandwidth_per_partition: float, l2_hit_rate: float) -> float:
    """Demand bandwidth one memory-side L2 slice can satisfy.

    A hit rate of ``h`` amplifies DRAM bandwidth by ``1 / (1 - h)``: for
    every miss serviced by DRAM, ``h / (1 - h)`` further requests are
    served from the cache.
    """
    if not 0.0 <= l2_hit_rate < 1.0:
        raise ValueError(f"l2_hit_rate must be in [0, 1), got {l2_hit_rate}")
    return dram_bandwidth_per_partition / (1.0 - l2_hit_rate)


def ring_average_hops(n_gpms: int) -> float:
    """Mean shortest-path hop count between distinct nodes of a ring."""
    if n_gpms <= 1:
        return 0.0
    total = 0
    for distance in range(1, n_gpms):
        total += min(distance, n_gpms - distance)
    return total / (n_gpms - 1)


@dataclass(frozen=True)
class BandwidthRequirement:
    """Output of the sizing model, all figures in GB/s (== bytes/cycle)."""

    #: Traffic leaving each GPM for remote consumers.
    egress_per_gpm: float
    #: Traffic arriving at each GPM from remote suppliers.
    ingress_per_gpm: float
    #: Total link-hop volume across the whole ring (egress x average hops).
    total_link_hop_volume: float
    #: Bandwidth demand through one GPM's ring ports — the quantity that
    #: must not exceed the GPM's aggregate link bandwidth.
    per_gpm_link_demand: float
    #: Average volume per directional link.
    per_link_volume: float


def required_link_bandwidth(
    n_gpms: int,
    dram_bandwidth_per_partition: float,
    l2_hit_rate: float = 0.5,
) -> BandwidthRequirement:
    """Size the inter-GPM links for full DRAM utilization (Section 3.3.1).

    For ``n_gpms=4``, ``b=768`` GB/s, ``h=0.5`` this reproduces the paper's
    ``4b`` (3 TB/s) per-GPM demand: each slice supplies ``2b``; ``3/4`` of
    that is remote, so egress = ingress = ``1.5b`` per GPM; the 4/3 average
    hop count adds pass-through traffic, and the volume through each GPM's
    four directional ring ports works out to ``4b``.
    """
    if n_gpms <= 0:
        raise ValueError(f"n_gpms must be positive, got {n_gpms}")
    supply = supply_bandwidth_per_partition(dram_bandwidth_per_partition, l2_hit_rate)
    if n_gpms == 1:
        return BandwidthRequirement(0.0, 0.0, 0.0, 0.0, 0.0)
    remote_fraction = (n_gpms - 1) / n_gpms
    egress = supply * remote_fraction
    total_egress = egress * n_gpms
    avg_hops = ring_average_hops(n_gpms)
    total_volume = total_egress * avg_hops
    n_links = 2 * n_gpms  # two directions per adjacent pair
    per_link = total_volume / n_links
    # Each GPM touches four directional links (in/out, both neighbors).
    per_gpm = per_link * 4
    return BandwidthRequirement(
        egress_per_gpm=egress,
        ingress_per_gpm=egress,
        total_link_hop_volume=total_volume,
        per_gpm_link_demand=per_gpm,
        per_link_volume=per_link,
    )


def expected_slowdown_bound(
    link_bandwidth_per_gpm: float,
    required_per_gpm: float,
) -> float:
    """Upper bound on achievable throughput fraction from link sizing alone.

    If the links provide less than the required bandwidth, DRAM cannot be
    kept busy and throughput of a bandwidth-bound workload is capped at
    ``provided / required``.  Values >= 1 mean the links are not the
    bottleneck.
    """
    if required_per_gpm <= 0:
        return 1.0
    return min(1.0, link_bandwidth_per_gpm / required_per_gpm)
