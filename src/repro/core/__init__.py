"""Core MCM-GPU architecture: configuration, structural model, request path."""

from .analytical import (
    AnalyticalPrediction,
    BandwidthRequirement,
    average_hops,
    expected_slowdown_bound,
    predict_cycles,
    predict_speedup,
    predict_suite_score,
    predicted_objectives,
    required_link_bandwidth,
    ring_average_hops,
    supply_bandwidth_per_partition,
    topology_link_count,
    topology_ports,
)
from .config import (
    CLOCK_HZ,
    MEMORY_SCALE,
    CacheConfig,
    GPMConfig,
    SMConfig,
    SystemConfig,
    scaled_bytes,
)
from .energy import (
    DRAM_PJ_PER_BIT,
    ENERGY_PJ_PER_BIT,
    TIER_BANDWIDTH_GBPS,
    EnergyBreakdown,
    IntegrationTier,
    breakdown_from_traffic,
    dram_energy_joules,
    energy_joules,
)
from .gpm import GPM
from .gpu import GPUSystem, build_system
from .memsys import MemorySystem
from .presets import (
    baseline_mcm_gpu,
    mcm_gpu_with_l15,
    monolithic_gpu,
    multi_gpu,
    optimized_mcm_gpu,
)
from .sm import SM

__all__ = [
    "AnalyticalPrediction",
    "BandwidthRequirement",
    "average_hops",
    "expected_slowdown_bound",
    "predict_cycles",
    "predict_speedup",
    "predict_suite_score",
    "predicted_objectives",
    "required_link_bandwidth",
    "ring_average_hops",
    "supply_bandwidth_per_partition",
    "topology_link_count",
    "topology_ports",
    "CLOCK_HZ",
    "MEMORY_SCALE",
    "CacheConfig",
    "GPMConfig",
    "SMConfig",
    "SystemConfig",
    "scaled_bytes",
    "DRAM_PJ_PER_BIT",
    "ENERGY_PJ_PER_BIT",
    "TIER_BANDWIDTH_GBPS",
    "EnergyBreakdown",
    "IntegrationTier",
    "breakdown_from_traffic",
    "dram_energy_joules",
    "energy_joules",
    "GPM",
    "GPUSystem",
    "build_system",
    "MemorySystem",
    "baseline_mcm_gpu",
    "mcm_gpu_with_l15",
    "monolithic_gpu",
    "multi_gpu",
    "optimized_mcm_gpu",
    "SM",
]
