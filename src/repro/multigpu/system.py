"""Multi-GPU system study helpers (Section 6).

The multi-GPU machines are structurally two big "GPMs" behind a board-tier
link, so they reuse the whole :class:`~repro.core.gpu.GPUSystem` machinery
via :func:`repro.core.presets.multi_gpu`.  This module adds the Section 6
*study*: building the full comparison set and computing the performance
and interconnect-energy deltas the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.config import SystemConfig
from ..core.energy import IntegrationTier
from ..core.presets import baseline_mcm_gpu, monolithic_gpu, multi_gpu, optimized_mcm_gpu
from ..sim.result import SimResult


def comparison_systems() -> List[Tuple[str, SystemConfig]]:
    """The five Section 6 machines, all with 256 SMs and 3 TB/s DRAM."""
    return [
        ("multi-gpu-baseline", multi_gpu(optimized=False)),
        ("multi-gpu-optimized", multi_gpu(optimized=True)),
        ("mcm-optimized", optimized_mcm_gpu()),
        ("mcm-6tbs", baseline_mcm_gpu(link_bandwidth=6144.0)),
        ("monolithic-256", monolithic_gpu(256)),
    ]


def systems_are_equally_equipped() -> bool:
    """Sanity check: every comparison machine has the paper's resources.

    "an equally equipped Multi-GPU system with the same total number of
    SMs and DRAM bandwidth" — 256 SMs, 3 TB/s.
    """
    return all(
        config.total_sms == 256 and config.total_dram_bandwidth == 3072.0
        for _, config in comparison_systems()
    )


@dataclass(frozen=True)
class EfficiencyComparison:
    """Energy view of one workload on an MCM vs multi-GPU machine.

    Captures the Section 6.2 argument: package links at 0.5 pJ/bit vs
    board links at 10 pJ/bit make the MCM-GPU's inter-module traffic far
    cheaper even before counting its performance advantage.
    """

    workload_name: str
    mcm_inter_module_joules: float
    multi_gpu_inter_module_joules: float
    mcm_cycles: float
    multi_gpu_cycles: float

    @property
    def energy_advantage(self) -> float:
        """Multi-GPU interconnect energy over MCM-GPU interconnect energy."""
        if self.mcm_inter_module_joules == 0:
            return float("inf")
        return self.multi_gpu_inter_module_joules / self.mcm_inter_module_joules

    @property
    def speedup(self) -> float:
        """MCM-GPU performance over the multi-GPU machine."""
        return self.multi_gpu_cycles / self.mcm_cycles


def compare_efficiency(mcm: SimResult, multi: SimResult) -> EfficiencyComparison:
    """Build an :class:`EfficiencyComparison` from two runs of one workload."""
    if mcm.workload_name != multi.workload_name:
        raise ValueError(
            f"comparing different workloads: {mcm.workload_name!r} vs {multi.workload_name!r}"
        )
    if IntegrationTier(mcm.link_tier) is not IntegrationTier.PACKAGE:
        raise ValueError("first argument must be the package-integrated (MCM) run")
    if IntegrationTier(multi.link_tier) is not IntegrationTier.BOARD:
        raise ValueError("second argument must be the board-integrated (multi-GPU) run")
    return EfficiencyComparison(
        workload_name=mcm.workload_name,
        mcm_inter_module_joules=mcm.energy.inter_module_joules,
        multi_gpu_inter_module_joules=multi.energy.inter_module_joules,
        mcm_cycles=mcm.cycles,
        multi_gpu_cycles=multi.cycles,
    )


def aggregate_energy_advantage(
    mcm_results: Dict[str, SimResult],
    multi_results: Dict[str, SimResult],
) -> float:
    """Suite-level interconnect-energy ratio (multi-GPU / MCM-GPU)."""
    mcm_joules = sum(result.energy.inter_module_joules for result in mcm_results.values())
    multi_joules = sum(
        multi_results[name].energy.inter_module_joules for name in mcm_results
    )
    if mcm_joules == 0:
        return float("inf")
    return multi_joules / mcm_joules
