"""Multi-GPU comparison substrate (Section 6)."""

from .system import (
    EfficiencyComparison,
    aggregate_energy_advantage,
    compare_efficiency,
    comparison_systems,
    systems_are_equally_equipped,
)

__all__ = [
    "EfficiencyComparison",
    "aggregate_energy_advantage",
    "compare_efficiency",
    "comparison_systems",
    "systems_are_equally_equipped",
]
