"""Shared machinery for the inter-GPM traffic figures (7, 10, 14).

All three figures plot the same quantity — average inter-GPM bandwidth in
TB/s for each memory-intensive workload plus per-category averages — for
different pairs of configurations.  This module holds the extraction and
rendering; the per-figure modules pick the configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from ..analysis.report import format_table
from ..sim.result import SimResult
from ..workloads.synthetic import Category
from .common import filter_names, names_in_category


@dataclass(frozen=True)
class TrafficComparison:
    """Inter-GPM traffic of one or more configurations, ready to render."""

    title: str
    labels: List[str]
    per_workload_tbps: Dict[str, List[float]]
    category_avg_tbps: Dict[str, List[float]]
    reduction_factor: float


def traffic_tbps(results: Mapping[str, SimResult], names: List[str]) -> List[float]:
    """Per-workload inter-GPM TB/s in the order of ``names``."""
    return [results[name].inter_gpm_tbps for name in names]


def build_comparison(
    title: str,
    labeled_results: List,
) -> TrafficComparison:
    """Assemble a :class:`TrafficComparison` from (label, results) pairs.

    The reduction factor compares the first configuration's total link
    traffic against the last one's, over all 48 workloads.
    """
    if len(labeled_results) < 2:
        raise ValueError("a traffic comparison needs at least two configurations")
    labels = [label for label, _ in labeled_results]
    m_names = names_in_category(Category.M_INTENSIVE)
    per_workload: Dict[str, List[float]] = {
        name: [results[name].inter_gpm_tbps for _, results in labeled_results]
        for name in m_names
    }
    category_avg: Dict[str, List[float]] = {}
    for category in Category:
        names = names_in_category(category)
        category_avg[category.value] = [
            sum(filter_names(results, names)[n].inter_gpm_tbps for n in names) / len(names)
            for _, results in labeled_results
        ]
    first = labeled_results[0][1]
    last = labeled_results[-1][1]
    base_bytes = sum(result.link_bytes for result in first.values())
    opt_bytes = sum(result.link_bytes for result in last.values())
    reduction = base_bytes / opt_bytes if opt_bytes else float("inf")
    return TrafficComparison(
        title=title,
        labels=labels,
        per_workload_tbps=per_workload,
        category_avg_tbps=category_avg,
        reduction_factor=reduction,
    )


def report(comparison: TrafficComparison) -> str:
    """Render the traffic table in the paper's figure layout."""
    headers = ["Benchmark"] + comparison.labels
    rows: List[List[object]] = [
        [name] + values for name, values in comparison.per_workload_tbps.items()
    ]
    for category, values in comparison.category_avg_tbps.items():
        rows.append([f"[{category} avg]"] + values)
    table = format_table(headers, rows, title=comparison.title + " (inter-GPM TB/s)")
    return table + f"\n\nTotal traffic reduction (first vs last): {comparison.reduction_factor:.2f}x"
