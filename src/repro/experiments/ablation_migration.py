"""Ablation: static first-touch vs dynamic page migration.

The paper's placement is static first touch (Section 5.3); the NUMA
literature it cites in Section 7 also moves pages dynamically.  This
ablation runs the optimized MCM-GPU with the
:class:`~repro.memory.migration.MigratingFirstTouch` extension and asks
whether migration recovers anything the static policy leaves behind —
e.g. pages trapped on the wrong GPM by untimely first touches in
irregular workloads — and what the copy traffic costs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..analysis.report import format_table
from ..analysis.speedup import geomean_speedup, speedups
from ..core.presets import optimized_mcm_gpu
from ..workloads.synthetic import Category
from .common import filter_names, names_in_category, run_suites


@dataclass(frozen=True)
class MigrationAblation:
    """Migrating vs static first touch on the optimized machine."""

    overall_speedup: float
    per_category: Dict[str, float]
    biggest_winners: Dict[str, float]
    biggest_losers: Dict[str, float]


def run_migration_ablation() -> MigrationAblation:
    """Compare placements over the full suite."""
    migrating_cfg = replace(
        optimized_mcm_gpu(name="mcm-optimized-migrating"),
        placement="migrating_first_touch",
    )
    static, migrating = run_suites([optimized_mcm_gpu(), migrating_cfg])
    per_workload = speedups(migrating, static)
    ordered = sorted(per_workload.items(), key=lambda item: item[1])
    per_category = {}
    for category in Category:
        names = names_in_category(category)
        per_category[category.value] = geomean_speedup(
            filter_names(migrating, names), filter_names(static, names)
        )
    return MigrationAblation(
        overall_speedup=geomean_speedup(migrating, static),
        per_category=per_category,
        biggest_winners=dict(ordered[-3:]),
        biggest_losers=dict(ordered[:3]),
    )


def report(ablation: MigrationAblation) -> str:
    """Render the migration ablation."""
    rows = [["overall", ablation.overall_speedup]]
    rows.extend([category, value] for category, value in ablation.per_category.items())
    table = format_table(
        ["scope", "migrating / static"],
        rows,
        title="Page-migration ablation (optimized MCM-GPU)",
    )
    winners = ", ".join(f"{k}={v:.2f}" for k, v in ablation.biggest_winners.items())
    losers = ", ".join(f"{k}={v:.2f}" for k, v in ablation.biggest_losers.items())
    return table + f"\nbiggest winners: {winners}\nbiggest losers: {losers}"
