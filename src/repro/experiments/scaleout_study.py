"""Extension study: budget-constrained scale-out across fabric topologies.

The paper stops at four GPMs on a ring (Section 3.2 leaves topology
exploration to future work).  This experiment pushes the same per-module
recipe (64 SMs, 768 GB/s of DRAM each) to eight modules on every fabric
in the topology registry and asks two questions the 4-GPM study cannot:

* **Simulated** — what does each fabric's hop count and bisection do to
  suite performance, link traffic, and data-movement energy at 8 GPMs,
  and does the resulting package still fit a reticle-and-socket budget
  (:mod:`repro.core.budget`)?
* **Analytical** — where does each fabric's bisection collapse as the
  module count keeps growing (8/16/64), via
  :func:`repro.core.analytical.bisection_collapse`?  64-GPM full-suite
  simulation is deliberately out of scope here; the collapse model is
  the scaling instrument (the ``scaleout`` sweep in
  ``scripts/explore.py`` simulates the larger counts on scaled rungs).

Speedups are reported against the paper's 4-GPM ring baseline, so the
table reads as "what does doubling the module count buy on each fabric".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from ..analysis.report import format_table
from ..analysis.speedup import geomean_speedup, suite_energy_joules
from ..core.analytical import bisection_collapse
from ..core.budget import DEFAULT_BUDGET, evaluate_budget
from ..core.presets import baseline_mcm_gpu
from .common import run_suites

#: Every registered fabric, in registry-study order.
STUDY_TOPOLOGIES = ("ring", "fully_connected", "mesh", "torus", "hierarchical")

#: Module counts covered by the analytical collapse table.
STUDY_GPM_COUNTS = (8, 16, 64)

#: Simulated module count (the full suite at 64 GPMs is out of budget).
SIMULATED_GPMS = 8


@dataclass(frozen=True)
class ScaleoutPoint:
    """One simulated 8-GPM fabric, scored against the 4-GPM ring."""

    topology: str
    speedup: float
    link_gbytes: float
    energy_joules: float
    area_mm2: float
    power_w: float
    budget: str


@dataclass(frozen=True)
class ScaleoutStudy:
    """Simulated 8-GPM points plus the analytical collapse table."""

    points: List[ScaleoutPoint]
    #: ``(topology, n_gpms) -> collapse link GB/s`` (``inf`` = the board
    #: ring, not the link setting, is the binding constraint).
    collapse: Dict[str, Dict[int, float]]


def _budget_label(config) -> str:
    """Compact feasibility verdict against the default package budget."""
    verdict = evaluate_budget(config)
    if verdict.feasible:
        return "feasible"
    limits = [
        label
        for label, ok in (
            ("area", verdict.area_ok),
            ("power", verdict.power_ok),
            ("link-tier", verdict.bandwidth_ok),
        )
        if not ok
    ]
    return "over " + "+".join(limits)


def run_scaleout_study(
    topologies: Sequence[str] = STUDY_TOPOLOGIES,
) -> ScaleoutStudy:
    """Simulate every fabric at 8 GPMs and tabulate collapse points."""
    configs = [
        replace(
            baseline_mcm_gpu(n_gpms=SIMULATED_GPMS, name=f"mcm-{topology}-{SIMULATED_GPMS}"),
            topology=topology,
        )
        for topology in topologies
    ]
    reference, *swept = run_suites([baseline_mcm_gpu()] + configs)
    points: List[ScaleoutPoint] = []
    for config, results in zip(configs, swept):
        verdict = evaluate_budget(config)
        points.append(
            ScaleoutPoint(
                topology=config.topology,
                speedup=geomean_speedup(results, reference),
                link_gbytes=sum(r.link_bytes for r in results.values()) / 1e9,
                energy_joules=suite_energy_joules(results),
                area_mm2=verdict.cost.area_mm2,
                power_w=verdict.cost.power_w,
                budget=_budget_label(config),
            )
        )
    collapse: Dict[str, Dict[int, float]] = {
        topology: {
            n_gpms: bisection_collapse(n_gpms, topology=topology).collapse_gbps
            for n_gpms in STUDY_GPM_COUNTS
        }
        for topology in topologies
    }
    return ScaleoutStudy(points=points, collapse=collapse)


def report(study: ScaleoutStudy) -> str:
    """Render the simulated table and the analytical collapse table."""
    sim_rows = [
        [
            point.topology,
            f"{point.speedup:.3f}",
            f"{point.link_gbytes:.2f}",
            f"{point.energy_joules:.3e}",
            f"{point.area_mm2:.0f}",
            f"{point.power_w:.0f}",
            point.budget,
        ]
        for point in study.points
    ]
    simulated = format_table(
        ["Topology", "Speedup", "Link GB", "Energy J", "Area mm2", "Power W", "Budget"],
        sim_rows,
        title=f"Scale-out at {SIMULATED_GPMS} GPMs vs the 4-GPM ring "
        f"(budget {DEFAULT_BUDGET.area_mm2:.0f} mm2 / {DEFAULT_BUDGET.power_w:.0f} W)",
    )
    collapse_rows = [
        [topology]
        + [
            "board-limited" if math.isinf(by_count[n]) else f"{by_count[n]:.0f}"
            for n in STUDY_GPM_COUNTS
        ]
        for topology, by_count in study.collapse.items()
    ]
    collapse = format_table(
        ["Topology"] + [f"{n} GPMs" for n in STUDY_GPM_COUNTS],
        collapse_rows,
        title="Analytical collapse link bandwidth (GB/s) — the setting below "
        "which the fabric bisection, not the DRAM, bounds remote traffic",
    )
    return simulated + "\n\n" + collapse
