"""Figure 13: performance with first-touch page placement (+ L1.5 + DS).

Adds the Section 5.3 first-touch policy on top of the remote-only L1.5 and
distributed scheduling, with both L2/L1.5 splits the paper compares: the
16 MB L1.5 (residual L2) and the 8 MB L1.5 + 8 MB L2 rebalance that wins
once most traffic is local.

Paper headlines: 8 MB split gives +51% / +11.3% / +7.9% per category over
the baseline and beats the 16 MB split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..analysis.report import format_table
from ..analysis.speedup import geomean_speedup, speedups
from ..core.presets import baseline_mcm_gpu, mcm_gpu_with_l15
from ..workloads.synthetic import Category
from .common import filter_names, names_in_category, run_suites


@dataclass(frozen=True)
class FTVariant:
    """One L1.5 capacity split under L1.5 + DS + FT."""

    l15_mb: int
    per_workload_m: Dict[str, float]
    m_geomean: float
    c_geomean: float
    limited_geomean: float


def run_fig13() -> Dict[int, FTVariant]:
    """Simulate the 16 MB and 8 MB splits with all three optimizations."""
    splits = (16, 8)
    configs = [baseline_mcm_gpu()] + [
        mcm_gpu_with_l15(
            l15_mb,
            remote_only=True,
            scheduler="distributed",
            placement="first_touch",
        )
        for l15_mb in splits
    ]
    baseline, *split_results = run_suites(configs)
    m_names = names_in_category(Category.M_INTENSIVE)
    c_names = names_in_category(Category.C_INTENSIVE)
    l_names = names_in_category(Category.LIMITED_PARALLELISM)
    out: Dict[int, FTVariant] = {}
    for l15_mb, results in zip(splits, split_results):
        out[l15_mb] = FTVariant(
            l15_mb=l15_mb,
            per_workload_m=speedups(
                filter_names(results, m_names), filter_names(baseline, m_names)
            ),
            m_geomean=geomean_speedup(
                filter_names(results, m_names), filter_names(baseline, m_names)
            ),
            c_geomean=geomean_speedup(
                filter_names(results, c_names), filter_names(baseline, c_names)
            ),
            limited_geomean=geomean_speedup(
                filter_names(results, l_names), filter_names(baseline, l_names)
            ),
        )
    return out


def report(variants: Dict[int, FTVariant]) -> str:
    """Render Figure 13."""
    order = sorted(variants, reverse=True)
    headers = ["Benchmark"] + [f"{mb}MB L1.5+DS+FT" for mb in order]
    m_names = list(variants[order[0]].per_workload_m)
    rows = [
        [name] + [variants[mb].per_workload_m[name] for mb in order] for name in m_names
    ]
    rows.append(["[M geomean]"] + [variants[mb].m_geomean for mb in order])
    rows.append(["[C geomean]"] + [variants[mb].c_geomean for mb in order])
    rows.append(["[Lim geomean]"] + [variants[mb].limited_geomean for mb in order])
    return format_table(
        headers, rows, title="Figure 13: First-touch placement (speedup over baseline)"
    )
