"""Figure 14: inter-GPM bandwidth with first-touch page placement.

Paper headline: the fully optimized MCM-GPU moves ~5x less inter-GPM
traffic than the baseline; several workloads nearly eliminate it.
"""

from __future__ import annotations

from ..core.presets import baseline_mcm_gpu, mcm_gpu_with_l15
from .common import run_suites
from .traffic_common import TrafficComparison, build_comparison
from .traffic_common import report as report_traffic


def run_fig14() -> TrafficComparison:
    """Compare baseline traffic against both optimized splits."""
    baseline, ft16, ft8 = run_suites(
        [
            baseline_mcm_gpu(),
            mcm_gpu_with_l15(16, remote_only=True, scheduler="distributed", placement="first_touch"),
            mcm_gpu_with_l15(8, remote_only=True, scheduler="distributed", placement="first_touch"),
        ]
    )
    return build_comparison(
        "Figure 14: Baseline vs L1.5+DS+FT (16MB and 8MB splits)",
        [("baseline", baseline), ("16MB+DS+FT", ft16), ("8MB+DS+FT", ft8)],
    )


def report(comparison: TrafficComparison) -> str:
    """Render Figure 14."""
    return report_traffic(comparison)
