"""Table 1: key characteristics of recent NVIDIA GPUs.

Static historical data quoted by the paper to motivate MCM-GPUs: SM count,
memory bandwidth, L2 capacity, transistor count, process node and die size
for the Fermi/Kepler/Maxwell/Pascal generations.  The experiment checks
the trends the paper argues from: SMs and transistors grow generation over
generation while the die size approaches the reticle limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis.report import format_table


@dataclass(frozen=True)
class GPUGeneration:
    """One row of Table 1."""

    name: str
    sms: int
    bandwidth_gbps: float
    l2_kb: int
    transistors_billion: float
    tech_node_nm: int
    die_mm2: int


TABLE1: List[GPUGeneration] = [
    GPUGeneration("Fermi", 16, 177.0, 768, 3.0, 40, 529),
    GPUGeneration("Kepler", 15, 288.0, 1536, 7.1, 28, 551),
    GPUGeneration("Maxwell", 24, 288.0, 3072, 8.0, 28, 601),
    GPUGeneration("Pascal", 56, 720.0, 4096, 15.3, 16, 610),
]

#: Maximum manufacturable die size the paper assumes (mm^2).
RETICLE_LIMIT_MM2 = 800

#: The paper's assumed ceiling on a buildable monolithic GPU.
MAX_BUILDABLE_SMS = 128


def transistor_growth_factors() -> List[float]:
    """Generation-over-generation transistor growth (the slowing curve)."""
    rows = TABLE1
    return [
        rows[i + 1].transistors_billion / rows[i].transistors_billion
        for i in range(len(rows) - 1)
    ]


def die_size_headroom() -> float:
    """Fraction of the reticle limit the latest GPU already occupies."""
    return TABLE1[-1].die_mm2 / RETICLE_LIMIT_MM2


def run_table1() -> List[GPUGeneration]:
    """Return the table rows (kept as a function for harness uniformity)."""
    return list(TABLE1)


def report() -> str:
    """Render Table 1 in the paper's layout."""
    rows = [
        [g.name, g.sms, g.bandwidth_gbps, g.l2_kb, g.transistors_billion, g.tech_node_nm, g.die_mm2]
        for g in TABLE1
    ]
    return format_table(
        ["GPU", "SMs", "BW (GB/s)", "L2 (KB)", "Transistors (B)", "Node (nm)", "Die (mm2)"],
        rows,
        title="Table 1: Key characteristics of recent NVIDIA GPUs",
    )
