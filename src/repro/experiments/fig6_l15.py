"""Figure 6: L1.5 cache design-space exploration.

Evaluates the GPM-side L1.5 cache at 8/16/32 MB capacities with both
allocation policies (cache-everything vs remote-only) against the Table 3
baseline, reporting per-workload speedups for the memory-intensive group
and geometric means per category.

Paper headlines: remote-only allocation wins at iso-capacity; the 16 MB
iso-transistor remote-only point gives +11.4% on memory-intensive
workloads and +3.5% on limited-parallelism workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..analysis.report import format_table
from ..analysis.speedup import geomean_speedup, speedups
from ..core.presets import baseline_mcm_gpu, mcm_gpu_with_l15
from ..workloads.synthetic import Category
from .common import filter_names, names_in_category, run_suites

#: Design points: (capacity MB, remote_only).
DEFAULT_VARIANTS: Tuple[Tuple[int, bool], ...] = (
    (8, False),
    (8, True),
    (16, False),
    (16, True),
    (32, False),
    (32, True),
)


@dataclass(frozen=True)
class L15Variant:
    """Results of one L1.5 design point relative to the baseline."""

    capacity_mb: int
    remote_only: bool
    per_workload: Dict[str, float]
    m_intensive_geomean: float
    c_intensive_geomean: float
    limited_geomean: float

    @property
    def label(self) -> str:
        """Short identifier like '16MB remote-only'."""
        policy = "remote-only" if self.remote_only else "all"
        return f"{self.capacity_mb}MB {policy}"


def run_fig6(variants: Tuple[Tuple[int, bool], ...] = DEFAULT_VARIANTS) -> List[L15Variant]:
    """Simulate every design point against the no-L1.5 baseline."""
    configs = [baseline_mcm_gpu()] + [
        mcm_gpu_with_l15(capacity_mb, remote_only=remote_only)
        for capacity_mb, remote_only in variants
    ]
    baseline, *variant_results = run_suites(configs)
    m_names = names_in_category(Category.M_INTENSIVE)
    c_names = names_in_category(Category.C_INTENSIVE)
    l_names = names_in_category(Category.LIMITED_PARALLELISM)
    out: List[L15Variant] = []
    for (capacity_mb, remote_only), results in zip(variants, variant_results):
        out.append(
            L15Variant(
                capacity_mb=capacity_mb,
                remote_only=remote_only,
                per_workload=speedups(
                    filter_names(results, m_names), filter_names(baseline, m_names)
                ),
                m_intensive_geomean=geomean_speedup(
                    filter_names(results, m_names), filter_names(baseline, m_names)
                ),
                c_intensive_geomean=geomean_speedup(
                    filter_names(results, c_names), filter_names(baseline, c_names)
                ),
                limited_geomean=geomean_speedup(
                    filter_names(results, l_names), filter_names(baseline, l_names)
                ),
            )
        )
    return out


def best_iso_transistor(variants: List[L15Variant]) -> L15Variant:
    """The best iso-transistor point (8/16 MB) by M-intensive geomean."""
    iso = [v for v in variants if v.capacity_mb in (8, 16)]
    if not iso:
        raise ValueError("no iso-transistor variants present")
    return max(iso, key=lambda v: v.m_intensive_geomean)


def report(variants: List[L15Variant]) -> str:
    """Render per-variant speedups for the M-intensive set + geomeans."""
    m_names = names_in_category(Category.M_INTENSIVE)
    headers = ["Benchmark"] + [v.label for v in variants]
    rows: List[List[object]] = []
    for name in m_names:
        rows.append([name] + [v.per_workload.get(name, float("nan")) for v in variants])
    rows.append(["[M geomean]"] + [v.m_intensive_geomean for v in variants])
    rows.append(["[C geomean]"] + [v.c_intensive_geomean for v in variants])
    rows.append(["[Lim geomean]"] + [v.limited_geomean for v in variants])
    return format_table(
        headers, rows, title="Figure 6: L1.5 design space (speedup over baseline MCM-GPU)"
    )
