"""Table 4: the memory-intensive workloads and their footprints.

Renders the 17 Table 4 entries with the paper's full-scale footprints and
the scaled simulation footprints actually used, plus suite-composition
checks (17 + 16 + 15 = 48, category definitions).
"""

from __future__ import annotations

from typing import List

from ..analysis.report import format_table
from ..workloads.suite import (
    all_specs,
    c_intensive_specs,
    limited_parallelism_specs,
    m_intensive_specs,
)
from ..workloads.synthetic import Category

#: Paper Table 4 footprints (MB), keyed by benchmark abbreviation.
PAPER_FOOTPRINTS_MB = {
    "AMG": 5430, "NN-Conv": 496, "BFS": 37, "CFD": 25, "CoMD": 385,
    "Kmeans": 216, "Lulesh1": 1891, "Lulesh2": 4309, "Lulesh3": 203,
    "MiniAMR": 5407, "MnCtct": 251, "MST": 73, "Nekbone1": 1746,
    "Nekbone2": 287, "Srad-v2": 96, "SSSP": 37, "Stream": 3072,
}


def run_table4() -> List[List[object]]:
    """Rows: name, suite, pattern, paper MB, scaled sim KB."""
    rows: List[List[object]] = []
    for spec in m_intensive_specs():
        rows.append(
            [
                spec.name,
                spec.suite,
                spec.pattern,
                spec.paper_footprint_mb,
                spec.footprint_bytes // 1024,
            ]
        )
    return rows


def suite_composition() -> dict:
    """Workload counts per category (paper: 17 / 16 / 15, 48 total)."""
    return {
        Category.M_INTENSIVE: len(m_intensive_specs()),
        Category.C_INTENSIVE: len(c_intensive_specs()),
        Category.LIMITED_PARALLELISM: len(limited_parallelism_specs()),
        "total": len(all_specs()),
    }


def report() -> str:
    """Render Table 4."""
    return format_table(
        ["Benchmark", "Suite", "Pattern", "Paper MB", "Sim KB (scaled)"],
        run_table4(),
        title="Table 4: Memory-intensive workloads and footprints",
    )
