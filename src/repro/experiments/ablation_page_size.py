"""Ablation: page granularity for first-touch placement.

First-touch placement operates at page granularity (Section 5.3).  Larger
pages amortize driver work but suffer first-toucher capture of data that
other GPMs also use (false page sharing); smaller pages track sharing
more precisely at higher management cost.  This ablation sweeps the
(scaled) page size on the optimized MCM-GPU and reports the suite
geomean and the achieved access locality.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

from ..analysis.report import format_table
from ..analysis.speedup import geomean_speedup
from ..core.presets import optimized_mcm_gpu
from .common import run_suites

#: Scaled page sizes; the default 2 KB stands for a 64 KB GPU page.
DEFAULT_PAGE_SIZES = (512, 1024, 2048, 4096, 8192)


@dataclass(frozen=True)
class PageSizePoint:
    """Suite results at one page size, relative to the default."""

    page_bytes: int
    speedup: float
    mean_locality: float


def run_page_size_ablation(
    page_sizes: Sequence[int] = DEFAULT_PAGE_SIZES,
) -> List[PageSizePoint]:
    """Sweep page sizes on the optimized machine."""
    configs = [optimized_mcm_gpu()] + [
        replace(optimized_mcm_gpu(name=f"opt-page-{page_bytes}"), page_bytes=page_bytes)
        for page_bytes in page_sizes
    ]
    reference, *swept = run_suites(configs)
    points: List[PageSizePoint] = []
    for page_bytes, results in zip(page_sizes, swept):
        locality = sum(
            1.0 - result.remote_access_fraction for result in results.values()
        ) / len(results)
        points.append(
            PageSizePoint(
                page_bytes=page_bytes,
                speedup=geomean_speedup(results, reference),
                mean_locality=locality,
            )
        )
    return points


def report(points: List[PageSizePoint]) -> str:
    """Render the page-size sweep."""
    rows = [
        [f"{p.page_bytes} B (scaled)", p.speedup, f"{p.mean_locality:.1%}"]
        for p in points
    ]
    return format_table(
        ["Page size", "Speedup vs 2KB", "Mean access locality"],
        rows,
        title="Page-size ablation for first-touch placement (optimized MCM-GPU)",
    )
