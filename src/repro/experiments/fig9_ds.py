"""Figure 9: performance with distributed CTA scheduling (+ L1.5).

Adds the Section 5.2 distributed scheduler on top of the 16 MB remote-only
L1.5 and reports speedups over the Table 3 baseline.

Paper headlines: +23.4% / +1.9% / +5.2% on the memory-/compute-intensive/
limited categories; Srad-v2 and Kmeans only improve once distributed
scheduling is combined with the L1.5 (inter-CTA reuse becomes capturable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..analysis.report import format_table
from ..analysis.speedup import geomean_speedup, speedups
from ..core.presets import baseline_mcm_gpu, mcm_gpu_with_l15
from ..workloads.synthetic import Category
from .common import filter_names, names_in_category, run_suites


@dataclass(frozen=True)
class DSResult:
    """Speedups of the L1.5 + distributed-scheduling machine."""

    per_workload_m: Dict[str, float]
    m_geomean: float
    c_geomean: float
    limited_geomean: float


def run_fig9(l15_mb: int = 16) -> DSResult:
    """Simulate L1.5 + DS against the baseline."""
    baseline, results = run_suites(
        [
            baseline_mcm_gpu(),
            mcm_gpu_with_l15(l15_mb, remote_only=True, scheduler="distributed"),
        ]
    )
    m_names = names_in_category(Category.M_INTENSIVE)
    c_names = names_in_category(Category.C_INTENSIVE)
    l_names = names_in_category(Category.LIMITED_PARALLELISM)
    return DSResult(
        per_workload_m=speedups(
            filter_names(results, m_names), filter_names(baseline, m_names)
        ),
        m_geomean=geomean_speedup(
            filter_names(results, m_names), filter_names(baseline, m_names)
        ),
        c_geomean=geomean_speedup(
            filter_names(results, c_names), filter_names(baseline, c_names)
        ),
        limited_geomean=geomean_speedup(
            filter_names(results, l_names), filter_names(baseline, l_names)
        ),
    )


def report(result: DSResult) -> str:
    """Render Figure 9."""
    rows = [[name, value] for name, value in result.per_workload_m.items()]
    rows.append(["[M geomean]", result.m_geomean])
    rows.append(["[C geomean]", result.c_geomean])
    rows.append(["[Lim geomean]", result.limited_geomean])
    return format_table(
        ["Benchmark", "Speedup"],
        rows,
        title="Figure 9: L1.5 + distributed scheduling (speedup over baseline)",
    )
