"""Figure 17: MCM-GPU vs multi-GPU.

Compares, against the baseline two-GPU board system (which already applies
distributed scheduling and first-touch placement, Section 6.1):

* the optimized multi-GPU (GPU-side remote cache added),
* the optimized MCM-GPU at 768 GB/s links,
* the bandwidth-rich MCM-GPU at 6 TB/s,
* the unbuildable 256-SM monolithic GPU.

Paper headlines: optimized multi-GPU +25.1%; optimized MCM-GPU +51.9%
(i.e., 26.8% over the optimized multi-GPU).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.report import format_table
from ..analysis.speedup import geomean_speedup
from ..core.presets import (
    baseline_mcm_gpu,
    monolithic_gpu,
    multi_gpu,
    optimized_mcm_gpu,
)
from .common import run_suites


@dataclass(frozen=True)
class MultiGPUComparison:
    """Geomean speedups over the baseline multi-GPU."""

    speedups: Dict[str, float]

    def mcm_over_optimized_multi_gpu(self) -> float:
        """The paper's 26.8% headline ratio."""
        return self.speedups["mcm-optimized"] / self.speedups["multi-gpu-optimized"]


def run_fig17() -> MultiGPUComparison:
    """Simulate every Figure 17 system."""
    points = {
        "multi-gpu-optimized": multi_gpu(optimized=True),
        "mcm-optimized": optimized_mcm_gpu(),
        "mcm-6tbs": baseline_mcm_gpu(link_bandwidth=6144.0),
        "monolithic-256": monolithic_gpu(256),
    }
    baseline, *point_results = run_suites([multi_gpu(optimized=False)] + list(points.values()))
    out: Dict[str, float] = {
        label: geomean_speedup(results, baseline)
        for label, results in zip(points, point_results)
    }
    return MultiGPUComparison(speedups=out)


def report(comparison: MultiGPUComparison) -> str:
    """Render Figure 17."""
    paper = {
        "multi-gpu-optimized": "+25.1%",
        "mcm-optimized": "+51.9%",
        "mcm-6tbs": "",
        "monolithic-256": "",
    }
    rows: List[List[object]] = [
        [label, value, f"{(value - 1) * 100:+.1f}%", paper.get(label, "")]
        for label, value in comparison.speedups.items()
    ]
    rows.append(
        [
            "mcm vs optimized multi-GPU",
            comparison.mcm_over_optimized_multi_gpu(),
            f"{(comparison.mcm_over_optimized_multi_gpu() - 1) * 100:+.1f}%",
            "+26.8%",
        ]
    )
    return format_table(
        ["System", "Speedup", "Delta", "Paper"],
        rows,
        title="Figure 17: MCM-GPU vs multi-GPU (vs baseline multi-GPU)",
    )
