"""Ablation: CTA scheduler policies on the optimized memory system.

Compares, on the optimized MCM-GPU memory system (remote-only L1.5 +
first-touch placement):

* centralized scheduling (destroys the locality FT needs),
* static distributed scheduling (the paper's choice),
* the dynamic scheduler extension (finer batches + work stealing —
  Section 5.4 leaves this to future work, predicting gains for workloads
  whose CTAs do unequal work).

Also reports the imbalanced workloads alone, where the dynamic scheduler's
advantage should concentrate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from ..analysis.report import format_table
from ..analysis.speedup import geomean_speedup, speedups
from ..core.presets import optimized_mcm_gpu
from ..workloads.suite import all_specs
from .common import filter_names, run_suites

#: Suite workloads with per-CTA work skew (the distributed scheduler's
#: weak spot, Section 5.4).
IMBALANCED = [spec.name for spec in all_specs() if spec.imbalance > 0]


@dataclass(frozen=True)
class SchedulerAblation:
    """Geomean speedups over the centralized-scheduled machine."""

    overall: Dict[str, float]
    imbalanced_only: Dict[str, float]


def run_scheduler_ablation() -> SchedulerAblation:
    """Run the three schedulers on the optimized memory system."""
    base_cfg = replace(
        optimized_mcm_gpu(name="opt-centralized"), scheduler="centralized"
    )
    schedulers = ("distributed", "dynamic")
    baseline, *swept = run_suites(
        [base_cfg]
        + [
            replace(optimized_mcm_gpu(name=f"opt-{scheduler}"), scheduler=scheduler)
            for scheduler in schedulers
        ]
    )
    overall: Dict[str, float] = {}
    imbalanced: Dict[str, float] = {}
    for scheduler, results in zip(schedulers, swept):
        overall[scheduler] = geomean_speedup(results, baseline)
        imbalanced[scheduler] = geomean_speedup(
            filter_names(results, IMBALANCED), filter_names(baseline, IMBALANCED)
        )
    return SchedulerAblation(overall=overall, imbalanced_only=imbalanced)


def report(ablation: SchedulerAblation) -> str:
    """Render the scheduler ablation."""
    rows: List[List[object]] = [
        [name, ablation.overall[name], ablation.imbalanced_only[name]]
        for name in ablation.overall
    ]
    return format_table(
        ["Scheduler", "Overall (48)", f"Imbalanced only ({len(IMBALANCED)})"],
        rows,
        title="Scheduler ablation on the optimized memory system "
        "(speedup over centralized)",
    )
