"""Extension study: ring vs fully-connected inter-GPM topology.

Section 3.2 leaves topology exploration out of scope; this experiment
runs the obvious comparison at a fixed per-GPM escape-bandwidth budget:

* the paper's ring at a given link setting (each GPM: 2 links), and
* all-to-all links sized so each GPM's total port bandwidth matches
  (each GPM: ``n-1`` thinner links, but every message is one hop and no
  pass-through traffic loads intermediate nodes).

Reported per category and for the optimized configuration as well, since
first-touch placement removes most of the traffic either topology would
carry.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..analysis.report import format_table
from ..analysis.speedup import geomean_speedup
from ..core.presets import baseline_mcm_gpu, optimized_mcm_gpu
from ..interconnect.fully_connected import iso_budget_link_bandwidth
from ..workloads.synthetic import Category
from .common import filter_names, names_in_category, run_suites


@dataclass(frozen=True)
class TopologyPoint:
    """Speedup of all-to-all over the ring at one design point."""

    label: str
    m_intensive: float
    c_intensive: float
    limited: float
    overall: float


def _categories(results, baselines) -> Dict[str, float]:
    out = {}
    for key, category in (
        ("m", Category.M_INTENSIVE),
        ("c", Category.C_INTENSIVE),
        ("l", Category.LIMITED_PARALLELISM),
    ):
        names = names_in_category(category)
        out[key] = geomean_speedup(
            filter_names(results, names), filter_names(baselines, names)
        )
    out["all"] = geomean_speedup(results, baselines)
    return out


def run_topology_study(link_setting: float = 768.0) -> Dict[str, TopologyPoint]:
    """Compare topologies on the baseline and optimized machines."""
    points: Dict[str, TopologyPoint] = {}

    fc_bandwidth = iso_budget_link_bandwidth(link_setting, 4)
    fc_base_cfg = replace(
        baseline_mcm_gpu(link_bandwidth=fc_bandwidth, name=f"mcm-fc-{int(link_setting)}"),
        topology="fully_connected",
    )
    fc_opt_cfg = replace(
        optimized_mcm_gpu(
            link_bandwidth=fc_bandwidth, name=f"mcm-opt-fc-{int(link_setting)}"
        ),
        topology="fully_connected",
    )
    ring_base, fc_base, ring_opt, fc_opt = run_suites(
        [
            baseline_mcm_gpu(link_bandwidth=link_setting),
            fc_base_cfg,
            optimized_mcm_gpu(link_bandwidth=link_setting),
            fc_opt_cfg,
        ]
    )
    cats = _categories(fc_base, ring_base)
    points["baseline"] = TopologyPoint(
        label=f"all-to-all vs ring @ {link_setting:.0f} GB/s budget",
        m_intensive=cats["m"],
        c_intensive=cats["c"],
        limited=cats["l"],
        overall=cats["all"],
    )

    cats = _categories(fc_opt, ring_opt)
    points["optimized"] = TopologyPoint(
        label="all-to-all vs ring, optimized machine",
        m_intensive=cats["m"],
        c_intensive=cats["c"],
        limited=cats["l"],
        overall=cats["all"],
    )
    return points


def report(points: Dict[str, TopologyPoint]) -> str:
    """Render the topology comparison."""
    rows = [
        [key, point.m_intensive, point.c_intensive, point.limited, point.overall]
        for key, point in points.items()
    ]
    return format_table(
        ["machine", "M-Int", "C-Int", "Limited", "Overall"],
        rows,
        title="Topology study: all-to-all speedup over the ring (iso port budget)",
    )
