"""Table 3: baseline MCM-GPU configuration.

Renders the simulated baseline's parameters next to the paper's Table 3
values, translating scaled capacities back to their full-scale
equivalents so the correspondence is auditable.
"""

from __future__ import annotations

from typing import List

from ..analysis.report import format_table
from ..core.config import MEMORY_SCALE, SystemConfig
from ..core.presets import baseline_mcm_gpu


def full_scale_bytes(scaled: int, scale: float = MEMORY_SCALE) -> int:
    """Invert the memory scale applied by the presets."""
    return int(round(scaled / scale))


def run_table3(config: SystemConfig = None) -> List[List[object]]:
    """Rows: parameter, paper value, this model (full-scale equivalent)."""
    if config is None:
        config = baseline_mcm_gpu()
    gpm = config.gpm
    l2_total_full = full_scale_bytes(config.total_l2_bytes) // (1 << 20)
    l1_full = full_scale_bytes(gpm.sm.l1.size_bytes) // (1 << 10)
    return [
        ["Number of GPMs", "4", str(config.n_gpms)],
        ["Total SMs", "256", str(config.total_sms)],
        ["GPU frequency", "1 GHz", "1 GHz (cycle==ns)"],
        ["Max warps per SM", "64", str(gpm.sm.max_warps)],
        ["L1 data cache / SM", "128 KB, 128B lines, 4 ways",
         f"{l1_full} KB (scaled {gpm.sm.l1.size_bytes}B), 128B, {gpm.sm.l1.ways} ways"],
        ["Total L2 cache", "16 MB, 128B lines, 16 ways",
         f"{l2_total_full} MB (scaled {config.total_l2_bytes}B), 128B, {gpm.l2.ways} ways"],
        ["Inter-GPM interconnect", "768 GB/s/link, ring, 32 cyc/hop",
         f"{config.link_bandwidth:.0f} GB/s/link, ring, {config.hop_latency:.0f} cyc/hop"],
        ["Total DRAM bandwidth", "3 TB/s", f"{config.total_dram_bandwidth/1000:.1f} TB/s"],
        ["DRAM latency", "100 ns", f"{gpm.dram_latency:.0f} cycles"],
    ]


def matches_paper(config: SystemConfig = None) -> bool:
    """True when the preset reproduces every Table 3 parameter."""
    if config is None:
        config = baseline_mcm_gpu()
    gpm = config.gpm
    return (
        config.n_gpms == 4
        and config.total_sms == 256
        and gpm.sm.max_warps == 64
        and full_scale_bytes(gpm.sm.l1.size_bytes) == 128 << 10
        and full_scale_bytes(config.total_l2_bytes) == 16 << 20
        and config.link_bandwidth == 768.0
        and config.hop_latency == 32.0
        and config.total_dram_bandwidth == 3072.0
        and gpm.dram_latency == 100.0
    )


def report() -> str:
    """Render Table 3 (paper vs model)."""
    return format_table(
        ["Parameter", "Paper", "Model"],
        run_table3(),
        title="Table 3: Baseline MCM-GPU configuration",
    )
