"""Figure 4: performance sensitivity to inter-GPM link bandwidth.

Sweeps the 4-GPM, 256-SM baseline MCM-GPU's link bandwidth from an
abundant 6 TB/s down to 384 GB/s and reports each category's slowdown
relative to the 6 TB/s machine.

Paper headlines: memory-intensive workloads degrade ~12% / ~40% / ~57%
at 1.5 TB/s / 768 GB/s / 384 GB/s; compute-intensive workloads degrade
less; even limited-parallelism workloads show some sensitivity through
queuing delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..analysis.report import format_table
from ..analysis.speedup import geomean_speedup
from ..core.presets import baseline_mcm_gpu
from ..workloads.synthetic import Category
from .common import filter_names, names_in_category, run_suites

#: Link bandwidth settings swept by the paper, GB/s per link.
DEFAULT_BANDWIDTHS: Tuple[float, ...] = (6144.0, 3072.0, 1536.0, 768.0, 384.0)


@dataclass(frozen=True)
class BandwidthPoint:
    """Per-category relative performance at one link bandwidth setting."""

    link_bandwidth: float
    m_intensive: float
    c_intensive: float
    limited: float


def run_fig4(bandwidths: Sequence[float] = DEFAULT_BANDWIDTHS) -> List[BandwidthPoint]:
    """Simulate the sweep; performance is relative to the first setting."""
    if not bandwidths:
        raise ValueError("need at least one bandwidth setting")
    configs = [baseline_mcm_gpu(link_bandwidth=bandwidths[0])] + [
        baseline_mcm_gpu(link_bandwidth=bandwidth) for bandwidth in bandwidths
    ]
    reference, *swept = run_suites(configs)
    categories = {
        "m": names_in_category(Category.M_INTENSIVE),
        "c": names_in_category(Category.C_INTENSIVE),
        "l": names_in_category(Category.LIMITED_PARALLELISM),
    }
    points: List[BandwidthPoint] = []
    for bandwidth, results in zip(bandwidths, swept):
        relative: Dict[str, float] = {
            key: geomean_speedup(
                filter_names(results, names), filter_names(reference, names)
            )
            for key, names in categories.items()
        }
        points.append(
            BandwidthPoint(
                link_bandwidth=bandwidth,
                m_intensive=relative["m"],
                c_intensive=relative["c"],
                limited=relative["l"],
            )
        )
    return points


def report(points: List[BandwidthPoint]) -> str:
    """Render the Figure 4 series (relative performance vs 6 TB/s)."""
    rows = [
        [f"{p.link_bandwidth:.0f} GB/s", p.m_intensive, p.c_intensive, p.limited]
        for p in points
    ]
    return format_table(
        ["Link BW", "M-Intensive", "C-Intensive", "Limited-Parallelism"],
        rows,
        title="Figure 4: Relative performance vs inter-GPM link bandwidth",
    )
