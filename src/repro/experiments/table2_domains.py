"""Table 2: bandwidth and energy per integration domain.

The paper's core feasibility argument: on-package links sit between
on-chip wires and on-board links in both bandwidth and energy per bit.
The data lives in :mod:`repro.core.energy`; this experiment renders the
table and exposes the monotonicity checks the argument relies on.
"""

from __future__ import annotations

from typing import List

from ..analysis.report import format_table
from ..core.energy import ENERGY_PJ_PER_BIT, TIER_BANDWIDTH_GBPS, IntegrationTier

#: Qualitative integration overhead, as in the paper's table.
TIER_OVERHEAD = {
    IntegrationTier.CHIP: "Low",
    IntegrationTier.PACKAGE: "Medium",
    IntegrationTier.BOARD: "High",
    IntegrationTier.SYSTEM: "Very High",
}


def tiers_ordered() -> List[IntegrationTier]:
    """Tiers from closest to farthest integration."""
    return [
        IntegrationTier.CHIP,
        IntegrationTier.PACKAGE,
        IntegrationTier.BOARD,
        IntegrationTier.SYSTEM,
    ]


def bandwidth_monotone_decreasing() -> bool:
    """Bandwidth shrinks as communication moves off-chip/-package/-board."""
    values = [TIER_BANDWIDTH_GBPS[t] for t in tiers_ordered()]
    return all(a > b for a, b in zip(values, values[1:]))


def energy_monotone_increasing() -> bool:
    """Energy per bit grows as communication moves outward."""
    values = [ENERGY_PJ_PER_BIT[t] for t in tiers_ordered()]
    return all(a < b for a, b in zip(values, values[1:]))


def package_advantage_over_board() -> float:
    """Energy-per-bit ratio of board links to package links (paper: 20x)."""
    return ENERGY_PJ_PER_BIT[IntegrationTier.BOARD] / ENERGY_PJ_PER_BIT[IntegrationTier.PACKAGE]


def run_table2() -> List[List[object]]:
    """Rows: tier, bandwidth (GB/s), energy (pJ/bit), overhead."""
    return [
        [
            tier.value,
            TIER_BANDWIDTH_GBPS[tier],
            ENERGY_PJ_PER_BIT[tier],
            TIER_OVERHEAD[tier],
        ]
        for tier in tiers_ordered()
    ]


def report() -> str:
    """Render Table 2."""
    return format_table(
        ["Domain", "BW (GB/s)", "Energy (pJ/bit)", "Overhead"],
        run_table2(),
        title="Table 2: Bandwidth and energy per integration domain",
    )
