"""Figure 16: breakdown of the optimizations' contributions.

Evaluates each mechanism alone (remote-only L1.5, distributed scheduling,
first-touch placement), the combined optimized design, the 6 TB/s
bandwidth-rich MCM-GPU, and the unbuildable 256-SM monolithic GPU — all as
geomean speedup over the baseline MCM-GPU across the 48-workload suite.

Paper headlines: L1.5 alone +5.2%; DS alone ~0; FT alone -4.7%; all three
together +22.8%; the optimized design comes within ~10% of the monolithic
256-SM GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from ..analysis.report import format_table
from ..analysis.speedup import geomean_speedup
from ..core.presets import (
    baseline_mcm_gpu,
    mcm_gpu_with_l15,
    monolithic_gpu,
    optimized_mcm_gpu,
)
from .common import run_suites


@dataclass(frozen=True)
class Breakdown:
    """Geomean speedups over the baseline MCM-GPU, keyed by design point."""

    speedups: Dict[str, float]

    def gap_to_monolithic(self) -> float:
        """How far the optimized design sits below the 256-SM monolithic."""
        return self.speedups["monolithic-256"] / self.speedups["optimized"]


def run_fig16() -> Breakdown:
    """Simulate every Figure 16 design point."""
    baseline_cfg = baseline_mcm_gpu()
    points = {
        "l15-alone": mcm_gpu_with_l15(16, remote_only=True),
        "ds-alone": replace(baseline_cfg, scheduler="distributed", name="mcm-ds-only"),
        "ft-alone": replace(baseline_cfg, placement="first_touch", name="mcm-ft-only"),
        "optimized": optimized_mcm_gpu(),
        "mcm-6tbs": baseline_mcm_gpu(link_bandwidth=6144.0),
        "monolithic-256": monolithic_gpu(256),
    }
    baseline, *point_results = run_suites([baseline_cfg] + list(points.values()))
    result: Dict[str, float] = {
        label: geomean_speedup(results, baseline)
        for label, results in zip(points, point_results)
    }
    return Breakdown(speedups=result)


def report(breakdown: Breakdown) -> str:
    """Render Figure 16."""
    paper = {
        "l15-alone": "+5.2%",
        "ds-alone": "~0%",
        "ft-alone": "-4.7%",
        "optimized": "+22.8%",
        "mcm-6tbs": "(bandwidth-rich)",
        "monolithic-256": "optimized +~10%",
    }
    rows: List[List[object]] = [
        [label, value, f"{(value - 1) * 100:+.1f}%", paper.get(label, "")]
        for label, value in breakdown.speedups.items()
    ]
    return format_table(
        ["Design point", "Speedup", "Delta", "Paper"],
        rows,
        title="Figure 16: Optimization breakdown (geomean over 48 workloads)",
    )
