"""Extension study: GPM count scaling at fixed total resources.

The paper builds 256 SMs from four 64-SM GPMs and motivates "256 or more
SMs" (Section 2.3); smaller GPMs are more cost-effective (Section 1).
This experiment varies the module count at constant totals — 256 SMs,
16 MB of cache transistors, 3 TB/s of DRAM — to expose the cost-locality
trade: more, smaller GPMs are cheaper to manufacture but fragment the
caches, add ring hops, and raise the remote-access fraction
((n-1)/n under interleave).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from ..analysis.report import format_table
from ..analysis.speedup import geomean_speedup
from ..core.config import GPMConfig
from ..core.presets import baseline_mcm_gpu, optimized_mcm_gpu
from .common import run_suites

#: Total SMs held constant across the sweep.
TOTAL_SMS = 256
DEFAULT_GPM_COUNTS = (2, 4, 8)


@dataclass(frozen=True)
class GPMScalingPoint:
    """Suite geomean at one module count, relative to the 4-GPM machine."""

    n_gpms: int
    sms_per_gpm: int
    baseline_speedup: float
    optimized_speedup: float


def _scaled_config(base_config, n_gpms: int, name: str):
    """Re-slice a 4-GPM preset to ``n_gpms`` modules at constant totals."""
    gpm = base_config.gpm
    factor = base_config.n_gpms / n_gpms
    new_gpm = replace(
        gpm,
        n_sms=TOTAL_SMS // n_gpms,
        l2=replace(gpm.l2, size_bytes=max(512, int(gpm.l2.size_bytes * factor))),
        l15=None
        if gpm.l15 is None
        else replace(gpm.l15, size_bytes=max(512, int(gpm.l15.size_bytes * factor))),
        dram_bandwidth=gpm.dram_bandwidth * factor,
    )
    return replace(base_config, n_gpms=n_gpms, gpm=new_gpm, name=name)


def run_gpm_scaling(gpm_counts: Sequence[int] = DEFAULT_GPM_COUNTS) -> List[GPMScalingPoint]:
    """Sweep the module count for the baseline and optimized designs."""
    for n_gpms in gpm_counts:
        if TOTAL_SMS % n_gpms:
            raise ValueError(f"{n_gpms} GPMs do not divide {TOTAL_SMS} SMs")
    configs = [baseline_mcm_gpu(), optimized_mcm_gpu()]
    for n_gpms in gpm_counts:
        configs.append(_scaled_config(baseline_mcm_gpu(), n_gpms, f"mcm-baseline-{n_gpms}gpm"))
        configs.append(_scaled_config(optimized_mcm_gpu(), n_gpms, f"mcm-optimized-{n_gpms}gpm"))
    reference_base, reference_opt, *swept = run_suites(configs)
    points: List[GPMScalingPoint] = []
    for index, n_gpms in enumerate(gpm_counts):
        base_results = swept[2 * index]
        opt_results = swept[2 * index + 1]
        points.append(
            GPMScalingPoint(
                n_gpms=n_gpms,
                sms_per_gpm=TOTAL_SMS // n_gpms,
                baseline_speedup=geomean_speedup(base_results, reference_base),
                optimized_speedup=geomean_speedup(opt_results, reference_opt),
            )
        )
    return points


def report(points: List[GPMScalingPoint]) -> str:
    """Render the module-count sweep."""
    rows = [
        [f"{p.n_gpms} x {p.sms_per_gpm} SMs", p.baseline_speedup, p.optimized_speedup]
        for p in points
    ]
    return format_table(
        ["Organization", "Baseline vs 4-GPM", "Optimized vs 4-GPM"],
        rows,
        title="GPM-count scaling at constant totals (256 SMs, 3 TB/s, 16 MB)",
    )
