"""Figure 2: hypothetical GPU performance scaling with SM count.

Runs every suite workload on monolithic GPUs of growing SM count (L2 and
DRAM bandwidth scaled proportionally, as the paper specifies) and reports
speedup over the 32-SM machine for the high-parallelism and
limited-parallelism groups against the linear-scaling reference.

Paper headlines checked by the bench: high-parallelism workloads reach a
large fraction (~88%) of linear scaling at 256 SMs; limited-parallelism
workloads plateau well below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..analysis.report import format_table
from ..analysis.speedup import geomean_speedup
from ..core.presets import monolithic_gpu
from ..sim.result import SimResult
from ..workloads.synthetic import Category
from .common import filter_names, names_in_category, run_suites

#: SM counts evaluated by default.  The paper sweeps 32..288; the default
#: keeps the powers of two plus the 288 extrapolation point.
DEFAULT_SM_COUNTS: Tuple[int, ...] = (32, 64, 96, 128, 160, 192, 224, 256, 288)
#: Reduced sweep for quick runs.
FAST_SM_COUNTS: Tuple[int, ...] = (32, 64, 128, 256)


@dataclass(frozen=True)
class ScalingPoint:
    """Speedups over the 32-SM reference at one SM count."""

    n_sms: int
    linear: float
    high_parallelism: float
    limited_parallelism: float

    @property
    def efficiency(self) -> float:
        """High-parallelism fraction of linear scaling."""
        return self.high_parallelism / self.linear


def run_fig2(sm_counts: Sequence[int] = DEFAULT_SM_COUNTS) -> List[ScalingPoint]:
    """Simulate the SM sweep and return one point per SM count."""
    if 32 not in sm_counts:
        raise ValueError("the sweep needs the 32-SM reference point")
    high = names_in_category(Category.M_INTENSIVE) + names_in_category(Category.C_INTENSIVE)
    limited = names_in_category(Category.LIMITED_PARALLELISM)

    configs = [monolithic_gpu(32)] + [monolithic_gpu(n_sms) for n_sms in sm_counts]
    reference, *swept = run_suites(configs)
    points: List[ScalingPoint] = []
    for n_sms, results in zip(sm_counts, swept):
        points.append(
            ScalingPoint(
                n_sms=n_sms,
                linear=n_sms / 32.0,
                high_parallelism=geomean_speedup(
                    filter_names(results, high), filter_names(reference, high)
                ),
                limited_parallelism=geomean_speedup(
                    filter_names(results, limited), filter_names(reference, limited)
                ),
            )
        )
    return points


def report(points: List[ScalingPoint]) -> str:
    """Render the Figure 2 series."""
    rows = [
        [p.n_sms, p.linear, p.high_parallelism, p.limited_parallelism, f"{p.efficiency:.0%}"]
        for p in points
    ]
    return format_table(
        ["SMs", "Linear", "High-Parallelism", "Limited-Parallelism", "Efficiency"],
        rows,
        title="Figure 2: Speedup over 32 SMs vs SM count",
    )
