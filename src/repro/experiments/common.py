"""Shared experiment infrastructure: suite runs and a persistent cache.

Every figure/table reproduction runs some subset of the 48-workload suite
on some set of system configurations.  Simulations are deterministic, so
results are cached on disk keyed by ``(workload digest, system digest)``;
re-running a bench (or several benches that share the baseline) costs only
the first run.  Set the ``REPRO_CACHE_DIR`` environment variable to move
the cache, or ``REPRO_NO_CACHE=1`` to disable it.

Suite runs fan out over a process pool when more than one worker is
available (``REPRO_WORKERS``, defaulting to the machine's core count; see
:mod:`repro.parallel`).  ``REPRO_WORKERS=1`` forces the classic serial
path, which is useful when bisecting determinism issues.  The cache file
format is concurrency-safe: every entry is appended as a single
``O_APPEND`` write under an advisory lock, and loads merge every
``results*.jsonl`` shard in the cache directory, tolerating duplicate and
truncated lines — so any number of processes may share one cache
directory.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

try:  # advisory file locking; absent on some exotic platforms
    import fcntl
except ImportError:  # pragma: no cover - POSIX always has fcntl
    fcntl = None  # type: ignore[assignment]

from ..core.config import MODEL_REV, SystemConfig
from ..sim.result import RESULT_SCHEMA, SimResult
from ..sim.simulator import Simulator
from ..workloads.suite import suite_workloads
from ..workloads.synthetic import Category, SyntheticWorkload
from ..workloads.trace import Workload


def _default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".repro_cache"


@dataclass(frozen=True)
class CacheStoreStats:
    """Snapshot of a :class:`ResultCache`'s contents (see ``stats()``).

    ``stale_entries`` counts entries whose system digest carries a
    ``r<N>|`` model-revision prefix different from the current
    :data:`~repro.core.config.MODEL_REV` — dead weight that can never be
    served again and that :meth:`ResultCache.prune` reclaims.
    """

    entries: int
    bytes_on_disk: int
    stale_entries: int
    entries_by_rev: Dict[int, int]


def _key_model_rev(key: str) -> Optional[int]:
    """Model revision parsed from a cache key's ``r<N>|`` digest prefix.

    Keys are ``<workload digest>##<system digest>`` and system digests
    lead with ``r<MODEL_REV>|``; returns None for keys that do not parse
    (foreign or hand-edited entries).
    """
    _, sep, system_digest = key.partition("##")
    if not sep or not system_digest.startswith("r"):
        return None
    rev, sep, _ = system_digest[1:].partition("|")
    if not sep:
        return None
    try:
        return int(rev)
    except ValueError:
        return None


class ResultCache:
    """Append-only JSONL cache of simulation results.

    Safe for concurrent writers: entries are appended as single
    ``O_APPEND`` writes (additionally serialized by an advisory ``flock``
    where available), so lines from different processes never interleave.
    A cache may also be opened with a ``shard`` suffix, giving each writer
    its own ``results-<shard>.jsonl`` file; :meth:`_load` merges every
    ``results*.jsonl`` in the directory, so shard and non-shard writers
    share one namespace.  Duplicate keys are tolerated (last parsed entry
    wins — entries for one key are identical anyway because simulations
    are deterministic).

    ``hits``/``misses`` count :meth:`get` outcomes, so ``hits / (hits +
    misses)`` is the true lookup hit rate regardless of whether a miss is
    later followed by a :meth:`put`.
    """

    def __init__(self, directory: Optional[Path] = None, shard: Optional[str] = None) -> None:
        self.directory = Path(directory) if directory is not None else _default_cache_dir()
        self.shard = shard
        name = "results.jsonl" if shard is None else f"results-{shard}.jsonl"
        self.path = self.directory / name
        self._memory: Dict[str, SimResult] = {}
        #: Keys of on-disk entries written under an older RESULT_SCHEMA —
        #: never served, but reported by :meth:`stats` and reclaimed by
        #: :meth:`prune` like rev-stale entries.
        self._stale_schema_keys: List[str] = []
        #: Per-shard read progress: path -> (inode, size, mtime_ns,
        #: consumed bytes).  ``refresh`` compares a fresh ``stat`` against
        #: this to skip untouched shards and to resume appending shards
        #: from the last complete line instead of re-reading them.
        self._shard_state: Dict[str, Tuple[int, int, int, int]] = {}
        self._loaded = False
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(workload_digest: str, system_digest: str) -> str:
        """Cache key for one (workload, system) pair."""
        return f"{workload_digest}##{system_digest}"

    def _load(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        self._scan()

    def _absorb_line(self, raw: bytes) -> None:
        """Parse one JSONL entry into memory (tolerating foreign lines)."""
        line = raw.strip()
        if not line:
            return
        try:
            entry = json.loads(line)
            # Entries written under an older result schema are
            # never served: their stats no longer match what
            # fresh simulations (and the invariant layer)
            # produce.  Absent marker == schema 1.
            if (
                "key" in entry
                and "result" in entry
                and entry.get("schema", 1) != RESULT_SCHEMA
            ):
                key = str(entry["key"])
                if key not in self._stale_schema_keys:
                    self._stale_schema_keys.append(key)
                return
            result = SimResult.from_dict(entry["result"])
        except (json.JSONDecodeError, KeyError, TypeError):
            return  # tolerate a truncated or foreign line
        self._memory[entry["key"]] = result

    def _read_shard(self, path: Path, offset: int) -> int:
        """Absorb complete lines of ``path`` from ``offset``; new offset.

        Only whole lines are consumed: a torn trailing line (a concurrent
        writer caught mid-append) is left for the next refresh, when the
        grown file size forces another read that picks up the completed
        entry.
        """
        try:
            with open(path, "rb") as handle:
                handle.seek(offset)
                data = handle.read()
        except OSError:  # pragma: no cover - shard deleted mid-scan
            return offset
        complete, newline, _tail = data.rpartition(b"\n")
        if not newline:
            return offset
        for raw in complete.split(b"\n"):
            self._absorb_line(raw)
        return offset + len(complete) + 1

    def _scan(self) -> None:
        """Read every shard's unseen bytes, updating the per-shard state."""
        if not self.directory.is_dir():
            return
        for path in sorted(self.directory.glob("results*.jsonl")):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - shard deleted mid-scan
                continue
            signature = (stat.st_ino, stat.st_size, stat.st_mtime_ns)
            state = self._shard_state.get(str(path))
            if state is not None and state[:3] == signature:
                continue  # untouched since the last scan
            consumed = 0
            if state is not None and state[0] == signature[0] and stat.st_size >= state[3]:
                # Same inode, grown (or same-size touch): shards are
                # append-only, so resume from the last complete line.
                consumed = state[3]
            # else: new shard, or replaced/truncated (prune rewrites via
            # rename, changing the inode) — read it from the top; entry
            # absorption is idempotent, so re-reads only cost time.
            consumed = self._read_shard(path, consumed)
            self._shard_state[str(path)] = (*signature, consumed)

    def refresh(self) -> int:
        """Pick up entries appended by other processes since the last read.

        Stats every ``results*.jsonl`` shard and incrementally reads the
        ones whose (inode, size, mtime) changed — a long-running server
        polls this cheaply instead of reopening the cache.  Returns the
        number of entries that became visible (stale-schema entries
        included, since they affect :meth:`stats`/:meth:`prune`).
        """
        if not self._loaded:
            # First touch: the initial load IS the refresh, and every
            # entry it finds "became visible" to this process.
            self._load()
            return len(self._memory) + len(self._stale_schema_keys)
        before = len(self._memory) + len(self._stale_schema_keys)
        self._scan()
        return len(self._memory) + len(self._stale_schema_keys) - before

    def get(self, workload_digest: str, system_digest: str) -> Optional[SimResult]:
        """Cached result, or None.  Counts toward ``hits``/``misses``."""
        self._load()
        result = self._memory.get(self.key(workload_digest, system_digest))
        if result is not None:
            self.hits += 1
        else:
            self.misses += 1
        return result

    def put(self, result: SimResult) -> None:
        """Store a result in memory and append it to the cache file."""
        self._load()
        key = self.key(result.workload_digest, result.system_digest)
        self._memory[key] = result
        self.directory.mkdir(parents=True, exist_ok=True)
        line = json.dumps(
            {"key": key, "schema": RESULT_SCHEMA, "result": result.to_dict()}
        ) + "\n"
        # One O_APPEND write per entry: atomic on local POSIX filesystems,
        # belt-and-braces flock for NFS and very large entries.
        fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            os.write(fd, line.encode("utf-8"))
        finally:
            if fcntl is not None:
                try:
                    fcntl.flock(fd, fcntl.LOCK_UN)
                except OSError:  # pragma: no cover
                    pass
            os.close(fd)

    def absorb(self, result: SimResult) -> None:
        """Record a result in memory only (it is already on disk elsewhere).

        The parallel runner's workers persist results to their own shard
        files; the coordinating process absorbs the returned results so
        later :meth:`get` calls hit without re-reading the directory.
        """
        self._load()
        self._memory[self.key(result.workload_digest, result.system_digest)] = result

    def __len__(self) -> int:
        self._load()
        return len(self._memory) + len(self._stale_schema_keys)

    def stats(self, model_rev: int = MODEL_REV) -> CacheStoreStats:
        """Entry count, disk footprint, and stale-revision census.

        ``model_rev`` is the revision considered *current*; entries with
        any other (or unparseable) ``r<N>|`` prefix count as stale, as do
        entries written under an older ``RESULT_SCHEMA`` (which are never
        served regardless of revision).  Unparseable keys are tallied
        under revision ``-1``.
        """
        self._load()
        by_rev: Dict[int, int] = {}
        for key in list(self._memory) + self._stale_schema_keys:
            rev = _key_model_rev(key)
            by_rev[rev if rev is not None else -1] = (
                by_rev.get(rev if rev is not None else -1, 0) + 1
            )
        stale = sum(
            1 for key in self._memory if _key_model_rev(key) != model_rev
        ) + len(self._stale_schema_keys)
        bytes_on_disk = 0
        if self.directory.is_dir():
            for path in self.directory.glob("results*.jsonl"):
                try:
                    bytes_on_disk += path.stat().st_size
                except OSError:  # pragma: no cover - shard deleted mid-scan
                    continue
        return CacheStoreStats(
            entries=len(self._memory) + len(self._stale_schema_keys),
            bytes_on_disk=bytes_on_disk,
            stale_entries=stale,
            entries_by_rev=by_rev,
        )

    def prune(self, model_rev: int = MODEL_REV) -> int:
        """Drop every entry not produced by ``model_rev``; compact shards.

        Long-lived caches accumulate dead entries across MODEL_REV bumps
        (old keys never match again, but their lines still cost disk and
        load time).  Rewrites the surviving entries into this cache's own
        file atomically (write-temp-then-rename) and removes every other
        ``results*.jsonl`` shard.  Not safe to run concurrently with
        writers — this is a maintenance operation, not a hot-path one.
        Returns the number of entries dropped.
        """
        self._load()
        keep = {
            key: result
            for key, result in self._memory.items()
            if _key_model_rev(key) == model_rev
        }
        dropped = len(self._memory) - len(keep) + len(self._stale_schema_keys)
        self._stale_schema_keys = []
        self.directory.mkdir(parents=True, exist_ok=True)
        temp = self.path.with_suffix(".tmp")
        with open(temp, "w") as handle:
            for key, result in keep.items():
                handle.write(
                    json.dumps(
                        {"key": key, "schema": RESULT_SCHEMA, "result": result.to_dict()}
                    )
                    + "\n"
                )
        os.replace(temp, self.path)
        for path in list(self.directory.glob("results*.jsonl")):
            if path != self.path:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - already gone
                    pass
        self._memory = keep
        # The rewrite replaced our file (new inode) and removed the other
        # shards; drop the read-progress state so a later refresh re-stats
        # from scratch instead of trusting dead signatures.
        self._shard_state = {}
        try:
            stat = self.path.stat()
            self._shard_state[str(self.path)] = (
                stat.st_ino,
                stat.st_size,
                stat.st_mtime_ns,
                stat.st_size,
            )
        except OSError:  # pragma: no cover - file removed underneath us
            pass
        return dropped


#: Sentinel meaning "use the process-wide default cache, resolved at call
#: time" — a plain ``cache=DEFAULT_CACHE`` default would freeze whatever
#: the environment looked like at import time.
_USE_DEFAULT = object()

#: Process-wide default cache instance (kept in sync by :func:`default_cache`;
#: prefer calling that over reading this directly).
DEFAULT_CACHE: Optional[ResultCache] = None

#: Environment snapshot the current DEFAULT_CACHE was built from.
_DEFAULT_CACHE_ENV: Optional[tuple] = None


def default_cache() -> Optional[ResultCache]:
    """The process-wide default cache, honoring the current environment.

    Re-reads ``REPRO_NO_CACHE``/``REPRO_CACHE_DIR`` on every call and
    rebuilds :data:`DEFAULT_CACHE` when they changed, so tests and scripts
    can flip caching on, off, or elsewhere after import.  Monkeypatching
    :data:`DEFAULT_CACHE` directly also works: the patched instance is
    returned as long as the environment is unchanged.
    """
    global DEFAULT_CACHE, _DEFAULT_CACHE_ENV
    env = (os.environ.get("REPRO_NO_CACHE", ""), os.environ.get("REPRO_CACHE_DIR", ""))
    if env != _DEFAULT_CACHE_ENV:
        _DEFAULT_CACHE_ENV = env
        disabled = env[0] not in ("", "0")
        DEFAULT_CACHE = None if disabled else ResultCache()
    return DEFAULT_CACHE


def _resolve_cache(cache) -> Optional[ResultCache]:
    if cache is _USE_DEFAULT:
        return default_cache()
    return cache


def run_one(
    workload: Workload,
    config: SystemConfig,
    cache=_USE_DEFAULT,
) -> SimResult:
    """Simulate one workload on one configuration, using the cache."""
    cache = _resolve_cache(cache)
    digest = workload.digest()
    if cache is not None:
        cached = cache.get(digest, config.digest())
        if cached is not None:
            return cached
    result = Simulator(config).run(workload)
    if cache is not None:
        cache.put(result)
    return result


def run_suite(
    config: SystemConfig,
    workloads: Optional[Iterable[Workload]] = None,
    cache=_USE_DEFAULT,
) -> Dict[str, SimResult]:
    """Run (or fetch) the whole suite on ``config``; keyed by workload name.

    Transparently fans out over a process pool when more than one worker
    is configured (see :func:`repro.parallel.resolve_workers`); with
    ``REPRO_WORKERS=1`` this is the classic serial loop.
    """
    return run_suites([config], workloads=workloads, cache=cache)[0]


def run_suites(
    configs: Sequence[SystemConfig],
    workloads: Optional[Iterable[Workload]] = None,
    cache=_USE_DEFAULT,
    max_workers: Optional[int] = None,
    progress=None,
    metrics=None,
) -> List[Dict[str, SimResult]]:
    """Run the suite on several configurations in one (parallel) batch.

    Returns one ``{workload name: SimResult}`` dict per configuration, in
    input order — the exact shape :func:`run_suite` returns per config.
    Batching every configuration of an experiment into one call lets the
    parallel runner overlap *all* (workload, config) pairs instead of
    synchronizing at each configuration boundary.

    ``progress``, when given, is called as ``progress(done, total,
    result)`` after each simulated (non-cached) pair.

    ``metrics``, when given, is a private
    :class:`~repro.parallel.metrics.SuiteMetrics` sink that receives the
    same batch/sim records as the process-wide ``GLOBAL_METRICS`` — it
    lets a caller (e.g. the explore rung accounting) scope its cost
    deltas to its own runs, immune to concurrent suite activity.
    """
    from ..parallel import metrics as _metrics
    from ..parallel import runner as _runner

    cache = _resolve_cache(cache)
    configs = list(configs)
    workload_list = list(workloads) if workloads is not None else suite_workloads()
    workers = _runner.resolve_workers(max_workers)

    start = time.time()
    hits_before = cache.hits if cache is not None else 0
    results: List[Dict[str, SimResult]]
    total = len(configs) * len(workload_list)
    if workers > 1:
        # The parallel runner deduplicates (workload, config) pairs and
        # calls cache.get once per unique pair, so the hits delta would
        # undercount duplicated output slots; it reports the per-slot
        # count itself.
        stats: Dict[str, int] = {}
        results = _runner.run_suite_parallel(
            configs,
            workloads=workload_list,
            max_workers=workers,
            cache=cache,
            progress=progress,
            stats=stats,
            metrics=metrics,
        )
        cached = stats.get("cached_slots", 0)
    else:
        results = [
            _run_suite_serial(config, workload_list, cache, progress, metrics=metrics)
            for config in configs
        ]
        hits_after = cache.hits if cache is not None else 0
        cached = hits_after - hits_before
    for sink in (_metrics.GLOBAL_METRICS, metrics):
        if sink is None:
            continue
        sink.record_batch(
            configs=[config.name for config in configs],
            total=total,
            cached=cached,
            wall=time.time() - start,
            workers=workers,
        )
    return results


def _run_suite_serial(
    config: SystemConfig,
    workloads: Iterable[Workload],
    cache: Optional[ResultCache],
    progress=None,
    metrics=None,
) -> Dict[str, SimResult]:
    """The classic serial loop: one reused simulator, workloads in order.

    ``progress`` follows the parallel runner's convention: ``total``
    counts only the pairs actually simulated, so a cache-hit pass never
    reports ``done < total`` at completion.
    """
    from ..parallel import metrics as _metrics

    workload_list = list(workloads)
    config_digest = config.digest()
    results: Dict[str, SimResult] = {}
    misses: List[Workload] = []
    for workload in workload_list:
        cached = cache.get(workload.digest(), config_digest) if cache is not None else None
        if cached is not None:
            results[workload.name] = cached
        else:
            misses.append(workload)

    simulator: Optional[Simulator] = None
    done = 0
    for workload in misses:
        if simulator is None:
            from ..parallel.runner import profiling_enabled
            from ..telemetry import Telemetry

            telemetry = Telemetry() if profiling_enabled() else None
            simulator = Simulator(config, telemetry=telemetry)
        sim_start = time.time()
        result = simulator.run(workload)
        sim_seconds = time.time() - sim_start
        _metrics.GLOBAL_METRICS.record_sim(result.system_name, sim_seconds)
        if metrics is not None:
            metrics.record_sim(result.system_name, sim_seconds)
        if simulator.telemetry is not None:
            _metrics.GLOBAL_METRICS.record_telemetry(simulator.telemetry.summary())
        if cache is not None:
            cache.put(result)
        results[workload.name] = result
        done += 1
        if progress is not None:
            progress(done, len(misses), result)
    return {
        workload.name: results[workload.name]
        for workload in workload_list
        if workload.name in results
    }


def category_of(workloads: Iterable[SyntheticWorkload]) -> Dict[str, Category]:
    """Workload-name -> category mapping for grouping report rows."""
    return {workload.name: workload.category for workload in workloads}


def names_in_category(category: Category) -> List[str]:
    """Suite workload names belonging to ``category``."""
    return [workload.name for workload in suite_workloads(category)]


def filter_names(results: Mapping[str, SimResult], names: Iterable[str]) -> Dict[str, SimResult]:
    """Subset of ``results`` restricted to ``names`` (order preserved)."""
    return {name: results[name] for name in names if name in results}


# Materialize the default so ``from repro.experiments import DEFAULT_CACHE``
# keeps returning a live cache (or None under REPRO_NO_CACHE) at import time.
default_cache()
