"""Shared experiment infrastructure: suite runs and a persistent cache.

Every figure/table reproduction runs some subset of the 48-workload suite
on some set of system configurations.  Simulations are deterministic, so
results are cached on disk keyed by ``(workload digest, system digest)``;
re-running a bench (or several benches that share the baseline) costs only
the first run.  Set the ``REPRO_CACHE_DIR`` environment variable to move
the cache, or ``REPRO_NO_CACHE=1`` to disable it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional

from ..core.config import SystemConfig
from ..sim.result import SimResult
from ..sim.simulator import Simulator
from ..workloads.suite import suite_workloads
from ..workloads.synthetic import Category, SyntheticWorkload
from ..workloads.trace import Workload


def _default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".repro_cache"


class ResultCache:
    """Append-only JSONL cache of simulation results."""

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = directory or _default_cache_dir()
        self.path = self.directory / "results.jsonl"
        self._memory: Dict[str, SimResult] = {}
        self._loaded = False
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(workload_digest: str, system_digest: str) -> str:
        """Cache key for one (workload, system) pair."""
        return f"{workload_digest}##{system_digest}"

    def _load(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        if not self.path.exists():
            return
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    result = SimResult.from_dict(entry["result"])
                except (json.JSONDecodeError, KeyError, TypeError):
                    continue  # tolerate a truncated trailing line
                self._memory[entry["key"]] = result

    def get(self, workload_digest: str, system_digest: str) -> Optional[SimResult]:
        """Cached result, or None."""
        self._load()
        result = self._memory.get(self.key(workload_digest, system_digest))
        if result is not None:
            self.hits += 1
        return result

    def put(self, result: SimResult) -> None:
        """Store a result in memory and append it to the cache file."""
        self._load()
        key = self.key(result.workload_digest, result.system_digest)
        self._memory[key] = result
        self.misses += 1
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(json.dumps({"key": key, "result": result.to_dict()}) + "\n")

    def __len__(self) -> int:
        self._load()
        return len(self._memory)


_DISABLED = os.environ.get("REPRO_NO_CACHE", "") not in ("", "0")
#: Process-wide default cache instance.
DEFAULT_CACHE: Optional[ResultCache] = None if _DISABLED else ResultCache()


def run_one(
    workload: Workload,
    config: SystemConfig,
    cache: Optional[ResultCache] = DEFAULT_CACHE,
) -> SimResult:
    """Simulate one workload on one configuration, using the cache."""
    digest = workload.digest()
    if cache is not None:
        cached = cache.get(digest, config.digest())
        if cached is not None:
            return cached
    result = Simulator(config).run(workload)
    if cache is not None:
        cache.put(result)
    return result


def run_suite(
    config: SystemConfig,
    workloads: Optional[Iterable[Workload]] = None,
    cache: Optional[ResultCache] = DEFAULT_CACHE,
) -> Dict[str, SimResult]:
    """Run (or fetch) the whole suite on ``config``; keyed by workload name."""
    if workloads is None:
        workloads = suite_workloads()
    results: Dict[str, SimResult] = {}
    simulator: Optional[Simulator] = None
    for workload in workloads:
        digest = workload.digest()
        cached = cache.get(digest, config.digest()) if cache is not None else None
        if cached is not None:
            results[workload.name] = cached
            continue
        if simulator is None:
            simulator = Simulator(config)
        result = simulator.run(workload)
        if cache is not None:
            cache.put(result)
        results[workload.name] = result
    return results


def category_of(workloads: Iterable[SyntheticWorkload]) -> Dict[str, Category]:
    """Workload-name -> category mapping for grouping report rows."""
    return {workload.name: workload.category for workload in workloads}


def names_in_category(category: Category) -> List[str]:
    """Suite workload names belonging to ``category``."""
    return [workload.name for workload in suite_workloads(category)]


def filter_names(results: Mapping[str, SimResult], names: Iterable[str]) -> Dict[str, SimResult]:
    """Subset of ``results`` restricted to ``names`` (order preserved)."""
    return {name: results[name] for name in names if name in results}
