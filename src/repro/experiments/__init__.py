"""Experiment drivers, one module per paper table/figure.

Each module exposes ``run_<exp>()`` returning structured results and
``report(...)`` rendering the paper-layout table.  The mapping from paper
artifact to module lives in DESIGN.md's per-experiment index; benchmarks
under ``benchmarks/`` drive these and assert the paper's shape headlines.
"""

from . import (
    ablation_migration,
    ablation_page_size,
    ablation_scheduler,
    fig2_scaling,
    fig4_bandwidth,
    fig6_l15,
    fig7_l15_bw,
    fig9_ds,
    fig10_ds_bw,
    fig13_ft,
    fig14_ft_bw,
    fig15_scurve,
    fig16_breakdown,
    fig17_multigpu,
    gpm_scaling,
    ml_workloads,
    scaleout_study,
    table1_history,
    table2_domains,
    table3_baseline,
    table4_workloads,
    topology_study,
)
from .common import DEFAULT_CACHE, ResultCache, default_cache, run_one, run_suite, run_suites

#: Registry: paper artifact id -> (experiment module, entry point name).
EXPERIMENTS = {
    "table1": (table1_history, "run_table1"),
    "table2": (table2_domains, "run_table2"),
    "table3": (table3_baseline, "run_table3"),
    "table4": (table4_workloads, "run_table4"),
    "fig2": (fig2_scaling, "run_fig2"),
    "fig4": (fig4_bandwidth, "run_fig4"),
    "fig6": (fig6_l15, "run_fig6"),
    "fig7": (fig7_l15_bw, "run_fig7"),
    "fig9": (fig9_ds, "run_fig9"),
    "fig10": (fig10_ds_bw, "run_fig10"),
    "fig13": (fig13_ft, "run_fig13"),
    "fig14": (fig14_ft_bw, "run_fig14"),
    "fig15": (fig15_scurve, "run_fig15"),
    "fig16": (fig16_breakdown, "run_fig16"),
    "fig17": (fig17_multigpu, "run_fig17"),
    # Extension studies beyond the paper's figures.
    "topology": (topology_study, "run_topology_study"),
    "scaleout": (scaleout_study, "run_scaleout_study"),
    "gpm-scaling": (gpm_scaling, "run_gpm_scaling"),
    "ml-workloads": (ml_workloads, "run_ml_workloads"),
    "sched-ablation": (ablation_scheduler, "run_scheduler_ablation"),
    "page-ablation": (ablation_page_size, "run_page_size_ablation"),
    "migration-ablation": (ablation_migration, "run_migration_ablation"),
}

__all__ = [
    "DEFAULT_CACHE",
    "ResultCache",
    "default_cache",
    "run_one",
    "run_suite",
    "run_suites",
    "EXPERIMENTS",
]
