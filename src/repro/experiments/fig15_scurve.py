"""Figure 15: s-curve of optimized-MCM speedups over all 48 workloads.

Paper headlines: of the 48 workloads, 31 speed up, 9 slow down; the best
gains exceed 3x (CoMD 3.5x, SP 4.4x) and the worst losses come from the
L1.5 latency adder on latency-bound workloads (up to -14.6%) and from the
shrunken write-back L2 on write-heavy ones (Streamcluster -25.3%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.report import format_series
from ..analysis.speedup import sorted_speedup_curve, speedups
from ..core.presets import baseline_mcm_gpu, optimized_mcm_gpu
from .common import run_suites


@dataclass(frozen=True)
class SCurve:
    """Optimized-vs-baseline speedups for the full suite."""

    per_workload: Dict[str, float]

    @property
    def curve(self) -> List[float]:
        """Speedups sorted ascending (the plotted series)."""
        return sorted_speedup_curve(self.per_workload)

    @property
    def improved(self) -> int:
        """Workloads faster on the optimized machine."""
        return sum(1 for value in self.per_workload.values() if value > 1.001)

    @property
    def degraded(self) -> int:
        """Workloads slower on the optimized machine."""
        return sum(1 for value in self.per_workload.values() if value < 0.999)

    def extremes(self, n: int = 3) -> Dict[str, float]:
        """The n best and n worst workloads."""
        ordered = sorted(self.per_workload.items(), key=lambda item: item[1])
        picked = ordered[:n] + ordered[-n:]
        return dict(picked)


def run_fig15() -> SCurve:
    """Simulate optimized vs baseline over the whole suite."""
    baseline, optimized = run_suites([baseline_mcm_gpu(), optimized_mcm_gpu()])
    return SCurve(per_workload=speedups(optimized, baseline))


def report(scurve: SCurve) -> str:
    """Render Figure 15."""
    lines = [
        format_series("Figure 15: sorted speedups (optimized / baseline)", scurve.curve),
        f"improved: {scurve.improved} / 48, degraded: {scurve.degraded} / 48 "
        "(paper: 31 improved, 9 degraded)",
        "extremes: "
        + ", ".join(f"{name}={value:.2f}" for name, value in scurve.extremes().items()),
    ]
    return "\n".join(lines)
