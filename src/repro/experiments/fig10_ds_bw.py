"""Figure 10: inter-GPM bandwidth with distributed scheduling.

Paper headline: L1.5 + distributed scheduling together cut inter-GPM
traffic by ~33% overall compared to the baseline.
"""

from __future__ import annotations

from ..core.presets import baseline_mcm_gpu, mcm_gpu_with_l15
from .common import run_suites
from .traffic_common import TrafficComparison, build_comparison
from .traffic_common import report as report_traffic


def run_fig10(l15_mb: int = 16) -> TrafficComparison:
    """Compare baseline traffic against L1.5 + distributed scheduling."""
    baseline, with_ds = run_suites(
        [
            baseline_mcm_gpu(),
            mcm_gpu_with_l15(l15_mb, remote_only=True, scheduler="distributed"),
        ]
    )
    return build_comparison(
        "Figure 10: Baseline vs 16MB remote-only L1.5 + DS",
        [("baseline", baseline), ("L1.5 + DS", with_ds)],
    )


def report(comparison: TrafficComparison) -> str:
    """Render Figure 10."""
    return report_traffic(comparison)
