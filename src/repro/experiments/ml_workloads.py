"""ML-era workload study: do the paper's conclusions survive 2017→now?

Runs the post-2017 ML extension suite (:func:`repro.workloads.suite.ml_specs`
— GEMM tiling, attention prefill/decode, ring allreduce, Zipfian
embedding gathers, bursty MoE dispatch) through the paper's three
headline comparisons and sets the outcomes side by side with the original
48-workload suite:

* **Fig 6-style** — does the 16 MB remote-only L1.5 still deliver a
  solid memory-intensive geomean gain?
* **Fig 13/16-style** — does the fully optimized build (L1.5 +
  distributed scheduling + first-touch) still approach the paper's
  headline uplift?
* **Fig 15-style** — does the optimized build still improve the large
  majority of workloads, with few regressions?

Each comparison yields an explicit hold/break verdict, so the report
answers the ROADMAP's "where do MCM-GPU's conclusions hold or break on
modern traffic?" question directly rather than leaving the reader to
eyeball two tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..analysis.report import format_table
from ..analysis.speedup import geomean_speedup, speedups
from ..core.presets import baseline_mcm_gpu, mcm_gpu_with_l15, optimized_mcm_gpu
from ..workloads.characterize import cached_profile
from ..workloads.suite import ml_workloads
from ..workloads.synthetic import Category
from .common import filter_names, names_in_category, run_suites

#: A conclusion "holds" on ML traffic when the ML-suite figure reaches at
#: least this fraction of the 2017-suite figure (for geomean gains) —
#: generous enough to tolerate suite-composition noise, strict enough
#: that a sign flip or a collapse to nil reads as "breaks".
HOLD_RATIO = 0.5


@dataclass(frozen=True)
class Verdict:
    """One paper conclusion evaluated on 2017-style vs ML-era traffic."""

    conclusion: str
    era2017: float
    ml_era: float
    holds: bool
    detail: str


@dataclass(frozen=True)
class MLStudy:
    """Results of the ML-era comparison study."""

    #: Per-ML-workload speedups: name -> (l15, optimized).
    per_workload: Dict[str, Tuple[float, float]]
    #: Static characterization rows: name -> (hot concentration,
    #: shared-line fraction, store fraction).
    characterization: Dict[str, Tuple[float, float, float]]
    verdicts: List[Verdict]
    ml_improved: int
    ml_degraded: int
    ml_total: int


def _gain(geomean: float) -> float:
    """Geomean expressed as a gain over 1.0 (signed percentage points)."""
    return geomean - 1.0


def run_ml_workloads(fast_factor=None) -> MLStudy:
    """Run the three headline comparisons on both suites.

    ``fast_factor`` scales every workload down (tests, CI smoke); the
    published study runs at full scale.  2017-suite results come from the
    shared result cache when other experiments already produced them.
    """
    configs = [
        baseline_mcm_gpu(),
        mcm_gpu_with_l15(16, remote_only=True),
        optimized_mcm_gpu(),
    ]
    ml_suite = ml_workloads(fast_factor=fast_factor)
    suite_2017 = None
    if fast_factor is not None:
        from ..workloads.suite import suite_workloads

        suite_2017 = suite_workloads(fast_factor=fast_factor)
    base17, l15_17, opt17 = run_suites(configs, workloads=suite_2017)
    base_ml, l15_ml, opt_ml = run_suites(configs, workloads=ml_suite)

    m_names = names_in_category(Category.M_INTENSIVE)
    ml_m_names = [w.name for w in ml_suite if w.category is Category.M_INTENSIVE]

    l15_gain_17 = _gain(
        geomean_speedup(filter_names(l15_17, m_names), filter_names(base17, m_names))
    )
    l15_gain_ml = _gain(
        geomean_speedup(
            filter_names(l15_ml, ml_m_names), filter_names(base_ml, ml_m_names)
        )
    )
    opt_gain_17 = _gain(geomean_speedup(opt17, base17))
    opt_gain_ml = _gain(geomean_speedup(opt_ml, base_ml))

    opt_speedups_17 = speedups(opt17, base17)
    opt_speedups_ml = speedups(opt_ml, base_ml)
    improved_17 = sum(1 for v in opt_speedups_17.values() if v > 1.001)
    improved_ml = sum(1 for v in opt_speedups_ml.values() if v > 1.001)
    degraded_ml = sum(1 for v in opt_speedups_ml.values() if v < 0.999)
    frac_17 = improved_17 / max(1, len(opt_speedups_17))
    frac_ml = improved_ml / max(1, len(opt_speedups_ml))

    verdicts = [
        Verdict(
            conclusion="Fig 6: 16MB remote-only L1.5 lifts M-intensive geomean",
            era2017=l15_gain_17,
            ml_era=l15_gain_ml,
            holds=l15_gain_ml >= HOLD_RATIO * l15_gain_17 and l15_gain_ml > 0,
            detail=f"geomean gain {l15_gain_17:+.1%} (2017) vs {l15_gain_ml:+.1%} (ML)",
        ),
        Verdict(
            conclusion="Fig 13/16: fully optimized build lifts the whole-suite geomean",
            era2017=opt_gain_17,
            ml_era=opt_gain_ml,
            holds=opt_gain_ml >= HOLD_RATIO * opt_gain_17 and opt_gain_ml > 0,
            detail=f"geomean gain {opt_gain_17:+.1%} (2017) vs {opt_gain_ml:+.1%} (ML)",
        ),
        Verdict(
            conclusion="Fig 15: optimized build improves most workloads",
            era2017=frac_17,
            ml_era=frac_ml,
            holds=frac_ml >= HOLD_RATIO * frac_17,
            detail=(
                f"improved {improved_17}/{len(opt_speedups_17)} (2017) vs "
                f"{improved_ml}/{len(opt_speedups_ml)} (ML)"
            ),
        ),
    ]

    l15_per = speedups(l15_ml, base_ml)
    per_workload = {
        name: (l15_per.get(name, float("nan")), opt_speedups_ml.get(name, float("nan")))
        for name in (w.name for w in ml_suite)
    }
    characterization = {}
    for workload in ml_suite:
        profile = cached_profile(workload)
        characterization[workload.name] = (
            profile.hot_concentration,
            profile.shared_line_fraction,
            profile.store_fraction,
        )
    return MLStudy(
        per_workload=per_workload,
        characterization=characterization,
        verdicts=verdicts,
        ml_improved=improved_ml,
        ml_degraded=degraded_ml,
        ml_total=len(opt_speedups_ml),
    )


def report(study: MLStudy) -> str:
    """Render the ML-era study: per-workload table + verdicts."""
    headers = ["Workload", "L1.5 16MB", "Optimized", "Hot10%", "Shared", "Stores"]
    rows: List[List[object]] = []
    for name, (l15, opt) in study.per_workload.items():
        hot, shared, store = study.characterization.get(name, (0.0, 0.0, 0.0))
        rows.append([name, l15, opt, hot, shared, store])
    table = format_table(
        headers,
        rows,
        title="ML-era workloads: speedups over baseline MCM-GPU + characterization",
    )
    lines = [table, ""]
    lines.append(
        f"optimized build on ML suite: {study.ml_improved} improved / "
        f"{study.ml_degraded} degraded of {study.ml_total}"
    )
    for verdict in study.verdicts:
        status = "HOLDS" if verdict.holds else "BREAKS"
        lines.append(f"[{status}] {verdict.conclusion} — {verdict.detail}")
    return "\n".join(lines)
