"""Figure 7: inter-GPM bandwidth, baseline vs 16 MB remote-only L1.5.

Paper headlines: the L1.5 cuts inter-GPM traffic by 16.9% / 36.4% / 32.9%
for the memory-/compute-intensive/limited categories, ~28% overall, with
SSSP reduced by up to ~40%.
"""

from __future__ import annotations

from ..core.presets import baseline_mcm_gpu, mcm_gpu_with_l15
from .common import run_suites
from .traffic_common import TrafficComparison, build_comparison
from .traffic_common import report as report_traffic


def run_fig7() -> TrafficComparison:
    """Compare baseline traffic against the 16 MB remote-only L1.5."""
    baseline, with_l15 = run_suites(
        [baseline_mcm_gpu(), mcm_gpu_with_l15(16, remote_only=True)]
    )
    return build_comparison(
        "Figure 7: Baseline vs 16MB remote-only L1.5",
        [("baseline", baseline), ("16MB remote-only L1.5", with_l15)],
    )


def report(comparison: TrafficComparison) -> str:
    """Render Figure 7."""
    return report_traffic(comparison)
