"""repro — reproduction of *MCM-GPU: Multi-Chip-Module GPUs for Continued
Performance Scalability* (Arunkumar et al., ISCA 2017).

Public API quick tour::

    from repro import baseline_mcm_gpu, optimized_mcm_gpu, simulate

    baseline = simulate("Stream", baseline_mcm_gpu())
    optimized = simulate("Stream", optimized_mcm_gpu())
    print(optimized.speedup_over(baseline))

See README.md for the architecture overview and DESIGN.md for the
per-experiment index.
"""

from .core.analytical import required_link_bandwidth
from .core.config import MEMORY_SCALE, CacheConfig, GPMConfig, SMConfig, SystemConfig
from .core.gpu import GPUSystem, build_system
from .core.presets import (
    baseline_mcm_gpu,
    mcm_gpu_with_l15,
    monolithic_gpu,
    multi_gpu,
    optimized_mcm_gpu,
)
from .sim.result import SimResult
from .sim.simulator import Simulator, simulate
from .telemetry import Telemetry
from .workloads.suite import all_specs, make_workload, suite_workloads
from .workloads.synthetic import Category, SyntheticWorkload, WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "required_link_bandwidth",
    "MEMORY_SCALE",
    "CacheConfig",
    "GPMConfig",
    "SMConfig",
    "SystemConfig",
    "GPUSystem",
    "build_system",
    "baseline_mcm_gpu",
    "mcm_gpu_with_l15",
    "monolithic_gpu",
    "multi_gpu",
    "optimized_mcm_gpu",
    "SimResult",
    "Simulator",
    "Telemetry",
    "simulate",
    "all_specs",
    "make_workload",
    "suite_workloads",
    "Category",
    "SyntheticWorkload",
    "WorkloadSpec",
    "__version__",
]
