"""CTA scheduler interface.

A scheduler owns the pool of not-yet-launched CTAs of the current kernel
and decides which CTA an SM receives when one of its slots frees up.  The
two concrete policies mirror the paper:

* :class:`~repro.sched.centralized.CentralizedScheduler` — the baseline
  global round-robin scheduler (Section 3.2, Figure 8a);
* :class:`~repro.sched.distributed.DistributedScheduler` — contiguous CTA
  batches pinned per GPM (Section 5.2, Figure 8b).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.gpu import GPUSystem
    from ..core.sm import SM


class CTAScheduler(ABC):
    """Assigns CTA indices of the running kernel to SMs."""

    def __init__(self, system: "GPUSystem") -> None:
        self.system = system
        self.n_ctas = 0
        self.dispatched = 0

    def start_kernel(self, n_ctas: int) -> None:
        """Arm the scheduler for a kernel of ``n_ctas`` CTAs."""
        if n_ctas <= 0:
            raise ValueError(f"n_ctas must be positive, got {n_ctas}")
        self.n_ctas = n_ctas
        self.dispatched = 0
        self._on_start_kernel()

    @abstractmethod
    def _on_start_kernel(self) -> None:
        """Policy-specific per-kernel initialization."""

    @abstractmethod
    def next_cta(self, sm: "SM") -> Optional[int]:
        """CTA index for ``sm``, or ``None`` when none remains for it."""

    @abstractmethod
    def initial_fill_order(self) -> List["SM"]:
        """SM order used to place the first wave of CTAs at kernel launch."""

    @property
    def remaining(self) -> int:
        """CTAs not yet dispatched."""
        return self.n_ctas - self.dispatched

    @property
    def exhausted(self) -> bool:
        """True when every CTA of the kernel has been dispatched."""
        return self.dispatched >= self.n_ctas
