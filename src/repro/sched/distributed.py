"""Distributed CTA scheduler (Section 5.2).

The kernel's CTA index range is divided into ``n_gpms`` equal contiguous
batches and batch ``g`` is pinned to GPM ``g`` (Figure 8b).  Contiguous
CTAs therefore share a GPM — and its L1.5 and local memory partition —
which converts inter-CTA spatial locality into GPM-local traffic.

Because the split is a pure function of the CTA index, a re-launched
kernel re-binds CTA ``i`` to the same GPM (Figure 12); combined with
first-touch placement this keeps pages local across kernel iterations.

The pinning is deliberately inflexible: there is no work stealing, so
kernels whose CTAs do unequal work suffer coarse-grain load imbalance —
the degradation the paper observes for two of its workloads (Section 5.4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from .base import CTAScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.sm import SM


class DistributedScheduler(CTAScheduler):
    """Contiguous CTA batches pinned one-per-GPM, no stealing."""

    def _on_start_kernel(self) -> None:
        n_gpms = self.system.n_gpms
        base, extra = divmod(self.n_ctas, n_gpms)
        self._next_index: List[int] = []
        self._limit: List[int] = []
        start = 0
        for gpm_id in range(n_gpms):
            count = base + (1 if gpm_id < extra else 0)
            self._next_index.append(start)
            self._limit.append(start + count)
            start += count

    def batch_bounds(self, gpm_id: int) -> range:
        """CTA index range assigned to ``gpm_id`` for the current kernel."""
        # Reconstruct the static split (independent of dispatch progress).
        n_gpms = self.system.n_gpms
        base, extra = divmod(self.n_ctas, n_gpms)
        start = gpm_id * base + min(gpm_id, extra)
        count = base + (1 if gpm_id < extra else 0)
        return range(start, start + count)

    def gpm_of_cta(self, cta_index: int) -> int:
        """GPM that CTA ``cta_index`` is bound to (stable across launches)."""
        for gpm_id in range(self.system.n_gpms):
            if cta_index in self.batch_bounds(gpm_id):
                return gpm_id
        raise ValueError(f"CTA {cta_index} out of range for kernel of {self.n_ctas}")

    def next_cta(self, sm: "SM") -> Optional[int]:
        gpm_id = sm.gpm_id
        index = self._next_index[gpm_id]
        if index >= self._limit[gpm_id]:
            return None
        self._next_index[gpm_id] = index + 1
        self.dispatched += 1
        return index

    def initial_fill_order(self) -> List["SM"]:
        """GPM-major SM order so each GPM's batch fills its own SMs."""
        return self.system.all_sms()


def make_scheduler(name: str, system) -> CTAScheduler:
    """Build a scheduler by configuration name."""
    from .centralized import CentralizedScheduler
    from .dynamic import DynamicScheduler

    if name == "centralized":
        return CentralizedScheduler(system)
    if name == "distributed":
        return DistributedScheduler(system)
    if name == "dynamic":
        return DynamicScheduler(system)
    raise ValueError(
        f"unknown scheduler {name!r}; expected 'centralized', 'distributed', or 'dynamic'"
    )
