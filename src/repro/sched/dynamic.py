"""Dynamic distributed CTA scheduler (the paper's future-work extension).

Section 5.2 observes that the static equal split "suffers from the coarse
granularity of CTA division and may perform better with a smaller number
of contiguous CTAs assigned to each GPM", and Section 5.4 leaves "a
dynamic CTA scheduler" to future work.  This scheduler implements that
idea two ways:

* **finer batches** — instead of one batch per GPM, the CTA range is cut
  into ``batches_per_gpm`` contiguous batches per GPM, assigned
  round-robin in index order so batch *k* of every GPM covers nearby CTA
  ranges (locality is preserved at batch granularity, Figure 8(b) style);
* **work stealing** — a GPM that drains its own batches steals the
  *trailing* batch of the most-loaded GPM, trading a little locality for
  the tail-imbalance robustness the static scheduler lacks.

CTA->GPM binding remains deterministic for the un-stolen majority, so
first-touch placement still composes (stolen batches re-place their pages
on the thief on the next kernel only if stealing recurs, which the
deterministic steal order makes stable for a deterministic workload).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Deque, List, Optional
from collections import deque

from .base import CTAScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.sm import SM


class DynamicScheduler(CTAScheduler):
    """Distributed scheduling with finer batches and work stealing.

    Parameters
    ----------
    system:
        The GPU being scheduled.
    batches_per_gpm:
        How many contiguous batches each GPM's share is divided into.
        ``1`` reproduces the static distributed scheduler's granularity
        (but still steals); larger values trade locality for balance.
    steal:
        Enable stealing from the most-loaded GPM when a module runs dry.
    """

    def __init__(self, system, batches_per_gpm: int = 4, steal: bool = True) -> None:
        super().__init__(system)
        if batches_per_gpm <= 0:
            raise ValueError(f"batches_per_gpm must be positive, got {batches_per_gpm}")
        self.batches_per_gpm = batches_per_gpm
        self.steal = steal
        self.steals = 0
        self._queues: List[Deque[range]] = []

    def _on_start_kernel(self) -> None:
        n_gpms = self.system.n_gpms
        n_batches = n_gpms * self.batches_per_gpm
        base, extra = divmod(self.n_ctas, n_batches)
        self._queues = [deque() for _ in range(n_gpms)]
        start = 0
        for batch_index in range(n_batches):
            count = base + (1 if batch_index < extra else 0)
            if count == 0:
                continue
            batch = deque([range(start, start + count)])
            # Batch k goes to GPM k % n: contiguous index ranges stay
            # together inside each batch, and each GPM's batches tile the
            # whole index space coarsely.
            self._queues[batch_index % n_gpms].extend(batch)
            start += count

    def _pop_local(self, gpm_id: int) -> Optional[int]:
        queue = self._queues[gpm_id]
        while queue:
            batch = queue[0]
            if len(batch) == 0:
                queue.popleft()
                continue
            cta = batch.start
            queue[0] = range(batch.start + 1, batch.stop)
            return cta
        return None

    def _steal_batch(self, thief: int) -> bool:
        """Move the trailing batch of the most-loaded GPM to ``thief``."""
        victim = max(
            range(self.system.n_gpms),
            key=lambda gpm: sum(len(batch) for batch in self._queues[gpm]),
        )
        if victim == thief:
            return False
        victim_queue = self._queues[victim]
        while victim_queue and len(victim_queue[-1]) == 0:
            victim_queue.pop()
        if not victim_queue:
            return False
        # Don't steal the batch the victim is actively draining unless it
        # is the only one left.
        batch = victim_queue.pop() if len(victim_queue) > 1 else victim_queue.popleft()
        if len(batch) == 0:
            return False
        self._queues[thief].append(batch)
        self.steals += 1
        return True

    def next_cta(self, sm: "SM") -> Optional[int]:
        gpm_id = sm.gpm_id
        cta = self._pop_local(gpm_id)
        if cta is None and self.steal and self._steal_batch(gpm_id):
            cta = self._pop_local(gpm_id)
        if cta is not None:
            self.dispatched += 1
        return cta

    def initial_fill_order(self) -> List["SM"]:
        """GPM-major SM order, like the static distributed scheduler."""
        return self.system.all_sms()

    def pending_per_gpm(self) -> List[int]:
        """Undispatched CTAs currently queued per GPM (diagnostics)."""
        return [sum(len(batch) for batch in queue) for queue in self._queues]
