"""CTA scheduling policies."""

from .base import CTAScheduler
from .centralized import CentralizedScheduler
from .distributed import DistributedScheduler, make_scheduler
from .dynamic import DynamicScheduler

__all__ = [
    "CTAScheduler",
    "CentralizedScheduler",
    "DistributedScheduler",
    "DynamicScheduler",
    "make_scheduler",
]
