"""Baseline centralized CTA scheduler (Section 3.2).

A single global dispatcher hands out CTAs in index order "in a round-robin
manner as SMs become available", exactly as on a monolithic GPU.  At kernel
launch the first wave is placed on SMs interleaved across GPMs, so
consecutive CTAs land on *different* GPMs (Figure 8a); in steady state a
CTA goes to whichever SM frees a slot first, which scatters contiguous CTA
groups across the machine and destroys inter-CTA locality on a NUMA
MCM-GPU.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from .base import CTAScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.sm import SM


class CentralizedScheduler(CTAScheduler):
    """Global in-order dispatcher; CTA affinity is wherever a slot frees."""

    def __init__(self, system) -> None:
        super().__init__(system)
        self._launches = 0

    def _on_start_kernel(self) -> None:
        self._next_index = 0
        self._launches += 1

    def next_cta(self, sm: "SM") -> Optional[int]:
        if self._next_index >= self.n_ctas:
            return None
        cta = self._next_index
        self._next_index += 1
        self.dispatched += 1
        return cta

    def initial_fill_order(self) -> List["SM"]:
        """GPM-interleaved SM order: gpm0.sm0, gpm1.sm0, ..., gpm0.sm1, ...

        This produces the Figure 8(a) placement where consecutive CTAs of
        the first wave sit on different GPMs.

        The order is rotated by one SM on every kernel launch: a
        centralized scheduler gives no cross-launch affinity (SM
        availability at launch time is arbitrary), so CTA ``i`` lands on a
        *different* GPM next launch.  This is the instability that makes
        first-touch placement useless — or harmful — without distributed
        scheduling (Sections 5.3 and 5.4): pages placed during one kernel
        are remote for their re-users in the next.
        """
        order = self.system.sms_interleaved()
        shift = max(0, self._launches - 1) % max(1, len(order))
        return order[shift:] + order[:shift]
