"""Declarative sweep specifications over :class:`SystemConfig` space.

A :class:`SweepSpec` names the axes of a design-space search as dot-paths
into the nested configuration dataclasses (``link_bandwidth``,
``gpm.l15.size_bytes``, ``gpm.sm.max_resident_ctas``, ...) together with
the values each axis takes.  Candidates are materialized functionally via
:func:`dataclasses.replace` — the base configuration is never mutated —
and enumeration is fully deterministic: a grid expands in row-major axis
order, and the seeded random strategy draws a reproducible sample of the
same grid, so two enumerations of one spec are always identical (the
property result caching and re-runnable reports depend on).
"""

from __future__ import annotations

from dataclasses import dataclass, is_dataclass, replace
from random import Random
from typing import Any, Dict, List, Sequence, Tuple

from ..core.config import SystemConfig

#: Enumeration strategies a spec may request.
STRATEGIES = ("grid", "random")


def config_get(config: Any, path: str) -> Any:
    """Read a dot-path (e.g. ``gpm.l15.size_bytes``) out of a config tree."""
    node = config
    for part in path.split("."):
        if node is None:
            raise ValueError(
                f"cannot read {path!r}: intermediate field is None "
                f"(is the L1.5 absent on this configuration?)"
            )
        if not hasattr(node, part):
            raise ValueError(f"no field {part!r} along path {path!r}")
        node = getattr(node, part)
    return node


def config_replace(config: Any, path: str, value: Any) -> Any:
    """Functionally set one dot-path on a (frozen, nested) config dataclass.

    Rebuilds every dataclass along the path with :func:`dataclasses.replace`
    and returns the new root; the input is untouched.  Raises ``ValueError``
    for unknown fields and for paths that traverse a ``None`` intermediate
    (e.g. ``gpm.l15.size_bytes`` on a configuration without an L1.5 —
    sweeps that toggle the level must swap in a whole ``CacheConfig``).
    """
    head, _, rest = path.partition(".")
    if not is_dataclass(config):
        raise ValueError(f"cannot descend into non-dataclass value at {head!r}")
    if not hasattr(config, head):
        raise ValueError(f"no field {head!r} on {type(config).__name__}")
    if not rest:
        return replace(config, **{head: value})
    child = getattr(config, head)
    if child is None:
        raise ValueError(
            f"cannot set {path!r}: {head!r} is None on {type(config).__name__}"
        )
    return replace(config, **{head: config_replace(child, rest, value)})


def _format_value(value: Any) -> str:
    """Compact, deterministic rendering of an axis value for candidate names."""
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


@dataclass(frozen=True)
class Axis:
    """One sweep dimension: a dot-path and the values it takes, in order."""

    path: str
    values: Tuple[Any, ...]
    #: Short name used in candidate names; defaults to the path's leaf.
    label: str = ""

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"axis {self.path!r} has no values")
        if len(set(map(repr, self.values))) != len(self.values):
            raise ValueError(f"axis {self.path!r} has duplicate values")
        if not self.label:
            object.__setattr__(self, "label", self.path.rsplit(".", 1)[-1])

    def to_dict(self) -> Dict[str, Any]:
        """JSON form for sweep artifacts."""
        return {"path": self.path, "label": self.label, "values": list(self.values)}


@dataclass(frozen=True)
class Candidate:
    """One materialized design point of a sweep."""

    name: str
    config: SystemConfig
    #: The axis assignment that produced this point, keyed by axis path.
    assignment: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        """JSON form for sweep artifacts."""
        return {
            "name": self.name,
            "assignment": dict(self.assignment),
            "config": self.config.to_dict(),
        }


@dataclass(frozen=True)
class SweepSpec:
    """A named design-space sweep: base configuration plus axes.

    ``strategy="grid"`` enumerates the full Cartesian product in
    deterministic row-major order (later axes vary fastest);
    ``strategy="random"`` draws ``samples`` distinct grid points using a
    ``random.Random(seed)`` stream, so the subset is reproducible and
    collision-free by construction.
    """

    name: str
    base: SystemConfig
    axes: Tuple[Axis, ...]
    strategy: str = "grid"
    samples: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; expected one of {STRATEGIES}"
            )
        if not self.axes:
            raise ValueError(f"sweep {self.name!r} has no axes")
        paths = [axis.path for axis in self.axes]
        if len(set(paths)) != len(paths):
            raise ValueError(f"sweep {self.name!r} repeats an axis path")
        if self.strategy == "random" and self.samples <= 0:
            raise ValueError("random strategy needs samples > 0")
        # Fail at spec-construction time, not mid-sweep: every axis path
        # must be materializable on the base configuration.
        for axis in self.axes:
            config_replace(self.base, axis.path, axis.values[0])

    @property
    def grid_size(self) -> int:
        """Number of points in the full Cartesian product."""
        size = 1
        for axis in self.axes:
            size *= len(axis.values)
        return size

    def _point(self, index: int) -> Candidate:
        """Materialize grid point ``index`` (row-major, later axes fastest)."""
        assignment: Dict[str, Any] = {}
        parts: List[str] = []
        remainder = index
        for axis in reversed(self.axes):
            remainder, offset = divmod(remainder, len(axis.values))
            assignment[axis.path] = axis.values[offset]
        config = self.base
        for axis in self.axes:
            value = assignment[axis.path]
            config = config_replace(config, axis.path, value)
            parts.append(f"{axis.label}={_format_value(value)}")
        name = f"{self.name}/" + ",".join(parts)
        config = replace(config, name=name)
        # Re-key the assignment into axis order for stable serialization.
        ordered = {axis.path: assignment[axis.path] for axis in self.axes}
        return Candidate(name=name, config=config, assignment=ordered)

    def candidates(self) -> List[Candidate]:
        """Deterministically enumerate this sweep's design points.

        Candidate names embed the axis assignment and are unique within
        the sweep, so two distinct candidates can never collide in the
        result cache (names feed configuration digests).
        """
        if self.strategy == "grid":
            indices: Sequence[int] = range(self.grid_size)
        else:
            rng = Random(self.seed)
            count = min(self.samples, self.grid_size)
            indices = sorted(rng.sample(range(self.grid_size), count))
        return [self._point(index) for index in indices]

    def to_dict(self) -> Dict[str, Any]:
        """JSON form for sweep artifacts."""
        return {
            "name": self.name,
            "strategy": self.strategy,
            "samples": self.samples,
            "seed": self.seed,
            "base": self.base.to_dict(),
            "axes": [axis.to_dict() for axis in self.axes],
        }
