"""Sweep report assembly and ``explore/<sweep-name>/`` artifacts.

A finished sweep produces three files:

* ``report.json`` — the deterministic record: spec, ranked candidates
  (with serialized configurations), halving structure, Pareto frontier,
  sensitivity and crossover results.  Bit-identical across re-runs with
  the same seed — runtime quantities (wall seconds, cache hit counts)
  are deliberately excluded.
* ``report.txt`` — the same content rendered as aligned tables, equally
  deterministic.
* ``run.json`` — this run's cost accounting: per-rung simulated/cached
  pair counts, wall and sim seconds, and the result-cache census.  Warm
  re-runs differ here (that is the point: the CI smoke job asserts the
  second invocation simulated nothing).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.report import format_table
from ..core.config import SystemConfig
from ..experiments.common import ResultCache
from ..parallel.metrics import GLOBAL_METRICS
from .pareto import DEFAULT_OBJECTIVES, Objective
from .search import HalvingResult, ScoredCandidate
from .sensitivity import AxisSensitivity, CrossoverResult
from .spec import SweepSpec


@dataclass(frozen=True)
class ExtraTable:
    """One sweep-specific supplementary table (e.g. analytical collapse points).

    Extras are deterministic by contract — they are serialized into
    ``report.json`` and must be bit-identical across re-runs, so they may
    only derive from the spec, the analytical models, and the (already
    deterministic) ranked candidates.
    """

    title: str
    headers: List[str]
    rows: List[List[object]]

    def to_dict(self) -> Dict[str, object]:
        """JSON form for sweep artifacts."""
        return {
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
        }


@dataclass
class SweepReport:
    """Everything one sweep produced, ready for rendering and serialization."""

    spec: SweepSpec
    baseline: SystemConfig
    halving: HalvingResult
    frontier: List[ScoredCandidate]
    objectives: Tuple[Objective, ...] = DEFAULT_OBJECTIVES
    sensitivity: List[AxisSensitivity] = field(default_factory=list)
    crossover: Optional[CrossoverResult] = None
    #: Sweep-specific supplementary tables, keyed by a stable slug.
    extras: Dict[str, ExtraTable] = field(default_factory=dict)

    def deterministic_dict(self) -> Dict[str, object]:
        """The run-independent record serialized into ``report.json``."""
        data: Dict[str, object] = {
            "sweep": self.spec.to_dict(),
            "baseline": self.baseline.to_dict(),
            "objectives": [objective.to_dict() for objective in self.objectives],
            "ranking": [item.to_dict() for item in self.halving.ranking],
            "survivors": list(self.halving.survivors),
            "rungs": [rung.deterministic_dict() for rung in self.halving.rungs],
            "pareto_frontier": [item.to_dict() for item in self.frontier],
            "sensitivity": [axis.to_dict() for axis in self.sensitivity],
            "crossover": None if self.crossover is None else self.crossover.to_dict(),
        }
        if self.extras:
            data["extras"] = {
                key: table.to_dict() for key, table in sorted(self.extras.items())
            }
        return data

    def runtime_dict(self, cache: Optional[ResultCache] = None) -> Dict[str, object]:
        """This run's cost accounting, serialized into ``run.json``."""
        data: Dict[str, object] = {
            "rungs": [rung.runtime_dict() for rung in self.halving.rungs],
            "total_pairs": GLOBAL_METRICS.total_pairs,
            "cached_pairs": GLOBAL_METRICS.cached_pairs,
            "executed_pairs": GLOBAL_METRICS.executed_pairs,
            "hit_rate": GLOBAL_METRICS.hit_rate,
            "wall_seconds": GLOBAL_METRICS.wall_seconds,
            "workers": GLOBAL_METRICS.workers,
        }
        if cache is not None:
            stats = cache.stats()
            data["cache"] = {
                "entries": stats.entries,
                "bytes_on_disk": stats.bytes_on_disk,
                "stale_entries": stats.stale_entries,
            }
        return data


def _fmt_obj(value: float) -> str:
    """Compact objective formatting (energy spans orders of magnitude)."""
    if value == 0:
        return "0"
    if abs(value) >= 1e4 or abs(value) < 1e-3:
        return f"{value:.3e}"
    return f"{value:.4g}"


def render_text(report: SweepReport) -> str:
    """Render the deterministic report as aligned monospace tables."""
    objective_keys = [objective.key for objective in report.objectives]
    frontier_names = {item.candidate.name for item in report.frontier}
    screened = any(item.source != "sim" for item in report.halving.ranking)
    ranking_rows = [
        [
            item.candidate.name,
            f"{item.score:.4f}",
            item.rung,
            "*" if item.candidate.name in frontier_names else "",
        ]
        + (["a" if item.source == "analytical" else ""] if screened else [])
        + [_fmt_obj(item.objectives[key]) for key in objective_keys]
        for item in report.halving.ranking
    ]
    sections = [
        format_table(
            ["Candidate", "Score", "Rung", "Pareto"]
            + (["Src"] if screened else [])
            + objective_keys,
            ranking_rows,
            title=f"Sweep {report.spec.name!r}: ranking "
            f"(geomean speedup over {report.baseline.name})"
            + (" — 'a' = analytical screen, never simulated" if screened else ""),
        )
    ]

    frontier_rows = [
        [item.candidate.name] + [_fmt_obj(item.objectives[key]) for key in objective_keys]
        for item in report.frontier
    ]
    directions = ", ".join(
        f"{objective.key} {'max' if objective.maximize else 'min'}"
        for objective in report.objectives
    )
    sections.append(
        format_table(
            ["Candidate"] + objective_keys,
            frontier_rows,
            title=f"Pareto frontier ({directions})",
        )
    )

    halving_rows = [
        [rung.rung, rung.label, rung.candidates, rung.promoted, rung.pairs]
        for rung in report.halving.rungs
    ]
    sections.append(
        format_table(
            ["Rung", "Workloads", "Candidates", "Promoted", "Pairs"],
            halving_rows,
            title="Successive halving",
        )
    )

    for rung in report.halving.rungs:
        if rung.screen is None:
            continue
        info = rung.screen
        unscreened = int(info.get("pairs_unscreened", 0))
        reduction = (
            f"{unscreened / rung.pairs:.1f}x" if rung.pairs else "all pairs skipped"
        )
        sections.append(
            f"Analytical screen (rung {rung.rung}, band +/-{float(info['band']):.3f} "
            f"log-score): {info['definite_in']} promoted and "
            f"{info['screened_out']} eliminated without simulation, "
            f"{info['ambiguous']} ambiguous simulated; "
            f"{rung.pairs} of {unscreened} exact pairs ({reduction} reduction)"
        )

    if report.sensitivity:
        sens_rows = [
            [
                axis.label,
                axis.path,
                f"{axis.swing:.4f}",
                " ".join(f"{value}:{score:.3f}" for value, score in axis.points),
            ]
            for axis in report.sensitivity
        ]
        sections.append(
            format_table(
                ["Axis", "Path", "Swing", "Score by value"],
                sens_rows,
                title="One-at-a-time sensitivity (vs base config)",
            )
        )

    if report.crossover is not None:
        cross = report.crossover
        if cross.bracketed:
            verdict = (
                f"crossover at {cross.axis} ~= {cross.estimate:g} "
                f"(+/- {cross.tolerance:g})"
            )
        else:
            adv_lo, adv_hi = cross.endpoint_advantages
            endpoints = (
                f"advantage {adv_lo:+.4f} at {cross.lo:g}, "
                f"{adv_hi:+.4f} at {cross.hi:g}"
            )
            if cross.status == "always_ahead":
                verdict = (
                    f"no crossover in [{cross.lo:g}, {cross.hi:g}] — candidate "
                    f"already ahead across the whole range ({endpoints}); "
                    f"true threshold lies at or below {cross.lo:g}"
                )
            elif cross.status == "never_ahead":
                verdict = (
                    f"no crossover in [{cross.lo:g}, {cross.hi:g}] — candidate "
                    f"never overtakes the reference in the probed range "
                    f"({endpoints})"
                )
            else:
                verdict = (
                    f"advantage decreases across [{cross.lo:g}, {cross.hi:g}] "
                    f"({endpoints}) — monotonicity assumption violated, "
                    f"no threshold reported"
                )
        samples = "  ".join(f"{x:g}:{adv:+.4f}" for x, adv in cross.samples)
        sections.append(
            f"Crossover ({cross.axis} in [{cross.lo:g}, {cross.hi:g}], "
            f"{cross.evaluations} evaluations)\n"
            f"  {verdict}\n"
            f"  probes (value:advantage): {samples}"
        )

    for _, table in sorted(report.extras.items()):
        sections.append(format_table(table.headers, table.rows, title=table.title))

    return "\n\n".join(sections) + "\n"


def write_artifacts(
    report: SweepReport,
    out_root: Path,
    cache: Optional[ResultCache] = None,
) -> Dict[str, Path]:
    """Write ``report.json``, ``report.txt`` and ``run.json``.

    Artifacts land under ``<out_root>/<sweep-name>/``; the sweep name is
    sanitized for filesystem use.  Returns the written paths keyed by
    artifact name.
    """
    directory = Path(out_root) / report.spec.name.replace("/", "_")
    directory.mkdir(parents=True, exist_ok=True)
    paths = {
        "report.json": directory / "report.json",
        "report.txt": directory / "report.txt",
        "run.json": directory / "run.json",
    }
    paths["report.json"].write_text(
        json.dumps(report.deterministic_dict(), indent=2, sort_keys=True) + "\n"
    )
    paths["report.txt"].write_text(render_text(report))
    paths["run.json"].write_text(
        json.dumps(report.runtime_dict(cache), indent=2, sort_keys=True) + "\n"
    )
    return paths
