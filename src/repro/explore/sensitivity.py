"""One-at-a-time sensitivity analysis and the crossover finder.

Sensitivity answers "which knob matters": each axis is swept alone while
every other field stays at the base configuration, and the *swing* (best
minus worst score) ranks the axes.

The crossover finder answers the paper's threshold questions generically —
"at what link bandwidth does the MCM-GPU overtake the 2-GPU board?" is the
Figure 14 instance.  It bisects a numeric axis for the point where system
A's advantage over a fixed reference system B changes sign, assuming the
advantage is monotone along the axis (true for every bandwidth-, capacity-
and latency-like axis in this model; the metamorphic properties in
``repro.validate`` pin the monotonicities down).  Probes run through the
shared result cache, so repeated searches — and the re-run of a sweep
report — are nearly free.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.speedup import geomean, speedups
from ..core.config import SystemConfig
from ..workloads.trace import Workload
from .search import Runner, default_runner
from .spec import Axis, config_replace


@dataclass(frozen=True)
class AxisSensitivity:
    """Scores along one axis with everything else held at the base config."""

    path: str
    label: str
    #: ``(axis value, geomean speedup over the baseline)`` per point,
    #: in axis-value order.
    points: Tuple[Tuple[object, float], ...]

    @property
    def swing(self) -> float:
        """Best minus worst score along the axis — the axis's leverage."""
        scores = [score for _, score in self.points]
        return max(scores) - min(scores)

    def to_dict(self) -> Dict[str, object]:
        """JSON form for sweep artifacts."""
        return {
            "path": self.path,
            "label": self.label,
            "points": [[value, score] for value, score in self.points],
            "swing": self.swing,
        }


def oat_sensitivity(
    base: SystemConfig,
    axes: Sequence[Axis],
    baseline: SystemConfig,
    workloads: Sequence[Workload],
    runner: Optional[Runner] = None,
) -> List[AxisSensitivity]:
    """One-at-a-time sweep of every axis around ``base``.

    All (axis, value) variants plus the baseline run as **one** batch so
    the process pool overlaps everything; scores are geomean speedups
    over ``baseline``.  Returned reports are ordered by descending swing.
    """
    if runner is None:
        runner = default_runner()
    variants: List[SystemConfig] = []
    keys: List[Tuple[str, object]] = []
    for axis in axes:
        for value in axis.values:
            config = config_replace(base, axis.path, value)
            config = replace(
                config, name=f"{base.name}~{axis.label}={value}"
            )
            variants.append(config)
            keys.append((axis.path, value))
    per_config = runner([baseline] + variants, list(workloads))
    baseline_results = per_config[0]
    score_by_key: Dict[Tuple[str, object], float] = {}
    for key, results in zip(keys, per_config[1:]):
        score_by_key[key] = geomean(speedups(results, baseline_results).values())
    reports = [
        AxisSensitivity(
            path=axis.path,
            label=axis.label,
            points=tuple((value, score_by_key[(axis.path, value)]) for value in axis.values),
        )
        for axis in axes
    ]
    return sorted(reports, key=lambda report: (-report.swing, report.path))


# ----------------------------------------------------------------------
# Crossover finder
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CrossoverResult:
    """Outcome of bisecting an axis for a sign change of an advantage.

    ``estimate`` is the smallest axis value at which the advantage is
    non-negative (to within ``tolerance``) — set only when a genuine sign
    change was bracketed inside ``[lo, hi]`` (``bracketed`` True,
    ``status`` "bracketed").  When both endpoints have the same sign
    there is **no crossover in range** and the estimate is None; the
    ``status`` says which way ("always_ahead": A wins at both ends, the
    true threshold lies at or below ``lo``; "never_ahead": A loses at
    both ends).  A decreasing sign pattern ("non_monotone") violates the
    finder's monotonicity assumption and is reported rather than
    bisected.  The endpoint advantages are always in ``samples``.
    """

    axis: str
    lo: float
    hi: float
    estimate: Optional[float]
    bracketed: bool
    tolerance: float
    #: Every ``(value, advantage)`` probe, in evaluation order.
    samples: Tuple[Tuple[float, float], ...]
    #: "bracketed" | "always_ahead" | "never_ahead" | "non_monotone".
    status: str = "bracketed"

    @property
    def evaluations(self) -> int:
        """Number of advantage evaluations spent."""
        return len(self.samples)

    @property
    def endpoint_advantages(self) -> Tuple[float, float]:
        """The probed advantages at ``lo`` and ``hi``."""
        by_value = dict(self.samples)
        return by_value[self.lo], by_value[self.hi]

    def to_dict(self) -> Dict[str, object]:
        """JSON form for sweep artifacts."""
        return {
            "axis": self.axis,
            "lo": self.lo,
            "hi": self.hi,
            "estimate": self.estimate,
            "bracketed": self.bracketed,
            "status": self.status,
            "tolerance": self.tolerance,
            "evaluations": self.evaluations,
            "samples": [[value, advantage] for value, advantage in self.samples],
        }


def bisect_crossover(
    advantage: Callable[[float], float],
    lo: float,
    hi: float,
    tolerance: float = 1.0,
    max_iterations: int = 32,
    axis: str = "value",
) -> CrossoverResult:
    """Bisect ``advantage`` (assumed monotone increasing) for its zero.

    ``advantage(x)`` is system A's edge over the reference at axis value
    ``x`` (positive means A wins).  Classic bisection: keep an interval
    with ``advantage < 0`` at the low end and ``>= 0`` at the high end,
    halve until it is narrower than ``tolerance``.  Both endpoints are
    always probed first; when their signs do not bracket a crossover the
    result reports "no crossover in range" (with the endpoint advantages
    in ``samples``) instead of bisecting to an arbitrary boundary value.
    Degenerate inputs are reported rather than raised — an un-bracketed
    search is a finding ("A wins everywhere probed"), not an error.
    """
    if not lo < hi:
        raise ValueError(f"need lo < hi, got [{lo}, {hi}]")
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    samples: List[Tuple[float, float]] = []

    def probe(x: float) -> float:
        value = advantage(x)
        samples.append((x, value))
        return value

    f_lo = probe(lo)
    f_hi = probe(hi)
    if f_lo >= 0 or f_hi < 0:
        if f_lo >= 0 and f_hi >= 0:
            status = "always_ahead"
        elif f_lo < 0 and f_hi < 0:
            status = "never_ahead"
        else:
            status = "non_monotone"
        return CrossoverResult(
            axis=axis, lo=lo, hi=hi, estimate=None, bracketed=False,
            tolerance=tolerance, samples=tuple(samples), status=status,
        )
    low, high = lo, hi
    for _ in range(max_iterations):
        if high - low <= tolerance:
            break
        mid = (low + high) / 2.0
        if probe(mid) >= 0:
            high = mid
        else:
            low = mid
    return CrossoverResult(
        axis=axis, lo=lo, hi=hi, estimate=high, bracketed=True,
        tolerance=tolerance, samples=tuple(samples),
    )


def find_crossover(
    build: Callable[[float], SystemConfig],
    reference: SystemConfig,
    workloads: Sequence[Workload],
    lo: float,
    hi: float,
    axis: str = "link_bandwidth",
    tolerance: float = 16.0,
    runner: Optional[Runner] = None,
) -> CrossoverResult:
    """Minimum axis value at which ``build(x)`` overtakes ``reference``.

    The advantage function is ``geomean speedup of build(x) over the
    reference minus 1``.  The reference suite runs once; each bisection
    probe simulates one configuration (cache-served when the value was
    probed before — bisection midpoints are deterministic, so re-running
    the search is almost entirely cache hits).
    """
    if runner is None:
        runner = default_runner()
    reference_results = runner([reference], list(workloads))[0]

    def advantage(x: float) -> float:
        config = build(x)
        config = replace(config, name=f"{config.name}@{axis}={x:g}")
        results = runner([config], list(workloads))[0]
        return geomean(speedups(results, reference_results).values()) - 1.0

    return bisect_crossover(
        advantage, lo, hi, tolerance=tolerance, axis=axis
    )
