"""Run explore sweeps against a ``repro.serve`` job server.

:func:`remote_runner` adapts a :class:`~repro.serve.client.ServeClient`
to the :data:`~repro.explore.search.Runner` protocol, so
:func:`~repro.explore.search.run_sweep` (and ``scripts/submit.py``) can
drive a whole successive-halving sweep through a remote server without
touching the rest of the pipeline.  Each rung batch becomes one
``POST /batches`` submission; the server dedups against its result
cache, coalesces duplicates, and fans misses over its worker pool.

Because pair keys are content-addressed and simulations deterministic,
the per-config result dicts — and therefore ``report.json`` — are
bit-identical to a local run of the same sweep.  Throughput accounting
mirrors :func:`~repro.explore.search.default_runner`: the returned
runner carries a private ``metrics`` sink fed alongside the process-wide
:data:`~repro.parallel.metrics.GLOBAL_METRICS`, with server-side
``sim_seconds`` attributed to freshly executed pairs and everything else
counted as cached.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

from ..core.config import SystemConfig
from ..parallel.metrics import GLOBAL_METRICS, SuiteMetrics
from ..serve.client import ServeClient
from ..sim.result import SimResult
from ..workloads.trace import Workload
from .search import Runner


def remote_runner(client: ServeClient, timeout: float = 3600.0) -> Runner:
    """A :data:`Runner` that executes rung batches on a remote server.

    ``timeout`` bounds one rung batch end-to-end.  The runner raises
    :class:`~repro.serve.client.RemoteError` if the server reports any
    pair as failed, mirroring the local runner's fail-loud behaviour.
    """
    sink = SuiteMetrics()
    state = {"workers": 0}

    def run(
        configs: Sequence[SystemConfig], workloads: Sequence[Workload]
    ) -> List[Dict[str, SimResult]]:
        if not state["workers"]:
            # One-time: report the server's pool width, not a local count.
            state["workers"] = int(client.metrics().get("workers", 1)) or 1
        workloads = list(workloads)
        pairs = [
            (workload, config) for config in configs for workload in workloads
        ]
        start = time.perf_counter()
        rows = client.run_pairs(pairs, timeout=timeout)
        wall = time.perf_counter() - start
        per_config: List[Dict[str, SimResult]] = []
        for slot, config in enumerate(configs):
            base = slot * len(workloads)
            per_config.append(
                {
                    workload.name: rows[base + offset]["result"]
                    for offset, workload in enumerate(workloads)
                }
            )
        fresh = [row for row in rows if row["how"] == "queued"]
        for metrics in (sink, GLOBAL_METRICS):
            metrics.record_batch(
                configs=[config.name for config in configs],
                total=len(rows),
                cached=len(rows) - len(fresh),
                wall=wall,
                workers=state["workers"],
            )
            for row in fresh:
                metrics.record_sim(row["config"], float(row["sim_seconds"]))
        return per_config

    run.metrics = sink  # type: ignore[attr-defined]
    return run
