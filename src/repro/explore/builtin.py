"""Built-in sweeps: the paper's design-space questions as one-liners.

Three full sweeps (``link_l15``, ``page_place``, ``gpm_count``) cover the
link-bandwidth/L1.5, page-size/placement, and GPM-count dimensions the
paper explores in Figures 4/6/7, 11/12, and Section 3 respectively, plus
a tiny ``smoke`` sweep sized for CI.  Each returns a :class:`SweepPlan`
bundling the spec, the baseline to score against, the halving rungs, and
(where the question is a threshold) a crossover search;
:func:`run_sweep` executes a plan end to end and returns the
:class:`~repro.explore.report.SweepReport`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.analytical import bisection_collapse
from ..core.budget import DEFAULT_BUDGET, evaluate_budget
from ..core.config import SystemConfig
from ..core.presets import (
    baseline_mcm_gpu,
    mcm_gpu_with_l15,
    multi_gpu,
    optimized_mcm_gpu,
)
from ..workloads.suite import ml_workloads, spec_by_name, suite_workloads
from ..workloads.synthetic import SyntheticWorkload
from ..workloads.trace import Workload
from .pareto import DEFAULT_OBJECTIVES, Objective, pareto_front, pareto_indices
from .report import ExtraTable, SweepReport
from .search import Runner, ScoredCandidate, default_runner, successive_halving
from .sensitivity import find_crossover, oat_sensitivity
from .spec import Axis, SweepSpec

#: Workload scale factors for the halving rungs: (screening rung, final
#: rung).  ``--fast`` quarters both — the same trick ``validate --fast``
#: uses — so the final rung runs the 0.25x suite instead of the full one.
RUNG_SCALES = (0.25, None)
FAST_RUNG_SCALES = (0.0625, 0.25)

#: Workloads for the CI smoke sweep: one per behaviour class.
SMOKE_WORKLOADS = ("Stream", "BFS", "Backprop", "DWT")


@dataclass(frozen=True)
class CrossoverPlan:
    """A threshold question: where does ``build(x)`` overtake ``reference``."""

    build: Callable[[float], SystemConfig]
    reference: SystemConfig
    axis: str
    lo: float
    hi: float
    tolerance: float


@dataclass
class SweepPlan:
    """Everything needed to execute one built-in sweep."""

    spec: SweepSpec
    baseline: SystemConfig
    #: ``(label, workloads)`` halving rungs, cheapest first.
    rungs: List[Tuple[str, List[Workload]]]
    crossover: Optional[CrossoverPlan] = None
    #: Workloads for sensitivity and crossover probes (the cheap rung's
    #: set, so exploratory probes never cost full-suite simulations).
    probe_workloads: List[Workload] = field(default_factory=list)
    #: Pareto objectives for this sweep's frontier (performance up, cost
    #: down by default; scale-out sweeps swap link bandwidth for area).
    objectives: Tuple[Objective, ...] = DEFAULT_OBJECTIVES
    #: Optional deterministic hook mapping the final-rung survivors to
    #: supplementary :class:`~repro.explore.report.ExtraTable` sections
    #: (e.g. analytical collapse points, budget feasibility).
    extras: Optional[Callable[[Sequence[ScoredCandidate]], Dict[str, ExtraTable]]] = None

    def __post_init__(self) -> None:
        if not self.probe_workloads and self.rungs:
            self.probe_workloads = list(self.rungs[0][1])


def _suite_rungs(fast: bool) -> List[Tuple[str, List[Workload]]]:
    """The standard two-rung ladder over the 48-workload suite."""
    scales = FAST_RUNG_SCALES if fast else RUNG_SCALES
    rungs: List[Tuple[str, List[Workload]]] = []
    for scale in scales:
        label = "suite(full)" if scale is None else f"suite@{scale:g}"
        rungs.append((label, suite_workloads(fast_factor=scale)))
    return rungs


def _l15_sizes() -> List[int]:
    """Scaled per-GPM L1.5 capacities standing for 8/16/32 MB full scale."""
    return [
        mcm_gpu_with_l15(mb, remote_only=True).gpm.l15.size_bytes for mb in (8, 16, 32)
    ]


def link_l15_sweep(fast: bool = False, seed: int = 0) -> SweepPlan:
    """Link bandwidth x L1.5 capacity — the Figure 7 plane.

    Base system: 16 MB remote-only L1.5 with distributed scheduling and
    first-touch placement (the optimized stack), swept over inter-GPM
    link bandwidth and L1.5 capacity.  Unlike the paper's iso-transistor
    points the L2 is held fixed while the L1.5 varies — this sweep asks
    the provisioning question ("how much SRAM and wire do I need"), not
    the rebalancing one.  The attached crossover search answers the
    Figure 14 question generically: the minimum link bandwidth at which
    the optimized MCM-GPU overtakes the optimized 2-GPU board.
    """
    base = mcm_gpu_with_l15(
        16,
        remote_only=True,
        scheduler="distributed",
        placement="first_touch",
        name="mcm-l15ds-ft",
    )
    spec = SweepSpec(
        name="link_l15",
        base=base,
        axes=(
            Axis("link_bandwidth", (192.0, 384.0, 768.0, 1536.0), label="link"),
            Axis("gpm.l15.size_bytes", tuple(_l15_sizes()), label="l15"),
        ),
        seed=seed,
    )
    crossover = CrossoverPlan(
        build=lambda bw: optimized_mcm_gpu(link_bandwidth=bw),
        reference=multi_gpu(optimized=True),
        axis="link_bandwidth",
        lo=16.0,
        hi=768.0,
        tolerance=16.0,
    )
    return SweepPlan(
        spec=spec,
        baseline=baseline_mcm_gpu(),
        rungs=_suite_rungs(fast),
        crossover=crossover,
    )


def page_place_sweep(fast: bool = False, seed: int = 0) -> SweepPlan:
    """Page size x placement policy — the Figure 11/12 plane.

    Sweeps the optimized stack's page granularity against all static
    placement policies (plus the migrating variant's static cousin),
    scored against the interleaved baseline.
    """
    base = mcm_gpu_with_l15(
        16,
        remote_only=True,
        scheduler="distributed",
        placement="first_touch",
        name="mcm-l15ds",
    )
    spec = SweepSpec(
        name="page_place",
        base=base,
        axes=(
            Axis("page_bytes", (512, 2048, 8192), label="page"),
            Axis(
                "placement",
                ("interleave", "first_touch", "round_robin_page"),
                label="place",
            ),
        ),
        seed=seed,
    )
    return SweepPlan(
        spec=spec,
        baseline=baseline_mcm_gpu(),
        rungs=_suite_rungs(fast),
    )


def gpm_count_sweep(fast: bool = False, seed: int = 0) -> SweepPlan:
    """GPM count x link bandwidth — the Section 3 partitioning question.

    Holds per-GPM resources fixed (64 SMs, 4 MB full-scale L2, 768 GB/s
    DRAM each) and scales the module count, so total capability grows
    with the count while the ring gets longer — the cost side of the
    paper's "many cheap dies" argument.
    """
    base = baseline_mcm_gpu(name="mcm-gpms")
    spec = SweepSpec(
        name="gpm_count",
        base=base,
        axes=(
            Axis("n_gpms", (1, 2, 4, 8), label="gpms"),
            Axis("link_bandwidth", (384.0, 768.0), label="link"),
        ),
        seed=seed,
    )
    return SweepPlan(
        spec=spec,
        baseline=baseline_mcm_gpu(),
        rungs=_suite_rungs(fast),
    )


def smoke_sweep(fast: bool = True, seed: int = 0) -> SweepPlan:
    """Tiny 2x2 sweep for CI: four shrunken workloads, two small rungs.

    Exercises the whole machinery — enumeration, halving, Pareto,
    sensitivity, crossover — in well under a minute; not a meaningful
    design-space result.
    """
    base = mcm_gpu_with_l15(16, remote_only=True, name="mcm-smoke")
    spec = SweepSpec(
        name="smoke",
        base=base,
        axes=(
            Axis("link_bandwidth", (384.0, 768.0), label="link"),
            Axis("gpm.l15.size_bytes", tuple(_l15_sizes()[:2]), label="l15"),
        ),
        seed=seed,
    )
    specs = [spec_by_name(name) for name in SMOKE_WORKLOADS]
    rungs = [
        ("smoke@0.0625", [SyntheticWorkload(s.scaled_down(0.0625)) for s in specs]),
        ("smoke@0.25", [SyntheticWorkload(s.scaled_down(0.25)) for s in specs]),
    ]
    crossover = CrossoverPlan(
        build=lambda bw: optimized_mcm_gpu(link_bandwidth=bw),
        reference=multi_gpu(optimized=True),
        axis="link_bandwidth",
        lo=16.0,
        hi=768.0,
        tolerance=64.0,
    )
    return SweepPlan(
        spec=spec,
        baseline=baseline_mcm_gpu(),
        rungs=rungs,
        crossover=crossover,
    )


def ml_sweep(fast: bool = False, seed: int = 0) -> SweepPlan:
    """Link bandwidth x L1.5 capacity over the ML-era extension suite.

    The Figure 7 provisioning question re-asked on post-2017 traffic
    (GEMM tiling, attention gather, ring allreduce, Zipfian embedding
    lookups, bursty MoE dispatch): does ML-era traffic shift how much
    inter-GPM wire and GPM-side SRAM the design needs?  Same axes as
    ``link_l15`` but ranked on the 8-workload ML suite, so the two
    reports are directly comparable.
    """
    base = mcm_gpu_with_l15(
        16,
        remote_only=True,
        scheduler="distributed",
        placement="first_touch",
        name="mcm-l15ds-ml",
    )
    spec = SweepSpec(
        name="ml",
        base=base,
        axes=(
            Axis("link_bandwidth", (192.0, 384.0, 768.0, 1536.0), label="link"),
            Axis("gpm.l15.size_bytes", tuple(_l15_sizes()), label="l15"),
        ),
        seed=seed,
    )
    scales = FAST_RUNG_SCALES if fast else RUNG_SCALES
    rungs: List[Tuple[str, List[Workload]]] = []
    for scale in scales:
        label = "ml(full)" if scale is None else f"ml@{scale:g}"
        rungs.append((label, ml_workloads(fast_factor=scale)))
    return SweepPlan(
        spec=spec,
        baseline=baseline_mcm_gpu(),
        rungs=rungs,
    )


def wide_sweep(fast: bool = False, seed: int = 0) -> SweepPlan:
    """Link x L1.5 x page size — a 54-point grid sized for the screen.

    The full cross product (6 link settings x 3 L1.5 capacities x 3 page
    sizes) costs a 55-config rung 0 when simulated exactly — the wide
    sweeps this repo is growing toward are only feasible behind the
    analytical rung-0 screen (``scripts/explore.py --sweep wide
    --analytical``), which simulates just the band-ambiguous candidates.
    Running it unscreened still works; it is merely slow.
    """
    base = mcm_gpu_with_l15(
        16,
        remote_only=True,
        scheduler="distributed",
        placement="first_touch",
        name="mcm-wide",
    )
    spec = SweepSpec(
        name="wide",
        base=base,
        axes=(
            Axis(
                "link_bandwidth",
                (96.0, 192.0, 384.0, 768.0, 1536.0, 3072.0),
                label="link",
            ),
            Axis("gpm.l15.size_bytes", tuple(_l15_sizes()), label="l15"),
            Axis("page_bytes", (512, 2048, 8192), label="page"),
        ),
        seed=seed,
    )
    return SweepPlan(
        spec=spec,
        baseline=baseline_mcm_gpu(),
        rungs=_suite_rungs(fast),
    )


#: Topologies and module counts of the scale-out study grid.
SCALEOUT_TOPOLOGIES = ("ring", "fully_connected", "mesh", "torus", "hierarchical")
SCALEOUT_GPM_COUNTS = (8, 16, 64)

#: Reduced grid for ``--fast`` (CI): the two new grid fabrics at 8 GPMs.
SCALEOUT_FAST_TOPOLOGIES = ("mesh", "torus")
SCALEOUT_FAST_GPM_COUNTS = (8,)

#: Scale-out Pareto objectives: performance up, energy and silicon down.
#: Link bandwidth is constant across this grid (the axes are topology and
#: module count), so area replaces it as the hardware-cost dimension.
SCALEOUT_OBJECTIVES: Tuple[Objective, ...] = (
    Objective("geomean_speedup", maximize=True),
    Objective("energy_joules", maximize=False),
    Objective("area_mm2", maximize=False),
)


def _fmt_gbps(value: float) -> str:
    """Render a GB/s figure, spelling out the board-limited case."""
    if math.isinf(value):
        return "board-limited"
    return f"{value:.1f}"


def scaleout_collapse_table() -> ExtraTable:
    """Analytical bisection-collapse points for the full scale-out grid.

    Always covers all of :data:`SCALEOUT_TOPOLOGIES` at 8/16/64 GPMs —
    even under ``--fast``, which shrinks only the *simulated* grid — so
    the report's analytical table is invariant across modes.
    """
    rows: List[List[object]] = []
    for topology in SCALEOUT_TOPOLOGIES:
        for n_gpms in SCALEOUT_GPM_COUNTS:
            point = bisection_collapse(n_gpms, topology=topology)
            rows.append(
                [
                    topology,
                    n_gpms,
                    f"{point.bisection_demand:.1f}",
                    f"{point.port_limited_gbps:.1f}",
                    _fmt_gbps(point.bisection_limited_gbps),
                    _fmt_gbps(point.collapse_gbps),
                ]
            )
    return ExtraTable(
        title="Analytical bisection-collapse points "
        "(link GB/s below which the fabric bisection saturates)",
        headers=["Topology", "GPMs", "Demand GB/s", "Port-limited", "Bisection", "Collapse"],
        rows=rows,
    )


def scaleout_budget_table(finalists: Sequence[ScoredCandidate]) -> ExtraTable:
    """Budget verdicts plus the budget-constrained Pareto frontier.

    Feasibility is judged against :data:`~repro.core.budget.DEFAULT_BUDGET`
    (area, power, and per-link bandwidth vs the Table 2 tier caps); the
    frontier column marks the non-dominated subset of the *feasible*
    finalists under :data:`SCALEOUT_OBJECTIVES`.
    """
    ranked = sorted(finalists, key=lambda item: (-item.score, item.candidate.name))
    verdicts = [(item, evaluate_budget(item.candidate.config)) for item in ranked]
    feasible = [item for item, verdict in verdicts if verdict.feasible]
    frontier_names = {
        feasible[i].candidate.name
        for i in pareto_indices(
            [item.objectives for item in feasible], SCALEOUT_OBJECTIVES
        )
    }
    rows: List[List[object]] = []
    for item, verdict in verdicts:
        if not verdict.feasible:
            limits = [
                label
                for label, ok in (
                    ("area", verdict.area_ok),
                    ("power", verdict.power_ok),
                    ("link-tier", verdict.bandwidth_ok),
                )
                if not ok
            ]
            status = "over " + "+".join(limits)
        else:
            status = "feasible"
        rows.append(
            [
                item.candidate.name,
                f"{item.score:.4f}",
                f"{verdict.cost.area_mm2:.1f}",
                f"{verdict.cost.power_w:.1f}",
                status,
                "*" if item.candidate.name in frontier_names else "",
            ]
        )
    return ExtraTable(
        title=f"Budget-constrained frontier (<= {DEFAULT_BUDGET.area_mm2:.0f} mm2, "
        f"{DEFAULT_BUDGET.power_w:.0f} W; '*' = Pareto-optimal among feasible)",
        headers=["Candidate", "Score", "Area mm2", "Power W", "Budget", "Frontier"],
        rows=rows,
    )


def _scaleout_extras(finalists: Sequence[ScoredCandidate]) -> Dict[str, ExtraTable]:
    """Extras hook for the scale-out sweep: collapse points + budget frontier."""
    return {
        "collapse_points": scaleout_collapse_table(),
        "budget_frontier": scaleout_budget_table(finalists),
    }


def scaleout_sweep(fast: bool = False, seed: int = 0) -> SweepPlan:
    """Topology x GPM count — the budget-constrained scale-out study.

    Sweeps the paper's baseline GPM (64 SMs, 768 GB/s DRAM each, fixed
    per-module resources) across five fabric topologies and 8/16/64
    modules, ranked against the paper's 4-GPM ring.  Simulated rungs use
    the quarter-scale suite ladder even in full mode: a 64-GPM full-scale
    suite run costs hours for no added ranking information, and the
    absolute scale question is answered analytically by the collapse
    table, which always spans the full 5x3 grid.

    ``--fast`` shrinks the *simulated* grid to mesh/torus at 8 GPMs over
    the four smoke workloads (the CI topology-smoke job); the analytical
    extras are unaffected.
    """
    base = baseline_mcm_gpu(n_gpms=8, name="mcm-scaleout")
    if fast:
        topologies: Tuple[str, ...] = SCALEOUT_FAST_TOPOLOGIES
        counts: Tuple[int, ...] = SCALEOUT_FAST_GPM_COUNTS
        specs = [spec_by_name(name) for name in SMOKE_WORKLOADS]
        rungs = [
            ("smoke@0.0625", [SyntheticWorkload(s.scaled_down(0.0625)) for s in specs]),
            ("smoke@0.25", [SyntheticWorkload(s.scaled_down(0.25)) for s in specs]),
        ]
    else:
        topologies = SCALEOUT_TOPOLOGIES
        counts = SCALEOUT_GPM_COUNTS
        rungs = _suite_rungs(fast=True)
    spec = SweepSpec(
        name="scaleout",
        base=base,
        axes=(
            Axis("topology", topologies, label="topo"),
            Axis("n_gpms", counts, label="gpms"),
        ),
        seed=seed,
    )
    return SweepPlan(
        spec=spec,
        baseline=baseline_mcm_gpu(),
        rungs=rungs,
        objectives=SCALEOUT_OBJECTIVES,
        extras=_scaleout_extras,
    )


#: Registry of built-in sweeps: key -> (description, plan factory).
BUILTIN_SWEEPS: Dict[str, Tuple[str, Callable[..., SweepPlan]]] = {
    "link_l15": ("link bandwidth x L1.5 capacity (+ Fig 14 crossover)", link_l15_sweep),
    "page_place": ("page size x placement policy", page_place_sweep),
    "gpm_count": ("GPM count x link bandwidth", gpm_count_sweep),
    "ml": ("link bandwidth x L1.5 over the ML-era suite", ml_sweep),
    "smoke": ("tiny 2x2 CI smoke sweep", smoke_sweep),
    "wide": ("54-point link x L1.5 x page grid (use --analytical)", wide_sweep),
    "scaleout": ("topology x GPM count with budget frontier", scaleout_sweep),
}


def build_plan(key: str, fast: bool = False, seed: int = 0) -> SweepPlan:
    """Instantiate a built-in sweep plan by registry key."""
    try:
        _, factory = BUILTIN_SWEEPS[key]
    except KeyError:
        known = ", ".join(sorted(BUILTIN_SWEEPS))
        raise ValueError(f"unknown sweep {key!r}; expected one of: {known}")
    return factory(fast=fast, seed=seed)


def screen_for_plan(plan: SweepPlan, calibration) -> "object":
    """Analytical rung-0 screen bound to a plan's baseline and cheap rung.

    ``calibration`` is a blessed
    :class:`~repro.validate.analytical.Calibration`; the returned
    :class:`~repro.explore.analytical.AnalyticalScreen` goes straight
    into :func:`run_sweep`'s ``screen`` parameter.  The screen
    classifies with the band blessed for exactly this sweep's rung-0
    suite; a calibration that never fitted that rung (e.g. ``--fast``
    blessing vs a full-scale sweep) raises
    :class:`~repro.validate.analytical.CalibrationError` at classify
    time rather than screening with an unvalidated band.
    """
    from ..validate.analytical import score_band_key
    from .analytical import AnalyticalScreen

    if not plan.rungs:
        raise ValueError("plan has no rungs to screen")
    return AnalyticalScreen(
        calibration,
        plan.baseline,
        plan.rungs[0][1],
        band_key=score_band_key(plan.spec.name, plan.rungs[0][0]),
    )


def run_sweep(
    plan: SweepPlan,
    keep_fraction: float = 0.5,
    runner: Optional[Runner] = None,
    screen=None,
) -> SweepReport:
    """Execute one sweep plan end to end.

    Successive halving ranks the candidates, the Pareto frontier is
    extracted from the final survivors' objective vectors, one-at-a-time
    sensitivity runs around the base configuration, and the crossover
    search (when the plan has one) bisects its axis — all through the
    same runner, so everything shares the process pool and result cache.

    ``screen`` (see :func:`screen_for_plan`) applies the analytical
    rung-0 screen; the final frontier and crossover are unchanged by
    construction as long as the calibrated band holds, only the rung-0
    simulation bill shrinks.
    """
    if runner is None:
        runner = default_runner()
    halving = successive_halving(
        plan.spec.candidates(),
        plan.baseline,
        plan.rungs,
        keep_fraction=keep_fraction,
        runner=runner,
        screen=screen,
    )
    last_rung = len(plan.rungs) - 1
    finalists = [item for item in halving.ranking if item.rung == last_rung]
    frontier = pareto_front(finalists, plan.objectives)
    sensitivity = oat_sensitivity(
        plan.spec.base,
        plan.spec.axes,
        plan.baseline,
        plan.probe_workloads,
        runner=runner,
    )
    crossover = None
    if plan.crossover is not None:
        crossover = find_crossover(
            plan.crossover.build,
            plan.crossover.reference,
            plan.probe_workloads,
            plan.crossover.lo,
            plan.crossover.hi,
            axis=plan.crossover.axis,
            tolerance=plan.crossover.tolerance,
            runner=runner,
        )
    extras = plan.extras(finalists) if plan.extras is not None else {}
    return SweepReport(
        spec=plan.spec,
        baseline=plan.baseline,
        halving=halving,
        frontier=frontier,
        objectives=plan.objectives,
        sensitivity=sensitivity,
        crossover=crossover,
        extras=extras,
    )
