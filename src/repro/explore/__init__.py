"""Design-space exploration: sweeps, halving searches, Pareto frontiers.

Turns the simulator into a search engine over :class:`~repro.core.config.
SystemConfig` space.  Declare axes as dot-paths (:mod:`~repro.explore.
spec`), rank candidates with a cache-aware successive-halving driver
(:mod:`~repro.explore.search`), extract Pareto frontiers and sensitivity/
crossover answers (:mod:`~repro.explore.pareto`, :mod:`~repro.explore.
sensitivity`), and write deterministic ``explore/<sweep>/`` artifacts
(:mod:`~repro.explore.report`).  ``scripts/explore.py`` is the CLI;
:data:`~repro.explore.builtin.BUILTIN_SWEEPS` lists the shipped sweeps.
"""

from .analytical import AnalyticalScreen, ScreenOutcome
from .builtin import BUILTIN_SWEEPS, SweepPlan, build_plan, run_sweep, screen_for_plan
from .pareto import DEFAULT_OBJECTIVES, Objective, dominates, pareto_front, pareto_indices
from .remote import remote_runner
from .report import SweepReport, render_text, write_artifacts
from .search import (
    HalvingResult,
    RungStats,
    ScoredCandidate,
    default_runner,
    promotion_count,
    select_survivors,
    successive_halving,
)
from .sensitivity import (
    AxisSensitivity,
    CrossoverResult,
    bisect_crossover,
    find_crossover,
    oat_sensitivity,
)
from .spec import Axis, Candidate, SweepSpec, config_get, config_replace

__all__ = [
    "AnalyticalScreen",
    "Axis",
    "AxisSensitivity",
    "BUILTIN_SWEEPS",
    "Candidate",
    "CrossoverResult",
    "DEFAULT_OBJECTIVES",
    "HalvingResult",
    "Objective",
    "RungStats",
    "ScoredCandidate",
    "ScreenOutcome",
    "SweepPlan",
    "SweepReport",
    "SweepSpec",
    "bisect_crossover",
    "build_plan",
    "config_get",
    "config_replace",
    "default_runner",
    "dominates",
    "find_crossover",
    "oat_sensitivity",
    "pareto_front",
    "pareto_indices",
    "promotion_count",
    "remote_runner",
    "render_text",
    "run_sweep",
    "screen_for_plan",
    "select_survivors",
    "successive_halving",
    "write_artifacts",
]
