"""Candidate evaluation and successive halving over the suite runner.

Evaluation rides on :func:`repro.experiments.common.run_suites`, so every
(workload, candidate) pair of a rung fans out over the process pool in one
batch and lands in the shared :class:`~repro.experiments.common.ResultCache`
— re-running a sweep (or bisecting near an already-explored point) costs
only the genuinely new simulations.

The search strategy is **successive halving**: rung 0 scores every
candidate on a cheap workload set (the 0.25x-scaled suite, the same trick
``validate --fast`` uses), each following rung promotes the top
``keep_fraction`` of survivors to a more expensive set, and the final rung
runs the full 48-workload suite.  Per-rung cost accounting (pairs
evaluated, pairs simulated vs cache-served, wall and sim seconds) is
captured from :data:`~repro.parallel.metrics.GLOBAL_METRICS` deltas.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.speedup import geomean, speedups, suite_energy_joules
from ..core.config import SystemConfig
from ..experiments.common import run_suites
from ..parallel.metrics import GLOBAL_METRICS
from ..sim.result import SimResult
from ..workloads.trace import Workload
from .spec import Candidate

#: A rung runner: maps (configs, workloads) to one result dict per config.
Runner = Callable[[Sequence[SystemConfig], Sequence[Workload]], List[Dict[str, SimResult]]]


@dataclass(frozen=True)
class ScoredCandidate:
    """A candidate with its score and objective vector at some rung."""

    candidate: Candidate
    #: Geometric-mean speedup over the sweep baseline on the rung's workloads.
    score: float
    #: Objective vector for Pareto analysis (see :func:`objectives_of`).
    objectives: Dict[str, float]
    #: Highest rung index this candidate was evaluated on.
    rung: int

    def to_dict(self) -> Dict[str, object]:
        """JSON form for sweep artifacts."""
        return {
            "candidate": self.candidate.to_dict(),
            "score": self.score,
            "objectives": dict(self.objectives),
            "rung": self.rung,
        }


@dataclass(frozen=True)
class RungStats:
    """Cost accounting for one halving rung.

    ``candidates``/``promoted``/``pairs`` are deterministic given the
    sweep; ``simulated``/``cached``/``wall_seconds``/``sim_seconds``
    describe *this* run (a warm-cache re-run simulates nothing) and are
    therefore kept out of the deterministic report artifact.
    """

    rung: int
    label: str
    candidates: int
    promoted: int
    pairs: int
    simulated: int
    cached: int
    wall_seconds: float
    sim_seconds: float

    def deterministic_dict(self) -> Dict[str, object]:
        """The run-independent fields (safe for bit-identical artifacts)."""
        return {
            "rung": self.rung,
            "label": self.label,
            "candidates": self.candidates,
            "promoted": self.promoted,
            "pairs": self.pairs,
        }

    def runtime_dict(self) -> Dict[str, object]:
        """The run-specific fields (cache- and machine-dependent)."""
        return {
            "rung": self.rung,
            "simulated": self.simulated,
            "cached": self.cached,
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
        }


@dataclass
class HalvingResult:
    """Outcome of one successive-halving search."""

    #: Every candidate with its final score, ranked best-first (survivors
    #: of the last rung lead, candidates eliminated earlier follow in the
    #: order they were cut).
    ranking: List[ScoredCandidate]
    #: Names of the candidates that reached (and were scored on) the last rung.
    survivors: List[str]
    rungs: List[RungStats] = field(default_factory=list)

    @property
    def best(self) -> ScoredCandidate:
        """The top-ranked candidate."""
        return self.ranking[0]


def objectives_of(
    config: SystemConfig, results: Dict[str, SimResult], score: float
) -> Dict[str, float]:
    """Objective vector for Pareto analysis.

    ``geomean_speedup`` is maximized; ``link_bandwidth`` (provisioned
    bytes/cycle — the hardware cost knob of Figs 7/10/14) and
    ``energy_joules`` (total data-movement energy over the evaluated
    workloads, via :mod:`repro.core.energy`) are minimized.
    """
    return {
        "geomean_speedup": score,
        "link_bandwidth": config.link_bandwidth,
        "energy_joules": suite_energy_joules(results),
    }


def promotion_count(n_candidates: int, keep_fraction: float) -> int:
    """Survivor count for one rung: ``ceil(n * keep_fraction)``, at least 1."""
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
    if n_candidates <= 0:
        return 0
    return max(1, math.ceil(n_candidates * keep_fraction))


def select_survivors(
    scored: Sequence[ScoredCandidate], keep_fraction: float
) -> List[ScoredCandidate]:
    """Top ``keep_fraction`` of ``scored`` (ties broken by candidate name).

    Sorting is deterministic — equal scores fall back to the candidate
    name — so halving promotes the same set on every run.
    """
    ranked = sorted(scored, key=lambda item: (-item.score, item.candidate.name))
    return ranked[: promotion_count(len(ranked), keep_fraction)]


def _metrics_snapshot() -> Tuple[int, int, float, float]:
    """(pairs, cached, wall, sim-seconds) snapshot of the global metrics."""
    return (
        GLOBAL_METRICS.total_pairs,
        GLOBAL_METRICS.cached_pairs,
        GLOBAL_METRICS.wall_seconds,
        sum(GLOBAL_METRICS.sim_seconds_by_config.values()),
    )


def evaluate_rung(
    candidates: Sequence[Candidate],
    baseline: SystemConfig,
    workloads: Sequence[Workload],
    rung: int,
    runner: Runner,
) -> List[ScoredCandidate]:
    """Score every candidate against ``baseline`` on one workload set.

    The baseline and all candidates go through the runner as **one**
    batch, so the process pool overlaps every (workload, config) pair.
    """
    configs = [baseline] + [candidate.config for candidate in candidates]
    per_config = runner(configs, list(workloads))
    baseline_results = per_config[0]
    scored: List[ScoredCandidate] = []
    for candidate, results in zip(candidates, per_config[1:]):
        score = geomean(speedups(results, baseline_results).values())
        scored.append(
            ScoredCandidate(
                candidate=candidate,
                score=score,
                objectives=objectives_of(candidate.config, results, score),
                rung=rung,
            )
        )
    return scored


def default_runner(cache=None, max_workers: Optional[int] = None) -> Runner:
    """The production runner: batched, cached, process-pooled suite runs.

    ``cache=None`` keeps :func:`run_suites`' default-cache semantics; pass
    an explicit :class:`~repro.experiments.common.ResultCache` to pin the
    cache directory (as tests and the CI smoke job do).
    """

    def run(
        configs: Sequence[SystemConfig], workloads: Sequence[Workload]
    ) -> List[Dict[str, SimResult]]:
        if cache is None:
            return run_suites(configs, workloads=workloads, max_workers=max_workers)
        return run_suites(
            configs, workloads=workloads, cache=cache, max_workers=max_workers
        )

    return run


def successive_halving(
    candidates: Sequence[Candidate],
    baseline: SystemConfig,
    rungs: Sequence[Tuple[str, Sequence[Workload]]],
    keep_fraction: float = 0.5,
    runner: Optional[Runner] = None,
) -> HalvingResult:
    """Run the successive-halving search.

    ``rungs`` is an ordered list of ``(label, workloads)`` tiers, cheapest
    first; every candidate is scored on rung 0, and only the top
    ``keep_fraction`` (per rung, at least one) advances to each following
    rung.  A candidate's final score is the one from the last rung it
    reached.  Rung boundaries are barriers by design: promotion needs all
    of a rung's scores before any next-rung work starts.
    """
    if not rungs:
        raise ValueError("successive halving needs at least one rung")
    if runner is None:
        runner = default_runner()

    alive = list(candidates)
    final_score: Dict[str, ScoredCandidate] = {}
    eliminated_by_rung: List[List[ScoredCandidate]] = []
    stats: List[RungStats] = []
    last = len(rungs) - 1
    for rung, (label, workloads) in enumerate(rungs):
        before = _metrics_snapshot()
        wall_start = time.time()
        scored = evaluate_rung(alive, baseline, workloads, rung, runner)
        wall = time.time() - wall_start
        after = _metrics_snapshot()
        for item in scored:
            final_score[item.candidate.name] = item
        survivors = (
            select_survivors(scored, keep_fraction) if rung != last else
            sorted(scored, key=lambda item: (-item.score, item.candidate.name))
        )
        survivor_names = {item.candidate.name for item in survivors}
        cut = [item for item in scored if item.candidate.name not in survivor_names]
        eliminated_by_rung.append(
            sorted(cut, key=lambda item: (-item.score, item.candidate.name))
        )
        pairs_delta = after[0] - before[0]
        cached_delta = after[1] - before[1]
        stats.append(
            RungStats(
                rung=rung,
                label=label,
                candidates=len(alive),
                promoted=len(survivors) if rung != last else len(scored),
                pairs=(len(alive) + 1) * len(workloads),
                simulated=max(0, pairs_delta - cached_delta),
                cached=cached_delta,
                wall_seconds=wall,
                sim_seconds=after[3] - before[3],
            )
        )
        alive = [item.candidate for item in survivors]

    survivors_ranked = [final_score[candidate.name] for candidate in alive]
    # Survivors lead; candidates cut on later (more trusted) rungs outrank
    # those cut earlier, best-first within each rung.
    ranking = survivors_ranked + [
        item for cuts in reversed(eliminated_by_rung) for item in cuts
    ]
    return HalvingResult(
        ranking=ranking,
        survivors=[item.candidate.name for item in survivors_ranked],
        rungs=stats,
    )
