"""Candidate evaluation and successive halving over the suite runner.

Evaluation rides on :func:`repro.experiments.common.run_suites`, so every
(workload, candidate) pair of a rung fans out over the process pool in one
batch and lands in the shared :class:`~repro.experiments.common.ResultCache`
— re-running a sweep (or bisecting near an already-explored point) costs
only the genuinely new simulations.

The search strategy is **successive halving**: rung 0 scores every
candidate on a cheap workload set (the 0.25x-scaled suite, the same trick
``validate --fast`` uses), each following rung promotes the top
``keep_fraction`` of survivors to a more expensive set, and the final rung
runs the full 48-workload suite.  Per-rung cost accounting (pairs
evaluated, pairs simulated vs cache-served, wall and sim seconds) is
captured from :data:`~repro.parallel.metrics.GLOBAL_METRICS` deltas.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.speedup import geomean, speedups, suite_energy_joules
from ..core.config import SystemConfig
from ..experiments.common import run_suites
from ..parallel.metrics import GLOBAL_METRICS, SuiteMetrics
from ..sim.result import SimResult
from ..workloads.trace import Workload
from .spec import Candidate

if TYPE_CHECKING:  # pragma: no cover - annotation-only, avoids an import cycle
    from .analytical import AnalyticalScreen

#: A rung runner: maps (configs, workloads) to one result dict per config.
Runner = Callable[[Sequence[SystemConfig], Sequence[Workload]], List[Dict[str, SimResult]]]


@dataclass(frozen=True)
class ScoredCandidate:
    """A candidate with its score and objective vector at some rung."""

    candidate: Candidate
    #: Geometric-mean speedup over the sweep baseline on the rung's workloads.
    score: float
    #: Objective vector for Pareto analysis (see :func:`objectives_of`).
    objectives: Dict[str, float]
    #: Highest rung index this candidate was evaluated on.
    rung: int
    #: Where the score came from: "sim" (exact simulation) or
    #: "analytical" (rung-0 screen; candidate never simulated).
    source: str = "sim"

    def to_dict(self) -> Dict[str, object]:
        """JSON form for sweep artifacts."""
        return {
            "candidate": self.candidate.to_dict(),
            "score": self.score,
            "objectives": dict(self.objectives),
            "rung": self.rung,
            "source": self.source,
        }


@dataclass(frozen=True)
class RungStats:
    """Cost accounting for one halving rung.

    ``candidates``/``promoted``/``pairs`` are deterministic given the
    sweep; ``simulated``/``cached``/``wall_seconds``/``sim_seconds``
    describe *this* run (a warm-cache re-run simulates nothing) and are
    therefore kept out of the deterministic report artifact.
    """

    rung: int
    label: str
    candidates: int
    promoted: int
    pairs: int
    simulated: int
    cached: int
    wall_seconds: float
    sim_seconds: float
    #: Analytical-screen summary (rung 0 of a screened search only):
    #: band, keep, definite/ambiguous/screened counts, pairs_unscreened.
    screen: Optional[Dict[str, object]] = None

    def deterministic_dict(self) -> Dict[str, object]:
        """The run-independent fields (safe for bit-identical artifacts)."""
        payload: Dict[str, object] = {
            "rung": self.rung,
            "label": self.label,
            "candidates": self.candidates,
            "promoted": self.promoted,
            "pairs": self.pairs,
        }
        if self.screen is not None:
            payload["screen"] = dict(self.screen)
        return payload

    def runtime_dict(self) -> Dict[str, object]:
        """The run-specific fields (cache- and machine-dependent)."""
        return {
            "rung": self.rung,
            "simulated": self.simulated,
            "cached": self.cached,
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
        }


@dataclass
class HalvingResult:
    """Outcome of one successive-halving search."""

    #: Every candidate with its final score, ranked best-first (survivors
    #: of the last rung lead, candidates eliminated earlier follow in the
    #: order they were cut).
    ranking: List[ScoredCandidate]
    #: Names of the candidates that reached (and were scored on) the last rung.
    survivors: List[str]
    rungs: List[RungStats] = field(default_factory=list)

    @property
    def best(self) -> ScoredCandidate:
        """The top-ranked candidate."""
        return self.ranking[0]


def objectives_of(
    config: SystemConfig, results: Dict[str, SimResult], score: float
) -> Dict[str, float]:
    """Objective vector for Pareto analysis.

    ``geomean_speedup`` is maximized; ``link_bandwidth`` (provisioned
    bytes/cycle — the hardware cost knob of Figs 7/10/14),
    ``energy_joules`` (total data-movement energy over the evaluated
    workloads, via :mod:`repro.core.energy`) and ``area_mm2`` (package
    silicon from :mod:`repro.core.budget`) are minimized.
    """
    from ..core.budget import package_cost

    return {
        "geomean_speedup": score,
        "link_bandwidth": config.link_bandwidth,
        "energy_joules": suite_energy_joules(results),
        "area_mm2": package_cost(config).area_mm2,
    }


def promotion_count(n_candidates: int, keep_fraction: float) -> int:
    """Survivor count for one rung: ``ceil(n * keep_fraction)``, at least 1."""
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
    if n_candidates <= 0:
        return 0
    return max(1, math.ceil(n_candidates * keep_fraction))


def select_survivors(
    scored: Sequence[ScoredCandidate], keep_fraction: float
) -> List[ScoredCandidate]:
    """Top ``keep_fraction`` of ``scored`` (ties broken by candidate name).

    Sorting is deterministic — equal scores fall back to the candidate
    name — so halving promotes the same set on every run.
    """
    ranked = sorted(scored, key=lambda item: (-item.score, item.candidate.name))
    return ranked[: promotion_count(len(ranked), keep_fraction)]


def _metrics_snapshot(metrics: SuiteMetrics) -> Tuple[int, int, float, float]:
    """(pairs, cached, wall, sim-seconds) snapshot of a metrics sink."""
    return (
        metrics.total_pairs,
        metrics.cached_pairs,
        metrics.wall_seconds,
        sum(metrics.sim_seconds_by_config.values()),
    )


def evaluate_rung(
    candidates: Sequence[Candidate],
    baseline: SystemConfig,
    workloads: Sequence[Workload],
    rung: int,
    runner: Runner,
) -> List[ScoredCandidate]:
    """Score every candidate against ``baseline`` on one workload set.

    The baseline and all candidates go through the runner as **one**
    batch, so the process pool overlaps every (workload, config) pair.
    """
    configs = [baseline] + [candidate.config for candidate in candidates]
    per_config = runner(configs, list(workloads))
    baseline_results = per_config[0]
    scored: List[ScoredCandidate] = []
    for candidate, results in zip(candidates, per_config[1:]):
        score = geomean(speedups(results, baseline_results).values())
        scored.append(
            ScoredCandidate(
                candidate=candidate,
                score=score,
                objectives=objectives_of(candidate.config, results, score),
                rung=rung,
            )
        )
    return scored


def default_runner(cache=None, max_workers: Optional[int] = None) -> Runner:
    """The production runner: batched, cached, process-pooled suite runs.

    ``cache=None`` keeps :func:`run_suites`' default-cache semantics; pass
    an explicit :class:`~repro.experiments.common.ResultCache` to pin the
    cache directory (as tests and the CI smoke job do).

    The returned runner carries its own private ``metrics`` sink
    (:class:`~repro.parallel.metrics.SuiteMetrics`): every batch it runs
    is recorded there in addition to the process-wide ``GLOBAL_METRICS``,
    so the halving rung accounting sees only this runner's cost even when
    other suite runs (a crossover search, a calibration fit) interleave
    in the same process.
    """
    sink = SuiteMetrics()

    def run(
        configs: Sequence[SystemConfig], workloads: Sequence[Workload]
    ) -> List[Dict[str, SimResult]]:
        if cache is None:
            return run_suites(
                configs, workloads=workloads, max_workers=max_workers, metrics=sink
            )
        return run_suites(
            configs,
            workloads=workloads,
            cache=cache,
            max_workers=max_workers,
            metrics=sink,
        )

    run.metrics = sink  # type: ignore[attr-defined]
    return run


def _screened_rung0(
    screen: "AnalyticalScreen",
    alive: Sequence[Candidate],
    baseline: SystemConfig,
    workloads: Sequence[Workload],
    keep_fraction: float,
    runner: Runner,
) -> Tuple[List[ScoredCandidate], List[ScoredCandidate], Dict[str, object], int]:
    """Run rung 0 behind the analytical screen.

    Returns ``(scored, survivors, screen summary, rung pairs)``.  Only
    the ambiguous candidates (plus the baseline) are simulated; definite
    promotions and eliminations carry analytical scores/objectives and
    ``source="analytical"``.  The promotion slots left after the
    definite-ins are filled from the ambiguous candidates' *simulated*
    ranking, so a screened search promotes exactly the candidates the
    unscreened search would — provided the calibrated band holds.
    """
    keep = promotion_count(len(alive), keep_fraction)
    outcome = screen.classify(alive, keep)
    by_name = {candidate.name: candidate for candidate in alive}
    ambiguous = [by_name[name] for name in outcome.ambiguous]
    scored_ambiguous = (
        evaluate_rung(ambiguous, baseline, workloads, 0, runner) if ambiguous else []
    )
    analytical = {
        name: ScoredCandidate(
            candidate=by_name[name],
            score=outcome.scores[name],
            objectives=screen.objectives(by_name[name]),
            rung=0,
            source="analytical",
        )
        for name in outcome.definite_in + outcome.screened_out
    }
    need = max(0, keep - len(outcome.definite_in))
    ranked_ambiguous = sorted(
        scored_ambiguous, key=lambda item: (-item.score, item.candidate.name)
    )
    survivors = [analytical[name] for name in outcome.definite_in]
    survivors += ranked_ambiguous[:need]
    scored = list(analytical.values()) + scored_ambiguous
    pairs = (len(ambiguous) + 1) * len(workloads) if ambiguous else 0
    return scored, survivors, outcome.to_dict(), pairs


def successive_halving(
    candidates: Sequence[Candidate],
    baseline: SystemConfig,
    rungs: Sequence[Tuple[str, Sequence[Workload]]],
    keep_fraction: float = 0.5,
    runner: Optional[Runner] = None,
    screen: Optional["AnalyticalScreen"] = None,
) -> HalvingResult:
    """Run the successive-halving search.

    ``rungs`` is an ordered list of ``(label, workloads)`` tiers, cheapest
    first; every candidate is scored on rung 0, and only the top
    ``keep_fraction`` (per rung, at least one) advances to each following
    rung.  A candidate's final score is the one from the last rung it
    reached.  Rung boundaries are barriers by design: promotion needs all
    of a rung's scores before any next-rung work starts.

    ``screen``, when given (see :class:`repro.explore.analytical.
    AnalyticalScreen`), screens rung 0: analytically-certain promotions
    and eliminations skip the exact simulator, only band-ambiguous
    candidates simulate.  The screen applies only when there is a later
    rung to verify survivors on — a single-rung search always simulates.

    Rung cost accounting is scoped to the runner's private metrics sink
    when it has one (``default_runner`` always does), falling back to the
    process-global :data:`~repro.parallel.metrics.GLOBAL_METRICS`; an
    unrelated suite run interleaving with the sweep therefore cannot
    distort the per-rung ``simulated``/``cached`` deltas.
    """
    if not rungs:
        raise ValueError("successive halving needs at least one rung")
    if runner is None:
        runner = default_runner()
    sink = getattr(runner, "metrics", None) or GLOBAL_METRICS

    alive = list(candidates)
    final_score: Dict[str, ScoredCandidate] = {}
    eliminated_by_rung: List[List[ScoredCandidate]] = []
    stats: List[RungStats] = []
    last = len(rungs) - 1
    for rung, (label, workloads) in enumerate(rungs):
        before = _metrics_snapshot(sink)
        wall_start = time.time()
        screen_summary: Optional[Dict[str, object]] = None
        if screen is not None and rung == 0 and last > 0:
            scored, survivors, screen_summary, rung_pairs = _screened_rung0(
                screen, alive, baseline, workloads, keep_fraction, runner
            )
        else:
            scored = evaluate_rung(alive, baseline, workloads, rung, runner)
            survivors = (
                select_survivors(scored, keep_fraction) if rung != last else
                sorted(scored, key=lambda item: (-item.score, item.candidate.name))
            )
            rung_pairs = (len(alive) + 1) * len(workloads)
        wall = time.time() - wall_start
        after = _metrics_snapshot(sink)
        for item in scored:
            final_score[item.candidate.name] = item
        survivor_names = {item.candidate.name for item in survivors}
        cut = [item for item in scored if item.candidate.name not in survivor_names]
        eliminated_by_rung.append(
            sorted(cut, key=lambda item: (-item.score, item.candidate.name))
        )
        pairs_delta = after[0] - before[0]
        cached_delta = after[1] - before[1]
        stats.append(
            RungStats(
                rung=rung,
                label=label,
                candidates=len(alive),
                promoted=len(survivors) if rung != last else len(scored),
                pairs=rung_pairs,
                simulated=pairs_delta - cached_delta,
                cached=cached_delta,
                wall_seconds=wall,
                sim_seconds=after[3] - before[3],
                screen=screen_summary,
            )
        )
        alive = [item.candidate for item in survivors]

    survivors_ranked = [final_score[candidate.name] for candidate in alive]
    # Survivors lead; candidates cut on later (more trusted) rungs outrank
    # those cut earlier, best-first within each rung.
    ranking = survivors_ranked + [
        item for cuts in reversed(eliminated_by_rung) for item in cuts
    ]
    return HalvingResult(
        ranking=ranking,
        survivors=[item.candidate.name for item in survivors_ranked],
        rungs=stats,
    )
