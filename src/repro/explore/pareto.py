"""Pareto-frontier extraction over candidate objective vectors.

The paper's design argument is inherently multi-objective: performance
(geomean speedup) trades against provisioned link bandwidth (Figs 4/7/14)
and data-movement energy (Table 2, Section 6.2).  A sweep's interesting
output is therefore not one winner but the non-dominated set — every
configuration for which no other candidate is at least as good on all
objectives and strictly better on one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from .search import ScoredCandidate


@dataclass(frozen=True)
class Objective:
    """One Pareto dimension: an objective-vector key plus its direction."""

    key: str
    maximize: bool = False

    def better(self, a: float, b: float) -> bool:
        """True when ``a`` is strictly better than ``b`` on this objective."""
        return a > b if self.maximize else a < b

    def to_dict(self) -> Dict[str, object]:
        """JSON form for sweep artifacts."""
        return {"key": self.key, "maximize": self.maximize}


#: Default objectives for system sweeps: performance up, cost down.
DEFAULT_OBJECTIVES: Tuple[Objective, ...] = (
    Objective("geomean_speedup", maximize=True),
    Objective("link_bandwidth", maximize=False),
    Objective("energy_joules", maximize=False),
)


def dominates(
    a: Mapping[str, float],
    b: Mapping[str, float],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
) -> bool:
    """True when point ``a`` dominates point ``b``.

    Domination: at least as good on every objective and strictly better
    on at least one.  Missing keys raise ``KeyError`` — a silently absent
    objective would make the frontier meaningless.
    """
    at_least_as_good = all(
        not objective.better(b[objective.key], a[objective.key])
        for objective in objectives
    )
    strictly_better = any(
        objective.better(a[objective.key], b[objective.key])
        for objective in objectives
    )
    return at_least_as_good and strictly_better


def pareto_indices(
    points: Sequence[Mapping[str, float]],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
) -> List[int]:
    """Indices of the non-dominated points, in input order.

    Duplicate objective vectors are all kept (none strictly dominates the
    other), so a frontier never silently drops a tied design point.
    """
    if not objectives:
        raise ValueError("pareto extraction needs at least one objective")
    kept: List[int] = []
    for i, point in enumerate(points):
        if not any(
            dominates(other, point, objectives)
            for j, other in enumerate(points)
            if j != i
        ):
            kept.append(i)
    return kept


def pareto_front(
    scored: Sequence[ScoredCandidate],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
) -> List[ScoredCandidate]:
    """Non-dominated subset of ``scored``, best score first."""
    indices = pareto_indices([item.objectives for item in scored], objectives)
    front = [scored[i] for i in indices]
    return sorted(front, key=lambda item: (-item.score, item.candidate.name))
