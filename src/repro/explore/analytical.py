"""Analytical rung-0 screen for successive halving.

Given a blessed :class:`~repro.validate.analytical.Calibration`, the
screen scores every candidate with the analytical predictor and splits
the field into three sets using the calibrated score band ``b`` (a
log-space uncertainty radius on predicted geomean-speedup scores,
looked up per (sweep, rung-0 suite) via the screen's ``band_key``; ad
hoc screens without a key use the artifact's widest band):

* **definite in** — candidates that make the promotion cut even if every
  score is wrong by the full band against them: at most ``keep - 1``
  rivals *could possibly* beat them (rival score ``> score * e^(-2b)``).
* **screened out** — candidates that miss the cut even if every score is
  wrong by the full band in their favor: at least ``keep`` rivals
  *certainly* beat them (rival score ``> score * e^(+2b)``).
* **ambiguous** — everyone else; these still go through the exact rung-0
  simulation, and the promotion slots not taken by definite-ins are
  filled from their simulated ranking.

Because "possibly beats" is implied by "certainly beats", the definite-in
and ambiguous sets together always cover the ``keep`` promotion slots,
and — as long as the true simulated scores lie within the blessed band of
the analytical ones — the screen can never drop a candidate the
unscreened search would have promoted.  That conservative contract is
what the calibration artifact's score bands bless, and what the
`tests` assert on the built-in sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.analytical import predict_suite_score, predicted_objectives
from ..core.config import SystemConfig
from ..validate.analytical import Calibration
from ..workloads.characterize import WorkloadProfile, cached_profile
from ..workloads.trace import Workload
from .spec import Candidate


@dataclass(frozen=True)
class ScreenOutcome:
    """Classification of one candidate field at one promotion cut."""

    #: Log-space score uncertainty radius the classification used.
    band: float
    #: Promotion slots the cut will fill.
    keep: int
    #: Analytical score per candidate name.
    scores: Dict[str, float]
    #: Names promoted without simulation, best analytical score first.
    definite_in: Tuple[str, ...]
    #: Names whose fate the band cannot decide — they simulate.
    ambiguous: Tuple[str, ...]
    #: Names eliminated without simulation, best analytical score first.
    screened_out: Tuple[str, ...]
    #: Rung pairs a fully simulated rung would have cost.
    pairs_unscreened: int

    def to_dict(self) -> Dict[str, object]:
        """Deterministic summary for the sweep report artifact."""
        return {
            "band": self.band,
            "keep": self.keep,
            "definite_in": len(self.definite_in),
            "ambiguous": len(self.ambiguous),
            "screened_out": len(self.screened_out),
            "pairs_unscreened": self.pairs_unscreened,
        }


class AnalyticalScreen:
    """Scores candidates analytically and classifies them conservatively.

    One screen instance is bound to a sweep's baseline and rung-0
    workloads; profiles are computed lazily once and memoized process-wide
    by workload digest.
    """

    def __init__(
        self,
        calibration: Calibration,
        baseline: SystemConfig,
        workloads: Sequence[Workload],
        band_key: Optional[str] = None,
        max_ctas: int = 64,
    ) -> None:
        if not workloads:
            raise ValueError("AnalyticalScreen needs at least one workload")
        self.calibration = calibration
        self.baseline = baseline
        self.workloads = list(workloads)
        #: ``score_band_key`` of the rung this screen classifies (see
        #: :func:`repro.validate.analytical.score_band_key`); ``None``
        #: uses the artifact's widest band.
        self.band_key = band_key
        self.max_ctas = max_ctas
        self._profiles: Optional[List[WorkloadProfile]] = None

    @property
    def band(self) -> float:
        """Log-space score uncertainty radius this screen classifies with."""
        if self.band_key is None:
            return self.calibration.score_band
        return self.calibration.band_for_sweep(self.band_key)

    @property
    def profiles(self) -> List[WorkloadProfile]:
        """Rung-0 workload profiles (computed on first use)."""
        if self._profiles is None:
            self._profiles = [
                cached_profile(workload, max_ctas=self.max_ctas)
                for workload in self.workloads
            ]
        return self._profiles

    def score(self, candidate: Candidate) -> float:
        """Analytical geomean speedup of ``candidate`` over the baseline."""
        return predict_suite_score(self.profiles, candidate.config, self.baseline)

    def objectives(self, candidate: Candidate) -> Dict[str, float]:
        """Predicted objective vector (same keys as ``objectives_of``)."""
        return predicted_objectives(self.profiles, candidate.config, self.baseline)

    def classify(self, candidates: Sequence[Candidate], keep: int) -> ScreenOutcome:
        """Split ``candidates`` into definite-in / ambiguous / screened-out.

        ``keep`` is the number of promotion slots (see
        :func:`repro.explore.search.promotion_count`).  Ties and
        within-band comparisons always land in ``ambiguous``.
        """
        if keep <= 0:
            raise ValueError(f"keep must be positive, got {keep}")
        scores = {c.name: self.score(c) for c in candidates}
        band = self.band
        # Two candidates' scores are only distinguishable when they differ
        # by more than both errors stacked against the comparison: 2*band.
        gap = math.exp(2.0 * band)
        definite_in: List[str] = []
        ambiguous: List[str] = []
        screened_out: List[str] = []
        for name, score in scores.items():
            possibly_better = sum(
                1
                for other, other_score in scores.items()
                if other != name and other_score > score / gap
            )
            certainly_better = sum(
                1
                for other, other_score in scores.items()
                if other != name and other_score > score * gap
            )
            if certainly_better >= keep:
                screened_out.append(name)
            elif possibly_better <= keep - 1:
                definite_in.append(name)
            else:
                ambiguous.append(name)
        order = lambda name: (-scores[name], name)  # noqa: E731 - tiny sort key
        return ScreenOutcome(
            band=band,
            keep=keep,
            scores=scores,
            definite_in=tuple(sorted(definite_in, key=order)),
            ambiguous=tuple(sorted(ambiguous, key=order)),
            screened_out=tuple(sorted(screened_out, key=order)),
            pairs_unscreened=(len(candidates) + 1) * len(self.workloads),
        )
