"""Readers and writers for the two trace-document serializations.

JSONL (``.jsonl`` / ``.jsonl.gz``) is line-oriented for hand-authoring
and reviewable diffs: a header line, one line per CTA, one line per
kernel, and a terminating ``end`` line whose counts double as a torn-file
check.  npz (``.npz``) packs every CTA's addresses into one concatenated
int64 array with an index table, which is the right shape for bulk traces
(a 10k-CTA trace is three arrays, not 10k JSON lines).

Both formats deserialize into the same :class:`~repro.ingest.format.TraceDocument`
and are validated on read, so ``load_document`` is safe to point at
untrusted files: malformed input raises :class:`~repro.ingest.format.SchemaError`
with the offending location, never a stack trace from deep inside numpy.
"""

from __future__ import annotations

import gzip
import json
import os
from pathlib import Path
from typing import Dict, IO, List, Union

import numpy as np

from .format import (
    CTASlice,
    IngestError,
    KernelRef,
    SchemaError,
    TraceDocument,
    check_header,
    header_dict,
    spans_from_lists,
    validate_document,
)

PathLike = Union[str, "os.PathLike[str]"]


def _open_text(path: Path, mode: str) -> IO[str]:
    if path.name.endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def write_jsonl(doc: TraceDocument, path: PathLike) -> None:
    """Serialize a validated document as line-oriented JSON.

    Layout: a ``header`` line, then every CTA as
    ``{"trace_set": t, "cta": i, "compute_cycles": c, "spans": [...],
    "addrs": [[...], ...]}`` in (trace set, CTA) order, then every kernel
    as ``{"kernel": {...}}`` in launch order, then an ``{"end": ...}``
    line restating the CTA and kernel counts.  A truncated file is caught
    by the missing/short ``end`` line on read.
    """
    validate_document(doc)
    path = Path(path)
    n_ctas = sum(len(trace_set) for trace_set in doc.trace_sets)
    with _open_text(path, "w") as handle:
        handle.write(json.dumps({"header": header_dict(doc)}) + "\n")
        for t, trace_set in enumerate(doc.trace_sets):
            for cta, entry in enumerate(trace_set):
                record = {
                    "trace_set": t,
                    "cta": cta,
                    "compute_cycles": entry.compute_cycles,
                    "spans": [list(span) for span in entry.spans],
                    "addrs": entry.addrs.tolist(),
                }
                handle.write(json.dumps(record) + "\n")
        for kernel in doc.kernels:
            handle.write(
                json.dumps(
                    {
                        "kernel": {
                            "label": kernel.label,
                            "n_ctas": kernel.n_ctas,
                            "groups_per_cta": kernel.groups_per_cta,
                            "trace": kernel.trace,
                        }
                    }
                )
                + "\n"
            )
        handle.write(json.dumps({"end": {"ctas": n_ctas, "kernels": len(doc.kernels)}}) + "\n")


def read_jsonl(path: PathLike) -> TraceDocument:
    """Parse and validate a JSONL trace document."""
    path = Path(path)
    where = path.name
    try:
        with _open_text(path, "r") as handle:
            lines = handle.read().splitlines()
    except (OSError, EOFError) as error:
        raise IngestError(f"{where}: cannot read ({error})") from error
    records = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise SchemaError(
                f"{where}:{number}: invalid JSON ({error.msg}) — truncated file?"
            ) from error
    if not records:
        raise SchemaError(f"{where}: empty file")
    header = records[0].get("header")
    if not isinstance(header, dict):
        raise SchemaError(f"{where}: first line must be the header")
    check_header(header, where)
    sets: Dict[int, Dict[int, CTASlice]] = {}
    kernels: List[KernelRef] = []
    end = None
    for record in records[1:]:
        if "end" in record:
            end = record["end"]
        elif "kernel" in record:
            raw = record["kernel"]
            try:
                kernels.append(
                    KernelRef(
                        label=str(raw["label"]),
                        n_ctas=int(raw["n_ctas"]),
                        groups_per_cta=int(raw["groups_per_cta"]),
                        trace=int(raw["trace"]),
                    )
                )
            except (KeyError, TypeError, ValueError) as error:
                raise SchemaError(f"{where}: malformed kernel line {raw!r}") from error
        else:
            try:
                t = int(record["trace_set"])
                cta = int(record["cta"])
                entry = CTASlice(
                    addrs=np.asarray(record["addrs"], dtype=np.int64),
                    spans=spans_from_lists(record["spans"], f"{where}: trace_set {t} cta {cta}"),
                    compute_cycles=float(record["compute_cycles"]),
                )
            except SchemaError:
                raise
            except (KeyError, TypeError, ValueError) as error:
                raise SchemaError(f"{where}: malformed CTA line ({error})") from error
            sets.setdefault(t, {})[cta] = entry
    n_ctas = sum(len(entries) for entries in sets.values())
    if end is None:
        raise SchemaError(f"{where}: missing end line — torn or truncated file")
    if end.get("ctas") != n_ctas or end.get("kernels") != len(kernels):
        raise SchemaError(
            f"{where}: end line declares {end.get('ctas')} CTAs / "
            f"{end.get('kernels')} kernels but file contains {n_ctas} / "
            f"{len(kernels)} — torn or truncated file"
        )
    trace_sets = _assemble_sets(sets, where)
    doc = _document_from_header(header, trace_sets, kernels)
    validate_document(doc)
    return doc


def _assemble_sets(sets: Dict[int, Dict[int, CTASlice]], where: str) -> List[List[CTASlice]]:
    if not sets:
        raise SchemaError(f"{where}: no CTA lines")
    trace_sets: List[List[CTASlice]] = []
    for t in range(max(sets) + 1):
        entries = sets.get(t)
        if entries is None:
            raise SchemaError(f"{where}: trace set {t} has no CTAs")
        ordered = []
        for cta in range(max(entries) + 1):
            if cta not in entries:
                raise SchemaError(f"{where}: trace set {t} is missing CTA {cta}")
            ordered.append(entries[cta])
        trace_sets.append(ordered)
    return trace_sets


def _document_from_header(
    header: Dict[str, object],
    trace_sets: List[List[CTASlice]],
    kernels: List[KernelRef],
) -> TraceDocument:
    try:
        return TraceDocument(
            name=str(header["name"]),
            footprint_lines=int(header["footprint_lines"]),
            trace_sets=trace_sets,
            kernels=kernels,
            line_bytes=int(header["line_bytes"]),
            category=header.get("category"),
            meta=dict(header.get("meta") or {}),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise SchemaError(f"malformed header: {error}") from error


def write_npz(doc: TraceDocument, path: PathLike) -> None:
    """Serialize a validated document as a compressed npz bundle.

    Five arrays: ``header`` (the JSON header, including kernels, as a
    0-d string array), ``addrs`` (all CTA address blocks concatenated
    flat), ``index`` (one ``(trace_set, n_groups, per_group, addr_offset,
    span_offset, n_spans)`` int64 row per CTA in document order),
    ``spans`` (all span triples concatenated), and ``compute`` (per-CTA
    float64 latency).
    """
    validate_document(doc)
    header = header_dict(doc)
    header["kernel_list"] = [
        {
            "label": kernel.label,
            "n_ctas": kernel.n_ctas,
            "groups_per_cta": kernel.groups_per_cta,
            "trace": kernel.trace,
        }
        for kernel in doc.kernels
    ]
    index_rows: List[List[int]] = []
    addr_parts: List[np.ndarray] = []
    span_rows: List[List[int]] = []
    compute: List[float] = []
    addr_offset = 0
    span_offset = 0
    for t, trace_set in enumerate(doc.trace_sets):
        for entry in trace_set:
            index_rows.append(
                [t, entry.n_groups, entry.per_group, addr_offset, span_offset, len(entry.spans)]
            )
            addr_parts.append(np.ascontiguousarray(entry.addrs, dtype=np.int64).ravel())
            span_rows.extend([list(span) for span in entry.spans])
            compute.append(entry.compute_cycles)
            addr_offset += entry.addrs.size
            span_offset += len(entry.spans)
    np.savez_compressed(
        Path(path),
        header=np.array(json.dumps(header)),
        addrs=np.concatenate(addr_parts),
        index=np.array(index_rows, dtype=np.int64),
        spans=np.array(span_rows, dtype=np.int64),
        compute=np.array(compute, dtype=np.float64),
    )


def read_npz(path: PathLike) -> TraceDocument:
    """Parse and validate an npz trace document."""
    path = Path(path)
    where = path.name
    try:
        with np.load(path, allow_pickle=False) as bundle:
            try:
                header = json.loads(str(bundle["header"]))
                addrs = np.asarray(bundle["addrs"], dtype=np.int64)
                index = np.asarray(bundle["index"], dtype=np.int64)
                spans = np.asarray(bundle["spans"], dtype=np.int64)
                compute = np.asarray(bundle["compute"], dtype=np.float64)
            except KeyError as error:
                raise SchemaError(
                    f"{where}: missing array {error} — not a trace bundle or torn file"
                ) from error
    except (OSError, ValueError, EOFError) as error:
        if isinstance(error, SchemaError):
            raise
        raise IngestError(f"{where}: cannot read npz ({error})") from error
    check_header(header, where)
    if index.ndim != 2 or index.shape[1] != 6 or index.shape[0] != compute.shape[0]:
        raise SchemaError(f"{where}: malformed CTA index table")
    kernels = [
        KernelRef(
            label=str(raw["label"]),
            n_ctas=int(raw["n_ctas"]),
            groups_per_cta=int(raw["groups_per_cta"]),
            trace=int(raw["trace"]),
        )
        for raw in header.get("kernel_list", [])
    ]
    sets: Dict[int, Dict[int, CTASlice]] = {}
    for row_number, (row, cycles) in enumerate(zip(index, compute)):
        t, n_groups, per_group, addr_offset, span_offset, n_spans = (int(v) for v in row)
        size = n_groups * per_group
        if n_groups <= 0 or per_group <= 0 or addr_offset + size > addrs.size:
            raise SchemaError(
                f"{where}: CTA index row {row_number} points outside the "
                "address array — torn file"
            )
        if n_spans <= 0 or span_offset + n_spans > spans.shape[0]:
            raise SchemaError(
                f"{where}: CTA index row {row_number} points outside the "
                "span array — torn file"
            )
        block = addrs[addr_offset : addr_offset + size].reshape(n_groups, per_group)
        entry = CTASlice(
            addrs=block,
            spans=tuple(
                (int(s), int(m), int(e))
                for s, m, e in spans[span_offset : span_offset + n_spans]
            ),
            compute_cycles=float(cycles),
        )
        entries = sets.setdefault(t, {})
        entries[len(entries)] = entry
    trace_sets = _assemble_sets(sets, where)
    doc = _document_from_header(header, trace_sets, kernels)
    validate_document(doc)
    return doc


def save_document(doc: TraceDocument, path: PathLike) -> Path:
    """Write ``doc`` in the format implied by the path suffix.

    ``.jsonl`` / ``.jsonl.gz`` → JSONL; ``.npz`` → npz.
    """
    path = Path(path)
    if path.name.endswith((".jsonl", ".jsonl.gz")):
        write_jsonl(doc, path)
    elif path.name.endswith(".npz"):
        write_npz(doc, path)
    else:
        raise IngestError(
            f"{path.name}: unknown trace suffix (expected .jsonl, .jsonl.gz, or .npz)"
        )
    return path


def load_document(path: PathLike) -> TraceDocument:
    """Read a trace document, dispatching on the path suffix."""
    path = Path(path)
    if path.name.endswith((".jsonl", ".jsonl.gz")):
        return read_jsonl(path)
    if path.name.endswith(".npz"):
        return read_npz(path)
    raise IngestError(
        f"{path.name}: unknown trace suffix (expected .jsonl, .jsonl.gz, or .npz)"
    )
