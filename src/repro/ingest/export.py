"""Serializing live workloads into the external trace format.

:func:`export_workload` walks any ``Workload``-protocol object —
synthetic or otherwise — materializes every kernel's CTA traces, and
packs them into a :class:`~repro.ingest.format.TraceDocument`.  Trace
sets are deduplicated by content digest, so an iterative workload whose
kernels re-walk identical traces (the common case: synthetic workloads
memoize per ``(trace seed, CTA)``) stores each distinct set once and the
kernel list simply references it repeatedly.

:func:`verify_roundtrip` is the acceptance gate made executable: simulate
the original workload and its export→re-ingest twin on one configuration
and demand field-for-field :class:`~repro.sim.result.SimResult` equality.
``workload_digest`` is excluded from the comparison *by design*: the
ingested twin's digest is the trace content hash (that is what makes
edited trace files self-invalidate in the result cache), so it can never
equal the synthetic spec digest — every other field must match exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..workloads.trace import ColumnarCTATrace, Workload
from .format import (
    CTASlice,
    IngestError,
    KernelRef,
    TraceDocument,
    document_digest,
    validate_document,
)
from .loader import IngestedWorkload

#: ``SimResult`` fields excluded from round-trip equality, with the reason
#: documented where the comparison happens (see module docstring).
ROUNDTRIP_EXCLUDED_FIELDS = ("workload_digest",)


def _slice_from_trace(trace, label: str) -> CTASlice:
    """One CTA's trace content as a :class:`CTASlice`.

    Columnar traces are referenced in place (no copy).  Classic
    list-of-``TraceRecord`` traces are converted, which requires the
    record structure (read/write counts per record) to be identical
    across the CTA's groups — the same invariant the columnar layout
    itself encodes.
    """
    if isinstance(trace, ColumnarCTATrace):
        return CTASlice(
            addrs=np.ascontiguousarray(trace.addrs, dtype=np.int64),
            spans=tuple((int(s), int(m), int(e)) for s, m, e in trace.spans),
            compute_cycles=float(trace.compute_cycles),
        )
    groups = list(trace)
    if not groups or not groups[0]:
        raise IngestError(f"{label}: empty trace cannot be exported")
    shape = [(len(record.reads), len(record.writes)) for record in groups[0]]
    compute = float(groups[0][0].compute_cycles)
    spans: List[Tuple[int, int, int]] = []
    cursor = 0
    for reads, writes in shape:
        spans.append((cursor, cursor + reads, cursor + reads + writes))
        cursor += reads + writes
    rows = []
    for g, records in enumerate(groups):
        row_shape = [(len(record.reads), len(record.writes)) for record in records]
        if row_shape != shape:
            raise IngestError(
                f"{label}: group {g} has a different record structure than "
                "group 0; only structurally uniform traces are exportable"
            )
        for record in records:
            if float(record.compute_cycles) != compute:
                raise IngestError(
                    f"{label}: non-uniform compute_cycles within one CTA is "
                    "not representable in trace format v1"
                )
        rows.append([line for record in records for line in (*record.reads, *record.writes)])
    return CTASlice(
        addrs=np.array(rows, dtype=np.int64),
        spans=tuple(spans),
        compute_cycles=compute,
    )


def _workload_footprint(workload: Workload, trace_sets: List[List[CTASlice]]) -> int:
    spec = getattr(workload, "spec", None)
    if spec is not None and hasattr(spec, "footprint_lines"):
        return int(spec.footprint_lines)
    declared = getattr(workload, "footprint_lines", None)
    if declared is not None:
        return int(declared)
    highest = max(int(entry.addrs.max()) for trace_set in trace_sets for entry in trace_set)
    return highest + 1


def _workload_category(workload: Workload) -> Optional[str]:
    category = getattr(workload, "category", None)
    if category is None:
        return None
    return getattr(category, "value", str(category))


def export_workload(workload: Workload, name: Optional[str] = None) -> TraceDocument:
    """Materialize every kernel of ``workload`` into a trace document.

    ``name`` overrides the document name (defaults to the workload's).
    The source workload's own digest is recorded in ``meta["source"]``
    for provenance; being metadata, it does not affect the document's
    content hash.
    """
    trace_sets: List[List[CTASlice]] = []
    set_by_digest: Dict[str, int] = {}
    kernels: List[KernelRef] = []
    for kernel in workload.kernels():
        entries = [
            _slice_from_trace(kernel.trace_fn(cta), f"{kernel.label} CTA {cta}")
            for cta in range(kernel.n_ctas)
        ]
        probe = TraceDocument(
            name="probe",
            footprint_lines=1,
            trace_sets=[entries],
            kernels=[],
        )
        key = document_digest(probe)
        index = set_by_digest.get(key)
        if index is None:
            index = len(trace_sets)
            trace_sets.append(entries)
            set_by_digest[key] = index
        kernels.append(
            KernelRef(
                label=kernel.label,
                n_ctas=kernel.n_ctas,
                groups_per_cta=kernel.groups_per_cta,
                trace=index,
            )
        )
    if not kernels:
        raise IngestError(f"{workload.name}: workload has no kernels")
    spec = getattr(workload, "spec", None)
    line_bytes = int(getattr(spec, "line_bytes", getattr(workload, "line_bytes", 128)))
    doc = TraceDocument(
        name=name or workload.name,
        footprint_lines=_workload_footprint(workload, trace_sets),
        trace_sets=trace_sets,
        kernels=kernels,
        line_bytes=line_bytes,
        category=_workload_category(workload),
        meta={"source": workload.digest(), "tool": "repro.ingest.export"},
    )
    validate_document(doc)
    return doc


def reingest(workload: Workload, name: Optional[str] = None) -> IngestedWorkload:
    """Export ``workload`` and load the document back, all in memory."""
    return IngestedWorkload(export_workload(workload, name=name))


def comparable_result_dict(result) -> dict:
    """A ``SimResult`` as a dict with round-trip-excluded fields removed."""
    data = result.to_dict()
    for field in ROUNDTRIP_EXCLUDED_FIELDS:
        data.pop(field, None)
    return data


def verify_roundtrip(workload: Workload, config) -> Tuple[bool, dict, dict]:
    """Simulate ``workload`` and its export→re-ingest twin on ``config``.

    Returns ``(identical, original_dict, reingested_dict)`` where the
    dicts are :func:`comparable_result_dict` views.  ``identical`` is
    exact equality — no tolerance — because both runs must execute the
    same trace content through the same engine.
    """
    from ..sim.simulator import simulate

    original = comparable_result_dict(simulate(workload, config))
    twin = comparable_result_dict(simulate(reingest(workload), config))
    return original == twin, original, twin
