"""Loading trace documents as simulator-ready workloads.

:class:`IngestedWorkload` adapts a validated
:class:`~repro.ingest.format.TraceDocument` to the ``Workload`` protocol:
each kernel reference becomes a :class:`~repro.workloads.trace.KernelLaunch`
whose trace function hands out :class:`~repro.workloads.trace.ColumnarCTATrace`
objects built straight from the stored columns — no pattern synthesis, no
RNG — so ingested traces ride the array walkers exactly like synthetic
ones.  Traces are materialized lazily and cached per trace set, and
kernels sharing a trace set share the cached objects, preserving the
cross-kernel locality (and the per-geometry ``fast_groups`` packs) that
iterative workloads rely on.

The workload digest is the document's content hash
(``ingest:<name>|v1|sha256:<hash>``), so simulation results cached for an
ingested trace self-invalidate the moment the trace file's semantic
content changes — identical in spirit to config-digest invalidation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..workloads.trace import ColumnarCTATrace, KernelLaunch, Workload
from .format import (
    TRACE_FORMAT_VERSION,
    TraceDocument,
    document_digest,
    is_write_column,
    validate_document,
)
from .io import PathLike, load_document


class IngestedWorkload(Workload):
    """A ``Workload`` backed by an external trace document.

    Exposes ``footprint_lines``, ``line_bytes``, and ``category`` so
    downstream consumers (characterization, reports) treat it like any
    suite workload.  Instances pickle cleanly for the process-pool and
    serve executors: the lazy per-trace-set ``ColumnarCTATrace`` caches
    are dropped on ``__getstate__`` and rebuilt on demand in the worker.
    """

    def __init__(self, document: TraceDocument, digest: Optional[str] = None) -> None:
        """Wrap a document, validating it unless a digest is pre-computed.

        ``digest`` is the document's content hash when the caller already
        computed it (e.g. ``load_workload`` hashing at read time); when
        omitted the document is validated and hashed here.
        """
        if digest is None:
            validate_document(document)
            digest = document_digest(document)
        self.document = document
        self.name = document.name
        self.category = document.category or "INGESTED"
        self.footprint_lines = document.footprint_lines
        self.line_bytes = document.line_bytes
        self.content_hash = digest
        #: File the workload was loaded from, when it was (set by
        #: :func:`load_workload`); enables path+digest wire references.
        self.source_path: Optional[str] = None
        self._traces: Dict[int, List[ColumnarCTATrace]] = {}

    def digest(self) -> str:
        """Content-addressed identity: changes iff the trace content does."""
        return f"ingest:{self.name}|v{TRACE_FORMAT_VERSION}|sha256:{self.content_hash}"

    def _trace_set(self, index: int) -> List[ColumnarCTATrace]:
        traces = self._traces.get(index)
        if traces is None:
            traces = []
            for entry in self.document.trace_sets[index]:
                spans = [tuple(span) for span in entry.spans]
                traces.append(
                    ColumnarCTATrace(
                        entry.addrs,
                        is_write_column(entry),
                        spans,
                        entry.compute_cycles,
                    )
                )
            self._traces[index] = traces
        return traces

    def kernels(self) -> Iterator[KernelLaunch]:
        """Yield the document's kernel launches in program order."""
        for kernel in self.document.kernels:
            traces = self._trace_set(kernel.trace)

            def trace_fn(cta_index: int, _traces: List[ColumnarCTATrace] = traces) -> ColumnarCTATrace:
                return _traces[cta_index]

            yield KernelLaunch(
                n_ctas=kernel.n_ctas,
                groups_per_cta=kernel.groups_per_cta,
                trace_fn=trace_fn,
                label=kernel.label,
            )

    def __getstate__(self):
        """Pickle without the lazy trace caches (rebuilt on demand)."""
        state = self.__dict__.copy()
        state["_traces"] = {}
        return state

    def __repr__(self) -> str:
        return (
            f"IngestedWorkload({self.name!r}, kernels={len(self.document.kernels)}, "
            f"hash={self.content_hash})"
        )


def load_workload(path: PathLike) -> IngestedWorkload:
    """Read a trace file (JSONL or npz) and return a runnable workload.

    The source path is recorded on the workload (``source_path``) so a
    file-backed trace can be referenced by path + digest on the serve
    wire (see :func:`repro.serve.wire.trace_reference`).
    """
    document = load_document(path)
    workload = IngestedWorkload(document, digest=document_digest(document))
    workload.source_path = str(path)
    return workload
