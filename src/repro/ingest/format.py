"""The versioned external-trace format: document model, schema, digests.

A *trace document* is the simulator-facing description of a workload as
pure data: a header (identity + address-space geometry), a pool of
*trace sets* (one per distinct per-CTA address stream, so iterative
kernels that re-walk the same traces are stored once), and an ordered
kernel list referencing trace sets by index.  Each CTA entry carries the
exact content of a :class:`~repro.workloads.trace.ColumnarCTATrace` —
the ``(n_groups, per_group)`` int64 address block, the shared record
spans, and the per-record compute latency — so a loaded document drives
the PR 6 array walkers unchanged and simulates bit-identically to the
workload it was exported from.

Two serializations share this model (see :mod:`repro.ingest.io`): JSONL
for hand-authoring and diffs, npz for bulk traces.  Both embed the format
marker and version; :func:`validate_document` enforces the schema, and
:func:`document_digest` hashes the *semantic* content (header geometry,
kernels, every address/span/latency — not provenance ``meta``), giving
every document a content address that flows into simulation-result cache
keys: editing a trace file changes the digest, which self-invalidates
stale cached results exactly like a config-digest change.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Format marker embedded in every serialized trace.
TRACE_FORMAT = "repro-trace"
#: Current schema revision.  Readers reject any other version rather than
#: guessing: the format is a stability contract with external producers.
TRACE_FORMAT_VERSION = 1

#: Hex digits of the sha256 content hash kept in digests (collision odds
#: at 2^-64 per pair are far below the cache's corruption tolerance).
DIGEST_HEX_CHARS = 16


class IngestError(ValueError):
    """A trace document or file that cannot be ingested."""


class SchemaError(IngestError):
    """A structurally invalid trace document (bad version, negative
    lines, inconsistent spans, torn or incomplete files)."""


@dataclass(frozen=True)
class CTASlice:
    """One CTA's trace content: address block, record spans, latency.

    ``addrs`` is the ``(n_groups, per_group)`` int64 line-address block
    (reads before writes within each record, exactly the
    :class:`~repro.workloads.trace.ColumnarCTATrace` layout); ``spans``
    are the shared per-record ``(start, reads_end, end)`` column bounds;
    ``compute_cycles`` is the arithmetic latency charged per record.
    """

    addrs: np.ndarray
    spans: Tuple[Tuple[int, int, int], ...]
    compute_cycles: float

    @property
    def n_groups(self) -> int:
        """Warp groups in this CTA."""
        return int(self.addrs.shape[0])

    @property
    def per_group(self) -> int:
        """Accesses issued by each warp group."""
        return int(self.addrs.shape[1])


@dataclass(frozen=True)
class KernelRef:
    """One kernel launch: grid shape plus a trace-set reference."""

    label: str
    n_ctas: int
    groups_per_cta: int
    trace: int


@dataclass
class TraceDocument:
    """A complete external trace: header, trace-set pool, kernel list."""

    name: str
    footprint_lines: int
    trace_sets: List[List[CTASlice]]
    kernels: List[KernelRef]
    line_bytes: int = 128
    category: Optional[str] = None
    #: Free-form provenance (source digest, exporting tool, notes).
    #: Excluded from :func:`document_digest` — annotating a trace must
    #: not invalidate its cached simulation results.
    meta: Dict[str, object] = field(default_factory=dict)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def validate_document(doc: TraceDocument) -> None:
    """Enforce the schema; raises :class:`SchemaError` with a precise cause.

    Checks header sanity (positive geometry), kernel/trace-set
    consistency (valid references, grid shape matching the trace set),
    and per-CTA content (2-D int64 addresses, non-negative and inside the
    footprint; spans contiguously tiling ``[0, per_group)`` with reads
    before writes; finite non-negative compute latency).
    """
    _require(isinstance(doc.name, str) and doc.name != "", "name must be a non-empty string")
    _require(
        isinstance(doc.line_bytes, int) and doc.line_bytes > 0,
        f"line_bytes must be a positive int, got {doc.line_bytes!r}",
    )
    _require(
        isinstance(doc.footprint_lines, int) and doc.footprint_lines > 0,
        f"footprint_lines must be a positive int, got {doc.footprint_lines!r}",
    )
    _require(bool(doc.kernels), "document has no kernels")
    _require(bool(doc.trace_sets), "document has no trace sets")
    for index, kernel in enumerate(doc.kernels):
        where = f"kernel[{index}] ({kernel.label!r})"
        _require(kernel.n_ctas > 0, f"{where}: n_ctas must be positive")
        _require(kernel.groups_per_cta > 0, f"{where}: groups_per_cta must be positive")
        _require(
            0 <= kernel.trace < len(doc.trace_sets),
            f"{where}: trace set {kernel.trace} out of range "
            f"(document has {len(doc.trace_sets)})",
        )
        trace_set = doc.trace_sets[kernel.trace]
        _require(
            kernel.n_ctas == len(trace_set),
            f"{where}: n_ctas {kernel.n_ctas} != trace set size {len(trace_set)}",
        )
        for cta, entry in enumerate(trace_set):
            _require(
                entry.n_groups == kernel.groups_per_cta,
                f"{where}: CTA {cta} has {entry.n_groups} groups, "
                f"launch declares {kernel.groups_per_cta}",
            )
    for t, trace_set in enumerate(doc.trace_sets):
        _require(bool(trace_set), f"trace set {t} is empty")
        for cta, entry in enumerate(trace_set):
            _validate_slice(entry, doc.footprint_lines, f"trace set {t}, CTA {cta}")


def _validate_slice(entry: CTASlice, footprint_lines: int, where: str) -> None:
    addrs = entry.addrs
    _require(
        isinstance(addrs, np.ndarray) and addrs.ndim == 2,
        f"{where}: addrs must be a 2-D array",
    )
    _require(
        addrs.dtype == np.int64,
        f"{where}: addrs must be int64, got {addrs.dtype}",
    )
    _require(addrs.shape[0] > 0 and addrs.shape[1] > 0, f"{where}: empty address block")
    _require(int(addrs.min()) >= 0, f"{where}: negative line address {int(addrs.min())}")
    _require(
        int(addrs.max()) < footprint_lines,
        f"{where}: line address {int(addrs.max())} outside the "
        f"{footprint_lines}-line footprint",
    )
    _require(
        math.isfinite(entry.compute_cycles) and entry.compute_cycles >= 0,
        f"{where}: compute_cycles must be finite and non-negative, "
        f"got {entry.compute_cycles!r}",
    )
    per_group = entry.per_group
    _require(bool(entry.spans), f"{where}: no record spans")
    cursor = 0
    for span in entry.spans:
        _require(
            len(span) == 3,
            f"{where}: span {span!r} must be (start, reads_end, end)",
        )
        start, mid, end = (int(value) for value in span)
        _require(
            start == cursor,
            f"{where}: span starts at {start}, expected {cursor} "
            "(spans must tile the columns contiguously)",
        )
        _require(start <= mid <= end, f"{where}: span {span!r} is not ordered")
        _require(end > start, f"{where}: span {span!r} covers no accesses")
        cursor = end
    _require(
        cursor == per_group,
        f"{where}: spans cover {cursor} of {per_group} accesses per group",
    )


def is_write_column(entry: CTASlice) -> np.ndarray:
    """The shared per-position store mask implied by the record spans."""
    mask = np.zeros(entry.per_group, dtype=bool)
    for _, mid, end in entry.spans:
        mask[mid:end] = True
    return mask


def document_digest(doc: TraceDocument) -> str:
    """Stable sha256 content hash of a document's semantic payload.

    Covers the header geometry (name, line size, footprint, category),
    every kernel reference, and every trace set's spans, latencies, and
    address bytes (little-endian int64, row-major) — but not ``meta``.
    The same logical content therefore hashes identically whether it was
    read from JSONL or npz, freshly exported, or hand-built in memory.
    """
    digest = hashlib.sha256()
    digest.update(
        f"{TRACE_FORMAT}|v{TRACE_FORMAT_VERSION}|{doc.name}|{doc.line_bytes}"
        f"|{doc.footprint_lines}|{doc.category or ''}".encode("utf-8")
    )
    for t, trace_set in enumerate(doc.trace_sets):
        digest.update(f"|T{t}:{len(trace_set)}".encode("utf-8"))
        for entry in trace_set:
            spans = ";".join(f"{s},{m},{e}" for s, m, e in entry.spans)
            digest.update(
                f"|{entry.compute_cycles!r}|{entry.n_groups}|{spans}|".encode("utf-8")
            )
            digest.update(np.ascontiguousarray(entry.addrs, dtype="<i8").tobytes())
    for kernel in doc.kernels:
        digest.update(
            f"|K:{kernel.label}:{kernel.n_ctas}:{kernel.groups_per_cta}"
            f":{kernel.trace}".encode("utf-8")
        )
    return digest.hexdigest()[:DIGEST_HEX_CHARS]


def header_dict(doc: TraceDocument) -> Dict[str, object]:
    """The serializable header both file formats embed."""
    return {
        "format": TRACE_FORMAT,
        "version": TRACE_FORMAT_VERSION,
        "name": doc.name,
        "line_bytes": doc.line_bytes,
        "footprint_lines": doc.footprint_lines,
        "category": doc.category,
        "meta": dict(doc.meta),
        "trace_sets": len(doc.trace_sets),
        "kernels": len(doc.kernels),
    }


def check_header(data: Dict[str, object], where: str) -> None:
    """Validate a deserialized header's marker and version."""
    if data.get("format") != TRACE_FORMAT:
        raise SchemaError(
            f"{where}: not a {TRACE_FORMAT} file (format={data.get('format')!r})"
        )
    version = data.get("version")
    if version != TRACE_FORMAT_VERSION:
        raise SchemaError(
            f"{where}: unsupported trace format version {version!r} "
            f"(this reader supports v{TRACE_FORMAT_VERSION})"
        )


def spans_from_lists(raw: Sequence[Sequence[int]], where: str) -> Tuple[Tuple[int, int, int], ...]:
    """Parse serialized spans into the canonical tuple-of-triples form."""
    spans: List[Tuple[int, int, int]] = []
    for item in raw:
        if len(item) != 3:
            raise SchemaError(f"{where}: span {item!r} must have three elements")
        spans.append((int(item[0]), int(item[1]), int(item[2])))
    return tuple(spans)
