"""External trace ingestion: a versioned on-disk workload format.

The subsystem decouples *what* the simulator runs from *how* the trace
was produced.  Anything that can write the documented format — the
built-in exporter, a real-hardware profiler, a hand-edited JSONL file —
becomes a first-class workload:

* :mod:`repro.ingest.format` — the document model, schema validation,
  and content-hash digests.
* :mod:`repro.ingest.io` — JSONL (hand-authoring) and npz (bulk)
  serializations.
* :mod:`repro.ingest.export` — serialize any live ``Workload`` to the
  format; the export→re-ingest round trip simulates bit-identically.
* :mod:`repro.ingest.loader` — :class:`IngestedWorkload`, a
  ``Workload``-protocol adapter whose digest is the trace content hash,
  so cached results self-invalidate when a trace file is edited.
"""

from .export import (
    ROUNDTRIP_EXCLUDED_FIELDS,
    comparable_result_dict,
    export_workload,
    reingest,
    verify_roundtrip,
)
from .format import (
    TRACE_FORMAT,
    TRACE_FORMAT_VERSION,
    CTASlice,
    IngestError,
    KernelRef,
    SchemaError,
    TraceDocument,
    document_digest,
    validate_document,
)
from .io import load_document, save_document
from .loader import IngestedWorkload, load_workload

__all__ = [
    "TRACE_FORMAT",
    "TRACE_FORMAT_VERSION",
    "CTASlice",
    "KernelRef",
    "TraceDocument",
    "IngestError",
    "SchemaError",
    "validate_document",
    "document_digest",
    "load_document",
    "save_document",
    "IngestedWorkload",
    "load_workload",
    "export_workload",
    "reingest",
    "verify_roundtrip",
    "comparable_result_dict",
    "ROUNDTRIP_EXCLUDED_FIELDS",
]
