"""Result aggregation, speedup math, and report formatting."""

from .compare import ComparisonMatrix, build_matrix, render_matrix
from .report import format_series, format_table, paper_vs_measured
from .speedup import (
    average_bandwidth_tbps,
    bandwidth_reduction_factor,
    fraction_above,
    geomean,
    geomean_speedup,
    sorted_speedup_curve,
    speedups,
)

__all__ = [
    "ComparisonMatrix",
    "build_matrix",
    "render_matrix",
    "format_series",
    "format_table",
    "paper_vs_measured",
    "average_bandwidth_tbps",
    "bandwidth_reduction_factor",
    "fraction_above",
    "geomean",
    "geomean_speedup",
    "sorted_speedup_curve",
    "speedups",
]
