"""Plain-text table rendering for benchmark harness output.

Every benchmark prints the rows/series of the paper table or figure it
reproduces; this module renders them uniformly so EXPERIMENTS.md can be
assembled by copy-paste from bench output.
"""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} has {len(row)} cells, expected {columns}")
    cells: List[List[str]] = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in cells)) if cells else len(headers[col])
        for col in range(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_series(name: str, values: Sequence[float], per_line: int = 10) -> str:
    """Render a numeric series (an s-curve, a sweep) compactly."""
    lines = [f"{name} ({len(values)} points):"]
    chunk: List[str] = []
    for index, value in enumerate(values):
        chunk.append(_fmt(float(value)))
        if len(chunk) == per_line or index == len(values) - 1:
            lines.append("  " + "  ".join(chunk))
            chunk = []
    return "\n".join(lines)


def paper_vs_measured(
    rows: Sequence[Sequence[object]],
    title: str = "paper vs measured",
) -> str:
    """Three-column comparison table: metric, paper value, measured value."""
    return format_table(["metric", "paper", "measured"], rows, title=title)
