"""Speedup aggregation helpers.

The paper reports per-application speedups and *geometric-mean* category
summaries ("GeoMean" columns of Figures 6, 9, 13).  These helpers keep
that math in one place and guard against the usual mistakes (empty sets,
mismatched workloads, arithmetic means of ratios).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence

from ..sim.result import SimResult


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; rejects empty input and non-positive/non-finite values.

    A zero, negative, NaN or infinite speedup always means an upstream bug
    (a zero-cycle run, a division error), never a real measurement — so it
    raises instead of silently poisoning a reported mean.
    """
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    bad = [value for value in values if not math.isfinite(value) or value <= 0]
    if bad:
        raise ValueError(
            f"geomean requires positive finite values, got {bad} in {values}"
        )
    return math.exp(sum(math.log(value) for value in values) / len(values))


def speedups(
    results: Mapping[str, SimResult],
    baselines: Mapping[str, SimResult],
) -> Dict[str, float]:
    """Per-workload speedup of ``results`` over ``baselines``.

    Both mappings are keyed by workload name; only workloads present in
    both are compared (missing baselines are an error — silent drops would
    skew geomeans).
    """
    out: Dict[str, float] = {}
    for name, result in results.items():
        if name not in baselines:
            raise KeyError(f"no baseline result for workload {name!r}")
        out[name] = result.speedup_over(baselines[name])
    return out


def geomean_speedup(
    results: Mapping[str, SimResult],
    baselines: Mapping[str, SimResult],
) -> float:
    """Geometric-mean speedup across all common workloads."""
    return geomean(speedups(results, baselines).values())


def average_bandwidth_tbps(results: Mapping[str, SimResult]) -> float:
    """Arithmetic mean of inter-module bandwidth in TB/s (Figure 7 style)."""
    values = [result.inter_gpm_tbps for result in results.values()]
    if not values:
        raise ValueError("no results to average")
    return sum(values) / len(values)


def bandwidth_reduction_factor(
    baseline: Mapping[str, SimResult],
    optimized: Mapping[str, SimResult],
) -> float:
    """How many times less inter-module traffic the optimized runs move.

    Computed on summed traffic volumes (the paper's "5x inter-GPM
    bandwidth reduction" headline is an aggregate figure).
    """
    base_bytes = sum(result.link_bytes for result in baseline.values())
    opt_bytes = sum(optimized[name].link_bytes for name in baseline)
    if opt_bytes == 0:
        return math.inf
    return base_bytes / opt_bytes


def suite_energy_joules(results: Mapping[str, SimResult]) -> float:
    """Total data-movement energy across a suite run, in joules.

    Sums each result's :class:`~repro.core.energy.EnergyBreakdown` total
    (on-chip, inter-module at the system's link tier, DRAM) — the energy
    objective design-space sweeps minimize.
    """
    return sum(result.energy.total_joules for result in results.values())


def sorted_speedup_curve(per_workload: Mapping[str, float]) -> List[float]:
    """Speedups sorted ascending — the Figure 15 s-curve series."""
    return sorted(per_workload.values())


def fraction_above(per_workload: Mapping[str, float], threshold: float = 1.0) -> float:
    """Fraction of workloads whose speedup exceeds ``threshold``."""
    if not per_workload:
        raise ValueError("no speedups given")
    above = sum(1 for value in per_workload.values() if value > threshold)
    return above / len(per_workload)
