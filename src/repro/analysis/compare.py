"""Multi-configuration comparison matrices.

Builds the per-workload comparison tables used throughout the evaluation:
rows are workloads (grouped by category), columns are system
configurations, cells are speedups over a designated baseline column —
the layout of Figures 6, 9 and 13.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..sim.result import SimResult
from ..workloads.suite import specs_by_category
from ..workloads.synthetic import Category
from .report import format_table
from .speedup import geomean


@dataclass(frozen=True)
class ComparisonMatrix:
    """Speedup matrix: workloads x configurations, relative to a baseline."""

    baseline_label: str
    column_labels: List[str]
    rows: Dict[str, List[float]]
    category_geomeans: Dict[str, List[float]]

    def column(self, label: str) -> Dict[str, float]:
        """Per-workload speedups of one configuration."""
        try:
            index = self.column_labels.index(label)
        except ValueError:
            raise KeyError(
                f"no column {label!r}; have {', '.join(map(repr, self.column_labels))}"
            ) from None
        return {name: values[index] for name, values in self.rows.items()}

    def best_configuration(self) -> str:
        """Configuration with the highest overall geomean."""
        overall = [
            geomean(values[index] for values in self.rows.values())
            for index in range(len(self.column_labels))
        ]
        return self.column_labels[overall.index(max(overall))]


def build_matrix(
    baseline: Mapping[str, SimResult],
    configurations: Mapping[str, Mapping[str, SimResult]],
    baseline_label: str = "baseline",
    workload_order: Optional[Sequence[str]] = None,
    strict: bool = False,
) -> ComparisonMatrix:
    """Assemble a :class:`ComparisonMatrix`.

    ``configurations`` maps column label -> results keyed by workload name.
    Workloads missing from any configuration are dropped (comparisons must
    be complete rows): silently skewed geomeans are worse than missing
    rows, so dropped names are logged — or, with ``strict=True``, raised
    as a ``ValueError``.
    """
    if not configurations:
        raise ValueError("need at least one configuration to compare")
    labels = list(configurations)
    names = list(workload_order) if workload_order is not None else list(baseline)
    rows: Dict[str, List[float]] = {}
    dropped: List[str] = []
    for name in names:
        if name not in baseline or any(
            name not in results for results in configurations.values()
        ):
            dropped.append(name)
            continue
        rows[name] = [
            configurations[label][name].speedup_over(baseline[name]) for label in labels
        ]
    if dropped:
        if strict:
            raise ValueError(
                f"incomplete rows for {len(dropped)} workload(s): {', '.join(dropped)}"
            )
        logging.getLogger(__name__).warning(
            "build_matrix dropped %d incomplete workload row(s): %s",
            len(dropped),
            ", ".join(dropped),
        )

    category_geomeans: Dict[str, List[float]] = {}
    grouped = specs_by_category()
    for category in Category:
        members = [spec.name for spec in grouped[category] if spec.name in rows]
        if not members:
            continue
        category_geomeans[category.value] = [
            geomean(rows[name][index] for name in members)
            for index in range(len(labels))
        ]
    return ComparisonMatrix(
        baseline_label=baseline_label,
        column_labels=labels,
        rows=rows,
        category_geomeans=category_geomeans,
    )


def render_matrix(matrix: ComparisonMatrix, title: str = "comparison") -> str:
    """Render a matrix with per-category geomean footer rows."""
    headers = ["Workload"] + matrix.column_labels
    body: List[List[object]] = [
        [name] + values for name, values in matrix.rows.items()
    ]
    for category, values in matrix.category_geomeans.items():
        body.append([f"[{category} geomean]"] + values)
    return format_table(headers, body, title=f"{title} (speedup over {matrix.baseline_label})")
