"""Wire formats for the job server: workloads, configs, results as JSON.

Every payload that crosses the HTTP boundary round-trips through the
helpers here.  Workloads travel as their :class:`~repro.workloads.
synthetic.WorkloadSpec` (tiny, declarative, digest-stable), or as a
``{"name": ..., "scale": ...}`` reference into the built-in suite;
configurations reuse :meth:`~repro.core.config.SystemConfig.to_dict`.
The server never trusts client-side digests — it revives the objects and
recomputes ``workload.digest()`` / ``config.digest()`` itself, so cache
keys are authoritative regardless of client version skew.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, List, Tuple

from ..core.config import SystemConfig
from ..workloads.suite import spec_by_name
from ..workloads.synthetic import Category, SyntheticWorkload, WorkloadSpec


class WireError(ValueError):
    """A malformed or unsupported wire payload (maps to HTTP 400)."""


def workload_to_wire(workload: Any) -> Dict[str, Any]:
    """JSON-safe descriptor for a workload.

    Only synthetic workloads are expressible on the wire (everything the
    suite, sweeps, and experiments run); a custom :class:`~repro.
    workloads.trace.Workload` subclass has no declarative form and must
    run locally instead.
    """
    if isinstance(workload, SyntheticWorkload):
        data = asdict(workload.spec)
        data["category"] = workload.spec.category.value
        data["pattern_params"] = [list(pair) for pair in workload.spec.pattern_params]
        return {"spec": data}
    raise WireError(
        f"workload {getattr(workload, 'name', workload)!r} is not synthetic; "
        "only WorkloadSpec-backed workloads can be submitted to a server"
    )


def spec_from_wire(data: Dict[str, Any]) -> WorkloadSpec:
    """Revive a :class:`WorkloadSpec` from its wire dict."""
    if not isinstance(data, dict):
        raise WireError(f"workload spec must be an object, got {type(data).__name__}")
    payload = dict(data)
    try:
        payload["category"] = Category(payload["category"])
        payload["pattern_params"] = tuple(
            (str(key), value) for key, value in payload.get("pattern_params", ())
        )
        return WorkloadSpec(**payload)
    except WireError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"bad workload spec: {exc}") from exc


def workload_from_wire(data: Dict[str, Any]) -> SyntheticWorkload:
    """Revive a runnable workload from either wire form.

    ``{"spec": {...}}`` carries a full :class:`WorkloadSpec`;
    ``{"name": "Stream", "scale": 0.25}`` references the built-in suite
    (``scale`` optionally shrinks it via ``WorkloadSpec.scaled_down``).
    """
    if not isinstance(data, dict):
        raise WireError(f"workload must be an object, got {type(data).__name__}")
    if "spec" in data:
        return SyntheticWorkload(spec_from_wire(data["spec"]))
    if "name" in data:
        try:
            spec = spec_by_name(str(data["name"]))
        except KeyError as exc:
            raise WireError(str(exc)) from exc
        scale = data.get("scale")
        if scale is not None:
            try:
                spec = spec.scaled_down(float(scale))
            except (TypeError, ValueError) as exc:
                raise WireError(f"bad scale {scale!r}: {exc}") from exc
        return SyntheticWorkload(spec)
    raise WireError("workload needs a 'spec' or a suite 'name'")


def config_from_wire(data: Dict[str, Any]) -> SystemConfig:
    """Revive a :class:`SystemConfig` from its ``to_dict`` form."""
    if not isinstance(data, dict):
        raise WireError(f"config must be an object, got {type(data).__name__}")
    try:
        return SystemConfig.from_dict(data)
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"bad system config: {exc}") from exc


def pair_to_wire(workload: Any, config: SystemConfig) -> Dict[str, Any]:
    """Wire dict for one (workload, config) job submission."""
    return {"workload": workload_to_wire(workload), "config": config.to_dict()}


def pair_from_wire(data: Dict[str, Any]) -> Tuple[SyntheticWorkload, SystemConfig]:
    """Revive one (workload, config) pair from a job submission."""
    if not isinstance(data, dict):
        raise WireError(f"pair must be an object, got {type(data).__name__}")
    if "workload" not in data or "config" not in data:
        raise WireError("pair needs 'workload' and 'config'")
    return workload_from_wire(data["workload"]), config_from_wire(data["config"])


def pairs_from_wire(data: Any) -> List[Tuple[SyntheticWorkload, SystemConfig]]:
    """Revive a batch submission's ``pairs`` list."""
    if not isinstance(data, list) or not data:
        raise WireError("'pairs' must be a non-empty list")
    return [pair_from_wire(item) for item in data]
