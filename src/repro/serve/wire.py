"""Wire formats for the job server: workloads, configs, results as JSON.

Every payload that crosses the HTTP boundary round-trips through the
helpers here.  Workloads travel as their :class:`~repro.workloads.
synthetic.WorkloadSpec` (tiny, declarative, digest-stable), as a
``{"name": ..., "scale": ...}`` reference into the built-in suite, or as
a ``{"trace": {"path": ..., "digest": ...}}`` reference to an ingested
trace file on the server's filesystem; configurations reuse
:meth:`~repro.core.config.SystemConfig.to_dict`.  The server never
trusts client-side digests — it revives the objects and recomputes
``workload.digest()`` / ``config.digest()`` itself (for trace
references, a client-supplied digest is *verified* against the loaded
content and a mismatch is rejected, so a job can never silently run a
different trace than the submitter intended), so cache keys are
authoritative regardless of client version skew.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, List, Tuple, Union

from ..core.config import SystemConfig
from ..workloads.suite import spec_by_name
from ..workloads.synthetic import Category, SyntheticWorkload, WorkloadSpec

#: Workload types revivable from the wire.
WireWorkload = Union[SyntheticWorkload, "IngestedWorkload"]


class WireError(ValueError):
    """A malformed or unsupported wire payload (maps to HTTP 400)."""


def workload_to_wire(workload: Any) -> Dict[str, Any]:
    """JSON-safe descriptor for a workload.

    Synthetic workloads travel as their spec; ingested workloads carry a
    ``source_path`` (recorded by :func:`trace_reference`-aware loaders)
    plus their content hash.  Any other :class:`~repro.workloads.trace.
    Workload` subclass has no declarative form and must run locally.
    """
    from ..ingest.loader import IngestedWorkload

    if isinstance(workload, SyntheticWorkload):
        data = asdict(workload.spec)
        data["category"] = workload.spec.category.value
        data["pattern_params"] = [list(pair) for pair in workload.spec.pattern_params]
        return {"spec": data}
    if isinstance(workload, IngestedWorkload):
        path = getattr(workload, "source_path", None)
        if not path:
            raise WireError(
                f"ingested workload {workload.name!r} has no source path; "
                "load it from a file (load_workload) before submitting"
            )
        return {"trace": {"path": str(path), "digest": workload.content_hash}}
    raise WireError(
        f"workload {getattr(workload, 'name', workload)!r} is not synthetic; "
        "only WorkloadSpec-backed workloads and file-backed ingested traces "
        "can be submitted to a server"
    )


def trace_reference(data: Dict[str, Any]) -> "IngestedWorkload":
    """Revive an ingested workload from a ``{"path", "digest"}`` reference.

    The file is loaded from the server's filesystem and its content hash
    recomputed; when the reference carries a ``digest`` it must match the
    loaded content exactly — a stale reference (file edited since the
    client hashed it) is an error, not a silent re-run of different
    content.
    """
    from ..ingest.format import IngestError
    from ..ingest.loader import load_workload

    if not isinstance(data, dict):
        raise WireError(f"trace reference must be an object, got {type(data).__name__}")
    path = data.get("path")
    if not path:
        raise WireError("trace reference needs a 'path'")
    try:
        workload = load_workload(str(path))
    except (IngestError, OSError) as exc:
        raise WireError(f"cannot load trace {path!r}: {exc}") from exc
    expected = data.get("digest")
    if expected is not None and str(expected) != workload.content_hash:
        raise WireError(
            f"trace {path!r} content hash {workload.content_hash} does not "
            f"match the submitted digest {expected} — the file changed since "
            "the client referenced it"
        )
    workload.source_path = str(path)
    return workload


def spec_from_wire(data: Dict[str, Any]) -> WorkloadSpec:
    """Revive a :class:`WorkloadSpec` from its wire dict."""
    if not isinstance(data, dict):
        raise WireError(f"workload spec must be an object, got {type(data).__name__}")
    payload = dict(data)
    try:
        payload["category"] = Category(payload["category"])
        payload["pattern_params"] = tuple(
            (str(key), value) for key, value in payload.get("pattern_params", ())
        )
        return WorkloadSpec(**payload)
    except WireError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"bad workload spec: {exc}") from exc


def workload_from_wire(data: Dict[str, Any]) -> WireWorkload:
    """Revive a runnable workload from any wire form.

    ``{"spec": {...}}`` carries a full :class:`WorkloadSpec`;
    ``{"name": "Stream", "scale": 0.25}`` references the built-in suite
    (``scale`` optionally shrinks it via ``WorkloadSpec.scaled_down``);
    ``{"trace": {"path": ..., "digest": ...}}`` references an ingested
    trace file by path, verified against its content digest.
    """
    if not isinstance(data, dict):
        raise WireError(f"workload must be an object, got {type(data).__name__}")
    if "spec" in data:
        return SyntheticWorkload(spec_from_wire(data["spec"]))
    if "trace" in data:
        return trace_reference(data["trace"])
    if "name" in data:
        try:
            spec = spec_by_name(str(data["name"]))
        except KeyError as exc:
            raise WireError(str(exc)) from exc
        scale = data.get("scale")
        if scale is not None:
            try:
                spec = spec.scaled_down(float(scale))
            except (TypeError, ValueError) as exc:
                raise WireError(f"bad scale {scale!r}: {exc}") from exc
        return SyntheticWorkload(spec)
    raise WireError("workload needs a 'spec', a suite 'name', or a 'trace' reference")


def config_from_wire(data: Dict[str, Any]) -> SystemConfig:
    """Revive a :class:`SystemConfig` from its ``to_dict`` form."""
    if not isinstance(data, dict):
        raise WireError(f"config must be an object, got {type(data).__name__}")
    try:
        return SystemConfig.from_dict(data)
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"bad system config: {exc}") from exc


def pair_to_wire(workload: Any, config: SystemConfig) -> Dict[str, Any]:
    """Wire dict for one (workload, config) job submission."""
    return {"workload": workload_to_wire(workload), "config": config.to_dict()}


def pair_from_wire(data: Dict[str, Any]) -> Tuple[WireWorkload, SystemConfig]:
    """Revive one (workload, config) pair from a job submission."""
    if not isinstance(data, dict):
        raise WireError(f"pair must be an object, got {type(data).__name__}")
    if "workload" not in data or "config" not in data:
        raise WireError("pair needs 'workload' and 'config'")
    return workload_from_wire(data["workload"]), config_from_wire(data["config"])


def pairs_from_wire(data: Any) -> List[Tuple[WireWorkload, SystemConfig]]:
    """Revive a batch submission's ``pairs`` list."""
    if not isinstance(data, list) or not data:
        raise WireError("'pairs' must be a non-empty list")
    return [pair_from_wire(item) for item in data]
