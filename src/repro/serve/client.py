"""Synchronous client library for the ``repro.serve`` job server.

:class:`ServeClient` wraps the HTTP/JSON API in plain blocking calls —
the natural shape for scripts and for the :func:`repro.explore.remote.
remote_runner` bridge, which drives whole sweeps through a server from a
synchronous ``run_sweep`` loop.  Only the standard library is used
(``urllib`` for request/response calls, ``http.client`` for the SSE
stream).

The high-level entry point is :meth:`ServeClient.run_pairs`: submit a
list of (workload, config) pairs as one batch, poll until every job is
terminal, revive the :class:`~repro.sim.result.SimResult` objects, and
raise :class:`RemoteError` if any pair failed.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.config import SystemConfig
from ..sim.result import SimResult
from .wire import pair_to_wire


class RemoteError(RuntimeError):
    """The server rejected a request or a remote job failed."""


class ServeClient:
    """Blocking HTTP client for one ``repro.serve`` server.

    ``base_url`` is the server root (e.g. ``http://127.0.0.1:8731``);
    ``timeout`` bounds each HTTP call, not whole jobs — use the
    ``timeout`` argument of the wait helpers for end-to-end limits.
    """

    def __init__(self, base_url: str, timeout: float = 300.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """One HTTP round trip; raises :class:`RemoteError` on failure."""
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:  # noqa: BLE001 - diagnostics only
                detail = ""
            raise RemoteError(
                f"{method} {path} failed with HTTP {exc.code}"
                + (f": {detail}" if detail else "")
            ) from exc
        except (urllib.error.URLError, OSError) as exc:
            raise RemoteError(f"{method} {path} unreachable: {exc}") from exc

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def submit(self, workload: Any, config: SystemConfig) -> Dict[str, Any]:
        """Submit one pair; returns the job wire dict (with ``how``)."""
        return self._request("POST", "/jobs", pair_to_wire(workload, config))

    def job(self, job_id: str, result: bool = False) -> Dict[str, Any]:
        """``GET /jobs/<id>`` (``result=True`` embeds the SimResult dict)."""
        suffix = "?result=1" if result else ""
        return self._request("GET", f"/jobs/{job_id}{suffix}")

    def submit_pairs(
        self, pairs: Sequence[Tuple[Any, SystemConfig]]
    ) -> Dict[str, Any]:
        """Submit many pairs as one batch; returns the batch wire dict."""
        payload = {"pairs": [pair_to_wire(w, c) for w, c in pairs]}
        return self._request("POST", "/batches", payload)

    def batch(self, batch_id: str) -> Dict[str, Any]:
        """``GET /batches/<id>`` — per-state counts and ``done`` flag."""
        return self._request("GET", f"/batches/{batch_id}")

    def batch_results(self, batch_id: str) -> Dict[str, Any]:
        """``GET /batches/<id>/results`` — per-slot rows with results."""
        return self._request("GET", f"/batches/{batch_id}/results")

    def metrics(self) -> Dict[str, Any]:
        """``GET /metrics``."""
        return self._request("GET", "/metrics")

    def cache_stats(self) -> Dict[str, Any]:
        """``GET /cache/stats``."""
        return self._request("GET", "/cache/stats")

    def refresh(self) -> Dict[str, Any]:
        """``POST /cache/refresh``."""
        return self._request("POST", "/cache/refresh")

    def prune(self) -> Dict[str, Any]:
        """``POST /cache/prune``."""
        return self._request("POST", "/cache/prune")

    def store(self) -> Dict[str, Any]:
        """``GET /store`` — the full job-store snapshot."""
        return self._request("GET", "/store")

    def drain(self, grace: Optional[float] = None) -> Dict[str, Any]:
        """``POST /drain`` — graceful shutdown; returns the summary."""
        payload = {} if grace is None else {"grace": grace}
        return self._request("POST", "/drain", payload)

    # ------------------------------------------------------------------
    # waiting
    # ------------------------------------------------------------------

    def wait_job(
        self, job_id: str, poll: float = 0.1, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its wire dict (+result)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            view = self.job(job_id, result=True)
            if view["state"] in ("cached", "done", "failed"):
                return view
            if deadline is not None and time.monotonic() > deadline:
                raise RemoteError(f"timed out waiting for job {job_id}")
            time.sleep(poll)

    def wait_batch(
        self, batch_id: str, poll: float = 0.2, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Poll until every job in the batch is terminal; returns results."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.batch(batch_id)
            if status.get("done"):
                return self.batch_results(batch_id)
            if deadline is not None and time.monotonic() > deadline:
                raise RemoteError(f"timed out waiting for batch {batch_id}")
            time.sleep(poll)

    def run_pairs(
        self,
        pairs: Sequence[Tuple[Any, SystemConfig]],
        poll: float = 0.2,
        timeout: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        """Submit, wait, and revive: the one-call remote execution path.

        Returns one row per submitted pair, in submission order, with the
        ``result`` field replaced by a revived :class:`SimResult`.  Rows
        keep the server's ``how`` (queued/coalesced/cached) and
        ``sim_seconds`` so callers can account throughput.  Raises
        :class:`RemoteError` if any pair failed remotely.
        """
        batch = self.submit_pairs(pairs)
        outcome = self.wait_batch(batch["id"], poll=poll, timeout=timeout)
        rows: List[Dict[str, Any]] = outcome["jobs"]
        failed = [row for row in rows if row["state"] == "failed"]
        if failed:
            details = "; ".join(
                f"{row['workload']} on {row['config']}: "
                f"{(row.get('error') or {}).get('kind', '?')} "
                f"({(row.get('error') or {}).get('error', '')})"
                for row in failed[:5]
            )
            raise RemoteError(
                f"{len(failed)}/{len(rows)} remote jobs failed: {details}"
            )
        for row in rows:
            if row.get("result") is None:  # pragma: no cover - defensive
                raise RemoteError(f"job {row['id']} finished without a result")
            row["result"] = SimResult.from_dict(row["result"])
        return rows

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------

    def events(self, since: int = 0) -> Iterator[Dict[str, Any]]:
        """Yield job-transition events from the SSE stream.

        Blocks between events (keepalive comments are skipped); the
        caller breaks out of the loop to close the stream.  ``since``
        replays buffered history first, so a dropped stream resumes with
        ``since=<last seen seq>``.
        """
        parsed = urllib.parse.urlsplit(self.base_url)
        connection = http.client.HTTPConnection(
            parsed.hostname, parsed.port, timeout=self.timeout
        )
        try:
            connection.request("GET", f"/events?since={since}")
            response = connection.getresponse()
            if response.status != 200:
                raise RemoteError(f"GET /events failed with HTTP {response.status}")
            while True:
                line = response.fp.readline()
                if not line:
                    return
                line = line.strip()
                if line.startswith(b"data:"):
                    yield json.loads(line[len(b"data:"):].decode("utf-8"))
        finally:
            connection.close()
