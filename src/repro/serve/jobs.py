"""Job and batch bookkeeping for the simulation service.

A :class:`Job` is one (workload, config) pair moving through the
lifecycle ``queued -> running -> done`` (or ``failed``), or born
terminal as ``cached`` when the result cache already held its key.  The
:class:`JobStore` owns every job, maintains the key index used for
in-flight coalescing, and publishes every state transition as a
monotonically numbered event — the polling and server-sent-events
endpoints both read from the same ring buffer, so a client can resume a
dropped stream with ``?since=<seq>``.

Everything here runs on the server's event loop; no locking is needed
because jobs are only mutated from scheduler coroutines.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set

from ..sim.result import SimResult

#: The job lifecycle.  ``cached``/``done``/``failed`` are terminal;
#: ``cached`` means the result was served without a simulation.
JOB_STATES = ("queued", "running", "cached", "done", "failed")

#: States in which a job can still absorb coalesced submissions.
ACTIVE_STATES = ("queued", "running")


@dataclass
class Job:
    """One (workload, config) pair tracked by the server."""

    id: str
    key: str
    workload_name: str
    config_name: str
    state: str = "queued"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Submissions this job served (1 + coalesced duplicates).
    clients: int = 1
    #: Simulation wall seconds (0 for cached/failed jobs).
    sim_seconds: float = 0.0
    #: Failure payload: ``{"kind": ..., "error": ...}`` when failed.
    error: Optional[Dict[str, str]] = None
    result: Optional[SimResult] = None

    @property
    def terminal(self) -> bool:
        """True once the job can no longer change state."""
        return self.state in ("cached", "done", "failed")

    def to_wire(self, include_result: bool = False) -> Dict[str, object]:
        """JSON-safe view of this job for status responses."""
        payload: Dict[str, object] = {
            "id": self.id,
            "key": self.key,
            "workload": self.workload_name,
            "config": self.config_name,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "clients": self.clients,
            "sim_seconds": self.sim_seconds,
            "error": self.error,
        }
        if include_result:
            payload["result"] = None if self.result is None else self.result.to_dict()
        return payload


@dataclass
class Batch:
    """One multi-pair submission, preserving slot order.

    ``slots`` pairs each submitted position with the job that serves it
    and how the job was obtained: ``"queued"`` (this batch caused the
    simulation), ``"coalesced"`` (attached to a job already in flight),
    or ``"cached"`` (served straight from the result cache).
    """

    id: str
    slots: List[tuple] = field(default_factory=list)
    created_at: float = 0.0

    def to_wire(self) -> Dict[str, object]:
        """JSON-safe summary of the batch submission."""
        by_how: Dict[str, int] = {"queued": 0, "coalesced": 0, "cached": 0}
        for _, how in self.slots:
            by_how[how] = by_how.get(how, 0) + 1
        return {
            "id": self.id,
            "total": len(self.slots),
            "jobs": [job_id for job_id, _ in self.slots],
            "queued": by_how["queued"],
            "coalesced": by_how["coalesced"],
            "cached": by_how["cached"],
            "created_at": self.created_at,
        }


class JobStore:
    """Owns every job and batch; publishes state-transition events."""

    def __init__(self, history: int = 4096) -> None:
        self._jobs: Dict[str, Job] = {}
        self._batches: Dict[str, Batch] = {}
        self._active_by_key: Dict[str, str] = {}
        self._events: Deque[Dict[str, object]] = deque(maxlen=history)
        self._seq = 0
        self._counter = 0
        self._batch_counter = 0
        self._subscribers: Set[asyncio.Queue] = set()

    # ------------------------------------------------------------------
    # creation and lookup
    # ------------------------------------------------------------------

    def create(
        self,
        key: str,
        workload_name: str,
        config_name: str,
        state: str = "queued",
        result: Optional[SimResult] = None,
    ) -> Job:
        """Create (and index) a new job in ``state``."""
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        self._counter += 1
        job = Job(
            id=f"j{self._counter:06d}",
            key=key,
            workload_name=workload_name,
            config_name=config_name,
            state=state,
            submitted_at=time.time(),
            result=result,
        )
        if job.terminal:
            job.finished_at = job.submitted_at
        self._jobs[job.id] = job
        if state in ACTIVE_STATES:
            self._active_by_key[key] = job.id
        self._emit(job)
        return job

    def create_batch(self, slots: List[tuple]) -> Batch:
        """Create a batch over already-created jobs (slot order kept)."""
        self._batch_counter += 1
        batch = Batch(id=f"b{self._batch_counter:06d}", slots=slots, created_at=time.time())
        self._batches[batch.id] = batch
        return batch

    def get(self, job_id: str) -> Optional[Job]:
        """The job with ``job_id``, or None."""
        return self._jobs.get(job_id)

    def get_batch(self, batch_id: str) -> Optional[Batch]:
        """The batch with ``batch_id``, or None."""
        return self._batches.get(batch_id)

    def active_for_key(self, key: str) -> Optional[Job]:
        """The in-flight (queued/running) job for ``key``, if any."""
        job_id = self._active_by_key.get(key)
        if job_id is None:
            return None
        job = self._jobs[job_id]
        if job.state not in ACTIVE_STATES:  # pragma: no cover - defensive
            self._active_by_key.pop(key, None)
            return None
        return job

    # ------------------------------------------------------------------
    # transitions and events
    # ------------------------------------------------------------------

    def transition(
        self,
        job: Job,
        state: str,
        error: Optional[Dict[str, str]] = None,
        result: Optional[SimResult] = None,
        sim_seconds: Optional[float] = None,
    ) -> None:
        """Move ``job`` to ``state``, stamping times and emitting an event."""
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        job.state = state
        now = time.time()
        if state == "running":
            job.started_at = now
        if error is not None:
            job.error = dict(error)
        if result is not None:
            job.result = result
        if sim_seconds is not None:
            job.sim_seconds = sim_seconds
        if job.terminal:
            job.finished_at = now
            if self._active_by_key.get(job.key) == job.id:
                self._active_by_key.pop(job.key, None)
        self._emit(job)

    def _emit(self, job: Job) -> None:
        """Append a transition event and wake every subscriber."""
        self._seq += 1
        event = {
            "seq": self._seq,
            "job": job.id,
            "key": job.key,
            "workload": job.workload_name,
            "config": job.config_name,
            "state": job.state,
            "error": job.error,
        }
        self._events.append(event)
        for queue in list(self._subscribers):
            queue.put_nowait(event)

    def subscribe(self) -> asyncio.Queue:
        """Register a live event queue (see :meth:`unsubscribe`)."""
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.add(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        """Drop a queue registered with :meth:`subscribe`."""
        self._subscribers.discard(queue)

    def events_since(self, seq: int) -> List[Dict[str, object]]:
        """Buffered events with sequence numbers greater than ``seq``."""
        return [event for event in self._events if int(event["seq"]) > seq]

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent event."""
        return self._seq

    def counts(self) -> Dict[str, int]:
        """Job count per state (every state present, zeros included)."""
        tally = {state: 0 for state in JOB_STATES}
        for job in self._jobs.values():
            tally[job.state] += 1
        return tally

    def jobs(self) -> List[Job]:
        """Every job, in creation order."""
        return list(self._jobs.values())

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe dump of the whole store (the drain artifact)."""
        return {
            "jobs": [job.to_wire() for job in self._jobs.values()],
            "batches": [batch.to_wire() for batch in self._batches.values()],
            "counts": self.counts(),
            "last_seq": self._seq,
        }
