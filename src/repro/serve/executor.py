"""Async pair execution over the ``repro.parallel`` worker pool.

:class:`PairExecutor` is the bridge between the server's event loop and
the blocking :class:`~concurrent.futures.ProcessPoolExecutor` machinery:
it reuses the parallel runner's worker entry point (per-worker simulator
tables, per-process cache shards) and adds the robustness the serving
story needs — a per-job wall-clock timeout that kills hung workers, and
bounded retries when a worker process dies.  A semaphore caps in-flight
submissions at the pool width, so the pool's internal queue stays empty
and a timeout measures actual runtime rather than queueing delay.

Killing the pool is the only way to stop a stuck worker, and it takes
every in-flight job with it; casualties surface as ``BrokenProcessPool``
and consume one of their own crash retries, so a single poisoned job
cannot starve its neighbours indefinitely.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Optional, Tuple

from ..core.config import SystemConfig
from ..parallel.runner import _init_worker, _run_task, _terminate_pool, resolve_workers


class PairError(RuntimeError):
    """A pair failed to produce a result; ``kind`` labels the class."""

    kind = "exception"


class PairCrash(PairError):
    """The worker process died and the retry budget is exhausted."""

    kind = "crash"


class PairTimeout(PairError):
    """The pair exceeded its wall-clock limit and its worker was killed."""

    kind = "timeout"


class PairExecutor:
    """Process-pool execution of single (workload, config) pairs.

    ``cache_dir``, when given, makes every worker persist finished
    results to its own ``results-w<pid>.jsonl`` shard in that directory
    (the same crash-safe scheme the batch runner uses), so a server
    restart loses no completed work.  ``timeout`` is the default per-job
    wall-clock limit in seconds (None = unlimited); ``crash_retries``
    bounds how many pool rebuilds one job may survive before it is
    reported as a crash.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        timeout: Optional[float] = None,
        crash_retries: int = 2,
    ) -> None:
        self.max_workers = resolve_workers(max_workers)
        self.cache_dir = cache_dir
        self.timeout = timeout
        self.crash_retries = crash_retries
        self._pool: Optional[ProcessPoolExecutor] = None
        self._generation = 0
        self._slots = asyncio.Semaphore(self.max_workers)
        self._lock = asyncio.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------

    def _pool_handle(self) -> Tuple[ProcessPoolExecutor, int]:
        """The live pool (built lazily) and its generation stamp."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_init_worker,
                initargs=(self.cache_dir,),
            )
            self._generation += 1
        return self._pool, self._generation

    async def _retire_pool(self, generation: int) -> None:
        """Kill the pool of ``generation`` (no-op if already replaced).

        The generation stamp makes retirement idempotent under
        concurrency: when several jobs observe the same broken pool, only
        the first one actually tears it down.
        """
        async with self._lock:
            if self._generation != generation or self._pool is None:
                return
            pool = self._pool
            self._pool = None
        _terminate_pool(pool)

    async def close(self, wait: bool = True) -> None:
        """Shut the pool down; no further :meth:`run` calls are accepted."""
        self._closed = True
        async with self._lock:
            pool = self._pool
            self._pool = None
        if pool is None:
            return
        if wait:
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: pool.shutdown(wait=True)
            )
        else:
            _terminate_pool(pool)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    async def run(
        self,
        payload: object,
        config: SystemConfig,
        timeout: Optional[float] = None,
    ) -> Tuple[object, float, Optional[dict]]:
        """Simulate one pair; ``(result, sim_seconds, telemetry summary)``.

        ``payload`` follows the worker protocol: a ``WorkloadSpec`` (the
        normal case — rebuilt worker-side) or a picklable ``Workload``.
        ``timeout`` overrides the executor default for this job.  Raises
        :class:`PairTimeout`, :class:`PairCrash`, or :class:`PairError`
        (the simulation raised; deterministic, never retried).
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        limit = self.timeout if timeout is None else timeout
        async with self._slots:
            attempts = 0
            while True:
                pool, generation = self._pool_handle()
                try:
                    future = pool.submit(_run_task, payload, config)
                except Exception as exc:  # pool broken between jobs
                    await self._retire_pool(generation)
                    attempts += 1
                    if attempts > self.crash_retries:
                        raise PairCrash(
                            f"worker pool unavailable ({attempts} attempts): {exc!r}"
                        ) from exc
                    continue
                try:
                    return await asyncio.wait_for(asyncio.wrap_future(future), limit)
                except asyncio.TimeoutError:
                    await self._retire_pool(generation)
                    raise PairTimeout(f"exceeded {limit:g}s wall-clock limit") from None
                except BrokenProcessPool as exc:
                    await self._retire_pool(generation)
                    attempts += 1
                    if attempts > self.crash_retries:
                        raise PairCrash(
                            f"worker process died ({attempts} attempts)"
                        ) from exc
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    raise PairError(repr(exc)) from exc
