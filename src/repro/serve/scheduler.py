"""Deduplicating scheduler: jobs in, cached/coalesced/simulated results out.

The scheduler is the heart of the service.  Every submission is
content-addressed by the same ``<workload digest>##<system digest>`` key
the :class:`~repro.experiments.common.ResultCache` uses, then resolved
through three tiers:

1. **Coalesce** — an identical pair already queued or running absorbs
   the submission; both clients observe the same job, and exactly one
   simulation happens.
2. **Cache** — the shard-file result cache (refreshed on a throttle, so
   entries written by other processes become visible without reopening)
   serves the pair instantly as a ``cached`` job.
3. **Simulate** — the pair is dispatched to the
   :class:`~repro.serve.executor.PairExecutor`; the worker persists the
   result to its cache shard, and the finished job fans out to every
   coalesced client.

Graceful drain (:meth:`Scheduler.drain`) stops intake, waits for
in-flight jobs up to a grace period, cancels stragglers, and shuts the
worker pool down — the SIGTERM path of ``scripts/serve.py``.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import SystemConfig
from ..experiments.common import ResultCache
from ..parallel.metrics import SuiteMetrics
from ..workloads.synthetic import SyntheticWorkload
from ..workloads.trace import Workload
from .executor import PairError, PairExecutor
from .jobs import Batch, Job, JobStore


class DrainingError(RuntimeError):
    """Submission rejected because the server is draining (HTTP 503)."""


class Scheduler:
    """Owns the job store, the result cache, and the pair executor."""

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        max_workers: Optional[int] = None,
        timeout: Optional[float] = None,
        crash_retries: int = 2,
        refresh_seconds: float = 2.0,
        executor: Optional[PairExecutor] = None,
    ) -> None:
        self.cache = cache
        self.store = JobStore()
        self.metrics = SuiteMetrics()
        self.executor = executor if executor is not None else PairExecutor(
            max_workers=max_workers,
            cache_dir=str(cache.directory) if cache is not None else None,
            timeout=timeout,
            crash_retries=crash_retries,
        )
        self.refresh_seconds = refresh_seconds
        #: Simulations actually executed by this server (not cache-served).
        self.sims_executed = 0
        #: Submissions answered straight from the result cache.
        self.cache_served = 0
        #: Submissions coalesced onto an already-in-flight job.
        self.coalesced = 0
        self.draining = False
        self.started_at = time.time()
        self._tasks: Dict[str, asyncio.Task] = {}
        self._last_refresh = 0.0

    # ------------------------------------------------------------------
    # cache access
    # ------------------------------------------------------------------

    def _cache_lookup(self, workload_digest: str, system_digest: str):
        """Cache lookup with a throttled cross-process shard refresh."""
        if self.cache is None:
            return None
        now = time.monotonic()
        if now - self._last_refresh >= self.refresh_seconds:
            self._last_refresh = now
            self.cache.refresh()
        return self.cache.get(workload_digest, system_digest)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(self, workload: Workload, config: SystemConfig) -> Job:
        """Submit one pair; returns the (possibly shared or cached) job."""
        job, _ = self.submit_classified(workload, config)
        return job

    def submit_classified(
        self, workload: Workload, config: SystemConfig
    ) -> Tuple[Job, str]:
        """Submit one pair and say how it was resolved.

        Returns ``(job, how)`` with ``how`` one of ``"queued"`` (a new
        simulation was scheduled), ``"coalesced"`` (attached to an
        in-flight job), or ``"cached"`` (served from the result cache).
        Raises :class:`DrainingError` while the server is draining.
        """
        if self.draining:
            raise DrainingError("server is draining; no new jobs accepted")
        workload_digest = workload.digest()
        system_digest = config.digest()
        key = f"{workload_digest}##{system_digest}"
        active = self.store.active_for_key(key)
        if active is not None:
            active.clients += 1
            self.coalesced += 1
            return active, "coalesced"
        cached = self._cache_lookup(workload_digest, system_digest)
        if cached is not None:
            job = self.store.create(
                key, workload.name, config.name, state="cached", result=cached
            )
            self.cache_served += 1
            return job, "cached"
        job = self.store.create(key, workload.name, config.name, state="queued")
        task = asyncio.get_running_loop().create_task(
            self._execute(job, workload, config)
        )
        self._tasks[job.id] = task
        return job, "queued"

    def submit_batch(
        self, pairs: Sequence[Tuple[Workload, SystemConfig]]
    ) -> Batch:
        """Submit many pairs as one batch (slot order preserved).

        Duplicate pairs within the batch coalesce exactly like duplicate
        submissions across clients: the first slot queues the simulation,
        the rest share its job.
        """
        slots: List[tuple] = []
        for workload, config in pairs:
            job, how = self.submit_classified(workload, config)
            slots.append((job.id, how))
        return self.store.create_batch(slots)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    async def _execute(
        self, job: Job, workload: Workload, config: SystemConfig
    ) -> None:
        """Run one queued job to a terminal state."""
        try:
            payload = (
                workload.spec if isinstance(workload, SyntheticWorkload) else workload
            )
            self.store.transition(job, "running")
            try:
                result, sim_seconds, summary = await self.executor.run(payload, config)
            except PairError as exc:
                self.store.transition(
                    job, "failed", error={"kind": exc.kind, "error": str(exc)}
                )
                return
            except asyncio.CancelledError:
                self.store.transition(
                    job,
                    "failed",
                    error={"kind": "cancelled", "error": "server drained mid-run"},
                )
                raise
            except Exception as exc:  # noqa: BLE001 - keep the server alive
                self.store.transition(
                    job, "failed", error={"kind": "internal", "error": repr(exc)}
                )
                return
            if self.cache is not None:
                # The worker already persisted the result to its shard;
                # absorbing makes it visible to this process immediately.
                self.cache.absorb(result)
            self.sims_executed += 1
            self.metrics.record_sim(result.system_name, sim_seconds)
            if summary is not None:
                self.metrics.record_telemetry(summary)
            self.store.transition(job, "done", result=result, sim_seconds=sim_seconds)
        finally:
            self._tasks.pop(job.id, None)

    # ------------------------------------------------------------------
    # status and maintenance
    # ------------------------------------------------------------------

    def batch_status(self, batch: Batch) -> Dict[str, object]:
        """Per-state counts and completion flag for one batch."""
        payload = batch.to_wire()
        states: Dict[str, int] = {}
        done = True
        for job_id, _ in batch.slots:
            job = self.store.get(job_id)
            state = job.state if job is not None else "unknown"
            states[state] = states.get(state, 0) + 1
            if job is None or not job.terminal:
                done = False
        payload["states"] = states
        payload["done"] = done
        payload["workers"] = self.executor.max_workers
        return payload

    def batch_results(self, batch: Batch) -> List[Dict[str, object]]:
        """Per-slot job views (results included), in submission order."""
        rows: List[Dict[str, object]] = []
        for job_id, how in batch.slots:
            job = self.store.get(job_id)
            if job is None:  # pragma: no cover - jobs are never evicted
                continue
            row = job.to_wire(include_result=True)
            row["how"] = how
            rows.append(row)
        return rows

    def metrics_wire(self) -> Dict[str, object]:
        """JSON-safe service metrics for the ``/metrics`` endpoint."""
        payload: Dict[str, object] = {
            "uptime_seconds": time.time() - self.started_at,
            "draining": self.draining,
            "workers": self.executor.max_workers,
            "jobs": self.store.counts(),
            "sims_executed": self.sims_executed,
            "cache_served": self.cache_served,
            "coalesced": self.coalesced,
            "sim_seconds_by_config": dict(self.metrics.sim_seconds_by_config),
            "sims_by_config": dict(self.metrics.sims_by_config),
            "telemetry_summaries": list(self.metrics.telemetry_summaries),
        }
        if self.cache is not None:
            stats = self.cache.stats()
            payload["cache"] = {
                "entries": stats.entries,
                "bytes_on_disk": stats.bytes_on_disk,
                "stale_entries": stats.stale_entries,
                "hits": self.cache.hits,
                "misses": self.cache.misses,
            }
        return payload

    # ------------------------------------------------------------------
    # drain
    # ------------------------------------------------------------------

    async def drain(self, grace: Optional[float] = None) -> Dict[str, object]:
        """Stop intake, wait for in-flight jobs, shut the pool down.

        ``grace`` bounds how long to wait for running jobs; stragglers
        are cancelled and reported as failed with kind ``"cancelled"``.
        Idempotent — a second drain just waits for the first to finish.
        Returns a summary of what happened to the in-flight work.
        """
        self.draining = True
        tasks = list(self._tasks.values())
        cancelled = 0
        if tasks:
            done, pending = await asyncio.wait(tasks, timeout=grace)
            for task in pending:
                task.cancel()
                cancelled += 1
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        await self.executor.close(wait=cancelled == 0)
        return {
            "drained": True,
            "waited_jobs": len(tasks),
            "cancelled_jobs": cancelled,
            "jobs": self.store.counts(),
        }
