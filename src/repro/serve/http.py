"""Stdlib-only asyncio HTTP/JSON front end for the job server.

A deliberately small HTTP/1.0-style server over raw asyncio streams —
one request per connection, JSON bodies, no external dependencies.  The
routes:

======================  ====================================================
``GET  /healthz``       liveness + draining flag
``POST /jobs``          submit one (workload, config) pair
``GET  /jobs/<id>``     job status (``?result=1`` embeds the SimResult)
``POST /batches``       submit ``{"pairs": [...]}`` as one batch
``GET  /batches/<id>``  per-state counts + ``done`` flag
``GET  /batches/<id>/results``  per-slot job rows with results
``GET  /events``        server-sent events (``?since=<seq>`` replays)
``GET  /metrics``       scheduler counters + cache/telemetry summary
``GET  /cache/stats``   result-cache store statistics
``POST /cache/refresh`` pick up shard entries written by other processes
``POST /cache/prune``   drop rev-stale cache entries
``POST /drain``         graceful shutdown (``{"grace": seconds}``)
``GET  /store``         full job-store snapshot (the drain artifact)
======================  ====================================================

Wire errors map to 400, unknown routes to 404, submissions during a
drain to 503.  The server never dies on a bad request.
"""

from __future__ import annotations

import asyncio
import json
import urllib.parse
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from .scheduler import DrainingError, Scheduler
from .wire import WireError, pair_from_wire, pairs_from_wire

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Seconds between SSE keepalive comments when no events arrive.
SSE_KEEPALIVE_SECONDS = 15.0


class ServeApp:
    """Routes HTTP requests onto a :class:`~repro.serve.scheduler.Scheduler`.

    ``store_path``, when given, receives a JSON snapshot of the job store
    on drain — the artifact CI uploads.  ``done`` is set once a drain
    completes so the hosting script knows to stop accepting connections.
    """

    def __init__(
        self, scheduler: Scheduler, store_path: Optional[Path] = None
    ) -> None:
        self.scheduler = scheduler
        self.store_path = Path(store_path) if store_path is not None else None
        self.done = asyncio.Event()
        self._drain_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one connection (one request, except SSE streams)."""
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, params, body = request
            if method == "GET" and path == "/events":
                await self._stream_events(writer, params)
                return
            status, payload = await self._dispatch(method, path, params, body)
            self._write_response(writer, status, payload)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # noqa: BLE001 - a request must not kill the server
            try:
                self._write_response(writer, 500, {"error": repr(exc)})
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
                # CancelledError: loop teardown right after a /drain
                # response — the socket is closing anyway.
                await writer.wait_closed()
            except (ConnectionError, RuntimeError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, list], bytes]]:
        """Parse one request; ``(method, path, query params, body)``."""
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        return method, path, urllib.parse.parse_qs(query), body

    def _write_response(
        self, writer: asyncio.StreamWriter, status: int, payload: Any
    ) -> None:
        """Queue a JSON response (connection: close)."""
        body = json.dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, params: Dict[str, list], body: bytes
    ) -> Tuple[int, Any]:
        """Resolve one request to ``(status, JSON payload)``."""
        sched = self.scheduler
        try:
            if path == "/healthz" and method == "GET":
                return 200, {"ok": True, "draining": sched.draining}
            if path == "/jobs" and method == "POST":
                workload, config = pair_from_wire(self._json_body(body))
                job, how = sched.submit_classified(workload, config)
                payload = job.to_wire(include_result=job.state == "cached")
                payload["how"] = how
                return 202 if how != "cached" else 200, payload
            if path.startswith("/jobs/") and method == "GET":
                job = sched.store.get(path[len("/jobs/"):])
                if job is None:
                    return 404, {"error": "no such job"}
                include = params.get("result", ["0"])[0] not in ("0", "")
                return 200, job.to_wire(include_result=include)
            if path == "/batches" and method == "POST":
                pairs = pairs_from_wire(self._json_body(body).get("pairs"))
                batch = sched.submit_batch(pairs)
                return 202, batch.to_wire()
            if path.startswith("/batches/") and method == "GET":
                batch_id, _, tail = path[len("/batches/"):].partition("/")
                batch = sched.store.get_batch(batch_id)
                if batch is None:
                    return 404, {"error": "no such batch"}
                if tail == "results":
                    return 200, {
                        "batch": sched.batch_status(batch),
                        "jobs": sched.batch_results(batch),
                    }
                if tail == "":
                    return 200, sched.batch_status(batch)
                return 404, {"error": "no such route"}
            if path == "/metrics" and method == "GET":
                return 200, sched.metrics_wire()
            if path == "/cache/stats" and method == "GET":
                if sched.cache is None:
                    return 404, {"error": "server runs without a cache"}
                stats = sched.cache.stats()
                return 200, {
                    "entries": stats.entries,
                    "bytes_on_disk": stats.bytes_on_disk,
                    "stale_entries": stats.stale_entries,
                    "entries_by_rev": {
                        str(rev): count
                        for rev, count in stats.entries_by_rev.items()
                    },
                    "hits": sched.cache.hits,
                    "misses": sched.cache.misses,
                }
            if path == "/cache/refresh" and method == "POST":
                if sched.cache is None:
                    return 404, {"error": "server runs without a cache"}
                return 200, {"new_entries": sched.cache.refresh()}
            if path == "/cache/prune" and method == "POST":
                if sched.cache is None:
                    return 404, {"error": "server runs without a cache"}
                return 200, {"dropped": sched.cache.prune()}
            if path == "/store" and method == "GET":
                return 200, sched.store.snapshot()
            if path == "/drain" and method == "POST":
                grace = None
                if body:
                    grace = self._json_body(body).get("grace")
                    grace = None if grace is None else float(grace)
                return 200, await self.drain(grace)
            if path in (
                "/healthz", "/jobs", "/batches", "/metrics", "/store", "/drain",
                "/cache/stats", "/cache/refresh", "/cache/prune",
            ):
                return 405, {"error": f"{method} not allowed on {path}"}
            return 404, {"error": "no such route"}
        except WireError as exc:
            return 400, {"error": str(exc)}
        except DrainingError as exc:
            return 503, {"error": str(exc)}

    @staticmethod
    def _json_body(body: bytes) -> Dict[str, Any]:
        """Decode a JSON object request body (400 on garbage)."""
        if not body:
            raise WireError("request body required")
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(f"bad JSON body: {exc}") from exc
        if not isinstance(data, dict):
            raise WireError("JSON body must be an object")
        return data

    # ------------------------------------------------------------------
    # server-sent events
    # ------------------------------------------------------------------

    async def _stream_events(
        self, writer: asyncio.StreamWriter, params: Dict[str, list]
    ) -> None:
        """Stream job transitions as SSE, replaying from ``?since=<seq>``."""
        store = self.scheduler.store
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        queue = store.subscribe()
        try:
            since = int(params.get("since", ["0"])[0] or 0)
            for event in store.events_since(since):
                self._write_event(writer, event)
            await writer.drain()
            while True:
                try:
                    event = await asyncio.wait_for(
                        queue.get(), timeout=SSE_KEEPALIVE_SECONDS
                    )
                except asyncio.TimeoutError:
                    writer.write(b": keepalive\n\n")
                else:
                    self._write_event(writer, event)
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            store.unsubscribe(queue)

    @staticmethod
    def _write_event(writer: asyncio.StreamWriter, event: Dict[str, object]) -> None:
        """Queue one SSE frame (``id`` carries the resume sequence)."""
        writer.write(
            f"id: {event['seq']}\ndata: {json.dumps(event)}\n\n".encode("utf-8")
        )

    # ------------------------------------------------------------------
    # drain
    # ------------------------------------------------------------------

    async def drain(self, grace: Optional[float] = None) -> Dict[str, object]:
        """Drain the scheduler once; concurrent calls share the result."""
        if self._drain_task is None:
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain(grace)
            )
        return await asyncio.shield(self._drain_task)

    async def _drain(self, grace: Optional[float]) -> Dict[str, object]:
        """The single drain pass behind :meth:`drain`."""
        summary = await self.scheduler.drain(grace)
        if self.store_path is not None:
            self.store_path.parent.mkdir(parents=True, exist_ok=True)
            self.store_path.write_text(
                json.dumps(self.scheduler.store.snapshot(), indent=2) + "\n",
                encoding="utf-8",
            )
            summary["store_path"] = str(self.store_path)
        self.done.set()
        return summary


async def start_server(
    app: ServeApp, host: str = "127.0.0.1", port: int = 0
) -> asyncio.base_events.Server:
    """Bind ``app`` on ``host:port`` (port 0 = ephemeral) and start serving."""
    return await asyncio.start_server(app.handle, host=host, port=port)
