"""Simulation-as-a-service: an async job server over the result cache.

``repro.serve`` turns the repository's simulation stack into a long-
running service.  Clients submit single (workload, config) pairs or
whole sweep batches over HTTP/JSON; the server content-addresses every
pair with the same digests the :class:`~repro.experiments.common.
ResultCache` uses and resolves it through three tiers — coalesce onto an
identical in-flight job, serve from the shard-file cache, or simulate on
the ``repro.parallel`` worker pool.  Results stream back via polling or
server-sent events, and ``POST /drain`` (or SIGTERM to
``scripts/serve.py``) performs a graceful shutdown that persists the job
store.

The moving parts:

* :mod:`~repro.serve.wire` — JSON wire formats; digests are recomputed
  server-side, never trusted from clients.
* :mod:`~repro.serve.jobs` — :class:`Job`/:class:`Batch` lifecycle and
  the event ring buffer behind ``/events``.
* :mod:`~repro.serve.executor` — :class:`PairExecutor`, the asyncio
  bridge onto the process pool with per-job timeouts and bounded crash
  retries.
* :mod:`~repro.serve.scheduler` — dedup/coalesce/dispatch plus graceful
  drain.
* :mod:`~repro.serve.http` — the stdlib asyncio HTTP front end.
* :mod:`~repro.serve.client` — the blocking client library used by
  ``scripts/submit.py`` and :func:`repro.explore.remote.remote_runner`.

Because cache keys are content-addressed and simulations deterministic,
a sweep driven through a server is bit-identical to the same sweep run
locally, and immediate resubmission is served entirely from cache.
"""

from .client import RemoteError, ServeClient
from .executor import PairCrash, PairError, PairExecutor, PairTimeout
from .http import ServeApp, start_server
from .jobs import ACTIVE_STATES, JOB_STATES, Batch, Job, JobStore
from .scheduler import DrainingError, Scheduler
from .wire import (
    WireError,
    config_from_wire,
    pair_from_wire,
    pair_to_wire,
    pairs_from_wire,
    spec_from_wire,
    workload_from_wire,
    workload_to_wire,
)

__all__ = [
    "ACTIVE_STATES",
    "Batch",
    "DrainingError",
    "JOB_STATES",
    "Job",
    "JobStore",
    "PairCrash",
    "PairError",
    "PairExecutor",
    "PairTimeout",
    "RemoteError",
    "Scheduler",
    "ServeApp",
    "ServeClient",
    "WireError",
    "config_from_wire",
    "pair_from_wire",
    "pair_to_wire",
    "pairs_from_wire",
    "spec_from_wire",
    "start_server",
    "workload_from_wire",
    "workload_to_wire",
]
