"""Throughput accounting for suite runs.

A tiny process-local aggregator: the suite runners record how many
(workload, config) pairs each batch covered, how many came from the
cache, and how much simulation time each configuration consumed; the
experiment scripts render one summary line per experiment from it.
Reset it between experiments to scope the report.
"""

from __future__ import annotations

from typing import Dict, List


class SuiteMetrics:
    """Accumulates batch/throughput counters for one reporting window."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Clear all counters (start a new reporting window)."""
        self.total_pairs = 0
        self.cached_pairs = 0
        self.wall_seconds = 0.0
        self.workers = 1
        self.configs: List[str] = []
        self.sim_seconds_by_config: Dict[str, float] = {}
        self.sims_by_config: Dict[str, int] = {}
        self.telemetry_summaries: List[Dict[str, object]] = []

    # ------------------------------------------------------------------

    def record_batch(
        self,
        configs: List[str],
        total: int,
        cached: int,
        wall: float,
        workers: int,
    ) -> None:
        """Record one :func:`~repro.experiments.common.run_suites` batch."""
        self.total_pairs += total
        self.cached_pairs += cached
        self.wall_seconds += wall
        self.workers = max(self.workers, workers)
        for name in configs:
            if name not in self.configs:
                self.configs.append(name)

    def record_sim(self, config_name: str, sim_seconds: float) -> None:
        """Record one executed simulation's wall time for ``config_name``."""
        self.sim_seconds_by_config[config_name] = (
            self.sim_seconds_by_config.get(config_name, 0.0) + sim_seconds
        )
        self.sims_by_config[config_name] = self.sims_by_config.get(config_name, 0) + 1

    def record_telemetry(self, summary: Dict[str, object]) -> None:
        """Absorb one run's telemetry digest (see ``Telemetry.summary``).

        Worker processes produce these under ``REPRO_PROFILE=1`` and ship
        them back with the result; the coordinator (or the serial loop)
        records them here so the end-of-experiment report can rank hot
        runs without holding full timelines in memory.
        """
        self.telemetry_summaries.append(dict(summary))

    # ------------------------------------------------------------------

    @property
    def executed_pairs(self) -> int:
        """Pairs that actually simulated (total minus cache hits)."""
        return self.total_pairs - self.cached_pairs

    @property
    def hit_rate(self) -> float:
        """Fraction of pairs served from the cache."""
        if self.total_pairs == 0:
            return 0.0
        return self.cached_pairs / self.total_pairs

    @property
    def sims_per_second(self) -> float:
        """Executed simulations per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.executed_pairs / self.wall_seconds

    def report(self, per_config: bool = True) -> str:
        """Human-readable summary of the current window."""
        if self.total_pairs == 0:
            return "no suite runs recorded"
        lines = [
            f"{self.total_pairs} sims in {self.wall_seconds:.1f}s wall "
            f"({self.executed_pairs} executed, {self.cached_pairs} cached, "
            f"hit rate {self.hit_rate:.0%}) — {self.sims_per_second:.1f} sims/s "
            f"on {self.workers} worker{'s' if self.workers != 1 else ''}"
        ]
        if per_config and self.sim_seconds_by_config:
            for name, seconds in sorted(
                self.sim_seconds_by_config.items(), key=lambda item: -item[1]
            ):
                count = self.sims_by_config.get(name, 0)
                lines.append(f"  {name}: {count} sims, {seconds:.1f}s sim time")
        if self.telemetry_summaries:
            lines.append(
                f"  profiled {len(self.telemetry_summaries)} runs; "
                "hottest by peak pipe occupancy:"
            )
            ranked = sorted(
                self.telemetry_summaries,
                key=lambda s: -float(s.get("peak_pipe_occupancy", 0.0)),
            )
            for summary in ranked[:5]:
                lines.append(
                    f"    {summary.get('workload', '?')} on "
                    f"{summary.get('system', '?')}: "
                    f"{summary.get('peak_pipe', '-') or '-'} at "
                    f"{float(summary.get('peak_pipe_occupancy', 0.0)):.0%}, "
                    f"quiesce tail "
                    f"{float(summary.get('quiesce_tail_cycles', 0.0)):,.0f} cyc"
                )
        return "\n".join(lines)


#: Process-wide aggregator the suite runners feed.
GLOBAL_METRICS = SuiteMetrics()
