"""Process-pool runner for (workload, configuration) simulation fan-out.

The unit of work is one (workload, config) pair.  The coordinating
process checks the result cache before dispatch, deduplicates pairs that
appear under several output slots (experiments often reuse one baseline
configuration), and merges worker results back into the per-config
``{workload name: SimResult}`` dicts the serial path returns.

Worker processes keep a module-level ``{config digest: Simulator}`` table
so a configuration's system model is built once per worker, not once per
workload, and persist every finished result to a per-process cache shard
(``results-w<pid>.jsonl``) in the shared cache directory — concurrency-
safe by construction, and crash-safe: results survive even if the
coordinating process dies before the merge.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import SystemConfig
from ..sim.result import SimResult
from ..sim.simulator import Simulator
from ..telemetry import Telemetry
from ..workloads.suite import suite_workloads
from ..workloads.synthetic import SyntheticWorkload, WorkloadSpec
from ..workloads.trace import Workload


def profiling_enabled() -> bool:
    """True when ``REPRO_PROFILE`` asks runs to carry a telemetry probe.

    Read per task (not cached) so scripts can flip profiling on after
    import; worker processes inherit the coordinator's environment.
    """
    return os.environ.get("REPRO_PROFILE", "") not in ("", "0")

# ----------------------------------------------------------------------
# Worker-process state
# ----------------------------------------------------------------------

#: Per-worker simulator table: config digest -> Simulator (built once).
_WORKER_SIMULATORS: Dict[str, Simulator] = {}

#: Per-worker cache shard (None when caching is disabled for the run).
_WORKER_CACHE = None


def _init_worker(cache_dir: Optional[str]) -> None:
    """Process-pool initializer: open this worker's cache shard."""
    global _WORKER_CACHE
    _WORKER_SIMULATORS.clear()
    if cache_dir is None:
        _WORKER_CACHE = None
        return
    from ..experiments.common import ResultCache

    _WORKER_CACHE = ResultCache(cache_dir, shard=f"w{os.getpid()}")


def _revive_workload(payload) -> Workload:
    """Rebuild the workload a task was shipped with."""
    if isinstance(payload, WorkloadSpec):
        return SyntheticWorkload(payload)
    return payload


def _run_task(payload, config: SystemConfig) -> Tuple[SimResult, float, Optional[dict]]:
    """Worker entry point: simulate one pair, reusing per-config simulators.

    Returns ``(result, sim_seconds, telemetry_summary)``; the summary is
    None unless profiling is enabled (``REPRO_PROFILE=1``), in which case
    the run carries a probe and ships its compact digest back to the
    coordinator for :data:`~repro.parallel.metrics.GLOBAL_METRICS`.
    """
    workload = _revive_workload(payload)
    digest = config.digest()
    simulator = _WORKER_SIMULATORS.get(digest)
    profile = profiling_enabled()
    if simulator is None:
        simulator = Simulator(config, telemetry=Telemetry() if profile else None)
        _WORKER_SIMULATORS[digest] = simulator
    elif profile and simulator.telemetry is None:
        simulator.telemetry = Telemetry()
        simulator.system.attach_telemetry(simulator.telemetry)
    start = time.time()
    result = simulator.run(workload)
    elapsed = time.time() - start
    if _WORKER_CACHE is not None:
        _WORKER_CACHE.put(result)
    summary = simulator.telemetry.summary() if profile and simulator.telemetry else None
    return result, elapsed, summary


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PairFailure:
    """One (workload, config) pair that could not produce a result.

    ``kind`` is ``"exception"`` (the simulation raised — deterministic,
    never retried), ``"crash"`` (the worker process died and the pair
    exhausted its retry budget), or ``"timeout"`` (the pair exceeded the
    per-pair wall-clock limit).  ``error`` is the exception repr or a
    description of the crash/timeout.
    """

    key: str
    workload_name: str
    config_name: str
    kind: str
    error: str


class SuiteRunError(RuntimeError):
    """Raised when pairs failed and no ``failures`` sink was provided."""

    def __init__(self, failures: Sequence[PairFailure]) -> None:
        self.failures = list(failures)
        lines = ", ".join(
            f"{item.workload_name} on {item.config_name} [{item.kind}]"
            for item in self.failures[:5]
        )
        more = "" if len(self.failures) <= 5 else f" (+{len(self.failures) - 5} more)"
        super().__init__(f"{len(self.failures)} pair(s) failed: {lines}{more}")


#: Seconds between coordinator wake-ups while futures are outstanding —
#: the granularity of per-pair timeout checks and crash observation.
_POLL_SECONDS = 0.1


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Forcefully stop a pool whose workers are hung or poisoned.

    ``ProcessPoolExecutor`` has no public kill switch: ``shutdown`` waits
    for running tasks, which never return when a worker is stuck.
    Terminating the worker processes flips the pool into its broken state,
    after which shutdown returns immediately.
    """
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.terminate()
        except OSError:  # pragma: no cover - already dead
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def resolve_workers(max_workers: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``REPRO_WORKERS``, else cores.

    Any value below one is clamped to one (the serial path); a malformed
    ``REPRO_WORKERS`` is treated as unset rather than crashing a bench.
    """
    if max_workers is not None:
        return max(1, int(max_workers))
    env = os.environ.get("REPRO_WORKERS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def _shippable(workload: Workload):
    """The payload to send a worker for ``workload``, or None if unpicklable.

    Synthetic workloads travel as their spec (tiny, always picklable) and
    are rebuilt worker-side; other Workload subclasses are shipped whole
    when pickle accepts them, and fall back to in-process simulation when
    it does not.
    """
    if isinstance(workload, SyntheticWorkload):
        return workload.spec
    try:
        pickle.dumps(workload)
    except Exception:
        return None
    return workload


def run_suite_parallel(
    configs: Sequence[SystemConfig],
    workloads: Optional[Sequence[Workload]] = None,
    max_workers: Optional[int] = None,
    cache=None,
    progress=None,
    stats: Optional[Dict[str, int]] = None,
    metrics=None,
    timeout: Optional[float] = None,
    crash_retries: int = 2,
    failures: Optional[List[PairFailure]] = None,
) -> List[Dict[str, SimResult]]:
    """Simulate every (workload, config) pair over a process pool.

    Returns one ``{workload name: SimResult}`` dict per configuration in
    input order — the same shape the serial :func:`~repro.experiments.
    common.run_suite` produces for each config, and (because simulations
    are deterministic) the same values.

    ``cache`` follows :class:`~repro.experiments.common.ResultCache`
    semantics: hits are returned without dispatch, worker processes
    persist misses to per-process shards of the same cache directory, and
    the coordinator absorbs returned results in memory.  ``progress``,
    when given, is called as ``progress(done, total, result)`` after each
    simulated pair.  ``stats``, when given a dict, receives a
    ``"cached_slots"`` entry: the number of output slots filled without a
    dedicated simulation (cache hits plus duplicate-pair fan-outs), which
    the batch accounting needs because duplicated configurations make the
    slot count exceed the unique-pair count.  ``metrics``, when given, is
    a private :class:`~repro.parallel.metrics.SuiteMetrics` sink that
    mirrors the per-simulation records the process-wide ``GLOBAL_METRICS``
    receives (see :func:`repro.experiments.common.run_suites`).

    Failure handling: a pair whose simulation raises, whose worker
    process dies (after ``crash_retries`` pool rebuilds), or that runs
    longer than ``timeout`` seconds (measured from when a worker picks it
    up) becomes a structured :class:`PairFailure` instead of stalling or
    crashing the whole batch.  With a ``failures`` list supplied, the
    failures are appended there and the surviving pairs' results are
    returned (failed pairs are simply absent from their dicts); without
    one, the batch still runs to completion and then raises
    :class:`SuiteRunError` listing every failed pair.  A timeout has to
    kill the worker pool (hung workers cannot be cancelled), so pairs
    that were mid-flight on other workers restart on a fresh pool — they
    are not charged a crash retry.
    """
    configs = list(configs)
    workload_list = list(workloads) if workloads is not None else suite_workloads()
    workers = resolve_workers(max_workers)

    merged: List[Dict[str, SimResult]] = [dict() for _ in configs]
    # pair key -> list of (config slot, workload name) output positions
    sinks: Dict[str, List[Tuple[int, str]]] = {}
    # pair key -> cached result, fanned out only after the scan completes
    # (a duplicate slot may register in sinks[key] after the cache hit)
    resolved: Dict[str, SimResult] = {}
    # pair key -> (payload, config) for pairs that must be simulated
    pending: Dict[str, Tuple[object, SystemConfig]] = {}
    local: List[Tuple[str, Workload, SystemConfig]] = []

    for slot, config in enumerate(configs):
        config_digest = config.digest()
        for workload in workload_list:
            key = f"{workload.digest()}##{config_digest}"
            if key in sinks:
                sinks[key].append((slot, workload.name))
                continue
            sinks[key] = [(slot, workload.name)]
            cached = cache.get(workload.digest(), config_digest) if cache is not None else None
            if cached is not None:
                resolved[key] = cached
                continue
            payload = _shippable(workload)
            if payload is None:
                local.append((key, workload, config))
            else:
                pending[key] = (payload, config)

    for key, cached in resolved.items():
        _fan_out(merged, sinks[key], cached)

    total = len(pending) + len(local)
    done = 0
    if stats is not None:
        # Output slots served without a dedicated simulation: cache hits
        # plus duplicate slots of deduplicated pairs.
        stats["cached_slots"] = len(configs) * len(workload_list) - total

    def _record(key: str, result: SimResult) -> None:
        nonlocal done
        if cache is not None:
            cache.absorb(result)
        _fan_out(merged, sinks[key], result)
        done += 1
        if progress is not None:
            progress(done, total, result)

    collected: List[PairFailure] = []

    def _fail(key: str, config_name: str, kind: str, error: str) -> None:
        collected.append(
            PairFailure(
                key=key,
                workload_name=sinks[key][0][1],
                config_name=config_name,
                kind=kind,
                error=error,
            )
        )

    if pending:
        from .metrics import GLOBAL_METRICS

        cache_dir = str(cache.directory) if cache is not None else None
        pool_workers = min(workers, len(pending))
        outstanding: Dict[str, Tuple[object, SystemConfig]] = dict(pending)
        attempts: Dict[str, int] = {}
        # Crash suspects awaiting an isolation round (see the broken-pool
        # handler below): run one at a time so a repeat break identifies
        # the culprit unambiguously instead of charging innocent pairs.
        suspects: List[str] = []
        while outstanding:
            suspects = [key for key in suspects if key in outstanding]
            round_keys = suspects[:1] if suspects else list(outstanding)
            pool = ProcessPoolExecutor(
                max_workers=min(pool_workers, len(round_keys)),
                initializer=_init_worker,
                initargs=(cache_dir,),
            )
            futures = {
                pool.submit(_run_task, *outstanding[key]): key
                for key in round_keys
            }
            started: Dict[object, float] = {}
            rebuild = False
            remaining = set(futures)
            while remaining and not rebuild:
                finished, remaining = wait(
                    remaining, timeout=_POLL_SECONDS, return_when=FIRST_COMPLETED
                )
                now = time.time()
                for future in remaining:
                    if future not in started and future.running():
                        started[future] = now
                broken = False
                for future in finished:
                    key = futures[future]
                    if key not in outstanding:
                        continue
                    try:
                        result, sim_seconds, summary = future.result()
                    except BrokenProcessPool:
                        broken = True
                        continue
                    except Exception as exc:  # noqa: BLE001 - surfaced per pair
                        _fail(key, outstanding[key][1].name, "exception", repr(exc))
                        outstanding.pop(key, None)
                        if key in suspects:
                            suspects.remove(key)
                        continue
                    GLOBAL_METRICS.record_sim(result.system_name, sim_seconds)
                    if metrics is not None:
                        metrics.record_sim(result.system_name, sim_seconds)
                    if summary is not None:
                        GLOBAL_METRICS.record_telemetry(summary)
                    _record(key, result)
                    outstanding.pop(key, None)
                    if key in suspects:
                        suspects.remove(key)
                if broken:
                    # A worker died and took the pool with it.  The pairs
                    # observed running are the crash candidates; queued
                    # pairs restart for free.  A single candidate is
                    # charged a retry; several are ambiguous (any of them
                    # may be the killer), so nobody is charged — they are
                    # queued for one-at-a-time isolation rounds where a
                    # repeat break is unambiguous.
                    culprits = {
                        futures[item]
                        for item in started
                        if futures[item] in outstanding
                    } or {key for key in round_keys if key in outstanding}
                    if len(culprits) == 1:
                        culprit = next(iter(culprits))
                        attempts[culprit] = attempts.get(culprit, 0) + 1
                        if attempts[culprit] > crash_retries:
                            _fail(
                                culprit,
                                outstanding[culprit][1].name,
                                "crash",
                                f"worker process died ({attempts[culprit]} attempts)",
                            )
                            outstanding.pop(culprit, None)
                            if culprit in suspects:
                                suspects.remove(culprit)
                    else:
                        for key in sorted(culprits):
                            if key not in suspects:
                                suspects.append(key)
                    rebuild = True
                    continue
                if timeout is not None:
                    expired = [
                        future
                        for future in remaining
                        if future in started and now - started[future] > timeout
                    ]
                    for future in expired:
                        key = futures[future]
                        _fail(
                            key,
                            outstanding[key][1].name,
                            "timeout",
                            f"exceeded {timeout:g}s wall-clock limit",
                        )
                        outstanding.pop(key, None)
                    if expired:
                        rebuild = True
            if rebuild:
                _terminate_pool(pool)
            else:
                pool.shutdown(wait=True)

    # Unpicklable workloads run in-process (rare; custom Workload objects).
    for key, workload, config in local:
        from .metrics import GLOBAL_METRICS

        telemetry = Telemetry() if profiling_enabled() else None
        start = time.time()
        try:
            result = Simulator(config, telemetry=telemetry).run(workload)
        except Exception as exc:  # noqa: BLE001 - surfaced per pair
            _fail(key, config.name, "exception", repr(exc))
            continue
        sim_seconds = time.time() - start
        GLOBAL_METRICS.record_sim(result.system_name, sim_seconds)
        if metrics is not None:
            metrics.record_sim(result.system_name, sim_seconds)
        if telemetry is not None:
            GLOBAL_METRICS.record_telemetry(telemetry.summary())
        if cache is not None:
            cache.put(result)
        _fan_out(merged, sinks[key], result)
        done += 1
        if progress is not None:
            progress(done, total, result)

    if collected:
        if failures is not None:
            failures.extend(collected)
        else:
            raise SuiteRunError(collected)

    # Re-key each dict into workload order so iteration order matches the
    # serial path exactly.
    names = [workload.name for workload in workload_list]
    return [
        {name: per_config[name] for name in names if name in per_config}
        for per_config in merged
    ]


def _fan_out(merged: List[Dict[str, SimResult]], positions, result: SimResult) -> None:
    """Write one result into every (config slot, workload name) it serves."""
    for slot, name in positions:
        merged[slot][name] = result
