"""Process-pool runner for (workload, configuration) simulation fan-out.

The unit of work is one (workload, config) pair.  The coordinating
process checks the result cache before dispatch, deduplicates pairs that
appear under several output slots (experiments often reuse one baseline
configuration), and merges worker results back into the per-config
``{workload name: SimResult}`` dicts the serial path returns.

Worker processes keep a module-level ``{config digest: Simulator}`` table
so a configuration's system model is built once per worker, not once per
workload, and persist every finished result to a per-process cache shard
(``results-w<pid>.jsonl``) in the shared cache directory — concurrency-
safe by construction, and crash-safe: results survive even if the
coordinating process dies before the merge.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import SystemConfig
from ..sim.result import SimResult
from ..sim.simulator import Simulator
from ..telemetry import Telemetry
from ..workloads.suite import suite_workloads
from ..workloads.synthetic import SyntheticWorkload, WorkloadSpec
from ..workloads.trace import Workload


def profiling_enabled() -> bool:
    """True when ``REPRO_PROFILE`` asks runs to carry a telemetry probe.

    Read per task (not cached) so scripts can flip profiling on after
    import; worker processes inherit the coordinator's environment.
    """
    return os.environ.get("REPRO_PROFILE", "") not in ("", "0")

# ----------------------------------------------------------------------
# Worker-process state
# ----------------------------------------------------------------------

#: Per-worker simulator table: config digest -> Simulator (built once).
_WORKER_SIMULATORS: Dict[str, Simulator] = {}

#: Per-worker cache shard (None when caching is disabled for the run).
_WORKER_CACHE = None


def _init_worker(cache_dir: Optional[str]) -> None:
    """Process-pool initializer: open this worker's cache shard."""
    global _WORKER_CACHE
    _WORKER_SIMULATORS.clear()
    if cache_dir is None:
        _WORKER_CACHE = None
        return
    from ..experiments.common import ResultCache

    _WORKER_CACHE = ResultCache(cache_dir, shard=f"w{os.getpid()}")


def _revive_workload(payload) -> Workload:
    """Rebuild the workload a task was shipped with."""
    if isinstance(payload, WorkloadSpec):
        return SyntheticWorkload(payload)
    return payload


def _run_task(payload, config: SystemConfig) -> Tuple[SimResult, float, Optional[dict]]:
    """Worker entry point: simulate one pair, reusing per-config simulators.

    Returns ``(result, sim_seconds, telemetry_summary)``; the summary is
    None unless profiling is enabled (``REPRO_PROFILE=1``), in which case
    the run carries a probe and ships its compact digest back to the
    coordinator for :data:`~repro.parallel.metrics.GLOBAL_METRICS`.
    """
    workload = _revive_workload(payload)
    digest = config.digest()
    simulator = _WORKER_SIMULATORS.get(digest)
    profile = profiling_enabled()
    if simulator is None:
        simulator = Simulator(config, telemetry=Telemetry() if profile else None)
        _WORKER_SIMULATORS[digest] = simulator
    elif profile and simulator.telemetry is None:
        simulator.telemetry = Telemetry()
        simulator.system.attach_telemetry(simulator.telemetry)
    start = time.time()
    result = simulator.run(workload)
    elapsed = time.time() - start
    if _WORKER_CACHE is not None:
        _WORKER_CACHE.put(result)
    summary = simulator.telemetry.summary() if profile and simulator.telemetry else None
    return result, elapsed, summary


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------


def resolve_workers(max_workers: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``REPRO_WORKERS``, else cores.

    Any value below one is clamped to one (the serial path); a malformed
    ``REPRO_WORKERS`` is treated as unset rather than crashing a bench.
    """
    if max_workers is not None:
        return max(1, int(max_workers))
    env = os.environ.get("REPRO_WORKERS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def _shippable(workload: Workload):
    """The payload to send a worker for ``workload``, or None if unpicklable.

    Synthetic workloads travel as their spec (tiny, always picklable) and
    are rebuilt worker-side; other Workload subclasses are shipped whole
    when pickle accepts them, and fall back to in-process simulation when
    it does not.
    """
    if isinstance(workload, SyntheticWorkload):
        return workload.spec
    try:
        pickle.dumps(workload)
    except Exception:
        return None
    return workload


def run_suite_parallel(
    configs: Sequence[SystemConfig],
    workloads: Optional[Sequence[Workload]] = None,
    max_workers: Optional[int] = None,
    cache=None,
    progress=None,
    stats: Optional[Dict[str, int]] = None,
    metrics=None,
) -> List[Dict[str, SimResult]]:
    """Simulate every (workload, config) pair over a process pool.

    Returns one ``{workload name: SimResult}`` dict per configuration in
    input order — the same shape the serial :func:`~repro.experiments.
    common.run_suite` produces for each config, and (because simulations
    are deterministic) the same values.

    ``cache`` follows :class:`~repro.experiments.common.ResultCache`
    semantics: hits are returned without dispatch, worker processes
    persist misses to per-process shards of the same cache directory, and
    the coordinator absorbs returned results in memory.  ``progress``,
    when given, is called as ``progress(done, total, result)`` after each
    simulated pair.  ``stats``, when given a dict, receives a
    ``"cached_slots"`` entry: the number of output slots filled without a
    dedicated simulation (cache hits plus duplicate-pair fan-outs), which
    the batch accounting needs because duplicated configurations make the
    slot count exceed the unique-pair count.  ``metrics``, when given, is
    a private :class:`~repro.parallel.metrics.SuiteMetrics` sink that
    mirrors the per-simulation records the process-wide ``GLOBAL_METRICS``
    receives (see :func:`repro.experiments.common.run_suites`).
    """
    configs = list(configs)
    workload_list = list(workloads) if workloads is not None else suite_workloads()
    workers = resolve_workers(max_workers)

    merged: List[Dict[str, SimResult]] = [dict() for _ in configs]
    # pair key -> list of (config slot, workload name) output positions
    sinks: Dict[str, List[Tuple[int, str]]] = {}
    # pair key -> cached result, fanned out only after the scan completes
    # (a duplicate slot may register in sinks[key] after the cache hit)
    resolved: Dict[str, SimResult] = {}
    # pair key -> (payload, config) for pairs that must be simulated
    pending: Dict[str, Tuple[object, SystemConfig]] = {}
    local: List[Tuple[str, Workload, SystemConfig]] = []

    for slot, config in enumerate(configs):
        config_digest = config.digest()
        for workload in workload_list:
            key = f"{workload.digest()}##{config_digest}"
            if key in sinks:
                sinks[key].append((slot, workload.name))
                continue
            sinks[key] = [(slot, workload.name)]
            cached = cache.get(workload.digest(), config_digest) if cache is not None else None
            if cached is not None:
                resolved[key] = cached
                continue
            payload = _shippable(workload)
            if payload is None:
                local.append((key, workload, config))
            else:
                pending[key] = (payload, config)

    for key, cached in resolved.items():
        _fan_out(merged, sinks[key], cached)

    total = len(pending) + len(local)
    done = 0
    if stats is not None:
        # Output slots served without a dedicated simulation: cache hits
        # plus duplicate slots of deduplicated pairs.
        stats["cached_slots"] = len(configs) * len(workload_list) - total

    def _record(key: str, result: SimResult) -> None:
        nonlocal done
        if cache is not None:
            cache.absorb(result)
        _fan_out(merged, sinks[key], result)
        done += 1
        if progress is not None:
            progress(done, total, result)

    if pending:
        cache_dir = str(cache.directory) if cache is not None else None
        pool_workers = min(workers, len(pending))
        with ProcessPoolExecutor(
            max_workers=pool_workers,
            initializer=_init_worker,
            initargs=(cache_dir,),
        ) as pool:
            futures = {
                pool.submit(_run_task, payload, config): key
                for key, (payload, config) in pending.items()
            }
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in finished:
                    result, sim_seconds, summary = future.result()
                    from .metrics import GLOBAL_METRICS

                    GLOBAL_METRICS.record_sim(result.system_name, sim_seconds)
                    if metrics is not None:
                        metrics.record_sim(result.system_name, sim_seconds)
                    if summary is not None:
                        GLOBAL_METRICS.record_telemetry(summary)
                    _record(futures[future], result)

    # Unpicklable workloads run in-process (rare; custom Workload objects).
    for key, workload, config in local:
        from .metrics import GLOBAL_METRICS

        telemetry = Telemetry() if profiling_enabled() else None
        start = time.time()
        result = Simulator(config, telemetry=telemetry).run(workload)
        sim_seconds = time.time() - start
        GLOBAL_METRICS.record_sim(result.system_name, sim_seconds)
        if metrics is not None:
            metrics.record_sim(result.system_name, sim_seconds)
        if telemetry is not None:
            GLOBAL_METRICS.record_telemetry(telemetry.summary())
        if cache is not None:
            cache.put(result)
        _fan_out(merged, sinks[key], result)
        done += 1
        if progress is not None:
            progress(done, total, result)

    # Re-key each dict into workload order so iteration order matches the
    # serial path exactly.
    names = [workload.name for workload in workload_list]
    return [
        {name: per_config[name] for name in names if name in per_config}
        for per_config in merged
    ]


def _fan_out(merged: List[Dict[str, SimResult]], positions, result: SimResult) -> None:
    """Write one result into every (config slot, workload name) it serves."""
    for slot, name in positions:
        merged[slot][name] = result
