"""Parallel suite execution.

Independent (workload, configuration) simulations are embarrassingly
parallel; this package fans them out over a :class:`concurrent.futures.
ProcessPoolExecutor` while keeping the serial path's semantics:

* results are bit-identical to the serial runner (simulations are
  deterministic and share no state across processes);
* each worker process builds at most one :class:`~repro.sim.simulator.
  Simulator` per configuration digest and reuses it across workloads,
  mirroring the serial loop's simulator reuse;
* the shared disk cache (:class:`~repro.experiments.common.ResultCache`)
  is consulted before dispatch and written concurrently via per-process
  shard files, so interrupted runs still keep every finished result.

Worker-count policy lives in :func:`resolve_workers`: an explicit
argument wins, then the ``REPRO_WORKERS`` environment variable, then the
machine's core count.  ``REPRO_WORKERS=1`` disables fan-out entirely.

Throughput accounting (sims/sec, cache hit rate, per-config wall time)
is aggregated in :data:`repro.parallel.metrics.GLOBAL_METRICS` and
rendered by the experiment scripts after each run.
"""

from .metrics import GLOBAL_METRICS, SuiteMetrics
from .runner import (
    PairFailure,
    SuiteRunError,
    profiling_enabled,
    resolve_workers,
    run_suite_parallel,
)

__all__ = [
    "GLOBAL_METRICS",
    "PairFailure",
    "SuiteMetrics",
    "SuiteRunError",
    "profiling_enabled",
    "resolve_workers",
    "run_suite_parallel",
]
