"""Conservation invariants over simulation results and live engine state.

The timing model is trusted only because its counters balance: every load
and store must be accounted for exactly once at every level it touches.
:func:`check_result` verifies those conservation laws on any finished
:class:`~repro.sim.result.SimResult` — they are exact identities of the
request path in :mod:`repro.core.memsys`, not tolerance bands:

* every store and every L1-missing load is routed exactly once, so
  ``page_local + page_remote == l1.misses + stores``;
* the write-through L1 sees every load as a lookup and every store as a
  fused write touch, so ``l1.accesses == loads + l1.write_hits`` and
  ``l1.write_hits + l1.bypasses == stores`` (a store is a write hit when
  the line was resident, a bypass otherwise — never a lookup miss);
* the remote routing split mirrors the memsys counters exactly, so
  ``page_remote == remote_loads + remote_stores``;
* the write-allocate L2 takes every store as a write lookup, so
  ``l2.write_hits + l2.write_misses == stores``, and sees every routed
  request except L1.5 *load* hits, so
  ``l2.accesses == l1.misses + stores - (l15.hits - l15.write_hits)``;
* every L2 miss fetches one line and every L2 eviction writes one line,
  so DRAM array traffic is ``l2 counters x line_bytes`` plus migration;
* a system that never routed a request remotely carried no link traffic.

:func:`check_live_system` inspects a :class:`~repro.core.gpu.GPUSystem`
mid-run (cache set occupancy vs associativity, CTA slot accounting,
bandwidth-pipe bucket occupancy vs capacity); :class:`LiveValidator`
packages it for the engine's opt-in kernel-boundary hook
(:meth:`~repro.core.gpu.GPUSystem.attach_validator`).  All checks are
read-only, so simulation results are bit-identical with or without them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.memsys import LINE_BYTES, REQUEST_HEADER_BYTES
from ..sim.result import SimResult


@dataclass(frozen=True)
class Violation:
    """One failed invariant: which check, and the numbers that broke it."""

    check: str
    message: str

    def __str__(self) -> str:
        return f"{self.check}: {self.message}"


class InvariantError(RuntimeError):
    """Raised by :class:`LiveValidator` when a live check fails."""

    def __init__(self, violations: List[Violation]) -> None:
        self.violations = violations
        super().__init__(
            "; ".join(str(violation) for violation in violations) or "invariant violation"
        )


# ----------------------------------------------------------------------
# Result invariants (conservation laws on a finished SimResult)
# ----------------------------------------------------------------------


def check_result(result: SimResult, config=None) -> List[Violation]:
    """All conservation violations in ``result`` (empty list == clean).

    ``config``, when given the :class:`~repro.core.config.SystemConfig`
    the result was produced with, enables the topology-aware link-traffic
    bounds; without it only configuration-independent laws are checked.
    """
    violations: List[Violation] = []

    def fail(check: str, message: str) -> None:
        violations.append(Violation(check=check, message=message))

    counters = {
        "cycles": result.cycles,
        "kernels": result.kernels,
        "ctas": result.ctas,
        "records": result.records,
        "loads": result.loads,
        "stores": result.stores,
        "remote_loads": result.remote_loads,
        "remote_stores": result.remote_stores,
        "dram_bytes_read": result.dram_bytes_read,
        "dram_bytes_written": result.dram_bytes_written,
        "link_bytes": result.link_bytes,
        "page_local": result.page_local,
        "page_remote": result.page_remote,
        "migration_bytes": result.migration_bytes,
    }
    for name, value in counters.items():
        if value < 0:
            fail("non-negative", f"{name} is negative ({value})")
    for level in ("l1", "l15", "l2"):
        stats = getattr(result, level)
        for field in (
            "hits",
            "misses",
            "writebacks",
            "flushes",
            "bypasses",
            "write_hits",
            "write_misses",
        ):
            value = getattr(stats, field)
            if value < 0:
                fail("non-negative", f"{level}.{field} is negative ({value})")
        if stats.accesses != stats.hits + stats.misses:
            fail(
                "cache-accesses",
                f"{level}: hits + misses ({stats.hits} + {stats.misses}) "
                f"!= accesses ({stats.accesses})",
            )
        if stats.write_hits > stats.hits:
            fail(
                "write-split",
                f"{level}.write_hits {stats.write_hits} > hits {stats.hits}",
            )
        if stats.write_misses > stats.misses:
            fail(
                "write-split",
                f"{level}.write_misses {stats.write_misses} > misses {stats.misses}",
            )

    if result.remote_loads > result.loads:
        fail("remote-subset", f"remote_loads {result.remote_loads} > loads {result.loads}")
    if result.remote_stores > result.stores:
        fail(
            "remote-subset",
            f"remote_stores {result.remote_stores} > stores {result.stores}",
        )

    # L1: every load looks up the L1; every store is a fused write touch
    # that counts a write hit (line resident) or a bypass (line absent,
    # forwarded downstream without allocating).  L1 misses are therefore
    # load misses exactly, and the lookup/store accounting is exact.
    if result.l1.misses > result.loads:
        fail("l1-misses", f"l1.misses {result.l1.misses} > loads {result.loads}")
    if result.l1.accesses != result.loads + result.l1.write_hits:
        fail(
            "l1-accesses",
            f"l1.accesses {result.l1.accesses} != loads + l1.write_hits "
            f"({result.loads} + {result.l1.write_hits})",
        )
    if result.l1.write_hits + result.l1.bypasses != result.stores:
        fail(
            "l1-store-accounting",
            f"l1.write_hits + l1.bypasses "
            f"({result.l1.write_hits} + {result.l1.bypasses}) "
            f"!= stores ({result.stores})",
        )

    # Routing conservation: every L1-missing load and every store is
    # classified by exactly one crossbar.
    routed = result.page_local + result.page_remote
    expected_routed = result.l1.misses + result.stores
    if routed != expected_routed:
        fail(
            "routing-conservation",
            f"page_local + page_remote ({routed}) != "
            f"l1.misses + stores ({expected_routed})",
        )
    if result.page_remote != result.remote_loads + result.remote_stores:
        fail(
            "remote-conservation",
            f"page_remote ({result.page_remote}) != remote_loads + remote_stores "
            f"({result.remote_loads + result.remote_stores})",
        )

    # L1.5 sits behind the L1 on the routed path only; stores reach it as
    # write touches (hit) or bypasses (miss), and only when the level
    # exists and its allocation policy admits the request's route.
    if result.l15.accesses > expected_routed:
        fail(
            "l15-accesses",
            f"l15.accesses {result.l15.accesses} > routed requests {expected_routed}",
        )
    if result.l15.write_hits + result.l15.bypasses > result.stores:
        fail(
            "l15-store-accounting",
            f"l15.write_hits + l15.bypasses "
            f"({result.l15.write_hits} + {result.l15.bypasses}) "
            f"> stores ({result.stores})",
        )

    # L2 sees every routed request except L1.5 *load* hits (a store that
    # touch-hits the write-through L1.5 still writes through to the L2),
    # and takes every store as a write-allocate lookup.
    expected_l2 = expected_routed - (result.l15.hits - result.l15.write_hits)
    if result.l2.accesses != expected_l2:
        fail(
            "l2-accesses",
            f"l2.accesses {result.l2.accesses} != routed - l15 load hits "
            f"({expected_routed} - ({result.l15.hits} - {result.l15.write_hits}))",
        )
    if result.l2.write_hits + result.l2.write_misses != result.stores:
        fail(
            "l2-store-accounting",
            f"l2.write_hits + l2.write_misses "
            f"({result.l2.write_hits} + {result.l2.write_misses}) "
            f"!= stores ({result.stores})",
        )

    # DRAM conservation: one line fetched per L2 miss (reads and
    # write-allocates alike), one line written per L2 eviction write-back,
    # plus whole-page copies charged by dynamic migration.
    expected_read = result.l2.misses * result.line_bytes + result.migration_bytes
    if result.dram_bytes_read != expected_read:
        fail(
            "dram-read-conservation",
            f"dram_bytes_read {result.dram_bytes_read} != l2.misses x line_bytes "
            f"+ migration_bytes ({expected_read})",
        )
    expected_written = result.l2.writebacks * result.line_bytes + result.migration_bytes
    if result.dram_bytes_written != expected_written:
        fail(
            "dram-write-conservation",
            f"dram_bytes_written {result.dram_bytes_written} != l2.writebacks x "
            f"line_bytes + migration_bytes ({expected_written})",
        )

    # Link traffic: a machine that never went remote moved nothing on-package.
    if result.page_remote == 0 and result.migration_bytes == 0 and result.link_bytes != 0:
        fail(
            "link-zero",
            f"no remote requests or migrations, yet link_bytes = {result.link_bytes}",
        )
    if config is not None:
        violations.extend(_check_link_bounds(result, config))
    return violations


def _check_link_bounds(result: SimResult, config) -> List[Violation]:
    """Topology-aware bounds tying ``link_bytes`` to remote traffic volume.

    ``link_bytes`` counts every hop a message traverses.  A remote load
    that reaches the ring moves a request header out and a header + line
    back; a remote store moves a header + line out; L1.5 load hits reach
    the ring not at all.  Hop counts are bounded by the topology's
    diameter, taken from the topology registry so an unregistered
    topology fails loudly here instead of silently inheriting ring
    bounds.
    """
    from ..interconnect.topology import diameter

    violations: List[Violation] = []
    if config.n_gpms <= 1:
        return violations
    max_hops = max(1, diameter(config.topology, config.n_gpms))
    load_bytes = 2 * REQUEST_HEADER_BYTES + LINE_BYTES
    store_bytes = REQUEST_HEADER_BYTES + LINE_BYTES
    # L1.5 *load* hits (hits minus write touch-hits) are the only requests
    # that never reach the ring; some of them may be on the local route
    # under the ALL allocation policy, so subtracting them all from remote
    # loads still under-counts ring transactions — a valid lower bound.
    ring_loads = max(0, result.remote_loads - (result.l15.hits - result.l15.write_hits))
    lower = ring_loads * load_bytes + result.remote_stores * store_bytes
    upper = (
        result.remote_loads * load_bytes
        + result.remote_stores * store_bytes
        + result.migration_bytes
    ) * max_hops
    if result.link_bytes < lower:
        violations.append(
            Violation(
                check="link-lower-bound",
                message=f"link_bytes {result.link_bytes} < minimum remote traffic {lower}",
            )
        )
    if result.link_bytes > upper:
        violations.append(
            Violation(
                check="link-upper-bound",
                message=f"link_bytes {result.link_bytes} > maximum remote traffic {upper}",
            )
        )
    return violations


# ----------------------------------------------------------------------
# Live structural invariants (mid-run GPUSystem state)
# ----------------------------------------------------------------------


def _all_pipes(system):
    for gpm in system.gpms:
        yield gpm.dram.pipe
    for link in system.ring.links:
        yield link.request_pipe
        yield link.response_pipe


def _all_caches(system):
    for gpm in system.gpms:
        for sm in gpm.sms:
            yield sm.l1
        if gpm.l15 is not None:
            yield gpm.l15
        yield gpm.l2


def check_live_system(system) -> List[Violation]:
    """Structural violations in a (possibly mid-run) ``GPUSystem``."""
    violations: List[Violation] = []

    for pipe in _all_pipes(system):
        overfull = pipe.overfull_buckets()
        if overfull:
            bucket, occupied = overfull[0]
            violations.append(
                Violation(
                    check="pipe-occupancy",
                    message=(
                        f"{pipe.name}: bucket {bucket} holds {occupied:.1f}B "
                        f"> capacity {pipe.bucket_capacity:.1f}B "
                        f"({len(overfull)} overfull bucket(s))"
                    ),
                )
            )

    for cache in _all_caches(system):
        resident = cache.resident_lines()
        if resident > cache.capacity_lines:
            violations.append(
                Violation(
                    check="cache-capacity",
                    message=(
                        f"{cache.name}: {resident} resident lines "
                        f"> capacity {cache.capacity_lines}"
                    ),
                )
            )
        for index, cache_set in enumerate(cache._sets):
            if len(cache_set) > cache.ways:
                violations.append(
                    Violation(
                        check="cache-associativity",
                        message=(
                            f"{cache.name}: set {index} holds {len(cache_set)} lines "
                            f"> {cache.ways} ways"
                        ),
                    )
                )
                break  # one set per cache is enough to flag corruption

    for gpm in system.gpms:
        for sm in gpm.sms:
            limit = sm.config.max_resident_ctas
            if not 0 <= sm.free_cta_slots <= limit:
                violations.append(
                    Violation(
                        check="cta-slots",
                        message=(
                            f"SM {sm.sm_id}: free_cta_slots {sm.free_cta_slots} "
                            f"outside [0, {limit}]"
                        ),
                    )
                )
        if gpm.xbar.local_requests < 0 or gpm.xbar.remote_requests < 0:
            violations.append(
                Violation(
                    check="xbar-counters",
                    message=f"GPM {gpm.gpm_id}: negative crossbar counters",
                )
            )
    return violations


class LiveValidator:
    """Engine hook running structural checks at kernel boundaries.

    Attach with :meth:`~repro.core.gpu.GPUSystem.attach_validator` (or pass
    ``validator=`` to the helpers in :mod:`repro.validate`).  After every
    kernel the validator re-checks the live system; after the run it also
    checks the collected result's conservation laws.  ``strict`` (default)
    raises :class:`InvariantError` on the first violation; otherwise
    violations accumulate in :attr:`violations`.
    """

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.violations: List[Violation] = []
        self.kernels_checked = 0
        self.runs_checked = 0

    def _absorb(self, violations: List[Violation]) -> None:
        if not violations:
            return
        self.violations.extend(violations)
        if self.strict:
            raise InvariantError(violations)

    def after_kernel(self, system, clock: float) -> None:
        """Engine callback: one kernel just drained at ``clock``."""
        self.kernels_checked += 1
        violations = check_live_system(system)
        if clock < 0:
            violations.append(
                Violation(check="clock", message=f"negative kernel-end clock {clock}")
            )
        self._absorb(violations)

    def after_run(self, system, result: SimResult) -> None:
        """Engine callback: the run completed and ``result`` was collected."""
        self.runs_checked += 1
        self._absorb(check_result(result, config=system.config))


def validated_run(workload, config, strict: bool = True):
    """Simulate with a live validator attached; returns ``(result, validator)``."""
    from ..sim.simulator import Simulator

    simulator = Simulator(config)
    validator = LiveValidator(strict=strict)
    simulator.system.attach_validator(validator)
    result = simulator.run(workload)
    return result, validator
