"""Metamorphic properties of the timing model across config sweeps.

Individual results cannot be checked against ground truth (there is none),
but *relations between runs* can: giving the machine strictly more of a
resource, or strictly better locality, must move the headline metrics in a
known direction.  Each property here runs a small sweep over the micro
suite and asserts such a relation:

* more inter-GPM link bandwidth => non-increasing cycles;
* a larger remote-only L1.5 => non-increasing inter-GPM link bytes;
* distributed scheduling + first-touch => remote fraction no worse than
  centralized scheduling with interleave or round-robin-page placement;
* a single-GPM machine => exactly zero remote traffic;
* re-running at a fixed seed => bit-identical results.

The relations are monotone in the limit but the simulator is discrete:
changing a latency can shift CTA retirement order and hence placement, so
ratio properties carry a small documented slack (:data:`SLACK`) rather
than demanding strict monotonicity.  Sweeps execute through
:func:`repro.experiments.common.run_suites`, so they fan out over the
process pool and hit the shared result cache like any experiment; every
result is additionally passed through
:func:`~repro.validate.invariants.check_result`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..core.presets import baseline_mcm_gpu, mcm_gpu_with_l15, optimized_mcm_gpu
from ..experiments.common import run_suites
from ..sim.result import SimResult
from ..sim.simulator import Simulator
from ..workloads.suite import all_specs
from ..workloads.synthetic import SyntheticWorkload
from ..workloads.trace import Workload
from .invariants import check_result

#: Relative slack for ratio-valued monotonicity properties (see module
#: docstring: discrete scheduling jitter, not model error).
SLACK = 0.02

#: Workloads the micro suite draws from: one streaming and one irregular
#: memory-intensive, one hot-set compute-intensive, one latency-bound
#: limited-parallelism — the four regimes the properties must hold in.
MICRO_SUITE_NAMES = ("Stream", "BFS", "XSBench", "DWT")


def micro_suite(n: int = 2, factor: float = 0.25) -> List[SyntheticWorkload]:
    """``n`` shrunken suite workloads (structure preserved, CTAs scaled)."""
    if not 1 <= n <= len(MICRO_SUITE_NAMES):
        raise ValueError(f"n must be in [1, {len(MICRO_SUITE_NAMES)}], got {n}")
    by_name = {spec.name: spec for spec in all_specs()}
    return [
        SyntheticWorkload(by_name[name].scaled_down(factor))
        for name in MICRO_SUITE_NAMES[:n]
    ]


@dataclass(frozen=True)
class PropertyOutcome:
    """Verdict of one metamorphic property over the micro suite."""

    name: str
    passed: bool
    detail: str


def _run_sweep(configs, workloads) -> List[Dict[str, SimResult]]:
    """Run every (workload, config) pair and invariant-check each result."""
    per_config = run_suites(configs, workloads=workloads)
    for config, results in zip(configs, per_config):
        for result in results.values():
            violations = check_result(result, config=config)
            if violations:
                raise AssertionError(
                    f"invariant violation under property sweep "
                    f"({result.workload_name} on {config.name}): {violations[0]}"
                )
    return per_config


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------


def prop_bandwidth_monotonic(workloads: Sequence[Workload]) -> PropertyOutcome:
    """More inter-GPM bandwidth never makes a workload slower (within slack)."""
    bandwidths = [384.0, 768.0, 1536.0, 6144.0]
    configs = [baseline_mcm_gpu(link_bandwidth=bw) for bw in bandwidths]
    sweep = _run_sweep(configs, workloads)
    worst = ""
    for workload in workloads:
        name = workload.name
        cycles = [results[name].cycles for results in sweep]
        for narrow, wide, bw_narrow, bw_wide in zip(
            cycles, cycles[1:], bandwidths, bandwidths[1:]
        ):
            if wide > narrow * (1.0 + SLACK):
                worst = (
                    f"{name}: {bw_wide:.0f} GB/s ran {wide:,.0f} cycles vs "
                    f"{narrow:,.0f} at {bw_narrow:.0f} GB/s"
                )
    if worst:
        return PropertyOutcome("bandwidth-monotonic", False, worst)
    return PropertyOutcome(
        "bandwidth-monotonic",
        True,
        f"cycles non-increasing over {len(bandwidths)}-point link sweep",
    )


def prop_l15_reduces_link_bytes(workloads: Sequence[Workload]) -> PropertyOutcome:
    """A larger remote-only L1.5 never increases link traffic (within slack)."""
    configs = [
        baseline_mcm_gpu(),
        mcm_gpu_with_l15(8, remote_only=True),
        mcm_gpu_with_l15(16, remote_only=True),
    ]
    labels = ["no L1.5", "8 MB", "16 MB"]
    sweep = _run_sweep(configs, workloads)
    worst = ""
    for workload in workloads:
        name = workload.name
        link = [results[name].link_bytes for results in sweep]
        for smaller, larger, lo, hi in zip(link, link[1:], labels, labels[1:]):
            if larger > smaller * (1.0 + SLACK):
                worst = (
                    f"{name}: {hi} L1.5 moved {larger:,} link bytes vs "
                    f"{smaller:,} with {lo}"
                )
    if worst:
        return PropertyOutcome("l15-link-bytes", False, worst)
    return PropertyOutcome(
        "l15-link-bytes", True, "link bytes non-increasing over L1.5 capacity sweep"
    )


def prop_locality_stack(workloads: Sequence[Workload]) -> PropertyOutcome:
    """DS + FT yields a remote fraction <= centralized interleave/round-robin."""
    base = baseline_mcm_gpu()
    configs = [
        base,
        replace(base, placement="round_robin_page", name="mcm-rr-page"),
        optimized_mcm_gpu(),
    ]
    sweep = _run_sweep(configs, workloads)
    worst = ""
    for workload in workloads:
        name = workload.name
        optimized = sweep[2][name].remote_access_fraction
        for index, label in ((0, "interleave"), (1, "round-robin")):
            reference = sweep[index][name].remote_access_fraction
            if optimized > reference + SLACK:
                worst = (
                    f"{name}: DS+FT remote fraction {optimized:.2f} > "
                    f"centralized {label} {reference:.2f}"
                )
    if worst:
        return PropertyOutcome("locality-stack", False, worst)
    return PropertyOutcome(
        "locality-stack", True, "DS+FT remote fraction <= centralized policies"
    )


def prop_single_gpm_no_remote(workloads: Sequence[Workload]) -> PropertyOutcome:
    """A one-module machine must produce exactly zero remote traffic."""
    config = baseline_mcm_gpu(n_gpms=1, sms_per_gpm=64, name="mcm-single-gpm")
    (results,) = _run_sweep([config], workloads)
    for workload in workloads:
        result = results[workload.name]
        if result.page_remote or result.remote_loads or result.remote_stores:
            return PropertyOutcome(
                "single-gpm-local",
                False,
                f"{workload.name}: {result.page_remote} remote requests on one GPM",
            )
        if result.link_bytes:
            return PropertyOutcome(
                "single-gpm-local",
                False,
                f"{workload.name}: {result.link_bytes} link bytes on one GPM",
            )
    return PropertyOutcome("single-gpm-local", True, "zero remote traffic on one GPM")


def prop_deterministic(workloads: Sequence[Workload]) -> PropertyOutcome:
    """Two fresh simulators at the same seed produce bit-identical results."""
    config = optimized_mcm_gpu()
    for workload in workloads:
        first = Simulator(config).run(workload)
        second = Simulator(config).run(workload)
        if first != second:
            fields = [
                name
                for name in ("cycles", "link_bytes", "page_remote", "dram_bytes_read")
                if getattr(first, name) != getattr(second, name)
            ]
            return PropertyOutcome(
                "deterministic",
                False,
                f"{workload.name}: reruns diverge in {', '.join(fields) or 'stats'}",
            )
    return PropertyOutcome("deterministic", True, "reruns are bit-identical")


ALL_PROPERTIES = (
    prop_bandwidth_monotonic,
    prop_l15_reduces_link_bytes,
    prop_locality_stack,
    prop_single_gpm_no_remote,
    prop_deterministic,
)


def run_properties(
    workloads: Optional[Sequence[Workload]] = None,
) -> List[PropertyOutcome]:
    """Run every metamorphic property; returns one outcome per property."""
    if workloads is None:
        workloads = micro_suite()
    return [prop(workloads) for prop in ALL_PROPERTIES]
