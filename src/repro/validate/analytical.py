"""Calibration of the analytical predictor against the exact simulator.

The analytical tier (:mod:`repro.core.analytical`) is only useful as a
rung-0 screen if its error is *known*.  This module measures that error
in two ways and freezes both into a blessed artifact
(``golden/analytical.json`` at the repo root):

* **Per-class cycle bands** — for every pair in the golden store
  (:mod:`repro.validate.golden`), compare predicted to simulated cycles
  and fit, per paper workload class, a multiplicative scale (geometric
  mean of sim/pred) plus a log-space band covering the worst residual.
  These quantify absolute fidelity and anchor the calibration to the
  same snapshot that gates model drift.

* **Per-sweep score bands** — the screen's only decisions are
  *pairwise*: it compares candidates of one sweep against each other
  (the promotion cutoff is itself a candidate's score), so any error
  component shared by every candidate — the baseline's prediction bias,
  a per-workload cycle scale — shifts all log scores equally and
  cancels.  Each band is therefore fitted on *centered* residuals over
  the grid it will actually screen: the fit simulates every built-in
  sweep's own rung-0 candidates on its own rung-0 workload suite
  (thinned deterministically for the 54-point ``wide`` plane and the
  expensive full-scale rung), subtracts each (sweep, rung) group's mean
  log error, and blesses the worst centered residual per sweep, padded
  with a safety factor.  A centered band of ``b`` guarantees the
  relative error between any two candidates of one sweep is at most
  ``2b`` — exactly the gap the router's conservative classification
  uses.  The artifact keeps one band per (sweep, rung-0 suite) — the
  model's error profile shifts with workload scale, so a band fitted at
  one scale is never applied at another — plus the widest as
  ``score_band`` for ad-hoc screens; asking for an unfitted rung is a
  :class:`CalibrationError`, not a fallback.

The successive-halving router (`repro.explore.analytical`) treats the
blessed band as a hard uncertainty radius: candidates within the band
of the promotion cutoff are never screened out analytically.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.analytical import predict_cycles, predict_suite_score
from ..core.config import MODEL_REV
from ..workloads.characterize import cached_profile
from ..workloads.suite import spec_by_name
from .golden import GoldenStore, golden_configs, golden_workloads, run_golden_matrix

#: Artifact schema revision.
CALIBRATION_VERSION = 2

#: Built-in sweeps whose rung-0 grids the score fit simulates (every
#: sweep the router can screen).
SCREENED_SWEEPS = ("link_l15", "page_place", "gpm_count", "smoke", "wide", "ml")

#: Candidate thinning strides: the 54-point ``wide`` grid and the
#: full-scale (0.25x) rung keep every Nth point plus both endpoints.
#: The full-rung stride is coprime with the sweeps' fastest-varying axis
#: lengths, so the thinned sample still spans every axis.
WIDE_GRID_STRIDE = 4
FULL_RUNG_STRIDE = 4


def score_band_key(sweep_name: str, rung_label: str) -> str:
    """Artifact key of one (sweep, rung-0 suite) score band."""
    return f"{sweep_name}|{rung_label}"

#: Multiplicative safety pad and absolute floor on fitted log bands.
#: The simulator and predictor are both deterministic and the score fit
#: covers the exact grids the router screens, so the floor only guards
#: the thinned-grid interpolation (``wide``, the full-scale rung).
BAND_SAFETY = 1.25
BAND_FLOOR = 0.01


class CalibrationError(RuntimeError):
    """A calibration artifact is missing, malformed, or stale."""


def default_calibration_path() -> Path:
    """``golden/analytical.json`` at the repository root."""
    return Path(__file__).resolve().parents[3] / "golden" / "analytical.json"


@dataclass(frozen=True)
class ClassBand:
    """Fitted cycle-accuracy envelope for one paper workload class."""

    #: Multiplicative correction: simulated ~= scale * predicted cycles.
    cycles_scale: float
    #: Log-space half-width covering every residual after scaling.
    cycles_band: float
    #: (workload, config) pairs the fit saw.
    pairs: int

    def covers(self, predicted_cycles: float, simulated_cycles: float) -> bool:
        """True when the pair's residual lies inside the blessed band."""
        residual = abs(math.log(simulated_cycles / (self.cycles_scale * predicted_cycles)))
        return residual <= self.cycles_band


@dataclass
class Calibration:
    """Blessed analytical-error artifact (see module docstring)."""

    model_rev: int
    #: Widest fitted score band (informational; ad-hoc screens without a
    #: band key classify with it).
    score_band: float
    classes: Dict[str, ClassBand] = field(default_factory=dict)
    #: Per-(sweep, rung-0 suite) score bands, keyed by
    #: :func:`score_band_key` (log-space half-widths).
    score_bands: Dict[str, float] = field(default_factory=dict)
    version: int = CALIBRATION_VERSION
    note: str = ""

    def band_for_sweep(self, band_key: str) -> float:
        """Score band for one (sweep, rung) — see :func:`score_band_key`.

        Raises :class:`CalibrationError` when the fit never covered that
        rung (e.g. a full-scale sweep against a ``--fast`` blessing):
        screening with a band fitted at a different workload scale would
        void the conservative contract.
        """
        if band_key in self.score_bands:
            return self.score_bands[band_key]
        known = ", ".join(sorted(self.score_bands)) or "(none)"
        raise CalibrationError(
            f"calibration has no score band for {band_key!r} "
            f"(fitted: {known}); re-bless with "
            "`python scripts/calibrate.py --analytical --bless` "
            "(without --fast for full-scale rungs)"
        )

    def band_for(self, class_name: str) -> ClassBand:
        """Per-class band, falling back to the widest fitted class."""
        if class_name in self.classes:
            return self.classes[class_name]
        if not self.classes:
            raise CalibrationError("calibration has no fitted classes")
        widest = max(self.classes.values(), key=lambda band: band.cycles_band)
        return ClassBand(cycles_scale=1.0, cycles_band=widest.cycles_band, pairs=0)

    def to_dict(self) -> Dict[str, object]:
        """JSON payload (sorted on save for byte-stable artifacts)."""
        return {
            "version": self.version,
            "model_rev": self.model_rev,
            "score_band": self.score_band,
            "score_bands": dict(self.score_bands),
            "note": self.note,
            "classes": {
                name: {
                    "cycles_scale": band.cycles_scale,
                    "cycles_band": band.cycles_band,
                    "pairs": band.pairs,
                }
                for name, band in self.classes.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Calibration":
        """Inverse of :meth:`to_dict`."""
        classes = {
            str(name): ClassBand(
                cycles_scale=float(entry["cycles_scale"]),
                cycles_band=float(entry["cycles_band"]),
                pairs=int(entry["pairs"]),
            )
            for name, entry in dict(payload.get("classes", {})).items()
        }
        return cls(
            model_rev=int(payload["model_rev"]),
            score_band=float(payload["score_band"]),
            classes=classes,
            score_bands={
                str(name): float(band)
                for name, band in dict(payload.get("score_bands", {})).items()
            },
            version=int(payload.get("version", CALIBRATION_VERSION)),
            note=str(payload.get("note", "")),
        )

    def save(self, path: Optional[Path] = None) -> Path:
        """Bless this calibration to disk (atomic replace)."""
        path = Path(path) if path is not None else default_calibration_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        tmp.replace(path)
        return path


def load_calibration(path: Optional[Path] = None) -> Calibration:
    """Load and validate a blessed calibration artifact.

    Raises :class:`CalibrationError` when the artifact is missing or was
    fitted against a different :data:`~repro.core.config.MODEL_REV` —
    stale error bands would make the "conservative" screen a lie.
    """
    path = Path(path) if path is not None else default_calibration_path()
    if not path.is_file():
        raise CalibrationError(
            f"no analytical calibration at {path}; "
            "run `python scripts/calibrate.py --analytical --bless` first"
        )
    with open(path) as handle:
        payload = json.load(handle)
    calibration = Calibration.from_dict(payload)
    if calibration.model_rev != MODEL_REV:
        raise CalibrationError(
            f"calibration at {path} was fitted for model rev "
            f"r{calibration.model_rev}, current is r{MODEL_REV}; "
            "re-run `python scripts/calibrate.py --analytical --bless`"
        )
    return calibration


# ---------------------------------------------------------------------------
# Fitting
# ---------------------------------------------------------------------------


def workload_class(workload_name: str) -> str:
    """Paper category (e.g. "M-Intensive") of a suite workload."""
    return spec_by_name(workload_name).category.value


def _thin(items: Sequence, stride: int) -> List:
    """Every ``stride``-th item, with both endpoints always kept."""
    if stride <= 1 or len(items) <= 2:
        return list(items)
    picked = list(items[::stride])
    if picked[-1] is not items[-1]:
        picked.append(items[-1])
    return picked


def _score_matrix_entries(
    fast: bool,
) -> List[Tuple[str, str, object, List, List]]:
    """``(family, rung label, baseline, workloads, candidates)`` per fit group.

    One entry per (screened built-in sweep, rung-0 scale): the fit
    simulates each sweep's *own* candidate grid on its *own* rung-0
    workload suite, so the blessed band covers exactly the comparisons
    the router will make.  Fast mode fits only the ``--fast`` rung-0
    scale (0.0625x); full mode adds the 0.25x rung with a thinned grid
    (:data:`FULL_RUNG_STRIDE`).  The 54-point ``wide`` grid is always
    thinned (:data:`WIDE_GRID_STRIDE`) — its endpoints and every Nth
    interior point stand in for the plane.

    The unscreened crossover presets (``optimized_mcm_gpu``,
    ``multi_gpu``) are deliberately absent: the router never routes them
    through the screen, and their board-link error would inflate the
    bands for no routing benefit.  Their absolute fidelity is still
    tracked by the per-class golden cycle bands.
    """
    # Imported lazily: repro.explore.analytical imports this module.
    from ..explore.builtin import build_plan

    entries: List[Tuple[str, str, object, List, List]] = []
    seen = set()
    for fast_mode in (True,) if fast else (True, False):
        for family in SCREENED_SWEEPS:
            plan = build_plan(family, fast=fast_mode)
            label, workloads = plan.rungs[0]
            if (family, label) in seen:  # smoke's rungs ignore fast
                continue
            seen.add((family, label))
            candidates = plan.spec.candidates()
            if family == "wide":
                candidates = _thin(candidates, WIDE_GRID_STRIDE)
            if not fast_mode:
                candidates = _thin(candidates, FULL_RUNG_STRIDE)
            entries.append((family, label, plan.baseline, list(workloads), candidates))
    return entries


def golden_prediction_rows(calibration: Optional[Calibration] = None) -> List[Dict[str, object]]:
    """Predicted vs golden-store cycles for every golden pair.

    Each row carries the pair key, workload class, both cycle figures and
    the log residual; when ``calibration`` is given, the residual after
    its class scale and whether the blessed band covers it.  Used by the
    calibration report and the prediction-vs-golden test.
    """
    store = GoldenStore()
    if store.exists():
        entries = store.load().get("entries", {})
        sim_cycles = {
            key: float(entry["metrics"]["cycles"]) for key, entry in entries.items()
        }
    else:
        sim_cycles = {
            GoldenStore.key(r.workload_name, r.system_name): float(r.cycles)
            for r in run_golden_matrix()
        }
    profiles = {w.name: cached_profile(w) for w in golden_workloads()}
    rows: List[Dict[str, object]] = []
    for config in golden_configs():
        for name, profile in sorted(profiles.items()):
            key = GoldenStore.key(name, config.name)
            if key not in sim_cycles:
                continue
            predicted = predict_cycles(profile, config).cycles
            simulated = sim_cycles[key]
            row: Dict[str, object] = {
                "key": key,
                "class": workload_class(name),
                "predicted_cycles": predicted,
                "simulated_cycles": simulated,
                "log_error": math.log(simulated / predicted),
            }
            if calibration is not None:
                band = calibration.band_for(row["class"])
                row["scaled_residual"] = math.log(
                    simulated / (band.cycles_scale * predicted)
                )
                row["within_band"] = band.covers(predicted, simulated)
            rows.append(row)
    return rows


def _fit_class_bands(rows: Sequence[Dict[str, object]]) -> Dict[str, ClassBand]:
    grouped: Dict[str, List[float]] = {}
    for row in rows:
        grouped.setdefault(str(row["class"]), []).append(float(row["log_error"]))
    classes: Dict[str, ClassBand] = {}
    for name, errors in sorted(grouped.items()):
        mean = sum(errors) / len(errors)
        worst = max(abs(err - mean) for err in errors)
        classes[name] = ClassBand(
            cycles_scale=math.exp(mean),
            cycles_band=max(BAND_FLOOR, worst * BAND_SAFETY),
            pairs=len(errors),
        )
    return classes


def score_matrix_rows(
    fast: bool = False,
    max_workers: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Simulated vs predicted rung-0 scores on every screened sweep grid.

    Scores are exactly what the router compares: geomean speedup of each
    candidate over the sweep's baseline on its rung-0 workload suite,
    simulated vs :func:`~repro.core.analytical.predict_suite_score`.
    """
    from ..analysis.speedup import geomean
    from ..experiments.common import run_suites

    rows: List[Dict[str, object]] = []
    for family, label, baseline, workloads, candidates in _score_matrix_entries(fast):
        profiles = [cached_profile(w) for w in workloads]
        suites = run_suites(
            [baseline] + [candidate.config for candidate in candidates],
            workloads=workloads,
            max_workers=max_workers,
        )
        base_suite = suites[0]
        for candidate, suite in zip(candidates, suites[1:]):
            sim_score = geomean(
                base_suite[w.name].cycles / suite[w.name].cycles for w in workloads
            )
            pred_score = predict_suite_score(profiles, candidate.config, baseline)
            rows.append(
                {
                    "candidate": candidate.name,
                    "family": family,
                    "rung": label,
                    "sim_score": sim_score,
                    "pred_score": pred_score,
                    "log_error": math.log(sim_score / pred_score),
                }
            )
    return rows


def _centered_residuals_by_band(
    rows: Sequence[Dict[str, object]],
) -> Dict[str, List[float]]:
    """Per-band-key log residuals after removing each group's mean.

    The group mean is the common-mode component every candidate of one
    sweep rung shares — invisible to the router's pairwise
    classification (see module docstring) — so only the centered spread
    needs covering by the blessed band.  Groups are exactly the
    :func:`score_band_key` units the router looks up: the model's error
    profile shifts with workload scale, so one sweep's fast and full
    rungs get independent bands.
    """
    grouped: Dict[str, List[float]] = {}
    for row in rows:
        key = score_band_key(str(row["family"]), str(row["rung"]))
        grouped.setdefault(key, []).append(float(row["log_error"]))
    centered: Dict[str, List[float]] = {}
    for key, errors in grouped.items():
        mean = sum(errors) / len(errors)
        centered[key] = [err - mean for err in errors]
    return centered


def fit_calibration(
    fast: bool = False,
    max_workers: Optional[int] = None,
    note: str = "",
) -> Tuple[Calibration, Dict[str, List[Dict[str, object]]]]:
    """Fit a fresh :class:`Calibration` against the exact simulator.

    Returns the calibration plus the raw fit rows (``golden`` cycle pairs
    and ``scores`` matrix) for reporting.  ``fast`` restricts the score
    matrix to the smallest workload scale.
    """
    golden_rows = golden_prediction_rows()
    if not golden_rows:
        raise CalibrationError(
            "golden store is empty; bless it first (scripts/validate.py golden --bless)"
        )
    classes = _fit_class_bands(golden_rows)
    score_rows = score_matrix_rows(fast=fast, max_workers=max_workers)
    score_bands = {
        key: max(BAND_FLOOR, max(abs(r) for r in residuals) * BAND_SAFETY)
        for key, residuals in sorted(_centered_residuals_by_band(score_rows).items())
    }
    calibration = Calibration(
        model_rev=MODEL_REV,
        score_band=max(score_bands.values()),
        classes=classes,
        score_bands=score_bands,
        note=note
        or (
            f"fit on {len(golden_rows)} golden pairs, "
            f"{len(score_rows)} score points ({'fast' if fast else 'full'})"
        ),
    )
    return calibration, {"golden": golden_rows, "scores": score_rows}
