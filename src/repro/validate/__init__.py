"""Model validation: invariants, properties, fidelity gate, golden store.

Four layers, cheapest first (``scripts/validate.py`` exposes them as
tiers):

1. :mod:`~repro.validate.invariants` — conservation laws any finished
   :class:`~repro.sim.result.SimResult` must satisfy, plus an opt-in
   live validator the engine calls at kernel boundaries.
2. :mod:`~repro.validate.properties` — metamorphic properties across
   config sweeps (more bandwidth never hurts, bigger caches never add
   link traffic, one GPM never goes remote, reruns are bit-identical).
3. :mod:`~repro.validate.fidelity` — the paper's headline orderings and
   effect sizes (Figures 6/9/13/15/16/17) as two-sided tolerance bands.
4. :mod:`~repro.validate.golden` — exact golden-metrics snapshots with a
   bless/compare workflow and per-metric drift reports.
"""

from .analytical import (
    Calibration,
    CalibrationError,
    ClassBand,
    fit_calibration,
    golden_prediction_rows,
    load_calibration,
)
from .fidelity import FidelityCheck, evaluate_checks, run_fidelity
from .golden import DriftReport, GoldenStore, bless, compare, run_golden_matrix
from .invariants import (
    InvariantError,
    LiveValidator,
    Violation,
    check_live_system,
    check_result,
    validated_run,
)
from .properties import PropertyOutcome, micro_suite, run_properties

__all__ = [
    "Calibration",
    "CalibrationError",
    "ClassBand",
    "DriftReport",
    "FidelityCheck",
    "GoldenStore",
    "InvariantError",
    "LiveValidator",
    "PropertyOutcome",
    "Violation",
    "bless",
    "check_live_system",
    "check_result",
    "compare",
    "evaluate_checks",
    "fit_calibration",
    "golden_prediction_rows",
    "load_calibration",
    "micro_suite",
    "run_fidelity",
    "run_golden_matrix",
    "run_properties",
    "validated_run",
]
