"""Paper shape-fidelity gate: banded checks on the headline results.

The benchmarks under ``benchmarks/`` assert one-sided inequalities per
figure; this module turns the same headline quantities from Figures 6, 9,
13, 15, 16 and 17 into *two-sided* tolerance bands and evaluates them in
one batch.  A band failing low means the mechanism stopped working; a band
failing high means the model drifted into over-rewarding it — both are
regressions even though the one-sided benchmark still passes.

The sweep runs every design point through one
:func:`~repro.experiments.common.run_suites` call, so the process pool
overlaps all (workload, config) pairs and the shared disk cache makes
repeat runs (and overlap with the benchmark suite) free.  Band evaluation
is separated into :func:`evaluate_checks` so tests can exercise the gate
on synthetic numbers without simulating.

``fast=True`` scales every workload's CTA count down by
:data:`FAST_FACTOR` and widens each band by :data:`FAST_SLACK` — shrunken
workloads keep the qualitative shape but shift the magnitudes, so the fast
gate only catches gross breakage.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf
from typing import Dict, List, Optional, Sequence

from ..analysis.report import format_table
from ..analysis.speedup import geomean, sorted_speedup_curve, speedups
from ..core.presets import (
    baseline_mcm_gpu,
    mcm_gpu_with_l15,
    monolithic_gpu,
    multi_gpu,
    optimized_mcm_gpu,
)
from ..experiments.common import names_in_category, run_suites
from ..workloads.suite import ml_workloads, suite_workloads
from ..workloads.synthetic import Category
from .invariants import check_result

#: CTA scale factor for the fast gate.
FAST_FACTOR = 0.25
#: Multiplicative band widening for the fast gate (bands move away from
#: the value by this fraction on each side).
FAST_SLACK = 0.30


@dataclass(frozen=True)
class FidelityCheck:
    """One banded headline quantity: pass iff ``lo <= value <= hi``."""

    name: str
    paper_ref: str
    lo: float
    hi: float
    value: float

    @property
    def passed(self) -> bool:
        return self.lo <= self.value <= self.hi

    def widened(self, slack: float) -> "FidelityCheck":
        """Copy with both band edges moved outward by ``slack`` (fractional).

        Each edge moves by ``slack`` times its own magnitude, floored at
        ``slack * 0.1`` in absolute terms — ordering checks have a lower
        edge of exactly 0, and a purely multiplicative widening would
        leave them with no slack at all.
        """
        lo = self.lo - slack * max(abs(self.lo), 0.1)
        hi = self.hi if self.hi == inf else self.hi + slack * max(abs(self.hi), 0.1)
        return FidelityCheck(self.name, self.paper_ref, lo, hi, self.value)


def _category_geomean(per_workload: Dict[str, float], category: Category) -> float:
    names = [name for name in names_in_category(category) if name in per_workload]
    return geomean(per_workload[name] for name in names)


def run_fidelity(fast: bool = False) -> List[FidelityCheck]:
    """Simulate every design point and evaluate the fidelity bands."""
    workloads = suite_workloads(fast_factor=FAST_FACTOR) if fast else suite_workloads()
    configs = {
        "baseline": baseline_mcm_gpu(),
        "l15-8": mcm_gpu_with_l15(8, remote_only=True),
        "l15-16": mcm_gpu_with_l15(16, remote_only=True),
        "l15-32": mcm_gpu_with_l15(32, remote_only=True),
        "l15-16-ds": mcm_gpu_with_l15(16, remote_only=True, scheduler="distributed"),
        "opt-16": mcm_gpu_with_l15(
            16, remote_only=True, scheduler="distributed", placement="first_touch"
        ),
        "opt-8": optimized_mcm_gpu(),
        "monolithic-256": monolithic_gpu(256),
        "multi-gpu": multi_gpu(optimized=False),
        "multi-gpu-opt": multi_gpu(optimized=True),
    }
    order = list(configs)
    per_config = run_suites([configs[key] for key in order], workloads=workloads)
    results = dict(zip(order, per_config))
    for key, suite in results.items():
        for result in suite.values():
            violations = check_result(result, config=configs[key])
            if violations:
                raise AssertionError(
                    f"invariant violation in fidelity sweep "
                    f"({result.workload_name} on {configs[key].name}): {violations[0]}"
                )

    baseline = results["baseline"]
    ratio = {key: speedups(results[key], baseline) for key in order if key != "baseline"}
    checks = evaluate_checks(
        {
            "m8": _category_geomean(ratio["l15-8"], Category.M_INTENSIVE),
            "m16": _category_geomean(ratio["l15-16"], Category.M_INTENSIVE),
            "m32": _category_geomean(ratio["l15-32"], Category.M_INTENSIVE),
            "c16": _category_geomean(ratio["l15-16"], Category.C_INTENSIVE),
            "ds_m": _category_geomean(ratio["l15-16-ds"], Category.M_INTENSIVE),
            "ft8_m": _category_geomean(ratio["opt-8"], Category.M_INTENSIVE),
            "ft16_m": _category_geomean(ratio["opt-16"], Category.M_INTENSIVE),
            "curve": sorted_speedup_curve(ratio["opt-8"]),
            "optimized": geomean(ratio["opt-8"].values()),
            "l15_alone": geomean(ratio["l15-16"].values()),
            "monolithic": geomean(ratio["monolithic-256"].values()),
            "multi_gpu": geomean(ratio["multi-gpu"].values()),
            "multi_gpu_opt": geomean(ratio["multi-gpu-opt"].values()),
        }
    )
    if fast:
        checks = [check.widened(FAST_SLACK) for check in checks]
    return checks


def evaluate_checks(data: Dict[str, object]) -> List[FidelityCheck]:
    """Build every fidelity check from pre-computed headline quantities.

    ``data`` holds the category geomeans and the Figure 15 curve (see
    :func:`run_fidelity` for the exact keys).  Band rationale: lower edges
    sit just below the value the model *measures* at the current
    :data:`~repro.core.config.MODEL_REV` (r7), upper edges allow roughly
    double the paper's effect size before flagging over-reward.  Where the
    model undershoots the paper the gap is noted inline — notably Figure 9
    (measured +8.6% vs paper +23.4%) and Figure 13 (measured +20.2% vs
    paper +51%), where ``benchmarks/`` still carries the aspirational
    one-sided thresholds; this gate tracks measured behaviour so that
    regressions *from here* fail loudly instead of hiding under an
    already-failing aspiration.
    """
    m8 = float(data["m8"])  # type: ignore[arg-type]
    m16 = float(data["m16"])  # type: ignore[arg-type]
    m32 = float(data["m32"])  # type: ignore[arg-type]
    c16 = float(data["c16"])  # type: ignore[arg-type]
    ds_m = float(data["ds_m"])  # type: ignore[arg-type]
    ft8_m = float(data["ft8_m"])  # type: ignore[arg-type]
    ft16_m = float(data["ft16_m"])  # type: ignore[arg-type]
    curve: Sequence[float] = sorted(data["curve"])  # type: ignore[arg-type]
    optimized = float(data["optimized"])  # type: ignore[arg-type]
    l15_alone = float(data["l15_alone"])  # type: ignore[arg-type]
    monolithic = float(data["monolithic"])  # type: ignore[arg-type]
    multi_gpu_opt = float(data["multi_gpu_opt"])  # type: ignore[arg-type]

    improved = sum(1 for value in curve if value > 1.0)
    degraded = sum(1 for value in curve if value < 1.0)
    return [
        # Figure 6: the 16 MB remote-only L1.5 helps M-intensive workloads
        # (paper +11.4%), and capacity ordering holds.
        FidelityCheck("fig6-16mb-m-geomean", "Fig 6 (+11.4%)", 1.05, 1.45, m16),
        FidelityCheck("fig6-capacity-32-over-16", "Fig 6 ordering", 0.0, inf, m32 - m16),
        FidelityCheck("fig6-capacity-16-over-8", "Fig 6 ordering", 0.0, inf, m16 - m8),
        FidelityCheck("fig6-c-below-m", "Fig 6 C vs M", 0.0, inf, m16 - c16),
        # Figure 9: distributed scheduling on top of the L1.5.  Paper
        # reports +23.4%; the r7 model measures +8.6% — band set to the
        # measured value so further erosion (or sudden over-reward) fails.
        FidelityCheck("fig9-ds-m-geomean", "Fig 9 (+23.4%, r7 +8.6%)", 1.04, 1.45, ds_m),
        FidelityCheck("fig9-ds-over-l15", "Fig 9 vs Fig 6", 0.0, inf, ds_m - m16),
        # Figure 13: the full stack, and the 8 MB split winning.  Paper
        # reports +51%; the r7 model measures +20.2% (same banding policy).
        FidelityCheck("fig13-8mb-m-geomean", "Fig 13 (+51%, r7 +20%)", 1.12, 2.20, ft8_m),
        FidelityCheck("fig13-8mb-over-16mb", "Fig 13 split", 0.0, inf, ft8_m - ft16_m),
        # Figure 15: the s-curve's shape (paper: 31 up, 9 down, tail 3.5x+).
        FidelityCheck("fig15-improved", "Fig 15 (31 up)", 24, len(curve), improved),
        FidelityCheck("fig15-degraded", "Fig 15 (9 down)", 2, len(curve) // 2, degraded),
        FidelityCheck("fig15-tail", "Fig 15 (max 3.5x)", 2.0, 8.0, curve[-1]),
        FidelityCheck("fig15-head", "Fig 15 (min ~0.75)", 0.5, 0.97, curve[0]),
        # Figure 16: contribution breakdown (paper: +5.2% L1.5, +22.8% all).
        FidelityCheck("fig16-l15-alone", "Fig 16 (+5.2%)", 1.0, 1.15, l15_alone),
        FidelityCheck("fig16-optimized", "Fig 16 (+22.8%)", 1.15, 1.60, optimized),
        FidelityCheck(
            "fig16-gap-to-monolithic",
            "Fig 16 (within ~10%)",
            0.90,
            1.30,
            monolithic / optimized,
        ),
        # Figure 17: the MCM-GPU beats the optimized multi-GPU (paper +26.8%)
        # and stays near the unbuildable monolithic ceiling.
        FidelityCheck(
            "fig17-mcm-over-multi-gpu",
            "Fig 17 (+26.8%)",
            1.10,
            2.00,
            optimized / multi_gpu_opt,
        ),
        FidelityCheck(
            "fig17-monolithic-over-mcm",
            "Fig 17 ceiling",
            0.95,
            inf,
            monolithic / optimized,
        ),
    ]


#: ML-era workloads whose behaviour leans on a hot reuse set (embedding
#: rows, expert tables, KV sinks) — the regime the remote-only L1.5 is
#: built for, so these carry their own tighter band.
ML_HOT_WORKLOADS = ("DLRM-Embed", "MoE-Gate", "Attn-Decode")


def run_ml_fidelity(fast: bool = False) -> List[FidelityCheck]:
    """Banded checks over the ML-era suite (mirrors :func:`run_fidelity`).

    The 2017 gate asks "does the model still reproduce the paper?"; this
    gate asks "do the paper's mechanisms still behave sanely on modern
    ML-style traffic?".  Bands are set from the values the model measures
    at the current rev, not from the paper (the paper never ran these
    workloads), so they freeze today's ML-era behaviour the same way the
    golden store freezes counters.
    """
    workloads = ml_workloads(fast_factor=FAST_FACTOR) if fast else ml_workloads()
    configs = {
        "baseline": baseline_mcm_gpu(),
        "l15-16": mcm_gpu_with_l15(16, remote_only=True),
        "opt-8": optimized_mcm_gpu(),
    }
    order = list(configs)
    per_config = run_suites([configs[key] for key in order], workloads=workloads)
    results = dict(zip(order, per_config))
    for key, suite in results.items():
        for result in suite.values():
            violations = check_result(result, config=configs[key])
            if violations:
                raise AssertionError(
                    f"invariant violation in ML fidelity sweep "
                    f"({result.workload_name} on {configs[key].name}): {violations[0]}"
                )

    baseline = results["baseline"]
    l15 = speedups(results["l15-16"], baseline)
    opt = speedups(results["opt-8"], baseline)
    allreduce = results["baseline"].get("AllReduce-Ring")
    link_per_record = (
        allreduce.link_bytes / max(allreduce.records, 1) if allreduce else 0.0
    )
    checks = evaluate_ml_checks(
        {
            "l15": l15,
            "opt": opt,
            "allreduce_link_per_record": link_per_record,
        }
    )
    if fast:
        checks = [check.widened(FAST_SLACK) for check in checks]
    return checks


def evaluate_ml_checks(data: Dict[str, object]) -> List[FidelityCheck]:
    """Build the ML-era fidelity checks from pre-computed speedup maps.

    ``data`` carries per-workload speedup dicts for the 16 MB remote-only
    L1.5 (``"l15"``) and the fully optimized MCM-GPU (``"opt"``) over the
    baseline, plus the baseline AllReduce-Ring link bytes per record
    (``"allreduce_link_per_record"``).  Bands bracket the values measured
    at the current model rev; a low failure means a mechanism stopped
    carrying over to ML traffic, a high failure means the model started
    over-rewarding it.
    """
    l15: Dict[str, float] = dict(data["l15"])  # type: ignore[arg-type]
    opt: Dict[str, float] = dict(data["opt"])  # type: ignore[arg-type]
    link_per_record = float(data["allreduce_link_per_record"])  # type: ignore[arg-type]

    l15_geo = geomean(l15.values())
    opt_geo = geomean(opt.values())
    hot = [name for name in ML_HOT_WORKLOADS if name in l15]
    hot_geo = geomean(l15[name] for name in hot) if hot else 0.0
    improved = sum(1 for value in opt.values() if value > 1.0)
    return [
        # The remote-only L1.5 still pays for itself on ML traffic
        # overall, and pays best on the hot-reuse families.
        FidelityCheck("ml-l15-geomean", "Fig 6 analogue", 1.00, 1.35, l15_geo),
        FidelityCheck("ml-l15-hot-geomean", "Fig 6 analogue (hot)", 1.02, 1.60, hot_geo),
        FidelityCheck("ml-l15-hot-over-all", "Fig 6 C-vs-M analogue", 0.0, inf, hot_geo - l15_geo),
        # The full optimization stack keeps helping and keeps beating the
        # L1.5 alone (Fig 13/16 analogue).
        FidelityCheck("ml-optimized-geomean", "Fig 13/16 analogue", 1.05, 1.70, opt_geo),
        FidelityCheck("ml-optimized-over-l15", "Fig 16 stacking", 0.0, inf, opt_geo - l15_geo),
        # Fig 15 analogue: most ML workloads improve under the full stack.
        FidelityCheck("ml-improved-count", "Fig 15 analogue", 5, len(opt), improved),
        # The ring allreduce actually exchanges data between GPMs: its
        # baseline link traffic per record stays in the measured band
        # (r7 measures ~940 B/record; collapse toward zero means the
        # pattern lost its inter-GPM character, a blow-up means the
        # peer-sweep stopped hitting any cache).
        FidelityCheck(
            "ml-allreduce-link-per-record",
            "inter-GPM exchange",
            400.0,
            2000.0,
            link_per_record,
        ),
    ]


#: Topologies exercised by the topology fidelity gate, all at 8 GPMs.
TOPOLOGY_GATE_TOPOLOGIES = ("ring", "mesh", "torus", "hierarchical", "fully_connected")
#: Relative slack on the hop-ratio bands.  Interleaved placement spreads
#: traffic near-uniformly over ordered GPM pairs, so measured link bytes
#: track ``remote_volume x average_hops`` closely but not exactly (CTA
#: inhomogeneity, shared lines); r8 measures within ~2% of the hop math
#: on every topology, so +-15% flags real routing regressions without
#: tripping on workload mix.
TOPOLOGY_HOP_SLACK = 0.15


def run_topology_fidelity(fast: bool = False) -> List[FidelityCheck]:
    """Relational bands over the registry topologies at 8 GPMs.

    Runs the golden workload subset on an 8-GPM baseline under every
    registered topology (uniform interleave, so traffic volume between
    GPM pairs is near-uniform and topology-independent) and checks that
    each fabric's measured link traffic is the single-hop fully-connected
    reference times its average hop count — the conservation law that
    pins routing, not calibration.  A hierarchy-specific band asserts the
    fixed 256 GB/s board ring actually costs cycles relative to the
    all-package ring.
    """
    from dataclasses import replace as _replace

    from ..core.presets import baseline_mcm_gpu as _baseline
    from .golden import GOLDEN_WORKLOADS

    wanted = set(GOLDEN_WORKLOADS)
    workloads = [
        workload
        for workload in (suite_workloads(fast_factor=FAST_FACTOR) if fast else suite_workloads())
        if workload.name in wanted
    ]
    configs = {
        topology: _replace(
            _baseline(n_gpms=8, name=f"mcm-{topology}-8"), topology=topology
        )
        for topology in TOPOLOGY_GATE_TOPOLOGIES
    }
    order = list(configs)
    per_config = run_suites([configs[key] for key in order], workloads=workloads)
    results = dict(zip(order, per_config))
    for key, suite in results.items():
        for result in suite.values():
            violations = check_result(result, config=configs[key])
            if violations:
                raise AssertionError(
                    f"invariant violation in topology sweep "
                    f"({result.workload_name} on {configs[key].name}): {violations[0]}"
                )
    link_totals = {
        key: float(sum(result.link_bytes for result in suite.values()))
        for key, suite in results.items()
    }
    cycle_totals = {
        key: float(sum(result.cycles for result in suite.values()))
        for key, suite in results.items()
    }
    checks = evaluate_topology_checks({"link": link_totals, "cycles": cycle_totals})
    if fast:
        checks = [check.widened(FAST_SLACK) for check in checks]
    return checks


def evaluate_topology_checks(data: Dict[str, object]) -> List[FidelityCheck]:
    """Build the topology checks from per-topology link/cycle totals.

    ``data["link"]`` and ``data["cycles"]`` map topology name to summed
    link bytes / cycles over the gate's workloads.  Hop-ratio bands come
    from the topology registry's BFS hop math — they are *relational*
    (measured traffic vs measured single-hop traffic), so they stay valid
    across workload re-calibrations.
    """
    from ..core.analytical import average_hops

    link: Dict[str, float] = dict(data["link"])  # type: ignore[arg-type]
    cycles: Dict[str, float] = dict(data["cycles"])  # type: ignore[arg-type]
    reference = link["fully_connected"]
    checks: List[FidelityCheck] = []
    for topology in ("ring", "mesh", "torus", "hierarchical"):
        hops = average_hops(8, topology)
        ratio = link[topology] / reference if reference else 0.0
        checks.append(
            FidelityCheck(
                f"topo-hops-{topology}",
                f"avg hops {hops:.3f}",
                hops * (1.0 - TOPOLOGY_HOP_SLACK),
                hops * (1.0 + TOPOLOGY_HOP_SLACK),
                ratio,
            )
        )
    # The hierarchical fabric funnels cross-package traffic through a
    # fixed 256 GB/s board ring; on a bandwidth-heavy suite that must
    # cost cycles relative to the all-768 package ring.
    checks.append(
        FidelityCheck(
            "topo-hier-board-cost",
            "board bottleneck",
            1.0,
            inf,
            cycles["hierarchical"] / cycles["ring"] if cycles["ring"] else 0.0,
        )
    )
    return checks


def report(checks: Sequence[FidelityCheck]) -> str:
    """Human-readable pass/fail table for a fidelity run."""
    rows = [
        [
            check.name,
            check.paper_ref,
            f"[{check.lo:.3g}, {'inf' if check.hi == inf else format(check.hi, '.3g')}]",
            check.value,
            "ok" if check.passed else "FAIL",
        ]
        for check in checks
    ]
    failed = sum(1 for check in checks if not check.passed)
    table = format_table(["Check", "Paper", "Band", "Value", "Verdict"], rows)
    verdict = (
        f"{len(checks)} checks, all passed"
        if not failed
        else f"{failed}/{len(checks)} checks FAILED"
    )
    return f"{table}\n{verdict}"


def run_and_report(fast: bool = False):
    """Run the gate; returns ``(all_passed, rendered report)``."""
    checks = run_fidelity(fast=fast)
    return all(check.passed for check in checks), report(checks)
