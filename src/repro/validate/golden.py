"""Golden-metrics regression store: bless a snapshot, diff future runs.

Invariants and properties catch *inconsistent* models; they cannot catch a
quiet 3% cycles shift from an innocent-looking refactor.  This layer
freezes the full counter set of a small (workload, system) matrix into a
JSON snapshot (``golden/metrics.json`` at the repo root by default) and
diffs fresh runs against it.

Entries are keyed ``workload@@system`` by *name*, not by digest: a
:data:`~repro.core.config.MODEL_REV` bump changes every digest by design,
and the whole point of the store is to report what changed across such a
bump rather than silently starting over.  The digests and model rev are
kept as metadata, so the drift report flags identity changes ("this key's
workload digest moved") separately from metric drift.

Workflow::

    python scripts/validate.py golden --bless   # freeze current behaviour
    python scripts/validate.py golden           # diff against the snapshot

The drift report lists every per-metric change with absolute and relative
deltas, plus keys added/removed, and appends the run's suite-throughput
telemetry so a perf regression shows up alongside the metric drift.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.report import format_table
from ..core.config import MODEL_REV, SystemConfig
from ..core.presets import baseline_mcm_gpu, monolithic_gpu, multi_gpu, optimized_mcm_gpu
from ..experiments.common import run_suites
from ..parallel.metrics import GLOBAL_METRICS
from ..sim.result import SimResult
from ..workloads.suite import ml_workloads, suite_workloads
from ..workloads.trace import Workload
from .invariants import check_result

#: Relative drift below which a metric difference is reported but not
#: counted as drift (golden runs are deterministic, so any nonzero delta
#: is real; the tolerance exists for float-valued cycles only).
REL_TOLERANCE = 1e-9

#: Workloads pinned into the golden matrix: one per behavioural regime
#: (streaming, irregular, hot-set compute, limited parallelism).
GOLDEN_WORKLOADS = ("Stream", "BFS", "XSBench", "DWT")

#: ML-era workloads pinned alongside them: one per new pattern family
#: (GEMM tiling, attention gather, ring allreduce, Zipfian embedding,
#: bursty MoE dispatch).
GOLDEN_ML_WORKLOADS = (
    "GEMM-Fwd",
    "Attn-Decode",
    "AllReduce-Ring",
    "DLRM-Embed",
    "MoE-Gate",
)


def default_store_path() -> Path:
    """``golden/metrics.json`` at the repository root."""
    return Path(__file__).resolve().parents[3] / "golden" / "metrics.json"


def golden_configs() -> List[SystemConfig]:
    """The six systems pinned into the golden matrix.

    The four machine classes of the paper, plus two scale-out points
    (8-GPM mesh and torus) so the registry-built fabrics are regression-
    pinned alongside the dedicated ring/fully-connected classes.
    """
    return [
        baseline_mcm_gpu(),
        optimized_mcm_gpu(),
        monolithic_gpu(256),
        multi_gpu(optimized=False),
        replace(baseline_mcm_gpu(n_gpms=8, name="mcm-mesh-8"), topology="mesh"),
        replace(baseline_mcm_gpu(n_gpms=8, name="mcm-torus-8"), topology="torus"),
    ]


def golden_workloads() -> List[Workload]:
    """Full-scale golden workloads (paper suite subset + ML families)."""
    wanted = set(GOLDEN_WORKLOADS)
    picked = [workload for workload in suite_workloads() if workload.name in wanted]
    ml_wanted = set(GOLDEN_ML_WORKLOADS)
    picked.extend(w for w in ml_workloads() if w.name in ml_wanted)
    return picked


def metrics_of(result: SimResult) -> Dict[str, float]:
    """The counter set frozen per (workload, system) pair."""
    return {
        "cycles": result.cycles,
        "loads": result.loads,
        "stores": result.stores,
        "remote_loads": result.remote_loads,
        "remote_stores": result.remote_stores,
        "link_bytes": result.link_bytes,
        "dram_bytes_read": result.dram_bytes_read,
        "dram_bytes_written": result.dram_bytes_written,
        "page_local": result.page_local,
        "page_remote": result.page_remote,
        "migration_bytes": result.migration_bytes,
        "l1_hits": result.l1.hits,
        "l1_misses": result.l1.misses,
        "l15_hits": result.l15.hits,
        "l15_misses": result.l15.misses,
        "l2_hits": result.l2.hits,
        "l2_misses": result.l2.misses,
        "l2_writebacks": result.l2.writebacks,
    }


def _snapshot_entry(result: SimResult) -> Dict[str, object]:
    return {
        "metrics": metrics_of(result),
        "workload_digest": result.workload_digest,
        "system_digest": result.system_digest,
    }


@dataclass(frozen=True)
class MetricDrift:
    """One metric that moved between the snapshot and the fresh run."""

    key: str
    metric: str
    golden: float
    current: float

    @property
    def abs_delta(self) -> float:
        return self.current - self.golden

    @property
    def rel_delta(self) -> float:
        if self.golden == 0:
            return float("inf") if self.current else 0.0
        return self.current / self.golden - 1.0


@dataclass
class DriftReport:
    """Everything that differs between the snapshot and a fresh run."""

    model_rev_golden: int
    model_rev_current: int = MODEL_REV
    drifts: List[MetricDrift] = field(default_factory=list)
    added_keys: List[str] = field(default_factory=list)
    removed_keys: List[str] = field(default_factory=list)
    digest_changes: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the fresh run reproduces the snapshot exactly."""
        return not (self.drifts or self.added_keys or self.removed_keys)

    def render(self, telemetry: bool = True) -> str:
        """Human-readable drift report (plus suite-throughput telemetry)."""
        lines: List[str] = []
        if self.model_rev_current != self.model_rev_golden:
            lines.append(
                f"model rev changed: snapshot r{self.model_rev_golden} "
                f"-> current r{self.model_rev_current}"
            )
        for note in self.digest_changes:
            lines.append(f"identity change: {note}")
        if self.removed_keys:
            lines.append(f"keys missing from this run: {', '.join(self.removed_keys)}")
        if self.added_keys:
            lines.append(f"keys not in the snapshot: {', '.join(self.added_keys)}")
        if self.drifts:
            rows = [
                [
                    drift.key,
                    drift.metric,
                    drift.golden,
                    drift.current,
                    f"{drift.rel_delta:+.3%}" if drift.golden else "new",
                ]
                for drift in self.drifts
            ]
            lines.append(
                format_table(
                    ["Pair", "Metric", "Golden", "Current", "Drift"],
                    rows,
                    title=f"{len(self.drifts)} drifting metric(s)",
                )
            )
        if not lines:
            lines.append("golden snapshot reproduced exactly")
        if telemetry and GLOBAL_METRICS.total_pairs:
            lines.append(GLOBAL_METRICS.report(per_config=False))
        return "\n".join(lines)


class GoldenStore:
    """JSON-backed snapshot of golden metrics, keyed ``workload@@system``."""

    def __init__(self, path: Optional[Path] = None) -> None:
        self.path = Path(path) if path is not None else default_store_path()

    @staticmethod
    def key(workload_name: str, system_name: str) -> str:
        return f"{workload_name}@@{system_name}"

    def exists(self) -> bool:
        return self.path.is_file()

    def load(self) -> Dict[str, object]:
        with open(self.path) as handle:
            return json.load(handle)

    def bless(self, results: Sequence[SimResult], note: Optional[str] = None) -> None:
        """Freeze ``results`` as the new snapshot (atomic replace).

        ``note`` is free-form provenance recorded alongside the snapshot —
        use it to say *why* a re-bless happened (e.g. "digest format
        refresh, zero metric drift") so a future diff against history has
        the context.
        """
        snapshot = {
            "model_rev": MODEL_REV,
            "entries": {
                self.key(r.workload_name, r.system_name): _snapshot_entry(r)
                for r in results
            },
        }
        if note:
            snapshot["note"] = note
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".json.tmp")
        with open(tmp, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        tmp.replace(self.path)

    def compare(self, results: Sequence[SimResult]) -> DriftReport:
        """Diff ``results`` against the snapshot."""
        snapshot = self.load()
        entries: Dict[str, Dict] = snapshot.get("entries", {})
        report = DriftReport(model_rev_golden=int(snapshot.get("model_rev", -1)))

        current: Dict[str, SimResult] = {
            self.key(r.workload_name, r.system_name): r for r in results
        }
        report.removed_keys = sorted(set(entries) - set(current))
        report.added_keys = sorted(set(current) - set(entries))
        for key in sorted(set(entries) & set(current)):
            golden_entry = entries[key]
            result = current[key]
            for name, side, fresh in (
                ("workload", golden_entry.get("workload_digest"), result.workload_digest),
                ("system", golden_entry.get("system_digest"), result.system_digest),
            ):
                if side != fresh:
                    report.digest_changes.append(f"{key}: {name} digest moved")
            golden_metrics: Dict[str, float] = golden_entry.get("metrics", {})
            fresh_metrics = metrics_of(result)
            for metric in sorted(set(golden_metrics) | set(fresh_metrics)):
                golden_value = float(golden_metrics.get(metric, 0.0))
                fresh_value = float(fresh_metrics.get(metric, 0.0))
                if golden_value == fresh_value:
                    continue
                scale = max(abs(golden_value), abs(fresh_value))
                if abs(fresh_value - golden_value) <= REL_TOLERANCE * scale:
                    continue
                report.drifts.append(
                    MetricDrift(key, metric, golden_value, fresh_value)
                )
        return report


def run_golden_matrix(
    configs: Optional[Sequence[SystemConfig]] = None,
    workloads: Optional[Sequence[Workload]] = None,
) -> List[SimResult]:
    """Simulate the golden matrix; every result is invariant-checked."""
    configs = list(configs) if configs is not None else golden_configs()
    workloads = list(workloads) if workloads is not None else golden_workloads()
    per_config = run_suites(configs, workloads=workloads)
    results: List[SimResult] = []
    for config, suite in zip(configs, per_config):
        for result in suite.values():
            violations = check_result(result, config=config)
            if violations:
                raise AssertionError(
                    f"invariant violation in golden matrix "
                    f"({result.workload_name} on {config.name}): {violations[0]}"
                )
            results.append(result)
    return results


def bless(
    store: Optional[GoldenStore] = None, note: Optional[str] = None
) -> Tuple[int, Path]:
    """Run the matrix and freeze it; returns ``(n_entries, store path)``."""
    store = store or GoldenStore()
    results = run_golden_matrix()
    store.bless(results, note=note)
    return len(results), store.path


def compare(store: Optional[GoldenStore] = None) -> DriftReport:
    """Run the matrix and diff it against the snapshot."""
    store = store or GoldenStore()
    if not store.exists():
        raise FileNotFoundError(
            f"no golden snapshot at {store.path}; run with --bless first"
        )
    return store.compare(run_golden_matrix())
