"""Hierarchical package-ring x board topology.

Beyond one package's GPM budget, the natural scale-out unit is the
package itself: rings of :data:`PACKAGE_SIZE` GPMs on package (the
paper's baseline fabric), with one gateway GPM per package hanging on a
board-level ring at board-class parameters
(:data:`~repro.interconnect.board.BOARD_AGGREGATE_GBPS` aggregate,
:data:`~repro.interconnect.board.BOARD_HOP_LATENCY_CYCLES` per hop) —
Section 6's multi-GPU board generalized to many packages.

Modeling notes:

* Routing is minimal-hop, so the fixed 256 GB/s board ring becomes the
  fabric's bottleneck as soon as cross-package traffic exceeds it —
  the collapse point the scale-out study is built to expose.  Unlike
  the on-package tiers, board capacity does *not* scale with
  ``config.link_bandwidth``.
* The energy model charges all link traffic at the config's single
  ``link_tier``; the board hops' higher per-bit cost is approximated
  away.  This keeps the result comparable with the flat topologies and
  is documented in DESIGN.md.
* ``n <= PACKAGE_SIZE`` degenerates to a plain on-package ring (built on
  :class:`~repro.interconnect.grid.GraphNetwork` rather than
  :class:`~repro.interconnect.ring.RingNetwork`, so routes are
  lowest-index-greedy instead of parity-tie-broken).
"""

from __future__ import annotations

from typing import List, Sequence

from .board import BOARD_AGGREGATE_GBPS, BOARD_HOP_LATENCY_CYCLES
from .grid import GraphNetwork, WeightedEdge

#: GPMs per package — the paper's 4-GPM building block (Section 3).
PACKAGE_SIZE = 4


def _ring_edges(
    nodes: Sequence[int], link_bandwidth: float, hop_latency: float
) -> List[WeightedEdge]:
    """Ring edges over an ordered node subset (1 node: none; 2: one edge)."""
    count = len(nodes)
    if count < 2:
        return []
    if count == 2:
        return [(nodes[0], nodes[1], link_bandwidth, hop_latency)]
    return [
        (nodes[i], nodes[(i + 1) % count], link_bandwidth, hop_latency)
        for i in range(count)
    ]


def hierarchical_edges(
    n_nodes: int, link_bandwidth: float, hop_latency: float
) -> List[WeightedEdge]:
    """Undirected weighted edge list of the package-ring x board fabric.

    GPMs ``[p*4, p*4+3]`` form package ``p``'s on-package ring at the
    config's link parameters; the first GPM of each package is its board
    gateway, and the gateways form a board ring at fixed board-class
    parameters.
    """
    packages = [
        list(range(start, min(start + PACKAGE_SIZE, n_nodes)))
        for start in range(0, n_nodes, PACKAGE_SIZE)
    ]
    edges: List[WeightedEdge] = []
    for members in packages:
        edges.extend(_ring_edges(members, link_bandwidth, hop_latency))
    gateways = [members[0] for members in packages]
    edges.extend(
        _ring_edges(gateways, BOARD_AGGREGATE_GBPS, BOARD_HOP_LATENCY_CYCLES)
    )
    return edges


def make_hierarchical(
    n_nodes: int,
    link_bandwidth_bytes_per_cycle: float,
    hop_latency_cycles: float = 32.0,
    name: str = "hier",
) -> GraphNetwork:
    """Build the hierarchical network (ring-compatible, walker-ready)."""
    return GraphNetwork(
        n_nodes,
        hierarchical_edges(
            n_nodes, link_bandwidth_bytes_per_cycle, hop_latency_cycles
        ),
        name=name,
    )
