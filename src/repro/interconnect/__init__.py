"""Interconnect substrate: links, the on-package ring, crossbars, board tier."""

from .board import (
    BOARD_AGGREGATE_GBPS,
    BOARD_HOP_LATENCY_CYCLES,
    make_board_interconnect,
)
from .crossbar import GPMCrossbar
from .fully_connected import FullyConnectedNetwork, iso_budget_link_bandwidth
from .link import Link
from .ring import CLOCKWISE, COUNTER_CLOCKWISE, RingNetwork

__all__ = [
    "BOARD_AGGREGATE_GBPS",
    "BOARD_HOP_LATENCY_CYCLES",
    "make_board_interconnect",
    "GPMCrossbar",
    "FullyConnectedNetwork",
    "iso_budget_link_bandwidth",
    "Link",
    "CLOCKWISE",
    "COUNTER_CLOCKWISE",
    "RingNetwork",
]
