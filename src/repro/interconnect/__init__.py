"""Interconnect substrate: links, topologies (ring/FC/mesh/torus/hier), board tier."""

from .board import (
    BOARD_AGGREGATE_GBPS,
    BOARD_HOP_LATENCY_CYCLES,
    make_board_interconnect,
)
from .crossbar import GPMCrossbar
from .fully_connected import FullyConnectedNetwork, iso_budget_link_bandwidth
from .grid import GraphNetwork
from .hierarchical import PACKAGE_SIZE, make_hierarchical
from .link import Link
from .mesh import grid_dims, make_mesh
from .ring import CLOCKWISE, COUNTER_CLOCKWISE, RingNetwork
from .topology import (
    TopologyDescriptor,
    build_network,
    get_topology,
    topology_names,
)
from .torus import make_torus

__all__ = [
    "BOARD_AGGREGATE_GBPS",
    "BOARD_HOP_LATENCY_CYCLES",
    "make_board_interconnect",
    "GPMCrossbar",
    "FullyConnectedNetwork",
    "iso_budget_link_bandwidth",
    "GraphNetwork",
    "PACKAGE_SIZE",
    "make_hierarchical",
    "Link",
    "grid_dims",
    "make_mesh",
    "CLOCKWISE",
    "COUNTER_CLOCKWISE",
    "RingNetwork",
    "TopologyDescriptor",
    "build_network",
    "get_topology",
    "topology_names",
    "make_torus",
]
