"""GPM-local crossbar (GPM-Xbar in Figure 3).

Inside a GPM, SMs reach the local L2 slice and the ring ports through an
on-die crossbar.  On-chip wires are not a bottleneck in the paper ("10s of
TB/s", Table 2), so the crossbar is modeled as a small fixed latency with
unbounded bandwidth; its role in the code is routing bookkeeping — deciding
whether a request stays on-die or is handed to the ring — and counting that
split for the locality metrics.
"""

from __future__ import annotations


class GPMCrossbar:
    """Routes SM memory requests to the local memory partition or the ring.

    Parameters
    ----------
    gpm_id:
        Index of the GPM this crossbar belongs to (its ring port).
    latency_cycles:
        One-way traversal latency of the on-die fabric.
    """

    __slots__ = ("gpm_id", "latency_cycles", "local_requests", "remote_requests")

    def __init__(self, gpm_id: int, latency_cycles: float = 5.0) -> None:
        if latency_cycles < 0:
            raise ValueError(f"latency_cycles must be non-negative, got {latency_cycles}")
        self.gpm_id = gpm_id
        self.latency_cycles = latency_cycles
        self.local_requests = 0
        self.remote_requests = 0

    def classify(self, home_partition: int) -> bool:
        """Record and return whether ``home_partition`` is local to this GPM."""
        local = home_partition == self.gpm_id
        if local:
            self.local_requests += 1
        else:
            self.remote_requests += 1
        return local

    @property
    def total_requests(self) -> int:
        """All requests routed through this crossbar."""
        return self.local_requests + self.remote_requests

    @property
    def locality_fraction(self) -> float:
        """Fraction of routed requests that stayed on-die."""
        if not self.total_requests:
            return 0.0
        return self.local_requests / self.total_requests

    def reset(self) -> None:
        """Clear routing counters."""
        self.local_requests = 0
        self.remote_requests = 0
