"""2-D mesh inter-GPM topology.

Section 3.2 names "a modular on-package ring or mesh interconnect
network"; the ring is the paper's baseline and this module supplies the
mesh for the scale-out study.  GPMs sit on an ``rows x cols`` grid (the
most-square factorization of ``n``) with a link between horizontal and
vertical neighbors — no wraparound.  Nodes are numbered column-major so
the canonical half-split used by bisection accounting cuts between the
middle columns, which for a grid with ``rows <= cols`` is a minimum
bisection: ``rows`` links for a mesh.

Meshes trade the ring's constant per-node port count for hop counts that
grow as ``sqrt(n)`` instead of ``n`` — the reason the study's 16- and
64-GPM points favor grids.
"""

from __future__ import annotations

from math import isqrt
from typing import List, Tuple

from .grid import GraphNetwork, WeightedEdge


def grid_dims(n_nodes: int) -> Tuple[int, int]:
    """Most-square ``(rows, cols)`` factorization with ``rows <= cols``.

    Picks the largest divisor of ``n`` not exceeding ``sqrt(n)``; a prime
    count degenerates to a ``1 x n`` line.
    """
    if n_nodes <= 0:
        raise ValueError(f"n_nodes must be positive, got {n_nodes}")
    rows = 1
    for divisor in range(1, isqrt(n_nodes) + 1):
        if n_nodes % divisor == 0:
            rows = divisor
    return rows, n_nodes // rows


def grid_node(row: int, col: int, rows: int) -> int:
    """Column-major node id of grid position ``(row, col)``."""
    return col * rows + row


def mesh_edges(
    n_nodes: int, link_bandwidth: float, hop_latency: float
) -> List[WeightedEdge]:
    """Undirected weighted edge list of the ``n``-node 2-D mesh."""
    rows, cols = grid_dims(n_nodes)
    edges: List[WeightedEdge] = []
    for col in range(cols):
        for row in range(rows):
            here = grid_node(row, col, rows)
            if row + 1 < rows:
                edges.append(
                    (here, grid_node(row + 1, col, rows), link_bandwidth, hop_latency)
                )
            if col + 1 < cols:
                edges.append(
                    (here, grid_node(row, col + 1, rows), link_bandwidth, hop_latency)
                )
    return edges


def make_mesh(
    n_nodes: int,
    link_bandwidth_bytes_per_cycle: float,
    hop_latency_cycles: float = 32.0,
    name: str = "mesh",
) -> GraphNetwork:
    """Build the mesh network (ring-compatible protocol, walker-ready)."""
    return GraphNetwork(
        n_nodes,
        mesh_edges(n_nodes, link_bandwidth_bytes_per_cycle, hop_latency_cycles),
        name=name,
    )
