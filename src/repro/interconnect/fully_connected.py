"""Fully-connected (all-to-all) inter-GPM topology.

Section 3.2 notes that "other network topologies are also possible
especially with growing number of GPMs, but a full exploration of
inter-GPM network topologies is outside the scope of this paper".  This
module provides the natural alternative to the ring for package-level
integration: a direct link between every GPM pair.

Trade-off captured by the model: all-to-all needs ``n*(n-1)/2`` links
instead of ``n``, so at a fixed per-GPM escape-bandwidth budget each link
is thinner — but every transfer is exactly one hop (no pass-through
traffic and half the worst-case latency of a 4-node ring).  The
``topology_study`` experiment runs the iso-budget comparison.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .link import REQUEST, RESPONSE, Link


class FullyConnectedNetwork:
    """Direct links between every pair of nodes.

    Implements the same interface as
    :class:`~repro.interconnect.ring.RingNetwork` so
    :class:`~repro.core.gpu.GPUSystem` can swap topologies.

    Parameters
    ----------
    n_nodes:
        Number of GPMs.
    link_bandwidth_bytes_per_cycle:
        Bandwidth of one link, total across both directions (each
        direction gets half), matching the ring's convention.
    hop_latency_cycles:
        Fixed latency of the single hop.
    """

    def __init__(
        self,
        n_nodes: int,
        link_bandwidth_bytes_per_cycle: float,
        hop_latency_cycles: float = 32.0,
        name: str = "fc",
    ) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        self.n_nodes = n_nodes
        self.hop_latency_cycles = hop_latency_cycles
        self.link_bandwidth = link_bandwidth_bytes_per_cycle
        self.name = name
        per_direction = link_bandwidth_bytes_per_cycle / 2.0
        self._links: Dict[Tuple[int, int], Link] = {}
        for src in range(n_nodes):
            for dst in range(n_nodes):
                if src != dst:
                    self._links[(src, dst)] = Link(
                        per_direction,
                        hop_latency_cycles,
                        name=f"{name}.{src}->{dst}",
                    )

    def hops_between(self, src: int, dst: int) -> int:
        """0 for self, 1 for everything else."""
        self._check_node(src)
        self._check_node(dst)
        return 0 if src == dst else 1

    def route(self, src: int, dst: int) -> List[Link]:
        """The single direct link (empty for self-transfers)."""
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            return []
        return [self._links[(src, dst)]]

    def transfer(
        self, now: float, src: int, dst: int, n_bytes: int, channel: str = REQUEST
    ) -> float:
        """One-hop transfer; returns the arrival cycle."""
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            return now
        link = self._links[(src, dst)]
        pipe = link.response_pipe if channel == RESPONSE else link.request_pipe
        return pipe.transfer(now, n_bytes) + link.latency_cycles

    @property
    def total_link_bytes(self) -> int:
        """Aggregate bytes carried across all directed links."""
        return sum(link.bytes_transferred for link in self._links.values())

    @property
    def links(self) -> List[Link]:
        """All directed links (for inspection and tests)."""
        return list(self._links.values())

    def average_hops_uniform(self) -> float:
        """Always 1.0 between distinct nodes."""
        return 0.0 if self.n_nodes == 1 else 1.0

    def diameter(self) -> int:
        """1 between any distinct pair (0 for a single node)."""
        return 0 if self.n_nodes == 1 else 1

    def bisection_bandwidth(self) -> float:
        """Bandwidth across the half-split: one direct link per cross pair."""
        half = self.n_nodes // 2
        return half * (self.n_nodes - half) * self.link_bandwidth

    def reset(self) -> None:
        """Clear all link counters and timing state."""
        for link in self._links.values():
            link.reset()

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range for {self.n_nodes}-node network")


def iso_budget_link_bandwidth(ring_setting: float, n_nodes: int) -> float:
    """Per-link bandwidth giving all-to-all the ring's per-GPM escape budget.

    A ring node has ports on 2 links; an all-to-all node on ``n-1`` links.
    Holding the per-GPM escape bandwidth constant (2 x setting), each
    all-to-all link gets ``2 * ring_setting / (n - 1)``.
    """
    if n_nodes < 2:
        raise ValueError("iso-budget comparison needs at least two nodes")
    return 2.0 * ring_setting / (n_nodes - 1)
