"""Generic routed-graph network: arbitrary static topologies over links.

Mesh, torus, and hierarchical package/board fabrics share everything but
their edge lists.  :class:`GraphNetwork` takes an undirected weighted
edge list, builds one directional :class:`~repro.interconnect.link.Link`
per direction of each edge, and precomputes deterministic shortest-path
routes (BFS distances, greedy next-hop with lowest-index tie-break).  It
exposes the same protocol as :class:`~repro.interconnect.ring.RingNetwork`
— ``route()`` / ``hops_between()`` / ``transfer()`` / ``total_link_bytes``
/ ``links`` / ``reset()`` — plus the precomputed ``_routes`` table the
array-backed batch paths and generated walkers key on, so every topology
built on this class gets the fast engine paths for free.

The module also hosts the pure-graph math (:func:`bfs_distances`,
:func:`remote_hop_counts`, :func:`graph_diameter`) the topology registry
uses for its closed-form-free analytical dispatch.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from .link import REQUEST, RESPONSE, Link

#: One undirected edge: (node u, node v, total bandwidth across both
#: directions in bytes/cycle, per-hop latency in cycles).
WeightedEdge = Tuple[int, int, float, float]


def bfs_distances(n_nodes: int, edges: Iterable[Tuple[int, int]]) -> List[List[int]]:
    """All-pairs shortest-path hop counts of an undirected graph.

    Plain per-source BFS — the fabrics modeled here stay well under a
    hundred nodes, so O(n * (n + e)) is instant.  Unreachable pairs keep
    distance -1 (callers treat a disconnected fabric as a construction
    error).
    """
    adjacency: List[List[int]] = [[] for _ in range(n_nodes)]
    for u, v in edges:
        adjacency[u].append(v)
        adjacency[v].append(u)
    for neighbors in adjacency:
        neighbors.sort()
    distances: List[List[int]] = []
    for src in range(n_nodes):
        dist = [-1] * n_nodes
        dist[src] = 0
        frontier = [src]
        while frontier:
            nxt: List[int] = []
            for node in frontier:
                for neighbor in adjacency[node]:
                    if dist[neighbor] < 0:
                        dist[neighbor] = dist[node] + 1
                        nxt.append(neighbor)
            frontier = nxt
        distances.append(dist)
    return distances


def remote_hop_counts(distances: Sequence[Sequence[int]]) -> Dict[int, int]:
    """Histogram of shortest-path hops over all ordered remote pairs."""
    counts: Dict[int, int] = {}
    for src, row in enumerate(distances):
        for dst, hops in enumerate(row):
            if src != dst and hops > 0:
                counts[hops] = counts.get(hops, 0) + 1
    return counts


def graph_diameter(distances: Sequence[Sequence[int]]) -> int:
    """Largest finite shortest-path distance (0 for a single node)."""
    return max((hops for row in distances for hops in row), default=0)


class GraphNetwork:
    """A statically routed network over an arbitrary undirected edge list.

    Parameters
    ----------
    n_nodes:
        Number of GPMs (a single-node network is legal and link-free).
    edges:
        Undirected :data:`WeightedEdge` list; each entry materializes two
        directional links, one per direction, each granted *half* the
        edge's total bandwidth (the ring's full-duplex convention).
    name:
        Prefix for link names (telemetry and debugging).

    Routing is minimal and deterministic: per-pair shortest paths are
    walked greedily, preferring the lowest-numbered neighbor that stays
    on a shortest path, and frozen into ``_routes`` at construction.
    """

    def __init__(
        self,
        n_nodes: int,
        edges: Sequence[WeightedEdge],
        name: str = "graph",
    ) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        self.n_nodes = n_nodes
        self.name = name
        self.edges: List[WeightedEdge] = list(edges)
        self._link_by_pair: Dict[Tuple[int, int], Link] = {}
        self._link_order: List[Link] = []
        for u, v, bandwidth, latency in self.edges:
            if not 0 <= u < n_nodes or not 0 <= v < n_nodes or u == v:
                raise ValueError(f"bad edge ({u}, {v}) for {n_nodes} nodes")
            if (u, v) in self._link_by_pair:
                raise ValueError(f"duplicate edge ({u}, {v})")
            per_direction = bandwidth / 2.0
            for src, dst in ((u, v), (v, u)):
                link = Link(
                    per_direction, latency, name=f"{name}.{src}->{dst}"
                )
                self._link_by_pair[(src, dst)] = link
                self._link_order.append(link)
        self._dist = bfs_distances(
            n_nodes, [(u, v) for u, v, _, _ in self.edges]
        )
        for src, row in enumerate(self._dist):
            for dst, hops in enumerate(row):
                if hops < 0:
                    raise ValueError(
                        f"{name!r} fabric is disconnected: no path {src}->{dst}"
                    )
        adjacency: List[List[int]] = [[] for _ in range(n_nodes)]
        for u, v, _, _ in self.edges:
            adjacency[u].append(v)
            adjacency[v].append(u)
        for neighbors in adjacency:
            neighbors.sort()
        # Shortest paths are static; precompute them so the per-transfer
        # hot path (and the generated walkers) is a tuple walk.
        self._routes: List[List[tuple]] = [
            [
                tuple(self._compute_route(src, dst, adjacency))
                for dst in range(n_nodes)
            ]
            for src in range(n_nodes)
        ]

    def _compute_route(
        self, src: int, dst: int, adjacency: Sequence[Sequence[int]]
    ) -> List[Link]:
        if src == dst:
            return []
        path: List[Link] = []
        node = src
        while node != dst:
            target = self._dist[node][dst]
            step = next(
                neighbor
                for neighbor in adjacency[node]
                if self._dist[neighbor][dst] == target - 1
            )
            path.append(self._link_by_pair[(node, step)])
            node = step
        return path

    def hops_between(self, src: int, dst: int) -> int:
        """Minimal hop count between two nodes."""
        self._check_node(src)
        self._check_node(dst)
        return self._dist[src][dst]

    def route(self, src: int, dst: int) -> List[Link]:
        """Ordered list of directional links on the shortest path."""
        self._check_node(src)
        self._check_node(dst)
        return list(self._routes[src][dst])

    def transfer(
        self, now: float, src: int, dst: int, n_bytes: int, channel: str = REQUEST
    ) -> float:
        """Move ``n_bytes`` from ``src`` to ``dst``; returns arrival cycle.

        Each hop serializes on its link's ``channel`` virtual channel and
        adds that link's latency; same-node transfers are free.
        """
        time = now
        if channel == RESPONSE:
            for link in self._routes[src][dst]:
                time = link.response_pipe.transfer(time, n_bytes) + link.latency_cycles
        else:
            for link in self._routes[src][dst]:
                time = link.request_pipe.transfer(time, n_bytes) + link.latency_cycles
        return time

    @property
    def total_link_bytes(self) -> int:
        """Aggregate bytes carried, counting each hop traversed."""
        return sum(link.bytes_transferred for link in self._link_order)

    @property
    def links(self) -> List[Link]:
        """All directional links, in construction order."""
        return list(self._link_order)

    def average_hops_uniform(self) -> float:
        """Mean shortest-path hop count over distinct uniformly random pairs."""
        if self.n_nodes == 1:
            return 0.0
        total = sum(
            hops for row in self._dist for hops in row if hops > 0
        )
        return total / (self.n_nodes * (self.n_nodes - 1))

    def diameter(self) -> int:
        """Largest shortest-path hop count between any two nodes."""
        return graph_diameter(self._dist)

    def bisection_bandwidth(self) -> float:
        """Bandwidth across the canonical half-split, both directions.

        The cut separates nodes ``0 .. n//2 - 1`` from the rest; the sum
        is over the per-direction bandwidth of every directional link
        crossing it.  For the regular fabrics built on this class the
        canonical split is a minimum cut, so this is the classical
        bisection bandwidth.
        """
        half = self.n_nodes // 2
        total = 0.0
        for u, v, bandwidth, _ in self.edges:
            if (u < half) != (v < half):
                total += bandwidth  # both directions, bandwidth/2 each
        return total

    def reset(self) -> None:
        """Clear all link counters and timing state."""
        for link in self._link_order:
            link.reset()

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValueError(
                f"node {node} out of range for {self.n_nodes}-node network"
            )
