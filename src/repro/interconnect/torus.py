"""2-D torus inter-GPM topology.

The mesh of :mod:`repro.interconnect.mesh` plus wraparound links in both
grid dimensions.  Wraparound halves the diameter and doubles the
bisection bandwidth at the cost of two extra ports on every node —
the classic NoC trade the scale-out study quantifies at 8/16/64 GPMs.

Degenerate dimensions are handled by construction: a dimension of size
2's wraparound link would duplicate the existing mesh edge (it is
dropped), and a dimension of size 1 has no links at all, so a prime node
count yields a plain ring.
"""

from __future__ import annotations

from typing import FrozenSet, List, Set

from .grid import GraphNetwork, WeightedEdge
from .mesh import grid_dims, grid_node


def torus_edges(
    n_nodes: int, link_bandwidth: float, hop_latency: float
) -> List[WeightedEdge]:
    """Undirected weighted edge list of the ``n``-node 2-D torus."""
    rows, cols = grid_dims(n_nodes)
    edges: List[WeightedEdge] = []
    seen: Set[FrozenSet[int]] = set()
    for col in range(cols):
        for row in range(rows):
            here = grid_node(row, col, rows)
            neighbors = (
                grid_node((row + 1) % rows, col, rows),
                grid_node(row, (col + 1) % cols, rows),
            )
            for there in neighbors:
                if here == there:
                    continue  # dimension of size 1 has no links
                key = frozenset((here, there))
                if key in seen:
                    continue  # dimension of size 2: wrap == mesh edge
                seen.add(key)
                edges.append(
                    (min(here, there), max(here, there), link_bandwidth, hop_latency)
                )
    return edges


def make_torus(
    n_nodes: int,
    link_bandwidth_bytes_per_cycle: float,
    hop_latency_cycles: float = 32.0,
    name: str = "torus",
) -> GraphNetwork:
    """Build the torus network (ring-compatible protocol, walker-ready)."""
    return GraphNetwork(
        n_nodes,
        torus_edges(n_nodes, link_bandwidth_bytes_per_cycle, hop_latency_cycles),
        name=name,
    )
