"""Topology registry: one place that knows every inter-GPM fabric.

Every registered topology supplies two things:

* an **edge builder** — ``(n_nodes, link_bandwidth, hop_latency) ->``
  undirected weighted edge list — from which all analytical quantities
  (hop distributions, port counts, diameter, bisection bandwidth, PHY
  totals) are derived generically by BFS, with no per-topology closed
  forms to keep in sync;
* a **network factory** — ``(n_nodes, link_bandwidth, hop_latency) ->``
  a network object implementing the ring protocol (``route`` /
  ``hops_between`` / ``transfer`` / ``total_link_bytes`` / ``links`` /
  ``reset`` plus the precomputed ``_routes`` the fast engine paths key
  on).  ``ring`` and ``fully_connected`` keep their dedicated classes
  (bit-identical timing with pre-registry code); mesh/torus/hierarchical
  build on :class:`~repro.interconnect.grid.GraphNetwork`.

``core.config`` validates ``SystemConfig.topology`` against this
registry, ``core.gpu`` builds fabrics through :func:`build_network`, and
``core.analytical`` / ``validate.invariants`` dispatch their math
through the query helpers — so registering a topology here is the single
step that makes it simulatable, analyzable, and validated.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Tuple

from .fully_connected import FullyConnectedNetwork
from .grid import (
    GraphNetwork,
    WeightedEdge,
    bfs_distances,
    graph_diameter,
    remote_hop_counts,
)
from .hierarchical import hierarchical_edges, make_hierarchical
from .mesh import mesh_edges, make_mesh
from .ring import RingNetwork
from .torus import make_torus, torus_edges

EdgeBuilder = Callable[[int, float, float], List[WeightedEdge]]
NetworkFactory = Callable[[int, float, float], object]


def ring_edges(
    n_nodes: int, link_bandwidth: float, hop_latency: float
) -> List[WeightedEdge]:
    """Undirected edge list of the paper's baseline ring.

    The two-node case has a single physical link pair (matching the
    collapsed :class:`~repro.interconnect.ring.RingNetwork` degenerate
    form), not two parallel pairs.
    """
    if n_nodes < 2:
        return []
    if n_nodes == 2:
        return [(0, 1, link_bandwidth, hop_latency)]
    return [
        (node, (node + 1) % n_nodes, link_bandwidth, hop_latency)
        for node in range(n_nodes)
    ]


def fully_connected_edges(
    n_nodes: int, link_bandwidth: float, hop_latency: float
) -> List[WeightedEdge]:
    """Undirected edge list of the all-to-all fabric (one edge per pair)."""
    return [
        (u, v, link_bandwidth, hop_latency)
        for u in range(n_nodes)
        for v in range(u + 1, n_nodes)
    ]


@dataclass(frozen=True)
class TopologyDescriptor:
    """One registered fabric: its edge math and its network constructor."""

    name: str
    description: str
    edge_builder: EdgeBuilder
    network_factory: NetworkFactory


def _ring_factory(n: int, bandwidth: float, latency: float) -> RingNetwork:
    return RingNetwork(n, bandwidth, latency)


def _fc_factory(n: int, bandwidth: float, latency: float) -> FullyConnectedNetwork:
    return FullyConnectedNetwork(n, bandwidth, latency)


_REGISTRY: Dict[str, TopologyDescriptor] = {
    "ring": TopologyDescriptor(
        name="ring",
        description="bidirectional ring (paper baseline, Section 3.2)",
        edge_builder=ring_edges,
        network_factory=_ring_factory,
    ),
    "fully_connected": TopologyDescriptor(
        name="fully_connected",
        description="direct link between every GPM pair",
        edge_builder=fully_connected_edges,
        network_factory=_fc_factory,
    ),
    "mesh": TopologyDescriptor(
        name="mesh",
        description="2-D mesh on the most-square grid, no wraparound",
        edge_builder=mesh_edges,
        network_factory=make_mesh,
    ),
    "torus": TopologyDescriptor(
        name="torus",
        description="2-D torus (mesh plus wraparound links)",
        edge_builder=torus_edges,
        network_factory=make_torus,
    ),
    "hierarchical": TopologyDescriptor(
        name="hierarchical",
        description="4-GPM package rings bridged by a fixed board ring",
        edge_builder=hierarchical_edges,
        network_factory=make_hierarchical,
    ),
}


def topology_names() -> Tuple[str, ...]:
    """Registered topology names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_topology(name: str) -> TopologyDescriptor:
    """Look up a topology descriptor; unknown names fail loudly."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(topology_names())
        raise ValueError(
            f"unknown topology {name!r}; expected one of: {known}"
        ) from None


def build_network(
    topology: str,
    n_nodes: int,
    link_bandwidth_bytes_per_cycle: float,
    hop_latency_cycles: float,
):
    """Construct the network object for a topology (ring protocol)."""
    descriptor = get_topology(topology)
    return descriptor.network_factory(
        n_nodes, link_bandwidth_bytes_per_cycle, hop_latency_cycles
    )


@lru_cache(maxsize=None)
def _distances(topology: str, n_nodes: int) -> Tuple[Tuple[int, ...], ...]:
    """Cached all-pairs hop counts from the topology's unweighted edges."""
    edges = get_topology(topology).edge_builder(n_nodes, 1.0, 0.0)
    rows = bfs_distances(n_nodes, [(u, v) for u, v, _, _ in edges])
    return tuple(tuple(row) for row in rows)


@lru_cache(maxsize=None)
def undirected_edge_count(topology: str, n_nodes: int) -> int:
    """Number of undirected physical link pairs in the fabric."""
    return len(get_topology(topology).edge_builder(n_nodes, 1.0, 0.0))


def link_count(topology: str, n_nodes: int) -> int:
    """Distinct directional links (two per undirected edge)."""
    return 2 * undirected_edge_count(topology, n_nodes)


def mean_ports(topology: str, n_nodes: int) -> float:
    """Average directional links touching one GPM.

    Exact for node-symmetric fabrics (ring, torus, fully connected); a
    mean for irregular ones (mesh corners, hierarchical gateways).
    """
    if n_nodes <= 0:
        raise ValueError(f"n_nodes must be positive, got {n_nodes}")
    return 2.0 * link_count(topology, n_nodes) / n_nodes


def average_hops(topology: str, n_nodes: int) -> float:
    """Mean shortest-path hops between distinct nodes, by BFS."""
    if n_nodes <= 1:
        return 0.0
    dist = _distances(topology, n_nodes)
    total = sum(hops for row in dist for hops in row if hops > 0)
    return total / (n_nodes * (n_nodes - 1))


def remote_distance_pmf(topology: str, n_nodes: int) -> List[Tuple[int, float]]:
    """``[(hops, probability), ...]`` over one node's remote destinations."""
    if n_nodes <= 1:
        return []
    counts = remote_hop_counts(_distances(topology, n_nodes))
    total = sum(counts.values())
    return [(hops, count / total) for hops, count in sorted(counts.items())]


def diameter(topology: str, n_nodes: int) -> int:
    """Largest shortest-path hop count between any two nodes."""
    return graph_diameter(_distances(topology, n_nodes))


def bisection_bandwidth(
    topology: str, n_nodes: int, link_bandwidth: float
) -> float:
    """Total bandwidth crossing the canonical half-split, both directions.

    The cut separates nodes ``0 .. n//2 - 1`` from the rest.  Node
    numbering in each registered topology is chosen so this is a minimum
    bisection (column-major grids cut between middle columns; contiguous
    packages cut between board links), and edge weights are honored, so
    the hierarchical fabric reports its fixed board capacity rather than
    a scaled package figure.
    """
    edges = get_topology(topology).edge_builder(n_nodes, link_bandwidth, 0.0)
    half = n_nodes // 2
    return sum(
        bandwidth for u, v, bandwidth, _ in edges if (u < half) != (v < half)
    )


def total_fabric_bandwidth(
    topology: str, n_nodes: int, link_bandwidth: float
) -> float:
    """Sum of all undirected edge bandwidths (total installed capacity).

    The budget model charges link PHY area/power against this figure
    (times two endpoints per edge); for the hierarchical fabric it mixes
    package-rate and fixed board-rate edges correctly.
    """
    edges = get_topology(topology).edge_builder(n_nodes, link_bandwidth, 0.0)
    return sum(bandwidth for _, _, bandwidth, _ in edges)
