"""Board-level interconnect for multi-GPU systems (Section 6).

A two-GPU board is topologically a two-node ring, so we reuse
:class:`~repro.interconnect.ring.RingNetwork`; what distinguishes the board
tier is its parameters: far lower bandwidth (256 GB/s aggregate next-gen
NVLink-class vs 768 GB/s *per link* on package) and far higher per-traversal
latency.  Energy per bit is also ~20x worse (Table 2), which the energy
model charges separately by tier.
"""

from __future__ import annotations

from .ring import RingNetwork

#: Aggregate next-generation board-level bandwidth assumed in Section 6.1
#: (GB/s).  Split across two directions.
BOARD_AGGREGATE_GBPS = 256.0

#: One-way latency of a board-level link traversal, in cycles at 1 GHz.
#: Board links cross connectors and longer traces; we charge ~10x the
#: on-package hop latency.
BOARD_HOP_LATENCY_CYCLES = 320.0


def make_board_interconnect(
    n_gpus: int = 2,
    aggregate_gbps: float = BOARD_AGGREGATE_GBPS,
    hop_latency_cycles: float = BOARD_HOP_LATENCY_CYCLES,
) -> RingNetwork:
    """Build the board-level network connecting discrete GPUs.

    ``aggregate_gbps`` is the total bidirectional bandwidth between a GPU
    pair; :class:`~repro.interconnect.ring.RingNetwork` splits it across
    the two directions.  At the 1 GHz simulation clock, GB/s and
    bytes/cycle are numerically equal.
    """
    if n_gpus < 2:
        raise ValueError(f"a multi-GPU board needs at least 2 GPUs, got {n_gpus}")
    return RingNetwork(
        n_nodes=n_gpus,
        link_bandwidth_bytes_per_cycle=aggregate_gbps,
        hop_latency_cycles=hop_latency_cycles,
        name="board",
    )
