"""Point-to-point signaling links (GRS on-package, NVLink-class on-board).

A :class:`Link` is one *direction* of a physical channel: bandwidth pipes
plus a fixed propagation/SerDes latency.  The paper charges 32 cycles per
inter-GPM hop (Table 3) on top of serialization at the configured link
bandwidth (768 GB/s in the baseline).

Virtual networks
----------------
Each direction carries two virtual networks, mirroring real GPU NoCs:
the **request** network (read commands and write data) and the
**response** network (read data).  Real interconnects separate these
classes to avoid protocol deadlock; in this simulator the split also
serves a modeling purpose: the engine charges a whole memory
transaction's path in one pass, so response legs are booked ~150 cycles
deeper in simulated time than request legs issued immediately after.
With a single FIFO pipe per direction, shallow-timed requests would queue
behind earlier-issued but later-timed responses, creating a spurious
latency feedback loop (each store would inherit the previous read's
response timestamp and drag the DRAM queue along).  Separate networks
keep each traffic class internally time-ordered.  Each network is given
the full per-direction bandwidth; since requests are mostly small headers
the capacity double-count is bounded by the write-traffic share and is
documented in DESIGN.md.
"""

from __future__ import annotations

from ..memory.bandwidth import BandwidthPipe

#: Channel selectors for :meth:`Link.traverse`.
REQUEST = "request"
RESPONSE = "response"


class Link:
    """One direction of a chip-to-chip link with command/data channels.

    Parameters
    ----------
    bandwidth_bytes_per_cycle:
        Peak payload bandwidth of this direction.
    latency_cycles:
        Fixed per-traversal latency (wire + SerDes + edge routing).
    """

    __slots__ = ("name", "latency_cycles", "request_pipe", "response_pipe")

    def __init__(
        self,
        bandwidth_bytes_per_cycle: float,
        latency_cycles: float = 32.0,
        name: str = "link",
    ) -> None:
        if latency_cycles < 0:
            raise ValueError(f"latency_cycles must be non-negative, got {latency_cycles}")
        self.name = name
        self.latency_cycles = latency_cycles
        self.request_pipe = BandwidthPipe(bandwidth_bytes_per_cycle, name=f"{name}.req")
        self.response_pipe = BandwidthPipe(bandwidth_bytes_per_cycle, name=f"{name}.rsp")

    def traverse(self, now: float, n_bytes: int, channel: str = REQUEST) -> float:
        """Send ``n_bytes`` across the link; returns the delivery cycle."""
        pipe = self.response_pipe if channel == RESPONSE else self.request_pipe
        return pipe.transfer(now, n_bytes) + self.latency_cycles

    @property
    def bytes_transferred(self) -> int:
        """Total payload carried by this direction (both networks)."""
        return self.request_pipe.bytes_transferred + self.response_pipe.bytes_transferred

    def utilization(self, elapsed_cycles: float) -> float:
        """Peak-bandwidth fraction used by the busier virtual network."""
        return max(
            self.request_pipe.utilization(elapsed_cycles),
            self.response_pipe.utilization(elapsed_cycles),
        )

    def reset(self) -> None:
        """Clear timing and counters."""
        self.request_pipe.reset()
        self.response_pipe.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link(name={self.name!r}, bw={self.request_pipe.bytes_per_cycle}B/cyc, "
            f"lat={self.latency_cycles}cyc)"
        )
