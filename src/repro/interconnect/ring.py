"""On-package ring network connecting GPMs.

The baseline MCM-GPU connects its GPM crossbars into "a modular on-package
ring or mesh interconnect network" (Section 3.2).  We implement the ring:
``n`` nodes, a clockwise and a counter-clockwise directional
:class:`~repro.interconnect.link.Link` between each adjacent pair, and
minimal (shortest-path) routing.  Each hop charges the link's fixed latency
plus serialization; multi-hop transfers occupy every link on the path, so a
message between opposite corners of a 4-GPM ring consumes bandwidth on two
links — exactly the pass-through pressure the paper's Section 3.3.1 sizing
analysis accounts for.
"""

from __future__ import annotations

from typing import List, Tuple

from .link import REQUEST, RESPONSE, Link

#: Direction constants for link indexing.
CLOCKWISE = 0
COUNTER_CLOCKWISE = 1


class RingNetwork:
    """A bidirectional ring of point-to-point links.

    Parameters
    ----------
    n_nodes:
        Number of GPMs on the ring.  A single-node ring is legal and carries
        no traffic (used for monolithic-GPU configurations).
    link_bandwidth_bytes_per_cycle:
        Bandwidth of one link, *total across both directions* — the
        quantity the paper sweeps ("768 GB/s per link").  Each direction
        gets half.  This calibration reproduces the paper's Section 3.3.1
        sizing: a 4-GPM ring at setting ``s`` offers each GPM ``2s`` of
        aggregate port bandwidth, so the 3 TB/s (``4b``) per-GPM demand is
        met exactly at the 1.5 TB/s setting and the 768 GB/s baseline runs
        ~2x short — the Figure 4 degradation regime.
    hop_latency_cycles:
        Fixed latency charged per hop (32 cycles in Table 3).
    """

    def __init__(
        self,
        n_nodes: int,
        link_bandwidth_bytes_per_cycle: float,
        hop_latency_cycles: float = 32.0,
        name: str = "ring",
    ) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        self.n_nodes = n_nodes
        self.hop_latency_cycles = hop_latency_cycles
        self.name = name
        # links[i][CLOCKWISE] goes i -> (i+1) % n; links[i][COUNTER_CLOCKWISE]
        # goes i -> (i-1) % n.
        self.link_bandwidth = link_bandwidth_bytes_per_cycle
        per_direction = link_bandwidth_bytes_per_cycle / 2.0
        self._links: List[Tuple[Link, Link]] = []
        if n_nodes == 2:
            # Degenerate ring: two nodes share ONE physical link pair
            # (forward 0->1, backward 1->0), matching the 2-port claim of
            # the analytical model.  Building the general ring here would
            # create two parallel pairs of which routing can only ever use
            # one, silently stranding half the modeled link bandwidth
            # (rev-8 fix).
            forward = Link(per_direction, hop_latency_cycles, name=f"{name}.0->1")
            backward = Link(per_direction, hop_latency_cycles, name=f"{name}.1->0")
            self._links.append((forward, backward))
        elif n_nodes > 1:
            for node in range(n_nodes):
                clockwise = Link(
                    per_direction,
                    hop_latency_cycles,
                    name=f"{name}.{node}->{(node + 1) % n_nodes}",
                )
                counter = Link(
                    per_direction,
                    hop_latency_cycles,
                    name=f"{name}.{node}->{(node - 1) % n_nodes}",
                )
                self._links.append((clockwise, counter))
        # Shortest paths are static; precompute them so the per-transfer
        # hot path is a tuple walk instead of route construction.
        self._routes: List[List[tuple]] = [
            [tuple(self._compute_route(src, dst)) for dst in range(n_nodes)]
            for src in range(n_nodes)
        ]

    def hops_between(self, src: int, dst: int) -> int:
        """Minimal hop count between two nodes."""
        self._check_node(src)
        self._check_node(dst)
        clockwise = (dst - src) % self.n_nodes
        return min(clockwise, self.n_nodes - clockwise)

    def route(self, src: int, dst: int) -> List[Link]:
        """Ordered list of directional links on the shortest path."""
        self._check_node(src)
        self._check_node(dst)
        return list(self._routes[src][dst])

    def _compute_route(self, src: int, dst: int) -> List[Link]:
        if src == dst or self.n_nodes == 1:
            return []
        if self.n_nodes == 2:
            # Single physical pair: forward carries 0->1, backward 1->0.
            pair = self._links[0]
            return [pair[CLOCKWISE] if src == 0 else pair[COUNTER_CLOCKWISE]]
        clockwise_hops = (dst - src) % self.n_nodes
        counter_hops = self.n_nodes - clockwise_hops
        path: List[Link] = []
        node = src
        # Antipodal pairs on an even ring have no shortest direction; break
        # the tie by source parity so opposite-corner traffic from different
        # sources spreads over both directions instead of piling onto the
        # clockwise half while the counter-clockwise links idle.
        if clockwise_hops < counter_hops or (
            clockwise_hops == counter_hops and src % 2 == 0
        ):
            for _ in range(clockwise_hops):
                path.append(self._links[node][CLOCKWISE])
                node = (node + 1) % self.n_nodes
        else:
            for _ in range(counter_hops):
                path.append(self._links[node][COUNTER_CLOCKWISE])
                node = (node - 1) % self.n_nodes
        return path

    def transfer(
        self, now: float, src: int, dst: int, n_bytes: int, channel: str = REQUEST
    ) -> float:
        """Move ``n_bytes`` from ``src`` to ``dst``; returns arrival cycle.

        Each hop serializes on its link's ``channel`` virtual channel and
        adds the hop latency.  Transfers between the same node return
        immediately (intra-GPM traffic never reaches the ring).
        """
        time = now
        if channel == RESPONSE:
            for link in self._routes[src][dst]:
                time = link.response_pipe.transfer(time, n_bytes) + link.latency_cycles
        else:
            for link in self._routes[src][dst]:
                time = link.request_pipe.transfer(time, n_bytes) + link.latency_cycles
        return time

    @property
    def total_link_bytes(self) -> int:
        """Aggregate bytes carried, counting each hop traversed.

        This is the quantity the paper plots as "inter-GPM bandwidth": total
        on-package link traffic divided by execution time.
        """
        return sum(
            clockwise.bytes_transferred + counter.bytes_transferred
            for clockwise, counter in self._links
        )

    @property
    def links(self) -> List[Link]:
        """All directional links (for inspection and tests)."""
        return [link for pair in self._links for link in pair]

    def average_hops_uniform(self) -> float:
        """Mean shortest-path hop count over distinct uniformly random pairs."""
        if self.n_nodes == 1:
            return 0.0
        total = sum(
            self.hops_between(src, dst)
            for src in range(self.n_nodes)
            for dst in range(self.n_nodes)
            if src != dst
        )
        return total / (self.n_nodes * (self.n_nodes - 1))

    def diameter(self) -> int:
        """Largest shortest-path hop count between any two nodes."""
        return self.n_nodes // 2

    def bisection_bandwidth(self) -> float:
        """Bandwidth across the half-split, both directions.

        Splitting a ring in half cuts two links (one for the degenerate
        two-node ring, which has a single physical pair).
        """
        if self.n_nodes <= 1:
            return 0.0
        if self.n_nodes == 2:
            return self.link_bandwidth
        return 2.0 * self.link_bandwidth

    def reset(self) -> None:
        """Clear all link counters and timing state."""
        for link in self.links:
            link.reset()

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range for {self.n_nodes}-node ring")
