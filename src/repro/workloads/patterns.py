"""Memory access-pattern generators for the synthetic workload suite.

Each pattern produces, for one CTA, the flat sequence of line addresses its
warp groups will touch.  The patterns model the application classes named
in the paper's evaluation:

* :class:`StreamingPattern` — bulk sequential sweeps (Stream triad,
  NN-Conv activations, Srad): each CTA owns a contiguous chunk.
* :class:`StencilPattern` — iterative nearest-neighbor solvers (Lulesh,
  MiniAMR, CFD, CoMD, Nekbone): chunked like streaming plus halo accesses
  into neighboring CTAs' chunks, identical across kernel re-launches.
* :class:`IrregularPattern` — graph workloads (BFS, SSSP, MST): uniform
  random over the footprint with an optional hot vertex region.
* :class:`HotsetPattern` — clustering/reduction workloads (Kmeans): a
  small shared hot region (centroids) plus a private streaming sweep.

Post-2017 ML-era families extend the suite beyond the paper's evaluation:

* :class:`GemmTilePattern` — blocked GEMM: output-tile CTAs sweep shared
  A-row and B-column panels per k-step (dense cross-CTA reuse).
* :class:`AttentionPattern` — attention-style gather: causal
  recency-skewed reads of a shared KV region plus sink tokens.
* :class:`AllReducePattern` — ring allreduce: each kernel launch is one
  ring phase, every CTA pulling a *different* peer shard per phase
  (``kernel_indexed`` — the stream is a function of the kernel index).
* :class:`ZipfianPattern` — Zipf-distributed table lookups (embedding
  gathers), hot entries scattered across the address space.
* :class:`BurstyPattern` — short dense runs at hot bases (MoE expert
  dispatch, KV-block paging).

Whether a pattern re-rolls its addresses on every kernel launch is part of
its semantics (``kernel_variant``): solvers re-touch the same data each
iteration; graph frontiers move.  Patterns whose stream is a
*deterministic* function of the launch position instead declare
``kernel_indexed`` and receive the kernel index as an argument.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict

import numpy as np


class AccessPattern(ABC):
    """Produces per-CTA line-address sequences."""

    #: When True the address stream differs between kernel launches
    #: (the generator RNG is seeded with the kernel index as well).
    kernel_variant = False

    #: When True, :meth:`generate` accepts a ``kernel_index`` keyword and
    #: the stream is a deterministic function of it (phase-structured
    #: algorithms like ring allreduce).  Distinct from ``kernel_variant``:
    #: an indexed pattern replayed at the same index reproduces the same
    #: stream, so trace memoization still applies per launch position.
    kernel_indexed = False

    @abstractmethod
    def generate(
        self,
        cta_index: int,
        n_ctas: int,
        n_accesses: int,
        footprint_lines: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Line addresses (int64 array of length ``n_accesses``)."""

    def params(self) -> Dict[str, object]:
        """Parameters for digests/reports; override when parameterized."""
        return {}

    def digest(self) -> str:
        """Stable identity string."""
        inner = ",".join(f"{key}={value}" for key, value in sorted(self.params().items()))
        return f"{type(self).__name__}({inner})"


#: Registry for configuration-by-name.  Populated by
#: :func:`register_pattern` at class-definition time, so a new family is
#: registered (and appears in ``make_pattern`` error listings, spec
#: validation, and reports) the moment its class is decorated — there is
#: no second list to update.
PATTERNS: Dict[str, type] = {}


def register_pattern(name: str):
    """Class decorator adding an :class:`AccessPattern` to the registry."""

    def wrap(pattern_cls: type) -> type:
        if name in PATTERNS:
            raise ValueError(f"pattern name {name!r} is already registered")
        PATTERNS[name] = pattern_cls
        pattern_cls.pattern_name = name
        return pattern_cls

    return wrap


def line_array(addrs) -> np.ndarray:
    """Normalize a generator's output to a contiguous int64 column.

    Every built-in pattern already emits int64 arrays; this is the
    boundary contract for the columnar trace core — third-party patterns
    may return lists or narrower dtypes, and the downstream vectorized
    set-index/homing arithmetic (``ColumnarCTATrace.fast_groups``) assumes
    a flat int64 ndarray.  No copy is made when the input already
    conforms.
    """
    return np.ascontiguousarray(addrs, dtype=np.int64).reshape(-1)


def _chunk_bounds(cta_index: int, n_ctas: int, footprint_lines: int) -> range:
    """Contiguous slice of the footprint owned by ``cta_index``.

    Uses the same balanced split as the distributed scheduler so chunk and
    CTA-batch boundaries align the way real block-partitioned kernels do.
    """
    base, extra = divmod(footprint_lines, n_ctas)
    start = cta_index * base + min(cta_index, extra)
    count = base + (1 if cta_index < extra else 0)
    return range(start, start + max(1, count))


@register_pattern("streaming")
class StreamingPattern(AccessPattern):
    """Sequential sweep over the CTA's private chunk, wrapping on overflow."""

    def __init__(self, stride: int = 1) -> None:
        if stride <= 0:
            raise ValueError(f"stride must be positive, got {stride}")
        self.stride = stride

    def generate(self, cta_index, n_ctas, n_accesses, footprint_lines, rng):
        chunk = _chunk_bounds(cta_index, n_ctas, footprint_lines)
        chunk_len = len(chunk)
        offsets = (np.arange(n_accesses, dtype=np.int64) * self.stride) % chunk_len
        return chunk.start + offsets

    def params(self):
        return {"stride": self.stride}


@register_pattern("stencil")
class StencilPattern(AccessPattern):
    """Chunked sweep plus halo exchanges with neighboring CTAs' chunks.

    ``halo_fraction`` of accesses read the border region of the previous or
    next CTA's chunk — the inter-CTA spatial locality that distributed
    scheduling converts into GPM-local sharing (Section 5.2).  The stream
    is a pure function of the CTA index, so re-launched kernels touch the
    same lines (Figure 12).
    """

    kernel_variant = False

    def __init__(self, halo_fraction: float = 0.15, halo_lines: int = 8) -> None:
        if not 0.0 <= halo_fraction < 1.0:
            raise ValueError(f"halo_fraction must be in [0, 1), got {halo_fraction}")
        self.halo_fraction = halo_fraction
        self.halo_lines = halo_lines

    def generate(self, cta_index, n_ctas, n_accesses, footprint_lines, rng):
        chunk = _chunk_bounds(cta_index, n_ctas, footprint_lines)
        chunk_len = len(chunk)
        addrs = chunk.start + (np.arange(n_accesses, dtype=np.int64) % chunk_len)
        n_halo = int(n_accesses * self.halo_fraction)
        if n_halo and n_ctas > 1:
            positions = rng.choice(n_accesses, size=n_halo, replace=False)
            neighbors = np.where(
                rng.random(n_halo) < 0.5,
                (cta_index - 1) % n_ctas,
                (cta_index + 1) % n_ctas,
            )
            halo_addrs = np.empty(n_halo, dtype=np.int64)
            for i, neighbor in enumerate(neighbors):
                nb_chunk = _chunk_bounds(int(neighbor), n_ctas, footprint_lines)
                # Border of the neighbor chunk facing this CTA.
                depth = min(self.halo_lines, len(nb_chunk))
                if neighbor == (cta_index - 1) % n_ctas:
                    halo_addrs[i] = nb_chunk.stop - 1 - rng.integers(depth)
                else:
                    halo_addrs[i] = nb_chunk.start + rng.integers(depth)
            addrs[positions] = halo_addrs
        return addrs

    def params(self):
        return {"halo_fraction": self.halo_fraction, "halo_lines": self.halo_lines}


@register_pattern("irregular")
class IrregularPattern(AccessPattern):
    """Uniform random accesses with an optional hot (high-degree) region.

    Models graph traversals: ``hot_fraction`` of accesses hit the first
    ``hot_lines`` of the footprint (high-degree vertices); of the rest,
    ``local_bias`` are drawn from the CTA's own partition of the vertex
    array (community structure — graph partitioners place most of a
    block's neighbors in the same block) and the remainder are uniform
    over the whole footprint.  The frontier moves between kernel launches,
    so the stream is re-rolled per kernel (``kernel_variant``).
    """

    kernel_variant = True

    def __init__(
        self,
        hot_fraction: float = 0.3,
        hot_lines: int = 512,
        local_bias: float = 0.0,
    ) -> None:
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
        if not 0.0 <= local_bias <= 1.0:
            raise ValueError(f"local_bias must be in [0, 1], got {local_bias}")
        self.hot_fraction = hot_fraction
        self.hot_lines = hot_lines
        self.local_bias = local_bias

    def generate(self, cta_index, n_ctas, n_accesses, footprint_lines, rng):
        hot_lines = min(self.hot_lines, footprint_lines)
        addrs = rng.integers(0, footprint_lines, size=n_accesses, dtype=np.int64)
        if self.local_bias:
            chunk = _chunk_bounds(cta_index, n_ctas, footprint_lines)
            local_mask = rng.random(n_accesses) < self.local_bias
            n_local = int(local_mask.sum())
            if n_local:
                addrs[local_mask] = chunk.start + rng.integers(
                    0, len(chunk), size=n_local, dtype=np.int64
                )
        if hot_lines and self.hot_fraction:
            hot_mask = rng.random(n_accesses) < self.hot_fraction
            n_hot = int(hot_mask.sum())
            addrs[hot_mask] = rng.integers(0, hot_lines, size=n_hot, dtype=np.int64)
        return addrs

    def params(self):
        return {
            "hot_fraction": self.hot_fraction,
            "hot_lines": self.hot_lines,
            "local_bias": self.local_bias,
        }


@register_pattern("hotset")
class HotsetPattern(AccessPattern):
    """Shared hot region plus a private streaming sweep.

    The first ``hot_lines`` of the footprint are shared by all CTAs
    (centroids, lookup tables); the remainder is chunk-partitioned and
    swept sequentially.  The private sweep is deterministic per CTA so
    iterative kernels (kmeans steps) re-touch the same points.
    """

    kernel_variant = False

    def __init__(self, hot_fraction: float = 0.4, hot_lines: int = 256) -> None:
        if not 0.0 <= hot_fraction < 1.0:
            raise ValueError(f"hot_fraction must be in [0, 1), got {hot_fraction}")
        self.hot_fraction = hot_fraction
        self.hot_lines = hot_lines

    def generate(self, cta_index, n_ctas, n_accesses, footprint_lines, rng):
        hot_lines = min(self.hot_lines, max(1, footprint_lines - n_ctas))
        cold_lines = footprint_lines - hot_lines
        chunk = _chunk_bounds(cta_index, n_ctas, cold_lines)
        chunk_len = len(chunk)
        addrs = hot_lines + chunk.start + (np.arange(n_accesses, dtype=np.int64) % chunk_len)
        hot_mask = rng.random(n_accesses) < self.hot_fraction
        n_hot = int(hot_mask.sum())
        if n_hot:
            addrs[hot_mask] = rng.integers(0, hot_lines, size=n_hot, dtype=np.int64)
        return addrs

    def params(self):
        return {"hot_fraction": self.hot_fraction, "hot_lines": self.hot_lines}


@register_pattern("banded")
class BandedPattern(AccessPattern):
    """Private streaming plus a band region shared by contiguous CTAs.

    Models block-decomposed solvers (Lulesh, AMG, Nekbone, Srad rows):
    every CTA sweeps its private chunk, and a ``band_fraction`` of its
    accesses hit a *band* — data shared by the ``band_width_ctas``
    contiguous CTAs of its block (boundary planes, coarse-grid rows,
    shared operators).  Contiguous CTAs therefore reuse each other's band
    lines densely and continuously.

    This is precisely the inter-CTA locality distributed scheduling
    converts into GPM-local traffic (Section 5.2): under the distributed
    scheduler one GPM hosts whole bands and its L1.5 holds a few band
    working sets; under the centralized scheduler every GPM touches every
    active band and no cache can hold them all.

    The stream is a pure function of the CTA index (``kernel_variant`` is
    False), so iterative solvers re-touch the same lines each launch.
    """

    kernel_variant = False

    def __init__(
        self,
        band_fraction: float = 0.35,
        band_width_ctas: int = 128,
        band_lines: int = 320,
        band_skew: float = 2.0,
    ) -> None:
        if not 0.0 <= band_fraction < 1.0:
            raise ValueError(f"band_fraction must be in [0, 1), got {band_fraction}")
        if band_width_ctas <= 0:
            raise ValueError(f"band_width_ctas must be positive, got {band_width_ctas}")
        if band_lines <= 0:
            raise ValueError(f"band_lines must be positive, got {band_lines}")
        if band_skew < 1.0:
            raise ValueError(f"band_skew must be >= 1, got {band_skew}")
        self.band_fraction = band_fraction
        self.band_width_ctas = band_width_ctas
        self.band_lines = band_lines
        #: Concentration of band accesses toward the front of the band
        #: (``u**skew`` sampling): boundary planes are touched far more
        #: often than deep halo layers, so a cache that holds only the hot
        #: front still captures most band traffic.
        self.band_skew = band_skew

    def band_of_cta(self, cta_index: int) -> int:
        """Band index the CTA belongs to."""
        return cta_index // self.band_width_ctas

    def _layout(self, n_ctas: int, footprint_lines: int):
        """Split the footprint into band region (front) and private region."""
        n_bands = -(-n_ctas // self.band_width_ctas)
        # Cap bands at half the footprint so private chunks stay non-empty.
        band_lines = min(self.band_lines, max(1, footprint_lines // (2 * n_bands)))
        return n_bands, band_lines, n_bands * band_lines

    def generate(self, cta_index, n_ctas, n_accesses, footprint_lines, rng):
        n_bands, band_lines, band_region = self._layout(n_ctas, footprint_lines)
        private_lines = footprint_lines - band_region
        chunk = _chunk_bounds(cta_index, n_ctas, private_lines)
        chunk_len = len(chunk)
        addrs = band_region + chunk.start + (
            np.arange(n_accesses, dtype=np.int64) % chunk_len
        )
        band_mask = rng.random(n_accesses) < self.band_fraction
        n_band = int(band_mask.sum())
        if n_band:
            band_base = self.band_of_cta(cta_index) % n_bands * band_lines
            offsets = (rng.random(n_band) ** self.band_skew * band_lines).astype(np.int64)
            addrs[band_mask] = band_base + offsets
        return addrs

    def params(self):
        return {
            "band_fraction": self.band_fraction,
            "band_width_ctas": self.band_width_ctas,
            "band_lines": self.band_lines,
            "band_skew": self.band_skew,
        }


@register_pattern("global_stride")
class GlobalStridePattern(AccessPattern):
    """CTA-interleaved global sweep: CTA ``i`` touches lines i, i+N, i+2N...

    Models transposed/column-major passes (the second pass of a 2-D DWT,
    gather phases of reordering kernels): every page is shared by many
    CTAs, yet no two CTAs ever touch the *same line*.  This is the
    pathological case for all three MCM-GPU optimizations — first-touch
    placement cannot localize shared pages, and there is no reuse for the
    L1.5 to capture, so its lookup latency is pure overhead.  The paper's
    DWT (up to -14.6% on the optimized design) behaves this way.
    """

    kernel_variant = False

    #: Large prime used to shuffle CTA indices onto lanes, so CTAs that are
    #: contiguous in index space (and therefore co-scheduled by the
    #: distributed scheduler) do NOT own contiguous lanes — the page-level
    #: sharing is with far-away CTAs, exactly what defeats first-touch.
    LANE_SHUFFLE_PRIME = 7919

    def __init__(self, stride_ctas: int = 1, shuffle: bool = True) -> None:
        if stride_ctas <= 0:
            raise ValueError(f"stride_ctas must be positive, got {stride_ctas}")
        self.stride_ctas = stride_ctas
        self.shuffle = shuffle

    def generate(self, cta_index, n_ctas, n_accesses, footprint_lines, rng):
        lane = cta_index
        if self.shuffle:
            lane = (cta_index * self.LANE_SHUFFLE_PRIME) % n_ctas
        step = n_ctas * self.stride_ctas
        offsets = np.arange(n_accesses, dtype=np.int64) * step + lane
        return offsets % footprint_lines

    def params(self):
        return {"stride_ctas": self.stride_ctas, "shuffle": self.shuffle}


@register_pattern("gemm_tile")
class GemmTilePattern(AccessPattern):
    """Blocked GEMM (C = A·B) with output-tile CTAs and panel reuse.

    The footprint is laid out as [A panels | B panels | C tiles].  CTAs
    form a near-square 2-D grid over C: CTA ``(r, c)`` sweeps A panel
    ``r`` and B panel ``c`` once per k-step and finishes with its private
    C tile.  Every CTA in grid row ``r`` re-reads the same A panel and
    every CTA in grid column ``c`` the same B panel — the dense
    cross-CTA reuse that tiling exists to create.  Row-mates are
    contiguous in CTA index (co-scheduled onto one GPM by the distributed
    scheduler), so A-panel reuse turns GPM-local, while column-mates are
    spread across the grid and keep B panels inter-GPM: GEMM stresses
    both sides of the MCM locality story at once.

    The stream is a pure function of the CTA index (training steps
    re-touch the same operand layout), so iterative kernels hit the trace
    memo and the L1.5 sees genuine cross-kernel reuse.
    """

    kernel_variant = False

    def __init__(self, k_steps: int = 4, c_fraction: float = 0.2) -> None:
        if k_steps <= 0:
            raise ValueError(f"k_steps must be positive, got {k_steps}")
        if not 0.0 < c_fraction < 1.0:
            raise ValueError(f"c_fraction must be in (0, 1), got {c_fraction}")
        self.k_steps = k_steps
        self.c_fraction = c_fraction

    def generate(self, cta_index, n_ctas, n_accesses, footprint_lines, rng):
        grid_cols = max(1, int(math.isqrt(n_ctas)))
        grid_rows = -(-n_ctas // grid_cols)
        row, col = divmod(cta_index, grid_cols)
        c_lines = max(1, int(footprint_lines * self.c_fraction))
        panel_lines = max(1, (footprint_lines - c_lines) // 2)
        a_base, b_base = 0, panel_lines
        c_base = min(2 * panel_lines, footprint_lines - 1)
        c_lines = footprint_lines - c_base
        a_panel = _chunk_bounds(row % grid_rows, grid_rows, panel_lines)
        b_panel = _chunk_bounds(col % grid_cols, grid_cols, panel_lines)
        c_tile = _chunk_bounds(cta_index, n_ctas, c_lines)
        n_c = max(1, int(n_accesses * self.c_fraction))
        n_panels = n_accesses - n_c
        per_step = max(1, n_panels // (2 * self.k_steps))
        parts = []
        produced = 0
        for step in range(self.k_steps):
            for base, panel in ((a_base, a_panel), (b_base, b_panel)):
                if produced >= n_panels:
                    break
                count = min(per_step, n_panels - produced)
                # Each k-step walks the next slice of the panel; slices
                # wrap, so small panels are simply re-swept (reuse).
                offsets = (np.arange(count, dtype=np.int64) + step * per_step) % len(panel)
                parts.append(base + panel.start + offsets)
                produced += count
        tail = n_accesses - produced
        parts.append(c_base + c_tile.start + (np.arange(tail, dtype=np.int64) % len(c_tile)))
        return np.concatenate(parts) % footprint_lines

    def params(self):
        return {"k_steps": self.k_steps, "c_fraction": self.c_fraction}


@register_pattern("attention")
class AttentionPattern(AccessPattern):
    """Causal attention gather over a shared KV region.

    The front ``kv_fraction`` of the footprint is the KV cache shared by
    all CTAs; the rest is chunk-partitioned query/output state.  Each CTA
    (a query block at sequence position ``cta_index / n_ctas``) spends
    ``gather_fraction`` of its accesses gathering keys/values from its
    *causal prefix* of the KV region with a recency skew (softmax mass
    concentrates on recent tokens) plus a small always-hot sink at the
    front (attention-sink tokens).  The remaining accesses sweep the
    CTA's private chunk sequentially.

    Decode steps shift the attended positions, so the stream re-rolls per
    kernel launch (``kernel_variant``).
    """

    kernel_variant = True

    def __init__(
        self,
        kv_fraction: float = 0.5,
        gather_fraction: float = 0.6,
        recency_skew: float = 3.0,
        sink_lines: int = 16,
        sink_fraction: float = 0.1,
    ) -> None:
        if not 0.0 < kv_fraction < 1.0:
            raise ValueError(f"kv_fraction must be in (0, 1), got {kv_fraction}")
        if not 0.0 <= gather_fraction <= 1.0:
            raise ValueError(
                f"gather_fraction must be in [0, 1], got {gather_fraction}"
            )
        if recency_skew < 1.0:
            raise ValueError(f"recency_skew must be >= 1, got {recency_skew}")
        if sink_lines < 0:
            raise ValueError(f"sink_lines must be non-negative, got {sink_lines}")
        if not 0.0 <= sink_fraction <= 1.0:
            raise ValueError(f"sink_fraction must be in [0, 1], got {sink_fraction}")
        self.kv_fraction = kv_fraction
        self.gather_fraction = gather_fraction
        self.recency_skew = recency_skew
        self.sink_lines = sink_lines
        self.sink_fraction = sink_fraction

    def generate(self, cta_index, n_ctas, n_accesses, footprint_lines, rng):
        kv_lines = max(1, int(footprint_lines * self.kv_fraction))
        private_lines = max(1, footprint_lines - kv_lines)
        chunk = _chunk_bounds(cta_index, n_ctas, private_lines)
        addrs = kv_lines + chunk.start + (
            np.arange(n_accesses, dtype=np.int64) % len(chunk)
        )
        gather_mask = rng.random(n_accesses) < self.gather_fraction
        n_gather = int(gather_mask.sum())
        if n_gather:
            # Causal prefix: query block i attends to keys [0, prefix).
            prefix = max(1, (kv_lines * (cta_index + 1)) // n_ctas)
            recency = (1.0 - rng.random(n_gather) ** self.recency_skew) * prefix
            gathered = recency.astype(np.int64)
            sinks = min(self.sink_lines, kv_lines)
            if sinks and self.sink_fraction:
                sink_mask = rng.random(n_gather) < self.sink_fraction
                n_sink = int(sink_mask.sum())
                if n_sink:
                    gathered[sink_mask] = rng.integers(
                        0, sinks, size=n_sink, dtype=np.int64
                    )
            addrs[gather_mask] = gathered
        return addrs % footprint_lines

    def params(self):
        return {
            "kv_fraction": self.kv_fraction,
            "gather_fraction": self.gather_fraction,
            "recency_skew": self.recency_skew,
            "sink_lines": self.sink_lines,
            "sink_fraction": self.sink_fraction,
        }


@register_pattern("allreduce")
class AllReducePattern(AccessPattern):
    """Ring allreduce: one kernel launch per ring phase.

    The footprint is sharded into ``n_ctas`` gradient chunks.  In phase
    ``p`` (the kernel index), CTA ``i`` pulls the shard of ring peer
    ``(i - p - 1) mod n_ctas`` and accumulates into its own shard — the
    textbook reduce-scatter schedule where the peer *changes every
    phase*, producing structured all-to-all traffic that no static page
    placement can localize.  Accesses alternate peer-shard reads with
    own-shard read-modify-writes in ``accum_ratio`` proportion.

    The stream is a deterministic function of ``(cta_index,
    kernel_index)`` (``kernel_indexed``): replaying a phase reproduces it
    exactly, so memoization and export both remain per-launch stable.
    """

    kernel_indexed = True

    def __init__(self, accum_ratio: float = 0.5) -> None:
        if not 0.0 < accum_ratio < 1.0:
            raise ValueError(f"accum_ratio must be in (0, 1), got {accum_ratio}")
        self.accum_ratio = accum_ratio

    def generate(
        self, cta_index, n_ctas, n_accesses, footprint_lines, rng, kernel_index=0
    ):
        own = _chunk_bounds(cta_index, n_ctas, footprint_lines)
        peer = (cta_index - kernel_index - 1) % n_ctas
        remote = _chunk_bounds(peer, n_ctas, footprint_lines)
        n_own = max(1, int(n_accesses * self.accum_ratio))
        n_remote = n_accesses - n_own
        sweep_remote = remote.start + (
            np.arange(n_remote, dtype=np.int64) % len(remote)
        )
        sweep_own = own.start + (np.arange(n_own, dtype=np.int64) % len(own))
        # Interleave so peer pulls and local accumulation overlap in time
        # the way a fused reduce kernel issues them.
        addrs = np.empty(n_accesses, dtype=np.int64)
        addrs[: 2 * min(n_own, n_remote) : 2] = sweep_remote[: min(n_own, n_remote)]
        addrs[1 : 2 * min(n_own, n_remote) : 2] = sweep_own[: min(n_own, n_remote)]
        leftover = abs(n_remote - n_own)
        if leftover:
            longer = sweep_remote if n_remote > n_own else sweep_own
            addrs[n_accesses - leftover :] = longer[len(longer) - leftover :]
        return addrs % footprint_lines

    def params(self):
        return {"accum_ratio": self.accum_ratio}


@register_pattern("zipfian")
class ZipfianPattern(AccessPattern):
    """Zipf-distributed lookups over the footprint (embedding gathers).

    Rank ``k`` is drawn with probability proportional to
    ``1 / (k + 1)**alpha`` and mapped to a line via a fixed coprime
    multiplicative scatter, so the hot entries are spread across the
    address space (hash-sharded embedding tables) rather than packed into
    one page run.  A ``stream_fraction`` of accesses sweep the CTA's
    private chunk instead, modeling the dense MLP side of a
    recommendation model.  Batches change every step, so the stream
    re-rolls per kernel launch.
    """

    kernel_variant = True

    #: Knuth's multiplicative-hash constant; made coprime to the footprint
    #: at sample time so the rank→line scatter is a bijection.
    SCATTER_MULTIPLIER = 2654435761

    def __init__(self, alpha: float = 0.9, stream_fraction: float = 0.2) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if not 0.0 <= stream_fraction < 1.0:
            raise ValueError(f"stream_fraction must be in [0, 1), got {stream_fraction}")
        self.alpha = alpha
        self.stream_fraction = stream_fraction
        self._cdf_cache: Dict[int, np.ndarray] = {}

    def _cdf(self, footprint_lines: int) -> np.ndarray:
        cdf = self._cdf_cache.get(footprint_lines)
        if cdf is None:
            weights = 1.0 / np.power(
                np.arange(1, footprint_lines + 1, dtype=np.float64), self.alpha
            )
            cdf = np.cumsum(weights)
            cdf /= cdf[-1]
            self._cdf_cache[footprint_lines] = cdf
        return cdf

    def generate(self, cta_index, n_ctas, n_accesses, footprint_lines, rng):
        ranks = np.searchsorted(
            self._cdf(footprint_lines), rng.random(n_accesses), side="left"
        ).astype(np.int64)
        multiplier = self.SCATTER_MULTIPLIER % footprint_lines
        while multiplier < 1 or math.gcd(multiplier, footprint_lines) != 1:
            multiplier += 1
        addrs = (ranks * multiplier) % footprint_lines
        if self.stream_fraction:
            stream_mask = rng.random(n_accesses) < self.stream_fraction
            n_stream = int(stream_mask.sum())
            if n_stream:
                chunk = _chunk_bounds(cta_index, n_ctas, footprint_lines)
                addrs[stream_mask] = chunk.start + (
                    np.arange(n_stream, dtype=np.int64) % len(chunk)
                )
        return addrs % footprint_lines

    def params(self):
        return {"alpha": self.alpha, "stream_fraction": self.stream_fraction}


@register_pattern("bursty")
class BurstyPattern(AccessPattern):
    """Short dense runs at hot bases (MoE expert dispatch, paged KV).

    Accesses arrive as sequential bursts of ``burst_lines``; each burst's
    base is drawn from one of ``n_hot`` hot regions (popular experts /
    resident KV blocks, evenly spaced through the footprint) with
    probability ``hot_fraction``, uniform elsewhere otherwise.  Token
    routing changes per step, so the stream re-rolls per kernel launch.
    """

    kernel_variant = True

    def __init__(
        self,
        burst_lines: int = 16,
        hot_fraction: float = 0.7,
        n_hot: int = 4,
        hot_region_lines: int = 128,
    ) -> None:
        if burst_lines <= 0:
            raise ValueError(f"burst_lines must be positive, got {burst_lines}")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
        if n_hot <= 0:
            raise ValueError(f"n_hot must be positive, got {n_hot}")
        if hot_region_lines <= 0:
            raise ValueError(f"hot_region_lines must be positive, got {hot_region_lines}")
        self.burst_lines = burst_lines
        self.hot_fraction = hot_fraction
        self.n_hot = n_hot
        self.hot_region_lines = hot_region_lines

    def generate(self, cta_index, n_ctas, n_accesses, footprint_lines, rng):
        n_bursts = -(-n_accesses // self.burst_lines)
        bases = rng.integers(0, footprint_lines, size=n_bursts, dtype=np.int64)
        hot_mask = rng.random(n_bursts) < self.hot_fraction
        n_hot_bursts = int(hot_mask.sum())
        if n_hot_bursts:
            region = min(self.hot_region_lines, max(1, footprint_lines // self.n_hot))
            experts = rng.integers(0, self.n_hot, size=n_hot_bursts)
            spacing = max(1, footprint_lines // self.n_hot)
            starts = (experts * spacing) % footprint_lines
            bases[hot_mask] = starts + rng.integers(
                0, region, size=n_hot_bursts, dtype=np.int64
            )
        runs = bases[:, None] + np.arange(self.burst_lines, dtype=np.int64)[None, :]
        return runs.reshape(-1)[:n_accesses] % footprint_lines

    def params(self):
        return {
            "burst_lines": self.burst_lines,
            "hot_fraction": self.hot_fraction,
            "n_hot": self.n_hot,
            "hot_region_lines": self.hot_region_lines,
        }


def make_pattern(name: str, **params: object) -> AccessPattern:
    """Instantiate a pattern from its registry name and parameters."""
    try:
        pattern_cls = PATTERNS[name]
    except KeyError:
        known = ", ".join(sorted(PATTERNS))
        raise ValueError(f"unknown pattern {name!r}; expected one of: {known}")
    return pattern_cls(**params)
