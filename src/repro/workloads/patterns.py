"""Memory access-pattern generators for the synthetic workload suite.

Each pattern produces, for one CTA, the flat sequence of line addresses its
warp groups will touch.  The patterns model the application classes named
in the paper's evaluation:

* :class:`StreamingPattern` — bulk sequential sweeps (Stream triad,
  NN-Conv activations, Srad): each CTA owns a contiguous chunk.
* :class:`StencilPattern` — iterative nearest-neighbor solvers (Lulesh,
  MiniAMR, CFD, CoMD, Nekbone): chunked like streaming plus halo accesses
  into neighboring CTAs' chunks, identical across kernel re-launches.
* :class:`IrregularPattern` — graph workloads (BFS, SSSP, MST): uniform
  random over the footprint with an optional hot vertex region.
* :class:`HotsetPattern` — clustering/reduction workloads (Kmeans): a
  small shared hot region (centroids) plus a private streaming sweep.

Whether a pattern re-rolls its addresses on every kernel launch is part of
its semantics (``kernel_variant``): solvers re-touch the same data each
iteration; graph frontiers move.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict

import numpy as np


class AccessPattern(ABC):
    """Produces per-CTA line-address sequences."""

    #: When True the address stream differs between kernel launches
    #: (the generator RNG is seeded with the kernel index as well).
    kernel_variant = False

    @abstractmethod
    def generate(
        self,
        cta_index: int,
        n_ctas: int,
        n_accesses: int,
        footprint_lines: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Line addresses (int64 array of length ``n_accesses``)."""

    def params(self) -> Dict[str, object]:
        """Parameters for digests/reports; override when parameterized."""
        return {}

    def digest(self) -> str:
        """Stable identity string."""
        inner = ",".join(f"{key}={value}" for key, value in sorted(self.params().items()))
        return f"{type(self).__name__}({inner})"


def line_array(addrs) -> np.ndarray:
    """Normalize a generator's output to a contiguous int64 column.

    Every built-in pattern already emits int64 arrays; this is the
    boundary contract for the columnar trace core — third-party patterns
    may return lists or narrower dtypes, and the downstream vectorized
    set-index/homing arithmetic (``ColumnarCTATrace.fast_groups``) assumes
    a flat int64 ndarray.  No copy is made when the input already
    conforms.
    """
    return np.ascontiguousarray(addrs, dtype=np.int64).reshape(-1)


def _chunk_bounds(cta_index: int, n_ctas: int, footprint_lines: int) -> range:
    """Contiguous slice of the footprint owned by ``cta_index``.

    Uses the same balanced split as the distributed scheduler so chunk and
    CTA-batch boundaries align the way real block-partitioned kernels do.
    """
    base, extra = divmod(footprint_lines, n_ctas)
    start = cta_index * base + min(cta_index, extra)
    count = base + (1 if cta_index < extra else 0)
    return range(start, start + max(1, count))


class StreamingPattern(AccessPattern):
    """Sequential sweep over the CTA's private chunk, wrapping on overflow."""

    def __init__(self, stride: int = 1) -> None:
        if stride <= 0:
            raise ValueError(f"stride must be positive, got {stride}")
        self.stride = stride

    def generate(self, cta_index, n_ctas, n_accesses, footprint_lines, rng):
        chunk = _chunk_bounds(cta_index, n_ctas, footprint_lines)
        chunk_len = len(chunk)
        offsets = (np.arange(n_accesses, dtype=np.int64) * self.stride) % chunk_len
        return chunk.start + offsets

    def params(self):
        return {"stride": self.stride}


class StencilPattern(AccessPattern):
    """Chunked sweep plus halo exchanges with neighboring CTAs' chunks.

    ``halo_fraction`` of accesses read the border region of the previous or
    next CTA's chunk — the inter-CTA spatial locality that distributed
    scheduling converts into GPM-local sharing (Section 5.2).  The stream
    is a pure function of the CTA index, so re-launched kernels touch the
    same lines (Figure 12).
    """

    kernel_variant = False

    def __init__(self, halo_fraction: float = 0.15, halo_lines: int = 8) -> None:
        if not 0.0 <= halo_fraction < 1.0:
            raise ValueError(f"halo_fraction must be in [0, 1), got {halo_fraction}")
        self.halo_fraction = halo_fraction
        self.halo_lines = halo_lines

    def generate(self, cta_index, n_ctas, n_accesses, footprint_lines, rng):
        chunk = _chunk_bounds(cta_index, n_ctas, footprint_lines)
        chunk_len = len(chunk)
        addrs = chunk.start + (np.arange(n_accesses, dtype=np.int64) % chunk_len)
        n_halo = int(n_accesses * self.halo_fraction)
        if n_halo and n_ctas > 1:
            positions = rng.choice(n_accesses, size=n_halo, replace=False)
            neighbors = np.where(
                rng.random(n_halo) < 0.5,
                (cta_index - 1) % n_ctas,
                (cta_index + 1) % n_ctas,
            )
            halo_addrs = np.empty(n_halo, dtype=np.int64)
            for i, neighbor in enumerate(neighbors):
                nb_chunk = _chunk_bounds(int(neighbor), n_ctas, footprint_lines)
                # Border of the neighbor chunk facing this CTA.
                depth = min(self.halo_lines, len(nb_chunk))
                if neighbor == (cta_index - 1) % n_ctas:
                    halo_addrs[i] = nb_chunk.stop - 1 - rng.integers(depth)
                else:
                    halo_addrs[i] = nb_chunk.start + rng.integers(depth)
            addrs[positions] = halo_addrs
        return addrs

    def params(self):
        return {"halo_fraction": self.halo_fraction, "halo_lines": self.halo_lines}


class IrregularPattern(AccessPattern):
    """Uniform random accesses with an optional hot (high-degree) region.

    Models graph traversals: ``hot_fraction`` of accesses hit the first
    ``hot_lines`` of the footprint (high-degree vertices); of the rest,
    ``local_bias`` are drawn from the CTA's own partition of the vertex
    array (community structure — graph partitioners place most of a
    block's neighbors in the same block) and the remainder are uniform
    over the whole footprint.  The frontier moves between kernel launches,
    so the stream is re-rolled per kernel (``kernel_variant``).
    """

    kernel_variant = True

    def __init__(
        self,
        hot_fraction: float = 0.3,
        hot_lines: int = 512,
        local_bias: float = 0.0,
    ) -> None:
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
        if not 0.0 <= local_bias <= 1.0:
            raise ValueError(f"local_bias must be in [0, 1], got {local_bias}")
        self.hot_fraction = hot_fraction
        self.hot_lines = hot_lines
        self.local_bias = local_bias

    def generate(self, cta_index, n_ctas, n_accesses, footprint_lines, rng):
        hot_lines = min(self.hot_lines, footprint_lines)
        addrs = rng.integers(0, footprint_lines, size=n_accesses, dtype=np.int64)
        if self.local_bias:
            chunk = _chunk_bounds(cta_index, n_ctas, footprint_lines)
            local_mask = rng.random(n_accesses) < self.local_bias
            n_local = int(local_mask.sum())
            if n_local:
                addrs[local_mask] = chunk.start + rng.integers(
                    0, len(chunk), size=n_local, dtype=np.int64
                )
        if hot_lines and self.hot_fraction:
            hot_mask = rng.random(n_accesses) < self.hot_fraction
            n_hot = int(hot_mask.sum())
            addrs[hot_mask] = rng.integers(0, hot_lines, size=n_hot, dtype=np.int64)
        return addrs

    def params(self):
        return {
            "hot_fraction": self.hot_fraction,
            "hot_lines": self.hot_lines,
            "local_bias": self.local_bias,
        }


class HotsetPattern(AccessPattern):
    """Shared hot region plus a private streaming sweep.

    The first ``hot_lines`` of the footprint are shared by all CTAs
    (centroids, lookup tables); the remainder is chunk-partitioned and
    swept sequentially.  The private sweep is deterministic per CTA so
    iterative kernels (kmeans steps) re-touch the same points.
    """

    kernel_variant = False

    def __init__(self, hot_fraction: float = 0.4, hot_lines: int = 256) -> None:
        if not 0.0 <= hot_fraction < 1.0:
            raise ValueError(f"hot_fraction must be in [0, 1), got {hot_fraction}")
        self.hot_fraction = hot_fraction
        self.hot_lines = hot_lines

    def generate(self, cta_index, n_ctas, n_accesses, footprint_lines, rng):
        hot_lines = min(self.hot_lines, max(1, footprint_lines - n_ctas))
        cold_lines = footprint_lines - hot_lines
        chunk = _chunk_bounds(cta_index, n_ctas, cold_lines)
        chunk_len = len(chunk)
        addrs = hot_lines + chunk.start + (np.arange(n_accesses, dtype=np.int64) % chunk_len)
        hot_mask = rng.random(n_accesses) < self.hot_fraction
        n_hot = int(hot_mask.sum())
        if n_hot:
            addrs[hot_mask] = rng.integers(0, hot_lines, size=n_hot, dtype=np.int64)
        return addrs

    def params(self):
        return {"hot_fraction": self.hot_fraction, "hot_lines": self.hot_lines}


class BandedPattern(AccessPattern):
    """Private streaming plus a band region shared by contiguous CTAs.

    Models block-decomposed solvers (Lulesh, AMG, Nekbone, Srad rows):
    every CTA sweeps its private chunk, and a ``band_fraction`` of its
    accesses hit a *band* — data shared by the ``band_width_ctas``
    contiguous CTAs of its block (boundary planes, coarse-grid rows,
    shared operators).  Contiguous CTAs therefore reuse each other's band
    lines densely and continuously.

    This is precisely the inter-CTA locality distributed scheduling
    converts into GPM-local traffic (Section 5.2): under the distributed
    scheduler one GPM hosts whole bands and its L1.5 holds a few band
    working sets; under the centralized scheduler every GPM touches every
    active band and no cache can hold them all.

    The stream is a pure function of the CTA index (``kernel_variant`` is
    False), so iterative solvers re-touch the same lines each launch.
    """

    kernel_variant = False

    def __init__(
        self,
        band_fraction: float = 0.35,
        band_width_ctas: int = 128,
        band_lines: int = 320,
        band_skew: float = 2.0,
    ) -> None:
        if not 0.0 <= band_fraction < 1.0:
            raise ValueError(f"band_fraction must be in [0, 1), got {band_fraction}")
        if band_width_ctas <= 0:
            raise ValueError(f"band_width_ctas must be positive, got {band_width_ctas}")
        if band_lines <= 0:
            raise ValueError(f"band_lines must be positive, got {band_lines}")
        if band_skew < 1.0:
            raise ValueError(f"band_skew must be >= 1, got {band_skew}")
        self.band_fraction = band_fraction
        self.band_width_ctas = band_width_ctas
        self.band_lines = band_lines
        #: Concentration of band accesses toward the front of the band
        #: (``u**skew`` sampling): boundary planes are touched far more
        #: often than deep halo layers, so a cache that holds only the hot
        #: front still captures most band traffic.
        self.band_skew = band_skew

    def band_of_cta(self, cta_index: int) -> int:
        """Band index the CTA belongs to."""
        return cta_index // self.band_width_ctas

    def _layout(self, n_ctas: int, footprint_lines: int):
        """Split the footprint into band region (front) and private region."""
        n_bands = -(-n_ctas // self.band_width_ctas)
        # Cap bands at half the footprint so private chunks stay non-empty.
        band_lines = min(self.band_lines, max(1, footprint_lines // (2 * n_bands)))
        return n_bands, band_lines, n_bands * band_lines

    def generate(self, cta_index, n_ctas, n_accesses, footprint_lines, rng):
        n_bands, band_lines, band_region = self._layout(n_ctas, footprint_lines)
        private_lines = footprint_lines - band_region
        chunk = _chunk_bounds(cta_index, n_ctas, private_lines)
        chunk_len = len(chunk)
        addrs = band_region + chunk.start + (
            np.arange(n_accesses, dtype=np.int64) % chunk_len
        )
        band_mask = rng.random(n_accesses) < self.band_fraction
        n_band = int(band_mask.sum())
        if n_band:
            band_base = self.band_of_cta(cta_index) % n_bands * band_lines
            offsets = (rng.random(n_band) ** self.band_skew * band_lines).astype(np.int64)
            addrs[band_mask] = band_base + offsets
        return addrs

    def params(self):
        return {
            "band_fraction": self.band_fraction,
            "band_width_ctas": self.band_width_ctas,
            "band_lines": self.band_lines,
            "band_skew": self.band_skew,
        }


class GlobalStridePattern(AccessPattern):
    """CTA-interleaved global sweep: CTA ``i`` touches lines i, i+N, i+2N...

    Models transposed/column-major passes (the second pass of a 2-D DWT,
    gather phases of reordering kernels): every page is shared by many
    CTAs, yet no two CTAs ever touch the *same line*.  This is the
    pathological case for all three MCM-GPU optimizations — first-touch
    placement cannot localize shared pages, and there is no reuse for the
    L1.5 to capture, so its lookup latency is pure overhead.  The paper's
    DWT (up to -14.6% on the optimized design) behaves this way.
    """

    kernel_variant = False

    #: Large prime used to shuffle CTA indices onto lanes, so CTAs that are
    #: contiguous in index space (and therefore co-scheduled by the
    #: distributed scheduler) do NOT own contiguous lanes — the page-level
    #: sharing is with far-away CTAs, exactly what defeats first-touch.
    LANE_SHUFFLE_PRIME = 7919

    def __init__(self, stride_ctas: int = 1, shuffle: bool = True) -> None:
        if stride_ctas <= 0:
            raise ValueError(f"stride_ctas must be positive, got {stride_ctas}")
        self.stride_ctas = stride_ctas
        self.shuffle = shuffle

    def generate(self, cta_index, n_ctas, n_accesses, footprint_lines, rng):
        lane = cta_index
        if self.shuffle:
            lane = (cta_index * self.LANE_SHUFFLE_PRIME) % n_ctas
        step = n_ctas * self.stride_ctas
        offsets = np.arange(n_accesses, dtype=np.int64) * step + lane
        return offsets % footprint_lines

    def params(self):
        return {"stride_ctas": self.stride_ctas, "shuffle": self.shuffle}


#: Registry for configuration-by-name.
PATTERNS = {
    "streaming": StreamingPattern,
    "stencil": StencilPattern,
    "irregular": IrregularPattern,
    "hotset": HotsetPattern,
    "banded": BandedPattern,
    "global_stride": GlobalStridePattern,
}


def make_pattern(name: str, **params: object) -> AccessPattern:
    """Instantiate a pattern from its registry name and parameters."""
    try:
        pattern_cls = PATTERNS[name]
    except KeyError:
        known = ", ".join(sorted(PATTERNS))
        raise ValueError(f"unknown pattern {name!r}; expected one of: {known}")
    return pattern_cls(**params)
