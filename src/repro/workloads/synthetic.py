"""Synthetic workload construction from a declarative specification.

A :class:`WorkloadSpec` captures the knobs that determine how a GPU
application exercises an MCM-GPU memory system: grid size (parallelism),
access pattern and footprint (locality and cacheability), compute density
(bandwidth sensitivity), store ratio (write-back pressure), kernel
iteration count (cross-kernel reuse), and per-CTA work imbalance (the
distributed scheduler's weak spot).  :class:`SyntheticWorkload` turns a
spec into the lazy, deterministic kernel-launch traces the engine consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Iterator, Optional

from .patterns import AccessPattern, line_array, make_pattern
from .rng import rng_for
from .trace import (
    ColumnarCTATrace,
    KernelLaunch,
    TraceMemo,
    Workload,
    write_period_from_fraction,
)


class Category(Enum):
    """The paper's three workload categories (Section 4)."""

    M_INTENSIVE = "M-Intensive"
    C_INTENSIVE = "C-Intensive"
    LIMITED_PARALLELISM = "Limited Parallelism"

    @property
    def high_parallelism(self) -> bool:
        """True for the 33 workloads that fill a 256-SM GPU."""
        return self is not Category.LIMITED_PARALLELISM


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of one synthetic benchmark.

    ``footprint_bytes`` is the *scaled* footprint used in simulation;
    ``paper_footprint_mb`` preserves the full-scale figure from Table 4 for
    reporting.
    """

    name: str
    category: Category
    pattern: str
    suite: str = "synthetic"
    pattern_params: tuple = ()
    n_ctas: int = 1536
    groups_per_cta: int = 2
    records_per_group: int = 8
    accesses_per_record: int = 4
    write_fraction: float = 0.2
    compute_per_record: float = 8.0
    kernel_iterations: int = 2
    footprint_bytes: int = 4 << 20
    line_bytes: int = 128
    paper_footprint_mb: Optional[float] = None
    #: Linear work skew across CTA indices: CTA ``i`` gets
    #: ``1 + imbalance * i / n_ctas`` times the base record count.
    imbalance: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_ctas <= 0:
            raise ValueError(f"{self.name}: n_ctas must be positive")
        if self.footprint_bytes < self.line_bytes:
            raise ValueError(f"{self.name}: footprint smaller than one line")
        if self.kernel_iterations <= 0:
            raise ValueError(f"{self.name}: kernel_iterations must be positive")
        if self.imbalance < 0:
            raise ValueError(f"{self.name}: imbalance must be non-negative")

    @property
    def footprint_lines(self) -> int:
        """Footprint in cache lines."""
        return max(1, self.footprint_bytes // self.line_bytes)

    def build_pattern(self) -> AccessPattern:
        """Instantiate this spec's access pattern."""
        return make_pattern(self.pattern, **dict(self.pattern_params))

    def records_for_cta(self, cta_index: int) -> int:
        """Record count per warp group for ``cta_index`` (with skew)."""
        skew = 1.0 + self.imbalance * cta_index / self.n_ctas
        return max(1, round(self.records_per_group * skew))

    def total_accesses(self) -> int:
        """Approximate total memory accesses over all kernels (for sizing)."""
        per_cta = sum(
            self.records_for_cta(cta) * self.groups_per_cta * self.accesses_per_record
            for cta in range(self.n_ctas)
        )
        return per_cta * self.kernel_iterations

    def digest(self) -> str:
        """Stable identity string for result caching."""
        params = ",".join(f"{key}={value}" for key, value in self.pattern_params)
        return (
            f"{self.name}|{self.category.value}|{self.pattern}({params})"
            f"|ctas:{self.n_ctas}x{self.groups_per_cta}x{self.records_per_group}"
            f"x{self.accesses_per_record}|wf:{self.write_fraction}"
            f"|cpr:{self.compute_per_record}|iters:{self.kernel_iterations}"
            f"|fp:{self.footprint_bytes}|imb:{self.imbalance}|seed:{self.seed}"
        )

    def scaled_down(self, factor: float) -> "WorkloadSpec":
        """A smaller copy for fast tests: fewer CTAs, same structure."""
        if factor <= 0 or factor > 1:
            raise ValueError(f"factor must be in (0, 1], got {factor}")
        return replace(
            self,
            n_ctas=max(8, int(self.n_ctas * factor)),
            footprint_bytes=max(self.line_bytes * 64, int(self.footprint_bytes * factor)),
        )


class SyntheticWorkload(Workload):
    """A runnable workload generated from a :class:`WorkloadSpec`."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self.name = spec.name
        self._pattern = spec.build_pattern()
        self._write_period = write_period_from_fraction(spec.write_fraction)
        # Materialized CTA traces, shared across kernel launches and runs
        # (traces are deterministic and the engine never mutates them).
        self._trace_memo = TraceMemo()

    @property
    def category(self) -> Category:
        """The spec's workload category."""
        return self.spec.category

    def kernels(self) -> Iterator[KernelLaunch]:
        for kernel_index in range(self.spec.kernel_iterations):
            yield KernelLaunch(
                n_ctas=self.spec.n_ctas,
                groups_per_cta=self.spec.groups_per_cta,
                trace_fn=self._trace_builder(kernel_index),
                label=f"{self.name}.k{kernel_index}",
            )

    def _trace_builder(self, kernel_index: int):
        spec = self.spec
        pattern = self._pattern
        write_period = self._write_period
        # Patterns that move between launches see the kernel index in the
        # seed; iterative patterns reproduce the same stream each launch —
        # and hit the trace memo instead of regenerating (for them every
        # launch shares the seed-0 materialization).  Phase-structured
        # patterns (``kernel_indexed``) receive the kernel index as an
        # argument and are memoized per launch position like variants.
        kernel_indexed = pattern.kernel_indexed
        seed_kernel = (
            kernel_index if (pattern.kernel_variant or kernel_indexed) else 0
        )

        def build_trace(cta_index: int) -> ColumnarCTATrace:
            records_per_group = spec.records_for_cta(cta_index)
            per_group_accesses = records_per_group * spec.accesses_per_record
            total_accesses = per_group_accesses * spec.groups_per_cta
            rng = rng_for(spec.name, spec.seed, seed_kernel, cta_index)
            extra = {"kernel_index": kernel_index} if kernel_indexed else {}
            lines = line_array(
                pattern.generate(
                    cta_index,
                    spec.n_ctas,
                    total_accesses,
                    spec.footprint_lines,
                    rng,
                    **extra,
                )
            )
            # Keep the generator's vectorization: the whole CTA stream
            # stays one numpy column block; per-record views (classic
            # TraceRecords or geometry-specialized fast records) are
            # derived lazily by the trace itself.
            return ColumnarCTATrace.from_flat(
                lines,
                spec.groups_per_cta,
                write_period,
                spec.accesses_per_record,
                spec.compute_per_record,
            )

        return self._trace_memo.wrap(seed_kernel, build_trace)

    def digest(self) -> str:
        return self.spec.digest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SyntheticWorkload({self.spec.name!r}, {self.spec.category.value})"
