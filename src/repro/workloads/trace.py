"""Trace representation consumed by the simulation engine.

A workload is a sequence of kernel launches; a kernel launch is a CTA count
plus a function producing, for any CTA index, the memory/compute trace of
each of its warp groups.  Traces are generated lazily (at CTA dispatch
time) and deterministically (same CTA index -> same trace), which both
bounds memory use and gives iterative kernels their cross-kernel locality
for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, NamedTuple, Sequence, Tuple

import numpy as np


class TraceRecord(NamedTuple):
    """One step of a warp group: a burst of compute then a memory batch.

    ``compute_cycles`` is the latency of the arithmetic section;
    ``reads``/``writes`` are line addresses issued together (the group's
    memory-level parallelism).
    """

    compute_cycles: float
    reads: Tuple[int, ...]
    writes: Tuple[int, ...]

    @property
    def n_accesses(self) -> int:
        """Loads plus stores in this record."""
        return len(self.reads) + len(self.writes)


#: The full trace of one CTA: one record list per warp group.  The engine
#: also accepts a :class:`ColumnarCTATrace`, which carries the same records
#: as numpy columns and materializes either view on demand.
CTATrace = List[List[TraceRecord]]


class WalkGeometry(NamedTuple):
    """The memory-system shape a columnar trace is specialized against.

    The array-backed fast path precomputes, per line, every piece of
    arithmetic that depends only on the address and the (immutable) system
    geometry: the L1 set index (``line % n_l1_sets``), the homing key
    (``line % n_partitions`` for fine-grain interleaving, ``line //
    lines_per_page`` for paged policies), and — when the respective level
    has the same set count in every GPM — the L2 and L1.5 set indices.
    ``n_l2_sets``/``n_l15_sets`` are 0 when the level is absent, disabled,
    or non-uniform across GPMs; walkers then derive the index themselves.
    ``issue_throughput`` folds the per-record issue busy time into the same
    derivation.  ``packed`` is False for the fallback flavor (migrating
    placement policies) whose records keep plain address tuples for
    ``load_batch``/``store_batch``.
    """

    packed: bool
    n_l1_sets: int
    line_interleaved: bool
    n_partitions: int
    lines_per_page: int
    issue_throughput: float
    n_l2_sets: int = 0
    n_l15_sets: int = 0


class ColumnarCTATrace:
    """One CTA's trace as numpy columns plus record/group geometry.

    The generators in :mod:`repro.workloads.patterns` already produce flat
    int64 address arrays; this class keeps that vectorization instead of
    immediately exploding it into per-record Python tuples.  Three views
    are materialized on demand:

    * ``addrs`` / ``is_write`` — the columns themselves (addresses are a
      ``(n_groups, accesses_per_group)`` int64 array, reads-before-writes
      within each record; ``is_write`` marks the store positions and is
      shared by all groups, whose record structure is identical).
    * :meth:`base_groups` — classic ``List[List[TraceRecord]]`` records
      for the reference per-line path and any external consumer (cached).
    * :meth:`fast_groups` — records specialized for one
      :class:`WalkGeometry`: ``(compute_cycles, issue_busy, reads,
      writes)`` tuples whose read/write entries are ``(line, l1_set,
      home_key, l2_set, l15_set)`` quintuples derived with whole-column
      array ops.  Cached per geometry (benchmark harnesses interleave
      several configurations over the same memoized traces, so a one-slot
      cache would thrash and repack on every config switch).
    """

    __slots__ = (
        "addrs",
        "is_write",
        "compute_cycles",
        "n_groups",
        "_spans",
        "_base",
        "_fast",
        "_unique_key",
    )

    def __init__(
        self,
        addrs: "np.ndarray",
        is_write: "np.ndarray",
        spans: List[Tuple[int, int, int]],
        compute_cycles: float,
    ) -> None:
        self.addrs = addrs
        self.is_write = is_write
        self.compute_cycles = compute_cycles
        self.n_groups = addrs.shape[0]
        #: Per-record ``(start, reads_end, end)`` column spans (identical
        #: for every group of this CTA).
        self._spans = spans
        self._base: list = None
        self._fast: dict = None
        #: Memo for the engine's kernel-wide address-uniqueness probe:
        #: ``(n_ctas, all_unique)`` for the launch this trace fronted.
        self._unique_key = None

    @classmethod
    def from_flat(
        cls,
        lines: "np.ndarray",
        n_groups: int,
        write_period: int,
        accesses_per_record: int,
        compute_cycles: float,
    ) -> "ColumnarCTATrace":
        """Build from a flat per-CTA address stream.

        Mirrors ``records_from_arrays`` applied to each equal-length group
        slice of ``lines``: every ``write_period``-th access (1-indexed
        within its group) is a store, records batch ``accesses_per_record``
        accesses with the partial tail kept, and loads keep their relative
        order ahead of stores within a record.
        """
        if accesses_per_record <= 0:
            raise ValueError(
                f"accesses_per_record must be positive, got {accesses_per_record}"
            )
        if n_groups <= 0:
            raise ValueError(f"n_groups must be positive, got {n_groups}")
        flat = np.asarray(lines, dtype=np.int64)
        per_group, leftover = divmod(flat.size, n_groups)
        if leftover:
            raise ValueError(
                f"{flat.size} accesses do not divide into {n_groups} equal groups"
            )
        positions = np.arange(1, per_group + 1, dtype=np.int64)
        if write_period:
            mask = positions % write_period == 0
        else:
            mask = np.zeros(per_group, dtype=bool)
        # Stable reorder: group accesses by record, reads ahead of writes,
        # original order preserved within each class.  The permutation is
        # the same for every group, so it is computed once and applied to
        # the whole 2-D address block in one fancy-index.
        record_ids = (positions - 1) // accesses_per_record
        order = np.lexsort((positions, mask, record_ids))
        addrs = flat.reshape(n_groups, per_group)[:, order]
        is_write = mask[order]
        starts = list(range(0, per_group, accesses_per_record))
        if starts:
            read_counts = np.add.reduceat(
                (~mask).astype(np.int64), np.array(starts, dtype=np.int64)
            )
        else:
            read_counts = []
        spans = [
            (start, start + int(reads), min(start + accesses_per_record, per_group))
            for start, reads in zip(starts, read_counts)
        ]
        return cls(addrs, is_write, spans, compute_cycles)

    @property
    def spans(self) -> List[Tuple[int, int, int]]:
        """Per-record ``(start, reads_end, end)`` column spans.

        Together with ``addrs`` and ``compute_cycles`` this is the trace's
        complete semantic content: the engine derives everything else
        (including the read/write split — ``is_write`` is a convenience
        view) from these three.  Exporters serialize exactly this triple.
        """
        return self._spans

    def __len__(self) -> int:
        return self.n_groups

    def __iter__(self):
        return iter(self.base_groups())

    def __getitem__(self, index):
        return self.base_groups()[index]

    def base_groups(self) -> CTATrace:
        """The classic ``TraceRecord`` view (cached after first use)."""
        base = self._base
        if base is None:
            compute_cycles = self.compute_cycles
            spans = self._spans
            base = []
            for row in self.addrs:
                row_list = row.tolist()
                base.append(
                    [
                        TraceRecord(
                            compute_cycles,
                            tuple(row_list[start:mid]),
                            tuple(row_list[mid:end]),
                        )
                        for start, mid, end in spans
                    ]
                )
            self._base = base
        return base

    def fast_groups(self, geometry: WalkGeometry):
        """Records specialized for ``geometry`` (cached per geometry).

        Packed records are ``(compute_cycles, issue_busy, reads, writes)``
        with ``(line, l1_set, home_key, l2_set, l15_set)`` quintuples; the
        unpacked flavor keeps plain address tuples.  ``issue_busy`` is
        accumulated with the same left-to-right float arithmetic as
        ``SM.charge_issue`` so the engine's timing is bit-identical.
        """
        cache = self._fast
        if cache is None:
            cache = self._fast = {}
        else:
            cached = cache.get(geometry)
            if cached is not None:
                return cached
        compute_cycles = self.compute_cycles
        spans = self._spans
        throughput = geometry.issue_throughput
        busys = [
            (compute_cycles + (mid - start) + (end - mid)) / throughput
            for start, mid, end in spans
        ]
        groups = []
        if geometry.packed:
            addrs = self.addrs
            n_l1_sets = geometry.n_l1_sets
            if n_l1_sets:
                l1_sets = addrs % n_l1_sets
            else:
                l1_sets = np.zeros_like(addrs)
            if geometry.line_interleaved:
                home_keys = addrs % geometry.n_partitions
            else:
                home_keys = addrs // geometry.lines_per_page
            n_l2_sets = geometry.n_l2_sets
            if n_l2_sets:
                l2_sets = addrs % n_l2_sets
            else:
                l2_sets = np.zeros_like(addrs)
            n_l15_sets = geometry.n_l15_sets
            if n_l15_sets:
                l15_sets = addrs % n_l15_sets
            else:
                l15_sets = np.zeros_like(addrs)
            for row, s1_row, home_row, s2_row, s15_row in zip(
                addrs, l1_sets, home_keys, l2_sets, l15_sets
            ):
                row_list = row.tolist()
                s1_list = s1_row.tolist()
                home_list = home_row.tolist()
                s2_list = s2_row.tolist()
                s15_list = s15_row.tolist()
                groups.append(
                    [
                        (
                            compute_cycles,
                            busy,
                            tuple(
                                zip(
                                    row_list[start:mid],
                                    s1_list[start:mid],
                                    home_list[start:mid],
                                    s2_list[start:mid],
                                    s15_list[start:mid],
                                )
                            ),
                            tuple(
                                zip(
                                    row_list[mid:end],
                                    s1_list[mid:end],
                                    home_list[mid:end],
                                    s2_list[mid:end],
                                    s15_list[mid:end],
                                )
                            ),
                        )
                        for (start, mid, end), busy in zip(spans, busys)
                    ]
                )
        else:
            for records in self.base_groups():
                groups.append(
                    [
                        (record.compute_cycles, busy, record.reads, record.writes)
                        for record, busy in zip(records, busys)
                    ]
                )
        cache[geometry] = groups
        return groups


@dataclass(frozen=True)
class KernelLaunch:
    """One kernel invocation.

    Attributes
    ----------
    n_ctas:
        Grid size in CTAs.
    groups_per_cta:
        Warp groups per CTA (8 paper warps each).
    trace_fn:
        ``trace_fn(cta_index) -> CTATrace``; must be deterministic.
    label:
        Human-readable identifier ("kmeans.k2" etc.).
    """

    n_ctas: int
    groups_per_cta: int
    trace_fn: Callable[[int], CTATrace]
    label: str = "kernel"

    def __post_init__(self) -> None:
        if self.n_ctas <= 0:
            raise ValueError(f"n_ctas must be positive, got {self.n_ctas}")
        if self.groups_per_cta <= 0:
            raise ValueError(f"groups_per_cta must be positive, got {self.groups_per_cta}")


class TraceMemo:
    """Per-workload memo of materialized CTA traces.

    Trace functions are deterministic (same trace seed + CTA index -> same
    trace) and the engine treats traces as read-only, so one
    materialization can be handed out again and again: across kernel
    launches (iteration-structured kernels re-walk identical traces) and
    across runs (a suite simulates the same workload object on many
    systems back to back).  Trace generation — RNG streams, pattern
    synthesis, record packing — disappears from every walk but the first.

    Memory stays bounded by the workload itself: the memo holds at most
    one trace per (trace seed, CTA index) pair, i.e. the same volume of
    records the engine must materialize anyway for a single pass over the
    workload's distinct kernels.
    """

    __slots__ = ("_cache", "materializations", "reuses")

    def __init__(self) -> None:
        self._cache: dict = {}
        #: Builder invocations (cache misses) — tests assert reuse by
        #: checking this stays flat across repeated walks.
        self.materializations = 0
        #: Traces served from the memo without regeneration.
        self.reuses = 0

    def wrap(self, trace_seed: int, builder: Callable[[int], CTATrace]):
        """A memoizing ``trace_fn`` for the kernel variant ``trace_seed``."""
        cache = self._cache

        def trace_fn(cta_index: int) -> CTATrace:
            key = (trace_seed, cta_index)
            trace = cache.get(key)
            if trace is None:
                trace = builder(cta_index)
                cache[key] = trace
                self.materializations += 1
            else:
                self.reuses += 1
            return trace

        return trace_fn

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        """Drop all memoized traces (they regenerate on demand)."""
        self._cache.clear()


class Workload:
    """Base interface: a named, categorized sequence of kernel launches."""

    name: str = "workload"

    def kernels(self) -> Iterator[KernelLaunch]:
        """Yield kernel launches in program order."""
        raise NotImplementedError

    def digest(self) -> str:
        """Stable identity string for result caching."""
        raise NotImplementedError


def records_from_arrays(
    lines: Sequence[int],
    write_period: int,
    accesses_per_record: int,
    compute_cycles: float,
) -> List[TraceRecord]:
    """Pack a flat line-address sequence into :class:`TraceRecord` batches.

    Every ``write_period``-th access (1-indexed) becomes a store;
    ``write_period`` of zero means no stores.  The final partial record is
    kept (workloads rarely divide evenly).
    """
    if accesses_per_record <= 0:
        raise ValueError(f"accesses_per_record must be positive, got {accesses_per_record}")
    records: List[TraceRecord] = []
    total = len(lines)
    for start in range(0, total, accesses_per_record):
        batch = lines[start : start + accesses_per_record]
        reads: List[int] = []
        writes: List[int] = []
        for offset, line in enumerate(batch):
            position = start + offset + 1
            if write_period and position % write_period == 0:
                writes.append(int(line))
            else:
                reads.append(int(line))
        records.append(TraceRecord(compute_cycles, tuple(reads), tuple(writes)))
    return records


def write_period_from_fraction(write_fraction: float) -> int:
    """Convert a store fraction into the modular period used by traces."""
    if not 0.0 <= write_fraction < 1.0:
        raise ValueError(f"write_fraction must be in [0, 1), got {write_fraction}")
    if write_fraction == 0.0:
        return 0
    return max(1, round(1.0 / write_fraction))
