"""Trace representation consumed by the simulation engine.

A workload is a sequence of kernel launches; a kernel launch is a CTA count
plus a function producing, for any CTA index, the memory/compute trace of
each of its warp groups.  Traces are generated lazily (at CTA dispatch
time) and deterministically (same CTA index -> same trace), which both
bounds memory use and gives iterative kernels their cross-kernel locality
for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, NamedTuple, Sequence, Tuple


class TraceRecord(NamedTuple):
    """One step of a warp group: a burst of compute then a memory batch.

    ``compute_cycles`` is the latency of the arithmetic section;
    ``reads``/``writes`` are line addresses issued together (the group's
    memory-level parallelism).
    """

    compute_cycles: float
    reads: Tuple[int, ...]
    writes: Tuple[int, ...]

    @property
    def n_accesses(self) -> int:
        """Loads plus stores in this record."""
        return len(self.reads) + len(self.writes)


#: The full trace of one CTA: one record list per warp group.
CTATrace = List[List[TraceRecord]]


@dataclass(frozen=True)
class KernelLaunch:
    """One kernel invocation.

    Attributes
    ----------
    n_ctas:
        Grid size in CTAs.
    groups_per_cta:
        Warp groups per CTA (8 paper warps each).
    trace_fn:
        ``trace_fn(cta_index) -> CTATrace``; must be deterministic.
    label:
        Human-readable identifier ("kmeans.k2" etc.).
    """

    n_ctas: int
    groups_per_cta: int
    trace_fn: Callable[[int], CTATrace]
    label: str = "kernel"

    def __post_init__(self) -> None:
        if self.n_ctas <= 0:
            raise ValueError(f"n_ctas must be positive, got {self.n_ctas}")
        if self.groups_per_cta <= 0:
            raise ValueError(f"groups_per_cta must be positive, got {self.groups_per_cta}")


class TraceMemo:
    """Per-workload memo of materialized CTA traces.

    Trace functions are deterministic (same trace seed + CTA index -> same
    trace) and the engine treats traces as read-only, so one
    materialization can be handed out again and again: across kernel
    launches (iteration-structured kernels re-walk identical traces) and
    across runs (a suite simulates the same workload object on many
    systems back to back).  Trace generation — RNG streams, pattern
    synthesis, record packing — disappears from every walk but the first.

    Memory stays bounded by the workload itself: the memo holds at most
    one trace per (trace seed, CTA index) pair, i.e. the same volume of
    records the engine must materialize anyway for a single pass over the
    workload's distinct kernels.
    """

    __slots__ = ("_cache", "materializations", "reuses")

    def __init__(self) -> None:
        self._cache: dict = {}
        #: Builder invocations (cache misses) — tests assert reuse by
        #: checking this stays flat across repeated walks.
        self.materializations = 0
        #: Traces served from the memo without regeneration.
        self.reuses = 0

    def wrap(self, trace_seed: int, builder: Callable[[int], CTATrace]):
        """A memoizing ``trace_fn`` for the kernel variant ``trace_seed``."""
        cache = self._cache

        def trace_fn(cta_index: int) -> CTATrace:
            key = (trace_seed, cta_index)
            trace = cache.get(key)
            if trace is None:
                trace = builder(cta_index)
                cache[key] = trace
                self.materializations += 1
            else:
                self.reuses += 1
            return trace

        return trace_fn

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        """Drop all memoized traces (they regenerate on demand)."""
        self._cache.clear()


class Workload:
    """Base interface: a named, categorized sequence of kernel launches."""

    name: str = "workload"

    def kernels(self) -> Iterator[KernelLaunch]:
        """Yield kernel launches in program order."""
        raise NotImplementedError

    def digest(self) -> str:
        """Stable identity string for result caching."""
        raise NotImplementedError


def records_from_arrays(
    lines: Sequence[int],
    write_period: int,
    accesses_per_record: int,
    compute_cycles: float,
) -> List[TraceRecord]:
    """Pack a flat line-address sequence into :class:`TraceRecord` batches.

    Every ``write_period``-th access (1-indexed) becomes a store;
    ``write_period`` of zero means no stores.  The final partial record is
    kept (workloads rarely divide evenly).
    """
    if accesses_per_record <= 0:
        raise ValueError(f"accesses_per_record must be positive, got {accesses_per_record}")
    records: List[TraceRecord] = []
    total = len(lines)
    for start in range(0, total, accesses_per_record):
        batch = lines[start : start + accesses_per_record]
        reads: List[int] = []
        writes: List[int] = []
        for offset, line in enumerate(batch):
            position = start + offset + 1
            if write_period and position % write_period == 0:
                writes.append(int(line))
            else:
                reads.append(int(line))
        records.append(TraceRecord(compute_cycles, tuple(reads), tuple(writes)))
    return records


def write_period_from_fraction(write_fraction: float) -> int:
    """Convert a store fraction into the modular period used by traces."""
    if not 0.0 <= write_fraction < 1.0:
        raise ValueError(f"write_fraction must be in [0, 1), got {write_fraction}")
    if write_fraction == 0.0:
        return 0
    return max(1, round(1.0 / write_fraction))
