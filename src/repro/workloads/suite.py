"""The 48-benchmark synthetic suite (Section 4 of the paper).

The paper evaluates 48 workloads drawn from CORAL, Lonestar, Rodinia and an
NVIDIA in-house set, split into 17 memory-intensive high-parallelism
workloads (named, with footprints, in Table 4), 16 compute-intensive
high-parallelism workloads, and 15 limited-parallelism workloads (named
examples in the text: SP, XSBench, DWT, NN, Streamcluster).  Only the
Table 4 names are published; the remaining entries here are representative
members of the cited suites, parameterized to land in the right category.

Each entry is a :class:`~repro.workloads.synthetic.WorkloadSpec` whose
pattern/footprint/compute parameters are chosen so the workload reproduces
its class's qualitative behaviour on the MCM-GPU memory system (see
DESIGN.md, "Substitutions").  Footprints are scaled by
:data:`~repro.core.config.MEMORY_SCALE` and clamped to keep simulations
tractable; Table 4's full-scale figures are preserved for reporting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.config import MEMORY_SCALE
from .synthetic import Category, SyntheticWorkload, WorkloadSpec

KB = 1 << 10
MB = 1 << 20

#: Bounds on the scaled simulation footprint.
MIN_FOOTPRINT_BYTES = 256 * KB
MAX_FOOTPRINT_BYTES = 8 * MB


def scaled_footprint(paper_mb: float, scale: float = MEMORY_SCALE) -> int:
    """Scaled simulation footprint for a Table 4 full-scale footprint.

    Clamped so tiny inputs still exceed the (scaled) L2 working range and
    multi-GB inputs stay simulable; the clamp preserves the property that
    matters — the footprint:capacity ratio regime — as documented in
    DESIGN.md.
    """
    return int(min(MAX_FOOTPRINT_BYTES, max(MIN_FOOTPRINT_BYTES, paper_mb * MB * scale)))


def _m_intensive(
    name: str,
    pattern: str,
    paper_mb: float,
    pattern_params: Sequence = (),
    write_fraction: float = 0.2,
    compute_per_record: float = 8.0,
    kernel_iterations: int = 2,
    records_per_group: int = 4,
    suite: str = "CORAL",
    imbalance: float = 0.0,
) -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        category=Category.M_INTENSIVE,
        suite=suite,
        pattern=pattern,
        pattern_params=tuple(pattern_params),
        n_ctas=1536,
        groups_per_cta=2,
        records_per_group=records_per_group,
        accesses_per_record=4,
        write_fraction=write_fraction,
        compute_per_record=compute_per_record,
        kernel_iterations=kernel_iterations,
        footprint_bytes=scaled_footprint(paper_mb),
        paper_footprint_mb=paper_mb,
        imbalance=imbalance,
    )


def _c_intensive(
    name: str,
    pattern: str,
    footprint_mb: float = 2.0,
    pattern_params: Sequence = (),
    write_fraction: float = 0.12,
    compute_per_record: float = 64.0,
    kernel_iterations: int = 2,
    records_per_group: int = 4,
    accesses_per_record: int = 2,
    suite: str = "Rodinia",
    imbalance: float = 0.0,
) -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        category=Category.C_INTENSIVE,
        suite=suite,
        pattern=pattern,
        pattern_params=tuple(pattern_params),
        n_ctas=1536,
        groups_per_cta=2,
        records_per_group=records_per_group,
        accesses_per_record=accesses_per_record,
        write_fraction=write_fraction,
        compute_per_record=compute_per_record,
        kernel_iterations=kernel_iterations,
        # For the unnamed workloads footprint_mb is the *scaled* footprint.
        footprint_bytes=max(MIN_FOOTPRINT_BYTES, int(footprint_mb * MB)),
        paper_footprint_mb=None,
        imbalance=imbalance,
    )


def _limited(
    name: str,
    pattern: str,
    n_ctas: int,
    footprint_kb: int = 768,
    pattern_params: Sequence = (),
    write_fraction: float = 0.15,
    compute_per_record: float = 56.0,
    kernel_iterations: int = 2,
    records_per_group: int = 6,
    accesses_per_record: int = 2,
    suite: str = "Rodinia",
    imbalance: float = 0.0,
) -> WorkloadSpec:
    # Limited-parallelism kernels have few but *wide* CTAs: 6 warp groups
    # (48 warps) per CTA, so an SM holding a single CTA still hides most
    # memory latency — matching the paper's modest NUMA sensitivity for
    # this category.
    return WorkloadSpec(
        name=name,
        category=Category.LIMITED_PARALLELISM,
        suite=suite,
        pattern=pattern,
        pattern_params=tuple(pattern_params),
        n_ctas=n_ctas,
        groups_per_cta=6,
        records_per_group=records_per_group,
        accesses_per_record=accesses_per_record,
        write_fraction=write_fraction,
        compute_per_record=compute_per_record,
        kernel_iterations=kernel_iterations,
        footprint_bytes=max(MIN_FOOTPRINT_BYTES, footprint_kb * KB),
        paper_footprint_mb=None,
        imbalance=imbalance,
    )


def m_intensive_specs() -> List[WorkloadSpec]:
    """The 17 memory-intensive workloads of Table 4, in table order."""
    return [
        _m_intensive("AMG", "banded", 5430,
                     [("band_fraction", 0.33), ("band_width_ctas", 128), ("band_lines", 288)],
                     kernel_iterations=2, suite="CORAL"),
        _m_intensive("NN-Conv", "streaming", 496, write_fraction=0.10,
                     compute_per_record=16.0, kernel_iterations=2, suite="NVIDIA"),
        _m_intensive("BFS", "irregular",
                     37, [("hot_fraction", 0.55), ("hot_lines", 512), ("local_bias", 0.55)],
                     write_fraction=0.15, kernel_iterations=2, suite="Lonestar"),
        _m_intensive("CFD", "banded", 25,
                     [("band_fraction", 0.42), ("band_width_ctas", 128), ("band_lines", 320)],
                     write_fraction=0.25, kernel_iterations=2, suite="Rodinia"),
        _m_intensive("CoMD", "banded", 385,
                     [("band_fraction", 0.47), ("band_width_ctas", 128), ("band_lines", 320)],
                     kernel_iterations=2, suite="CORAL"),
        _m_intensive("Kmeans", "hotset",
                     216, [("hot_fraction", 0.40), ("hot_lines", 384)],
                     write_fraction=0.10, kernel_iterations=2, suite="Rodinia"),
        _m_intensive("Lulesh1", "banded", 1891,
                     [("band_fraction", 0.38), ("band_width_ctas", 128), ("band_lines", 320)],
                     kernel_iterations=2, suite="CORAL"),
        _m_intensive("Lulesh2", "banded", 4309,
                     [("band_fraction", 0.33), ("band_width_ctas", 128), ("band_lines", 288)],
                     kernel_iterations=2, suite="CORAL"),
        _m_intensive("Lulesh3", "banded", 203,
                     [("band_fraction", 0.38), ("band_width_ctas", 128), ("band_lines", 320)],
                     kernel_iterations=2, suite="CORAL", imbalance=0.6),
        _m_intensive("MiniAMR", "banded", 5407,
                     [("band_fraction", 0.30), ("band_width_ctas", 128), ("band_lines", 288)],
                     kernel_iterations=2, suite="CORAL"),
        _m_intensive("MnCtct", "irregular",
                     251, [("hot_fraction", 0.45), ("hot_lines", 512), ("local_bias", 0.50)],
                     kernel_iterations=2, suite="CORAL"),
        _m_intensive("MST", "irregular",
                     73, [("hot_fraction", 0.50), ("hot_lines", 512), ("local_bias", 0.50)],
                     kernel_iterations=2, suite="Lonestar"),
        _m_intensive("Nekbone1", "banded", 1746,
                     [("band_fraction", 0.35), ("band_width_ctas", 128), ("band_lines", 288)],
                     compute_per_record=12.0, kernel_iterations=2, suite="CORAL"),
        _m_intensive("Nekbone2", "banded", 287,
                     [("band_fraction", 0.35), ("band_width_ctas", 128), ("band_lines", 288)],
                     compute_per_record=12.0, kernel_iterations=2, suite="CORAL"),
        _m_intensive("Srad-v2", "banded", 96,
                     [("band_fraction", 0.42), ("band_width_ctas", 128), ("band_lines", 320)],
                     write_fraction=0.25,
                     kernel_iterations=2, suite="Rodinia"),
        _m_intensive("SSSP", "irregular",
                     37, [("hot_fraction", 0.60), ("hot_lines", 512), ("local_bias", 0.55)],
                     write_fraction=0.15, kernel_iterations=2, suite="Lonestar"),
        _m_intensive("Stream", "streaming", 3072, write_fraction=0.33,
                     compute_per_record=2.0, suite="NVIDIA"),
    ]


def c_intensive_specs() -> List[WorkloadSpec]:
    """16 compute-intensive high-parallelism workloads.

    SP and XSBench are named by the paper as the high-gain members of this
    group (Section 5.4); they get lower compute density and hotter sharing
    so they remain sensitive to inter-GPM bandwidth.
    """
    return [
        _c_intensive("SP", "irregular", 3.0,
                     [("hot_fraction", 0.60), ("hot_lines", 384), ("local_bias", 0.50)],
                     compute_per_record=24.0, kernel_iterations=2,
                     accesses_per_record=4, suite="Lonestar"),
        _c_intensive("XSBench", "hotset", 4.0,
                     [("hot_fraction", 0.55), ("hot_lines", 384)],
                     compute_per_record=32.0, kernel_iterations=2,
                     accesses_per_record=4, suite="CORAL"),
        _c_intensive("Backprop", "streaming", 2.0, compute_per_record=240.0),
        _c_intensive("Hotspot", "stencil", 1.5, [("halo_fraction", 0.15)],
                     compute_per_record=150.0, kernel_iterations=2),
        _c_intensive("LavaMD", "stencil", 2.0, [("halo_fraction", 0.20)],
                     compute_per_record=190.0),
        _c_intensive("Pathfinder", "streaming", 2.0, compute_per_record=220.0),
        _c_intensive("NW", "stencil", 1.0, [("halo_fraction", 0.10)],
                     compute_per_record=170.0),
        _c_intensive("Gaussian", "streaming", 1.5, compute_per_record=220.0),
        _c_intensive("Heartwall", "hotset", 1.0,
                     [("hot_fraction", 0.40), ("hot_lines", 128)],
                     compute_per_record=150.0),
        _c_intensive("Leukocyte", "hotset", 1.0,
                     [("hot_fraction", 0.45), ("hot_lines", 128)],
                     compute_per_record=160.0),
        _c_intensive("Myocyte", "hotset", 0.5,
                     [("hot_fraction", 0.60), ("hot_lines", 96)],
                     compute_per_record=160.0),
        _c_intensive("B+Tree", "irregular", 2.0,
                     [("hot_fraction", 0.40), ("hot_lines", 384), ("local_bias", 0.40)],
                     compute_per_record=100.0),
        _c_intensive("DMR", "irregular", 2.0,
                     [("hot_fraction", 0.25), ("hot_lines", 512), ("local_bias", 0.35)],
                     compute_per_record=100.0, suite="Lonestar", imbalance=0.5),
        _c_intensive("MatMul", "hotset", 2.0,
                     [("hot_fraction", 0.30), ("hot_lines", 384)],
                     compute_per_record=150.0, suite="NVIDIA"),
        _c_intensive("FFT", "streaming", 2.0, [("stride", 4)],
                     compute_per_record=220.0, suite="NVIDIA"),
        _c_intensive("MCOptions", "irregular", 1.0,
                     [("hot_fraction", 0.20), ("hot_lines", 192), ("local_bias", 0.35)],
                     write_fraction=0.05, compute_per_record=140.0, suite="NVIDIA"),
    ]


def limited_parallelism_specs() -> List[WorkloadSpec]:
    """15 limited-parallelism workloads (parallel efficiency < 25%).

    DWT and NN are the paper's examples of latency-sensitive workloads the
    L1.5 can hurt (Section 5.4): low occupancy, dependent accesses, no
    reuse for the L1.5 to capture.  Streamcluster is the write-heavy
    workload punished by the shrunken write-back L2.
    """
    return [
        _limited("DWT", "global_stride", 97, footprint_kb=1024,
                 pattern_params=[("stride_ctas", 1)], compute_per_record=12.0,
                 accesses_per_record=1, records_per_group=10),
        _limited("NN", "irregular", 96, footprint_kb=2048,
                 pattern_params=[("hot_fraction", 0.0), ("hot_lines", 0)],
                 compute_per_record=8.0, accesses_per_record=1,
                 records_per_group=12, imbalance=0.6),
        _limited("Streamcluster", "streaming", 128, footprint_kb=384,
                 write_fraction=0.55, compute_per_record=8.0,
                 accesses_per_record=4, records_per_group=8),
        _limited("BH", "banded", 144, footprint_kb=1536,
                 pattern_params=[("band_fraction", 0.35), ("band_width_ctas", 64),
                                 ("band_lines", 224), ("band_skew", 2.0)],
                 compute_per_record=130.0, suite="Lonestar"),
        _limited("SCC", "irregular", 120, footprint_kb=1024,
                 pattern_params=[("hot_fraction", 0.75), ("hot_lines", 128), ("local_bias", 0.40)],
                 suite="Lonestar"),
        _limited("PTA", "irregular", 144, footprint_kb=1024,
                 pattern_params=[("hot_fraction", 0.80), ("hot_lines", 128), ("local_bias", 0.40)],
                 suite="Lonestar"),
        _limited("MRI-Q", "hotset", 128, footprint_kb=512,
                 pattern_params=[("hot_fraction", 0.85), ("hot_lines", 64)],
                 compute_per_record=130.0),
        _limited("MRI-Grid", "banded", 136, footprint_kb=768,
                 pattern_params=[("band_fraction", 0.35), ("band_width_ctas", 56),
                                 ("band_lines", 192), ("band_skew", 2.0)],
                 compute_per_record=150.0),
        _limited("TPACF", "hotset", 120, footprint_kb=512,
                 pattern_params=[("hot_fraction", 0.85), ("hot_lines", 64)],
                 compute_per_record=150.0),
        _limited("LUD", "hotset", 104, footprint_kb=512,
                 pattern_params=[("hot_fraction", 0.80), ("hot_lines", 64)],
                 compute_per_record=110.0, imbalance=0.4),
        _limited("NQueens", "hotset", 64, footprint_kb=256,
                 pattern_params=[("hot_fraction", 0.75), ("hot_lines", 48)],
                 compute_per_record=140.0, suite="NVIDIA"),
        _limited("Cutcp", "stencil", 136, footprint_kb=768,
                 pattern_params=[("halo_fraction", 0.20)],
                 compute_per_record=96.0),
        _limited("SAD", "streaming", 144, footprint_kb=1024,
                 compute_per_record=220.0),
        _limited("Delaunay", "banded", 120, footprint_kb=1024,
                 pattern_params=[("band_fraction", 0.35), ("band_width_ctas", 48),
                                 ("band_lines", 192), ("band_skew", 2.0)],
                 compute_per_record=150.0, suite="Lonestar"),
        _limited("HistoEq", "hotset", 128, footprint_kb=512,
                 pattern_params=[("hot_fraction", 0.75), ("hot_lines", 64)],
                 write_fraction=0.30, compute_per_record=96.0),
    ]


def all_specs() -> List[WorkloadSpec]:
    """All 48 workloads: 17 M-intensive, 16 C-intensive, 15 limited."""
    return m_intensive_specs() + c_intensive_specs() + limited_parallelism_specs()


def ml_specs() -> List[WorkloadSpec]:
    """The post-2017 ML-era extension suite (not part of the paper's 48).

    Eight workloads covering the dominant traffic classes of modern ML
    training and inference — dense GEMM tiling, attention
    prefill/decode, ring allreduce, Zipfian embedding gathers, and
    bursty MoE dispatch — per "Analyzing Machine Learning Workloads"
    and MGSim/MGMark (PAPERS.md).  Categories reuse the paper's taxonomy
    so reports can compare like with like: training-side kernels are
    memory-intensive at full occupancy; decode-style inference is the
    modern face of limited parallelism.
    """
    return [
        _m_intensive("GEMM-Fwd", "gemm_tile", 780,
                     [("k_steps", 4), ("c_fraction", 0.2)],
                     write_fraction=0.12, compute_per_record=24.0,
                     kernel_iterations=2, suite="ML"),
        _m_intensive("GEMM-Train", "gemm_tile", 2950,
                     [("k_steps", 6), ("c_fraction", 0.25)],
                     write_fraction=0.30, compute_per_record=16.0,
                     kernel_iterations=2, suite="ML"),
        _m_intensive("Attn-Prefill", "attention", 1320,
                     [("kv_fraction", 0.55), ("gather_fraction", 0.55),
                      ("recency_skew", 2.0)],
                     write_fraction=0.15, compute_per_record=20.0,
                     kernel_iterations=2, suite="ML"),
        _m_intensive("AllReduce-Ring", "allreduce", 1024,
                     [("accum_ratio", 0.5)],
                     write_fraction=0.35, compute_per_record=4.0,
                     kernel_iterations=6, suite="ML"),
        _m_intensive("DLRM-Embed", "zipfian", 4100,
                     [("alpha", 0.95), ("stream_fraction", 0.25)],
                     write_fraction=0.08, compute_per_record=6.0,
                     kernel_iterations=2, suite="ML"),
        _m_intensive("MoE-Gate", "bursty", 900,
                     [("burst_lines", 16), ("hot_fraction", 0.7), ("n_hot", 4)],
                     write_fraction=0.18, compute_per_record=10.0,
                     kernel_iterations=2, suite="ML"),
        _c_intensive("Conv-Winograd", "gemm_tile", 2.0,
                     [("k_steps", 3), ("c_fraction", 0.3)],
                     write_fraction=0.15, compute_per_record=130.0,
                     kernel_iterations=2, suite="ML"),
        _limited("Attn-Decode", "attention", 96, footprint_kb=2048,
                 pattern_params=[("kv_fraction", 0.75), ("gather_fraction", 0.8),
                                 ("recency_skew", 4.0), ("sink_fraction", 0.15)],
                 write_fraction=0.08, compute_per_record=10.0,
                 accesses_per_record=2, records_per_group=10, suite="ML"),
    ]


def ml_workloads(fast_factor: Optional[float] = None) -> List[SyntheticWorkload]:
    """Runnable ML-era workloads (optionally scaled down for fast runs)."""
    specs = ml_specs()
    if fast_factor is not None:
        specs = [spec.scaled_down(fast_factor) for spec in specs]
    return [SyntheticWorkload(spec) for spec in specs]


def specs_by_category() -> Dict[Category, List[WorkloadSpec]]:
    """The suite grouped by paper category."""
    grouped: Dict[Category, List[WorkloadSpec]] = {category: [] for category in Category}
    for spec in all_specs():
        grouped[spec.category].append(spec)
    return grouped


def spec_by_name(name: str) -> WorkloadSpec:
    """Look up one workload by name (paper suite, then ML extension)."""
    for spec in all_specs() + ml_specs():
        if spec.name == name:
            return spec
    raise KeyError(f"no workload named {name!r} in the suite")


def make_workload(name_or_spec) -> SyntheticWorkload:
    """Build a runnable workload from a suite name or an explicit spec."""
    if isinstance(name_or_spec, WorkloadSpec):
        return SyntheticWorkload(name_or_spec)
    return SyntheticWorkload(spec_by_name(str(name_or_spec)))


def suite_workloads(
    category: Optional[Category] = None,
    fast_factor: Optional[float] = None,
) -> List[SyntheticWorkload]:
    """Runnable workloads for the whole suite (or one category).

    ``fast_factor`` shrinks every workload (CTAs and footprint) for quick
    test runs while preserving structure.
    """
    specs = all_specs() if category is None else specs_by_category()[category]
    if fast_factor is not None:
        specs = [spec.scaled_down(fast_factor) for spec in specs]
    return [SyntheticWorkload(spec) for spec in specs]
