"""Synthetic workload suite: traces, patterns, and the 48-benchmark set."""

from .characterize import WorkloadProfile, profile_spec, profile_workload
from .patterns import (
    PATTERNS,
    AccessPattern,
    BandedPattern,
    GlobalStridePattern,
    HotsetPattern,
    IrregularPattern,
    StencilPattern,
    StreamingPattern,
    make_pattern,
)
from .rng import rng_for, stable_seed
from .suite import (
    all_specs,
    c_intensive_specs,
    limited_parallelism_specs,
    m_intensive_specs,
    make_workload,
    scaled_footprint,
    spec_by_name,
    specs_by_category,
    suite_workloads,
)
from .synthetic import Category, SyntheticWorkload, WorkloadSpec
from .trace import (
    CTATrace,
    KernelLaunch,
    TraceRecord,
    Workload,
    records_from_arrays,
    write_period_from_fraction,
)

__all__ = [
    "WorkloadProfile",
    "profile_spec",
    "profile_workload",
    "PATTERNS",
    "AccessPattern",
    "BandedPattern",
    "GlobalStridePattern",
    "HotsetPattern",
    "IrregularPattern",
    "StencilPattern",
    "StreamingPattern",
    "make_pattern",
    "rng_for",
    "stable_seed",
    "all_specs",
    "c_intensive_specs",
    "limited_parallelism_specs",
    "m_intensive_specs",
    "make_workload",
    "scaled_footprint",
    "spec_by_name",
    "specs_by_category",
    "suite_workloads",
    "Category",
    "SyntheticWorkload",
    "WorkloadSpec",
    "CTATrace",
    "KernelLaunch",
    "TraceRecord",
    "Workload",
    "records_from_arrays",
    "write_period_from_fraction",
]
