"""Deterministic random-number seeding for workload generation.

Every trace must be reproducible from (workload name, kernel index, CTA
index) alone: the engine regenerates CTA traces on demand, and iterative
kernels rely on identical per-CTA address streams across launches to model
convergence-loop reuse (paper Section 5.3 / Figure 12).
"""

from __future__ import annotations

import zlib

import numpy as np


def stable_seed(*parts: object) -> int:
    """A 32-bit seed derived deterministically from the given parts.

    Uses CRC32 over the joined string representation — stable across
    processes and Python versions (unlike ``hash``).
    """
    text = "|".join(str(part) for part in parts)
    return zlib.crc32(text.encode("utf-8"))


def rng_for(*parts: object) -> np.random.Generator:
    """A numpy Generator seeded from :func:`stable_seed`."""
    return np.random.default_rng(stable_seed(*parts))
