"""Static workload characterization.

Computes, from traces alone (no timing simulation), the properties the
paper uses to classify its suite (Section 4): memory intensity, footprint
coverage, inter-CTA sharing, and hot-set concentration.  Useful both for
auditing the synthetic suite's composition claims and for sizing new
workload specs.

The profile also carries per-CTA means and workload-wide extrapolations
(CTA count, kernel launches, distinct-line estimate) so the analytical
predictor in :mod:`repro.core.analytical` can reconstruct total work
from a sampled trace without replaying every CTA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Set, Tuple

from .synthetic import SyntheticWorkload, WorkloadSpec
from .trace import KernelLaunch, Workload

#: Page sizes (bytes) the locality table is evaluated at — covering the
#: ``page_bytes`` settings the presets and built-in sweeps use.
PAGE_LOCALITY_GRANULARITIES = (512, 1024, 2048, 4096, 8192)
#: Contiguous CTA-block counts (GPM counts) the table is evaluated at.
PAGE_LOCALITY_BLOCKS = (2, 4, 8)
#: Line size the synthetic traces are expressed in.
_LINE_BYTES = 128


@dataclass(frozen=True)
class WorkloadProfile:
    """Trace-level statistics of one workload (first kernel, sampled CTAs)."""

    name: str
    sampled_ctas: int
    total_accesses: int
    store_fraction: float
    compute_per_access: float
    distinct_lines: int
    footprint_coverage: float
    #: Fraction of sampled lines touched by more than one sampled CTA.
    shared_line_fraction: float
    #: Fraction of accesses landing on the 10% most-touched lines.
    hot_concentration: float
    #: CTAs in the profiled kernel (not just the sampled subset).
    n_ctas: int = 0
    #: Kernel launches across the whole workload (iterations included).
    kernel_launches: int = 1
    #: Warp groups per CTA in the profiled kernel.
    groups_per_cta: float = 1.0
    #: Mean accesses issued by one CTA.
    per_cta_accesses: float = 0.0
    #: Mean trace records walked by one CTA.
    per_cta_records: float = 0.0
    #: Mean distinct lines touched by one CTA.
    per_cta_distinct_lines: float = 0.0
    #: Mean compute cycles charged per record.
    compute_per_record: float = 0.0
    #: Distinct lines extrapolated to all CTAs, capped at the footprint.
    distinct_lines_estimate: float = 0.0
    #: First-touch locality table: ``(page_bytes, n_blocks, local_fraction)``
    #: rows, where ``local_fraction`` is the fraction of accesses whose CTA
    #: lies in the same contiguous CTA block (of ``n_blocks`` equal blocks,
    #: the distributed scheduler's split) as the page's first toucher.
    page_locality: Tuple[Tuple[int, int, float], ...] = field(default=())

    @property
    def memory_intensity(self) -> float:
        """Accesses per compute cycle — higher means more memory-bound."""
        if self.compute_per_access <= 0:
            return float("inf")
        return 1.0 / self.compute_per_access

    def page_local_fraction(self, page_bytes: int, n_blocks: int) -> float:
        """First-touch locality at the nearest profiled (page size, blocks).

        Falls back to the uniform ``1 / n_blocks`` when the table is empty
        (legacy profiles).  Page size snaps to the nearest profiled
        granularity in log space; the block count to the nearest profiled
        count.
        """
        if not self.page_locality:
            return 1.0 / max(1, n_blocks)
        best_g = min(
            {row[0] for row in self.page_locality},
            key=lambda g: abs(g.bit_length() - int(page_bytes).bit_length()),
        )
        candidates = [row for row in self.page_locality if row[0] == best_g]
        _, _, fraction = min(candidates, key=lambda row: abs(row[1] - n_blocks))
        return fraction


def _sample_ctas(kernel: KernelLaunch, max_ctas: int) -> Iterable[int]:
    if kernel.n_ctas <= max_ctas:
        return range(kernel.n_ctas)
    step = kernel.n_ctas / max_ctas
    return (int(index * step) for index in range(max_ctas))


def _block_of(cta: int, n_ctas: int, n_blocks: int) -> int:
    """Contiguous equal-split block of ``cta`` (distributed-scheduler split)."""
    base, extra = divmod(n_ctas, n_blocks)
    if base == 0:
        return min(cta, n_blocks - 1)
    cutoff = extra * (base + 1)
    if cta < cutoff:
        return cta // (base + 1)
    return extra + (cta - cutoff) // base


def _page_locality_table(
    page_touches: Dict[int, Dict[int, Dict[int, int]]],
    n_ctas: int,
    accesses: int,
) -> Tuple[Tuple[int, int, float], ...]:
    """First-touch locality rows from per-granularity page touch counts.

    The first toucher of a page is approximated by the lowest touching
    CTA index — under the distributed scheduler each GPM starts its batch
    at its lowest index, so the earliest toucher in time is the lowest
    index of the winning block, and ties between blocks only shift pages
    between equally-plausible homes.
    """
    if accesses <= 0 or n_ctas <= 0:
        return ()
    rows = []
    for granularity in PAGE_LOCALITY_GRANULARITIES:
        per_page = page_touches[granularity]
        for n_blocks in PAGE_LOCALITY_BLOCKS:
            local = 0
            for touches_by_cta in per_page.values():
                home = _block_of(min(touches_by_cta), n_ctas, n_blocks)
                local += sum(
                    count
                    for cta, count in touches_by_cta.items()
                    if _block_of(cta, n_ctas, n_blocks) == home
                )
            rows.append((granularity, n_blocks, local / accesses))
    return tuple(rows)


def _declared_footprint(workload: Workload) -> int:
    """The workload's declared footprint in lines, if it declares one.

    Synthetic workloads carry it on their spec; ingested workloads expose
    it directly.  Returns 0 for workloads declaring neither (the profiler
    then falls back to the observed footprint).
    """
    spec = getattr(workload, "spec", None)
    if spec is not None and hasattr(spec, "footprint_lines"):
        return int(spec.footprint_lines)
    declared = getattr(workload, "footprint_lines", None)
    return int(declared) if declared else 0


def profile_workload(workload: Workload, max_ctas: int = 64) -> WorkloadProfile:
    """Characterize any ``Workload`` from its first kernel's traces.

    Works for synthetic and ingested workloads alike: the grid shape
    comes from the kernel launch, the footprint from the workload's
    declaration (spec or ``footprint_lines`` attribute) with the observed
    line range as fallback.
    """
    kernels = list(workload.kernels())
    kernel = kernels[0]
    touch_counts: Dict[int, int] = {}
    ctas_touching: Dict[int, Set[int]] = {}
    lines_per_page = {
        granularity: max(1, granularity // _LINE_BYTES)
        for granularity in PAGE_LOCALITY_GRANULARITIES
    }
    page_touches: Dict[int, Dict[int, Dict[int, int]]] = {
        granularity: {} for granularity in PAGE_LOCALITY_GRANULARITIES
    }
    accesses = 0
    stores = 0
    compute = 0.0
    records = 0
    sampled = 0
    for cta_index in _sample_ctas(kernel, max_ctas):
        sampled += 1
        for group in kernel.trace_fn(cta_index):
            for record in group:
                records += 1
                compute += record.compute_cycles
                for line in record.reads + record.writes:
                    accesses += 1
                    touch_counts[line] = touch_counts.get(line, 0) + 1
                    ctas_touching.setdefault(line, set()).add(cta_index)
                    for granularity, per_line in lines_per_page.items():
                        by_cta = page_touches[granularity].setdefault(
                            line // per_line, {}
                        )
                        by_cta[cta_index] = by_cta.get(cta_index, 0) + 1
                stores += len(record.writes)

    distinct = len(touch_counts)
    shared = sum(1 for ctas in ctas_touching.values() if len(ctas) > 1)
    # Mean per-CTA footprint: each line contributes once per CTA touching it.
    cta_line_pairs = sum(len(ctas) for ctas in ctas_touching.values())
    ordered = sorted(touch_counts.values(), reverse=True)
    hot_count = max(1, distinct // 10)
    hot_accesses = sum(ordered[:hot_count])
    footprint_lines = _declared_footprint(workload)
    if not footprint_lines:
        footprint_lines = (max(touch_counts) + 1) if touch_counts else 1
    if sampled >= kernel.n_ctas:
        distinct_estimate = float(distinct)
    else:
        # Linear extrapolation capped at the declared footprint; sharing
        # makes the union grow sublinearly, so this overestimates — the
        # calibration bands absorb the slack.
        distinct_estimate = min(
            float(footprint_lines),
            distinct * kernel.n_ctas / max(1, sampled),
        )
    return WorkloadProfile(
        name=workload.name,
        sampled_ctas=sampled,
        total_accesses=accesses,
        store_fraction=stores / accesses if accesses else 0.0,
        compute_per_access=compute / accesses if accesses else 0.0,
        distinct_lines=distinct,
        footprint_coverage=distinct / footprint_lines,
        shared_line_fraction=shared / distinct if distinct else 0.0,
        hot_concentration=hot_accesses / accesses if accesses else 0.0,
        n_ctas=kernel.n_ctas,
        kernel_launches=len(kernels),
        groups_per_cta=float(kernel.groups_per_cta),
        per_cta_accesses=accesses / sampled if sampled else 0.0,
        per_cta_records=records / sampled if sampled else 0.0,
        per_cta_distinct_lines=cta_line_pairs / sampled if sampled else 0.0,
        compute_per_record=compute / records if records else 0.0,
        distinct_lines_estimate=distinct_estimate,
        page_locality=_page_locality_table(page_touches, kernel.n_ctas, accesses),
    )


def profile_spec(spec: WorkloadSpec, max_ctas: int = 64) -> WorkloadProfile:
    """Characterize a spec directly."""
    return profile_workload(SyntheticWorkload(spec), max_ctas=max_ctas)


#: Process-local cache of profiles keyed by workload digest — profiling
#: replays sampled traces, which is cheap but not free, and the explore
#: screen asks for the same rung-0 suite repeatedly.
_PROFILE_CACHE: Dict[str, WorkloadProfile] = {}


def cached_profile(workload: Workload, max_ctas: int = 64) -> WorkloadProfile:
    """Memoized :func:`profile_workload` keyed by the workload digest.

    Keying by ``digest()`` rather than object identity is what makes the
    cache correct for ingested workloads: their digest is the trace
    *content hash*, so two objects loaded from the same file share one
    profile, and editing the file (new hash) invalidates it — the same
    self-invalidation path the result cache uses.
    """
    key = f"{workload.digest()}|{max_ctas}"
    profile = _PROFILE_CACHE.get(key)
    if profile is None:
        profile = profile_workload(workload, max_ctas=max_ctas)
        _PROFILE_CACHE[key] = profile
    return profile
