"""Static workload characterization.

Computes, from traces alone (no timing simulation), the properties the
paper uses to classify its suite (Section 4): memory intensity, footprint
coverage, inter-CTA sharing, and hot-set concentration.  Useful both for
auditing the synthetic suite's composition claims and for sizing new
workload specs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set

from .synthetic import SyntheticWorkload, WorkloadSpec
from .trace import KernelLaunch


@dataclass(frozen=True)
class WorkloadProfile:
    """Trace-level statistics of one workload (first kernel, sampled CTAs)."""

    name: str
    sampled_ctas: int
    total_accesses: int
    store_fraction: float
    compute_per_access: float
    distinct_lines: int
    footprint_coverage: float
    #: Fraction of sampled lines touched by more than one sampled CTA.
    shared_line_fraction: float
    #: Fraction of accesses landing on the 10% most-touched lines.
    hot_concentration: float

    @property
    def memory_intensity(self) -> float:
        """Accesses per compute cycle — higher means more memory-bound."""
        if self.compute_per_access <= 0:
            return float("inf")
        return 1.0 / self.compute_per_access


def _sample_ctas(kernel: KernelLaunch, max_ctas: int) -> Iterable[int]:
    if kernel.n_ctas <= max_ctas:
        return range(kernel.n_ctas)
    step = kernel.n_ctas / max_ctas
    return (int(index * step) for index in range(max_ctas))


def profile_workload(workload: SyntheticWorkload, max_ctas: int = 64) -> WorkloadProfile:
    """Characterize ``workload`` from its first kernel's traces."""
    spec = workload.spec
    kernel = next(iter(workload.kernels()))
    touch_counts: Dict[int, int] = {}
    ctas_touching: Dict[int, Set[int]] = {}
    accesses = 0
    stores = 0
    compute = 0.0
    sampled = 0
    for cta_index in _sample_ctas(kernel, max_ctas):
        sampled += 1
        for group in kernel.trace_fn(cta_index):
            for record in group:
                compute += record.compute_cycles
                for line in record.reads + record.writes:
                    accesses += 1
                    touch_counts[line] = touch_counts.get(line, 0) + 1
                    ctas_touching.setdefault(line, set()).add(cta_index)
                stores += len(record.writes)

    distinct = len(touch_counts)
    shared = sum(1 for ctas in ctas_touching.values() if len(ctas) > 1)
    ordered = sorted(touch_counts.values(), reverse=True)
    hot_count = max(1, distinct // 10)
    hot_accesses = sum(ordered[:hot_count])
    return WorkloadProfile(
        name=workload.name,
        sampled_ctas=sampled,
        total_accesses=accesses,
        store_fraction=stores / accesses if accesses else 0.0,
        compute_per_access=compute / accesses if accesses else 0.0,
        distinct_lines=distinct,
        footprint_coverage=distinct / spec.footprint_lines,
        shared_line_fraction=shared / distinct if distinct else 0.0,
        hot_concentration=hot_accesses / accesses if accesses else 0.0,
    )


def profile_spec(spec: WorkloadSpec, max_ctas: int = 64) -> WorkloadProfile:
    """Characterize a spec directly."""
    return profile_workload(SyntheticWorkload(spec), max_ctas=max_ctas)
