"""Event-driven simulation: engine, façade, results."""

from .engine import SimulationEngine
from .result import SimResult
from .simulator import Simulator, simulate

__all__ = ["SimulationEngine", "SimResult", "Simulator", "simulate"]
