"""Simulation results and derived metrics.

A :class:`SimResult` is a frozen snapshot of everything one run produced:
the makespan in cycles, cache statistics per level, DRAM and ring traffic,
page-placement locality, and the data-movement energy breakdown.  All of
the paper's reported quantities (speedups, inter-GPM bandwidth in TB/s,
traffic reductions) derive from these counters.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Optional

from ..core.energy import EnergyBreakdown, IntegrationTier, breakdown_from_traffic
from ..memory.cache import CacheStats

#: Serialized-result schema revision.  Bumped when the *shape or meaning*
#: of a SimResult's counters changes without the timing model (MODEL_REV)
#: moving — e.g. the store-path bypass accounting fix plus the
#: read-vs-write cache-stat split (schema 2).  The result cache embeds
#: this in every entry so stale-schema entries self-invalidate instead of
#: serving results whose stats no longer satisfy the invariant layer.
RESULT_SCHEMA = 2


@dataclass(frozen=True)
class SimResult:
    """Outcome of simulating one workload on one system configuration."""

    workload_name: str
    system_name: str
    cycles: float
    kernels: int
    ctas: int
    records: int
    loads: int
    stores: int
    remote_loads: int
    remote_stores: int
    l1: CacheStats
    l15: CacheStats
    l2: CacheStats
    dram_bytes_read: int
    dram_bytes_written: int
    link_bytes: int
    page_local: int
    page_remote: int
    #: Bytes moved by dynamic page migration (zero for the paper's static
    #: placements); lets conservation checks account for DRAM/ring traffic
    #: that is not attributable to demand requests.
    migration_bytes: int = 0
    line_bytes: int = 128
    link_tier: str = "package"
    workload_digest: str = ""
    system_digest: str = ""

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------

    @property
    def accesses(self) -> int:
        """Total loads and stores issued by warp groups."""
        return self.loads + self.stores

    @property
    def inter_gpm_bandwidth(self) -> float:
        """Average inter-module link traffic in bytes/cycle (== GB/s at 1 GHz)."""
        if self.cycles <= 0:
            return 0.0
        return self.link_bytes / self.cycles

    @property
    def inter_gpm_tbps(self) -> float:
        """Average inter-module traffic in TB/s — the Figure 7/10/14 y-axis."""
        return self.inter_gpm_bandwidth / 1000.0

    @property
    def dram_bytes(self) -> int:
        """All DRAM array traffic."""
        return self.dram_bytes_read + self.dram_bytes_written

    @property
    def dram_bandwidth(self) -> float:
        """Average DRAM traffic in bytes/cycle."""
        if self.cycles <= 0:
            return 0.0
        return self.dram_bytes / self.cycles

    @property
    def remote_access_fraction(self) -> float:
        """Fraction of routed (post-L1) requests with a remote home."""
        total = self.page_local + self.page_remote
        if not total:
            return 0.0
        return self.page_remote / total

    def speedup_over(self, baseline: "SimResult") -> float:
        """Performance of this run relative to ``baseline`` (same workload)."""
        if baseline.workload_name != self.workload_name:
            raise ValueError(
                f"speedup compares the same workload; got {self.workload_name!r} "
                f"vs {baseline.workload_name!r}"
            )
        if self.cycles <= 0:
            raise ValueError("cannot compute speedup of a zero-cycle run")
        return baseline.cycles / self.cycles

    @property
    def energy(self) -> EnergyBreakdown:
        """Data-movement energy, charged at the link tier's cost per bit."""
        tier = IntegrationTier(self.link_tier)
        on_chip_bytes = self.accesses * self.line_bytes
        return breakdown_from_traffic(
            on_chip_bytes=on_chip_bytes,
            inter_module_bytes=self.link_bytes,
            dram_bytes=self.dram_bytes,
            inter_module_tier=tier,
        )

    # ------------------------------------------------------------------
    # serialization (disk result cache)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON serialization."""
        data = asdict(self)
        data["l1"] = asdict(self.l1)
        data["l15"] = asdict(self.l15)
        data["l2"] = asdict(self.l2)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimResult":
        """Inverse of :meth:`to_dict`."""
        payload = dict(data)
        for level in ("l1", "l15", "l2"):
            payload[level] = CacheStats(**payload[level])
        return cls(**payload)

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.workload_name} on {self.system_name}: "
            f"{self.cycles:,.0f} cycles, "
            f"L2 hit {self.l2.hit_rate:.0%}, "
            f"inter-GPM {self.inter_gpm_bandwidth:,.0f} GB/s, "
            f"remote {self.remote_access_fraction:.0%}"
        )
