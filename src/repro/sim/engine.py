"""Event-driven simulation engine.

The engine advances a global min-heap of warp-group readiness events.
Executing one :class:`~repro.workloads.trace.TraceRecord` charges the SM's
issue ports, routes the record's loads and stores through the memory
system, and re-arms the group at ``issue_start + max(compute, memory)`` —
the classic GPU latency-hiding model where a group's arithmetic overlaps
its own memory batch and other groups fill the SM in the meantime.

CTA lifecycle: the configured scheduler places an initial wave of CTAs
breadth-first across SMs, then refills an SM whenever one of its resident
CTAs retires.  Kernels run back-to-back; every kernel boundary flushes the
software-coherent caches (L1, L1.5) exactly as Section 5.1.1 requires.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from math import inf
from typing import List, Optional

import numpy as np

from ..core.gpu import GPUSystem
from ..memory.cache import CacheStats
from ..sched.distributed import make_scheduler
from ..workloads.trace import KernelLaunch, Workload
from .result import SimResult


def _perline_requested() -> bool:
    """True when ``REPRO_SIM_PERLINE`` forces the reference per-line path.

    Debug/verification knob: the batched memory path is the production
    default; the per-line path is kept as the executable specification the
    bit-identity suite diffs against (tests/test_perf_identity.py).
    """
    return os.environ.get("REPRO_SIM_PERLINE", "") not in ("", "0")


class _CTA:
    """Bookkeeping for one resident CTA."""

    __slots__ = ("index", "groups_left", "sm")

    def __init__(self, index: int, groups_left: int, sm) -> None:
        self.index = index
        self.groups_left = groups_left
        self.sm = sm


class _WarpGroup:
    """One schedulable warp group walking its record list.

    ``walk`` is the SM's fused memory walker when the array-backed fast
    path is active (records are then geometry-specialized 4-tuples), or
    ``None`` when the group carries classic :class:`TraceRecord` lists.
    """

    __slots__ = ("cta", "records", "position", "walk")

    def __init__(self, cta: _CTA, records, walk=None) -> None:
        self.cta = cta
        self.records = records
        self.position = 0
        self.walk = walk


def _pack_plain_trace(trace, geometry):
    """Specialize a hand-built ``CTATrace`` for one :class:`WalkGeometry`.

    Synthetic workloads produce :class:`ColumnarCTATrace` objects that
    derive (and cache) their fast records from numpy columns; plain
    record-list traces (tests, ad-hoc workloads) are small enough to pack
    per launch with scalar arithmetic instead.
    """
    throughput = geometry.issue_throughput
    packed = geometry.packed
    n_l1_sets = geometry.n_l1_sets
    line_interleaved = geometry.line_interleaved
    n_partitions = geometry.n_partitions
    lines_per_page = geometry.lines_per_page
    n_l2_sets = geometry.n_l2_sets
    n_l15_sets = geometry.n_l15_sets

    def triples(lines):
        return tuple(
            (
                line,
                line % n_l1_sets if n_l1_sets else 0,
                line % n_partitions if line_interleaved else line // lines_per_page,
                line % n_l2_sets if n_l2_sets else 0,
                line % n_l15_sets if n_l15_sets else 0,
            )
            for line in lines
        )

    groups = []
    for records in trace:
        out = []
        for record in records:
            compute_cycles = record.compute_cycles
            reads = record.reads
            writes = record.writes
            busy = (compute_cycles + len(reads) + len(writes)) / throughput
            if packed:
                out.append((compute_cycles, busy, triples(reads), triples(writes)))
            else:
                out.append((compute_cycles, busy, reads, writes))
        groups.append(out)
    return groups


def _kernel_addrs_unique(kernel: KernelLaunch) -> bool:
    """True when no line address repeats anywhere in the kernel's traces.

    Such a kernel cannot hit in the write-through levels that are flushed
    at its boundaries (L1, L1.5) — a hit needs a second access to a line —
    so the walkers' ``walk_u`` flavor may skip those levels' dict work
    outright.  Only columnar traces are probed (their address columns make
    the check a few array ops); the verdict is memoized on the first CTA's
    trace, which the per-workload trace memo keeps alive across runs.
    """
    trace_fn = kernel.trace_fn
    trace0 = trace_fn(0)
    addrs0 = getattr(trace0, "addrs", None)
    if addrs0 is None:
        return False
    cached = trace0._unique_key
    if cached is not None and cached[0] == kernel.n_ctas:
        return cached[1]
    arrays = [addrs0.reshape(-1)]
    total = addrs0.size
    unique = True
    for cta in range(1, kernel.n_ctas):
        addrs = getattr(trace_fn(cta), "addrs", None)
        if addrs is None:
            unique = False
            break
        arrays.append(addrs.reshape(-1))
        total += addrs.size
    if unique:
        flat = np.concatenate(arrays) if len(arrays) > 1 else arrays[0]
        unique = int(np.unique(flat).size) == total
    trace0._unique_key = (kernel.n_ctas, unique)
    return unique


class SimulationEngine:
    """Runs workloads on a :class:`~repro.core.gpu.GPUSystem`."""

    def __init__(self, system: GPUSystem) -> None:
        self.system = system
        self.scheduler = make_scheduler(system.config.scheduler, system)
        self.records_executed = 0
        self.ctas_executed = 0
        self.kernels_executed = 0
        # Telemetry sampling state.  With no probe attached the boundary
        # stays at +inf, so the event loop's only telemetry residue is one
        # always-false float comparison per record — results are
        # bit-identical with or without the subsystem.
        self._telemetry = None
        self._next_sample = inf
        #: Batched memory path (load_batch/store_batch) vs the reference
        #: per-line path.  Both produce bit-identical results; the flag
        #: exists so the identity suite can diff them.
        self.batched = not _perline_requested()
        # Array-backed fast-path state: the geometry traces are
        # specialized against and the per-SM fused walkers (None outside
        # the fast path / for migrating placement).  ``_fast_cache``
        # holds the one-time (walkers, geometry) build for this system.
        self._geometry = None
        self._walkers = None
        self._fast_cache = None
        # True while the current kernel's addresses are globally unique
        # (selects the walkers' L1/L1.5-skipping flavor).
        self._kernel_unique = False

    # ------------------------------------------------------------------

    def run(self, workload: Workload) -> SimResult:
        """Simulate ``workload`` to completion and return its result."""
        self.system.reset()
        # Fresh scheduler per run: the centralized policy carries
        # cross-launch placement state (its fill rotation) that must not
        # leak between independent simulations.
        self.scheduler = make_scheduler(self.system.config.scheduler, self.system)
        self.records_executed = 0
        self.ctas_executed = 0
        self.kernels_executed = 0
        telemetry = self.system.telemetry
        self._telemetry = telemetry
        self._next_sample = (
            inf if telemetry is None else telemetry.begin_run(self.system, workload.name)
        )

        # Array-backed fast path: fused per-SM walkers over geometry-
        # specialized records.  Built once per engine and reused across
        # runs — every object a walker binds (cache sets, stats, pipes,
        # page maps, routes) is reset in place by ``system.reset()``.
        # Migrating placement keeps the batch path (walkers None), and
        # the general loop (telemetry, per-line reference) keeps classic
        # TraceRecord lists.
        if telemetry is None and self.batched:
            cached = self._fast_cache
            if cached is None:
                memsys = self.system.memsys
                walkers = memsys.make_walkers()
                cached = (walkers, memsys.walk_geometry(packed=walkers is not None))
                self._fast_cache = cached
            self._walkers, self._geometry = cached
        else:
            self._walkers = None
            self._geometry = None

        # Live invariant checking is opt-in and read-only: with no validator
        # attached the loop pays one `is not None` test per kernel, and an
        # attached validator only *reads* structural state, so results are
        # bit-identical either way.
        validator = self.system.validator

        clock = 0.0
        first = True
        for kernel in workload.kernels():
            if not first:
                self.system.kernel_boundary_flush()
            first = False
            clock = self._run_kernel(kernel, clock)
            self.kernels_executed += 1
            if validator is not None:
                validator.after_kernel(self.system, clock)

        if telemetry is not None:
            telemetry.end_run(clock, self.system, self.records_executed)
        result = self._collect(workload, clock)
        if validator is not None:
            validator.after_run(self.system, result)
        return result

    # ------------------------------------------------------------------

    def _run_kernel(self, kernel: KernelLaunch, start_time: float) -> float:
        scheduler = self.scheduler
        scheduler.start_kernel(kernel.n_ctas)
        self._kernel_unique = (
            self._walkers is not None and _kernel_addrs_unique(kernel)
        )
        heap: List = []
        self._seq = 0
        telemetry = self._telemetry
        if telemetry is not None:
            phase_ctas = self.ctas_executed
            phase_records = self.records_executed

        # Breadth-first initial wave: one CTA per SM per round, in the
        # scheduler's preferred SM order, until slots or CTAs run out.
        fill_order = scheduler.initial_fill_order()
        placed = True
        while placed and not scheduler.exhausted:
            placed = False
            for sm in fill_order:
                if sm.free_cta_slots <= 0:
                    continue
                cta_index = scheduler.next_cta(sm)
                if cta_index is None:
                    continue
                self._launch(heap, kernel, cta_index, sm, start_time)
                placed = True

        if telemetry is None and self.batched:
            kernel_end = self._drain_fast(heap, kernel, start_time)
        else:
            kernel_end = self._drain_general(heap, kernel, start_time)

        if not scheduler.exhausted:  # pragma: no cover - engine invariant
            raise RuntimeError(
                f"kernel {kernel.label!r} drained with "
                f"{scheduler.remaining} CTAs undispatched"
            )
        # Kernel completion implies a memory fence: buffered store traffic
        # still queued at DRAM or on the ring must drain before the next
        # kernel (or the final makespan) begins.
        quiesce = self.system.quiesce_time()
        if telemetry is not None:
            telemetry.record_phase(
                kernel.label,
                self.kernels_executed,
                start_time,
                kernel_end,
                quiesce if quiesce > kernel_end else kernel_end,
                self.ctas_executed - phase_ctas,
                self.records_executed - phase_records,
            )
        return quiesce if quiesce > kernel_end else kernel_end

    # ------------------------------------------------------------------
    # event-heap drain loops
    # ------------------------------------------------------------------
    #
    # Two implementations of the same event semantics.  _drain_general is
    # the readable reference: it supports an attached telemetry probe and
    # the per-line memory path.  _drain_fast is the production hot loop
    # for the common case (no probe, batched memory path): per-pop
    # attribute lookups hoisted into locals, issue charging inlined, and
    # the record's memory batch routed through the bulk MemorySystem
    # paths.  Both are bit-identical (tests/test_perf_identity.py); any
    # change to one must be mirrored in the other.

    def _drain_general(self, heap: List, kernel: KernelLaunch, start_time: float) -> float:
        scheduler = self.scheduler
        telemetry = self._telemetry
        memsys = self.system.memsys
        batched = self.batched
        kernel_end = start_time
        while heap:
            ready, _, group = heappop(heap)
            # Heap pops are monotone in ready time (pushes always re-arm at
            # finish >= the current pop), so crossing a window boundary here
            # closes the window exactly once.  Dormant (+inf) without a probe.
            if ready >= self._next_sample:
                self._next_sample = telemetry.take_window(
                    ready, self.system, self.records_executed
                )
            sm = group.cta.sm
            issue_start = sm.clock if sm.clock > ready else ready
            record = group.records[group.position]
            group.position += 1
            reads = record.reads
            writes = record.writes
            sm.charge_issue(issue_start, record.compute_cycles + len(reads) + len(writes))

            if batched:
                mem_done = memsys.load_batch(issue_start, sm, reads) if reads else issue_start
                if writes:
                    memsys.store_batch(issue_start, sm, writes)
            else:
                mem_done = issue_start
                for line in reads:
                    done = memsys.load(issue_start, sm, line)
                    if done > mem_done:
                        mem_done = done
                for line in writes:
                    memsys.store(issue_start, sm, line)

            finish = issue_start + record.compute_cycles
            if mem_done > finish:
                finish = mem_done
            self.records_executed += 1

            if group.position < len(group.records):
                self._seq += 1
                heappush(heap, (finish, self._seq, group))
                continue

            if finish > kernel_end:
                kernel_end = finish
            cta = group.cta
            cta.groups_left -= 1
            if cta.groups_left == 0:
                self.ctas_executed += 1
                sm.release_slot()
                next_index = scheduler.next_cta(sm)
                if next_index is not None:
                    self._launch(heap, kernel, next_index, sm, finish)
        return kernel_end

    def _drain_fast(self, heap: List, kernel: KernelLaunch, start_time: float) -> float:
        scheduler = self.scheduler
        memsys = self.system.memsys
        load_batch = memsys.load_batch
        store_batch = memsys.store_batch
        pop = heappop
        push = heappush
        seq = self._seq
        records_executed = 0
        kernel_end = start_time
        while heap:
            ready, _, group = pop(heap)
            cta = group.cta
            sm = cta.sm
            clock = sm.clock
            issue_start = clock if clock > ready else ready
            position = group.position
            records = group.records
            # Fast records carry the issue busy time pre-divided (same
            # left-to-right arithmetic as SM.charge_issue) alongside the
            # geometry-specialized read/write lists.
            compute_cycles, busy, reads, writes = records[position]
            position += 1
            group.position = position
            sm.clock = issue_start + busy
            sm.issue_busy_cycles += busy

            walk = group.walk
            if walk is not None:
                if reads or writes:
                    mem_done = walk(issue_start, reads, writes)
                else:
                    mem_done = issue_start
            else:
                mem_done = load_batch(issue_start, sm, reads) if reads else issue_start
                if writes:
                    store_batch(issue_start, sm, writes)

            finish = issue_start + compute_cycles
            if mem_done > finish:
                finish = mem_done
            records_executed += 1

            if position < len(records):
                seq += 1
                push(heap, (finish, seq, group))
                continue

            if finish > kernel_end:
                kernel_end = finish
            cta.groups_left -= 1
            if cta.groups_left == 0:
                self.ctas_executed += 1
                sm.release_slot()
                next_index = scheduler.next_cta(sm)
                if next_index is not None:
                    # _launch shares the sequence counter; sync around it.
                    self._seq = seq
                    self._launch(heap, kernel, next_index, sm, finish)
                    seq = self._seq
        self._seq = seq
        self.records_executed += records_executed
        # Fold the walkers' deferred counters into the real stats objects
        # before anything at the kernel boundary (live validation, cache
        # flush telemetry, result collection) reads them.
        memsys.flush_walk_counters()
        return kernel_end

    def _launch(self, heap: List, kernel: KernelLaunch, cta_index: int, sm, at: float) -> None:
        # Loop rather than recurse: a degenerate all-empty CTA retires
        # immediately, and its freed slot must pull the next CTA from the
        # scheduler — otherwise a refill-path chain of empty CTAs strands
        # undispatched work and the drain invariant below trips.
        while True:
            trace = kernel.trace_fn(cta_index)
            if len(trace) != kernel.groups_per_cta:
                raise ValueError(
                    f"kernel {kernel.label!r}: trace_fn returned {len(trace)} groups, "
                    f"expected {kernel.groups_per_cta}"
                )
            # Pick the record representation for the active drain loop:
            # geometry-specialized fast records (derived and cached by
            # columnar traces, packed per launch for plain lists) or the
            # classic TraceRecord view.
            geometry = self._geometry
            walk = None
            if geometry is not None:
                fast_groups = getattr(trace, "fast_groups", None)
                if fast_groups is not None:
                    groups = fast_groups(geometry)
                else:
                    groups = _pack_plain_trace(trace, geometry)
                walkers = self._walkers
                if walkers is not None:
                    walk = walkers[sm.sm_id][1 if self._kernel_unique else 0]
            else:
                base_groups = getattr(trace, "base_groups", None)
                groups = base_groups() if base_groups is not None else trace
            sm.occupy_slot()
            cta = _CTA(cta_index, len(trace), sm)
            for records in groups:
                if not records:
                    cta.groups_left -= 1
                    continue
                self._seq += 1
                heappush(heap, (at, self._seq, _WarpGroup(cta, records, walk)))
            if cta.groups_left > 0:
                return
            # Degenerate empty CTA: retire immediately and refill the slot.
            self.ctas_executed += 1
            sm.release_slot()
            next_index = self.scheduler.next_cta(sm)
            if next_index is None:
                return
            cta_index = next_index

    # ------------------------------------------------------------------

    def _collect(self, workload: Workload, cycles: float) -> SimResult:
        system = self.system
        l1 = CacheStats()
        l15 = CacheStats()
        l2 = CacheStats()
        dram_read = 0
        dram_written = 0
        for gpm in system.gpms:
            l1 = l1.merge(gpm.aggregate_l1_stats())
            if gpm.l15 is not None:
                l15 = l15.merge(gpm.l15.stats)
            l2 = l2.merge(gpm.l2.stats)
            dram_read += gpm.dram.bytes_read
            dram_written += gpm.dram.bytes_written
        memsys = system.memsys
        page_local = sum(gpm.xbar.local_requests for gpm in system.gpms)
        page_remote = sum(gpm.xbar.remote_requests for gpm in system.gpms)
        config = system.config
        digest = workload.digest() if hasattr(workload, "digest") else workload.name
        return SimResult(
            workload_name=workload.name,
            system_name=config.name,
            cycles=cycles,
            kernels=self.kernels_executed,
            ctas=self.ctas_executed,
            records=self.records_executed,
            loads=memsys.loads,
            stores=memsys.stores,
            remote_loads=memsys.remote_loads,
            remote_stores=memsys.remote_stores,
            l1=l1,
            l15=l15,
            l2=l2,
            dram_bytes_read=dram_read,
            dram_bytes_written=dram_written,
            link_bytes=system.ring.total_link_bytes,
            page_local=page_local,
            page_remote=page_remote,
            migration_bytes=memsys.migration_bytes,
            line_bytes=config.line_bytes,
            link_tier=config.link_tier,
            workload_digest=digest,
            system_digest=config.digest(),
        )
