"""High-level simulation façade.

:func:`simulate` is the one-call public entry point: give it a workload
(or a suite workload name) and a :class:`~repro.core.config.SystemConfig`,
get a :class:`~repro.sim.result.SimResult` back.  A fresh
:class:`~repro.core.gpu.GPUSystem` is built per call so runs never share
state.
"""

from __future__ import annotations

from typing import Union

from ..core.config import SystemConfig
from ..core.gpu import build_system
from ..workloads.trace import Workload
from .engine import SimulationEngine
from .result import SimResult


class Simulator:
    """Reusable simulator bound to one system configuration.

    Builds the system once; each :meth:`run` resets it, so results are
    independent.  Use separate instances to run configurations in parallel.

    ``telemetry``, when given a :class:`~repro.telemetry.probe.Telemetry`
    probe, records a windowed profile of each run (re-armed per run; it
    holds the most recent run's data).  Results are bit-identical with or
    without a probe.
    """

    def __init__(self, config: SystemConfig, telemetry=None) -> None:
        self.config = config
        self.system = build_system(config)
        self.engine = SimulationEngine(self.system)
        self.telemetry = telemetry
        if telemetry is not None:
            self.system.attach_telemetry(telemetry)

    def run(self, workload: Union[Workload, str]) -> SimResult:
        """Simulate ``workload`` (a Workload or a suite benchmark name)."""
        resolved = _resolve_workload(workload)
        return self.engine.run(resolved)


def _resolve_workload(workload: Union[Workload, str]) -> Workload:
    if isinstance(workload, str):
        from ..workloads.suite import make_workload

        return make_workload(workload)
    return workload


def simulate(
    workload: Union[Workload, str], config: SystemConfig, telemetry=None
) -> SimResult:
    """Run one workload on one configuration (convenience wrapper)."""
    return Simulator(config, telemetry=telemetry).run(workload)
