#!/usr/bin/env python
"""Trace ingestion CLI (see ``src/repro/ingest/``).

Usage:
    python scripts/ingest.py export Stream /tmp/stream.npz       # workload -> trace file
    python scripts/ingest.py export BFS out.jsonl --scale 0.25   # shrunken export
    python scripts/ingest.py convert out.jsonl out.npz           # format conversion
    python scripts/ingest.py inspect out.npz                     # header, digest, kernels
    python scripts/ingest.py selftest --scale 0.0625             # export->re-ingest identity

``export`` serializes any built-in suite workload (2017 paper suite or
ML-era suite, by name) to the versioned trace format — ``.jsonl`` /
``.jsonl.gz`` for hand-inspection, ``.npz`` for bulk.  ``convert`` reads
one format and writes another, checking that the content digest survives
the round-trip.  ``inspect`` prints the header, content hash, and kernel
list without simulating.  ``selftest`` exports a set of workloads,
re-ingests each file, simulates original and twin on the same config, and
asserts field-for-field ``SimResult`` identity — the subsystem's core
guarantee, exercised end to end through the filesystem.
"""

import argparse
import sys


def cmd_export(opts) -> int:
    """Export a built-in workload to a trace file."""
    from repro.ingest import document_digest, export_workload, save_document
    from repro.workloads.suite import spec_by_name
    from repro.workloads.synthetic import SyntheticWorkload

    try:
        spec = spec_by_name(opts.workload)
    except KeyError as error:
        print(f"[export] {error}")
        return 1
    if opts.scale is not None:
        spec = spec.scaled_down(opts.scale)
    workload = SyntheticWorkload(spec)
    document = export_workload(workload)
    save_document(document, opts.out)
    print(
        f"[export] {workload.name} -> {opts.out} "
        f"(kernels={len(document.kernels)}, trace_sets={len(document.trace_sets)}, "
        f"digest={document_digest(document)})"
    )
    return 0


def cmd_convert(opts) -> int:
    """Convert a trace file between JSONL and npz."""
    from repro.ingest import document_digest, load_document, save_document

    document = load_document(opts.src)
    digest = document_digest(document)
    save_document(document, opts.dst)
    twin = document_digest(load_document(opts.dst))
    if twin != digest:
        print(f"[convert] DIGEST MISMATCH after conversion: {digest} -> {twin}")
        return 1
    print(f"[convert] {opts.src} -> {opts.dst} (digest {digest} preserved)")
    return 0


def cmd_inspect(opts) -> int:
    """Print a trace file's header, digest, and kernel list."""
    from repro.ingest import load_workload

    workload = load_workload(opts.path)
    document = workload.document
    print(f"name:            {document.name}")
    print(f"category:        {workload.category}")
    print(f"digest:          {workload.digest()}")
    print(f"footprint_lines: {document.footprint_lines}")
    print(f"line_bytes:      {document.line_bytes}")
    print(f"trace_sets:      {len(document.trace_sets)}")
    for index, entries in enumerate(document.trace_sets):
        records = sum(len(entry.spans) for entry in entries)
        addrs = sum(entry.addrs.size for entry in entries)
        print(f"  set {index}: {len(entries)} CTAs, {records} records, {addrs} accesses")
    print(f"kernels:         {len(document.kernels)}")
    for kernel in document.kernels:
        print(
            f"  {kernel.label}: n_ctas={kernel.n_ctas} "
            f"groups_per_cta={kernel.groups_per_cta} trace_set={kernel.trace}"
        )
    if document.meta:
        print(f"meta:            {document.meta}")
    return 0


def cmd_selftest(opts) -> int:
    """Export->re-ingest each workload and assert bit-identical SimResults."""
    import tempfile
    from pathlib import Path

    from repro.core.presets import baseline_mcm_gpu, optimized_mcm_gpu
    from repro.ingest import export_workload, save_document, load_workload
    from repro.ingest.export import comparable_result_dict
    from repro.sim.simulator import simulate
    from repro.workloads.suite import spec_by_name
    from repro.workloads.synthetic import SyntheticWorkload

    names = opts.workloads or ["Stream", "BFS", "GEMM-Fwd", "DLRM-Embed"]
    configs = [baseline_mcm_gpu(), optimized_mcm_gpu()]
    suffix = ".npz" if opts.npz else ".jsonl"
    failures = 0
    with tempfile.TemporaryDirectory(prefix="repro-ingest-selftest-") as tmp:
        for name in names:
            spec = spec_by_name(name)
            if opts.scale is not None:
                spec = spec.scaled_down(opts.scale)
            workload = SyntheticWorkload(spec)
            path = Path(tmp) / f"{name}{suffix}"
            save_document(export_workload(workload), path)
            twin = load_workload(path)
            for config in configs:
                original = comparable_result_dict(simulate(workload, config))
                reingested = comparable_result_dict(simulate(twin, config))
                identical = original == reingested
                failures += 0 if identical else 1
                print(
                    f"  {name:>12s} via {suffix} on {config.name:<20s} "
                    f"{'bit-identical' if identical else 'MISMATCH'}"
                )
                if not identical:
                    for key in sorted(original):
                        if original[key] != reingested.get(key):
                            print(f"    {key}: {original[key]} != {reingested.get(key)}")
    print(f"[selftest] {len(names) * len(configs)} comparisons, {failures} failed")
    return 0 if failures == 0 else 1


def main() -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description="Export, convert, and inspect trace files.")
    sub = parser.add_subparsers(dest="command", required=True)

    export = sub.add_parser("export", help="serialize a built-in workload to a trace file")
    export.add_argument("workload", help="suite workload name (2017 or ML suite)")
    export.add_argument("out", help="output path (.jsonl, .jsonl.gz, or .npz)")
    export.add_argument(
        "--scale", type=float, default=None, metavar="F",
        help="shrink the workload by this CTA factor before exporting",
    )
    export.set_defaults(func=cmd_export)

    convert = sub.add_parser("convert", help="convert a trace file between formats")
    convert.add_argument("src", help="source trace file")
    convert.add_argument("dst", help="destination trace file (format from suffix)")
    convert.set_defaults(func=cmd_convert)

    inspect = sub.add_parser("inspect", help="print a trace file's header and kernels")
    inspect.add_argument("path", help="trace file to inspect")
    inspect.set_defaults(func=cmd_inspect)

    selftest = sub.add_parser(
        "selftest", help="export->re-ingest->simulate; assert bit-identical results"
    )
    selftest.add_argument(
        "--workloads", nargs="+", default=None, metavar="NAME",
        help="workloads to test (default: Stream BFS GEMM-Fwd DLRM-Embed)",
    )
    selftest.add_argument(
        "--scale", type=float, default=0.0625, metavar="F",
        help="CTA scale factor (default 0.0625; pass 1.0 for full scale)",
    )
    selftest.add_argument(
        "--npz", action="store_true",
        help="round-trip through .npz instead of .jsonl",
    )
    selftest.set_defaults(func=cmd_selftest)

    opts = parser.parse_args()
    return opts.func(opts)


if __name__ == "__main__":
    sys.exit(main())
