#!/usr/bin/env python
"""Submit work to a running ``repro.serve`` job server.

Usage:
    python scripts/submit.py --server http://127.0.0.1:8731 --health
    python scripts/submit.py --server URL --workload Stream --preset baseline
    python scripts/submit.py --server URL --sweep smoke --fast --out explore
    python scripts/submit.py --server URL --metrics
    python scripts/submit.py --server URL --drain --grace 10

Three modes:

* ``--workload NAME --preset P`` submits one (workload, config) pair
  (``--scale`` shrinks the workload) and waits for the result.
* ``--sweep NAME`` runs a whole built-in explore sweep **through the
  server**: the local successive-halving driver plans rungs, but every
  simulation batch travels over HTTP and is dedupped/coalesced/executed
  remotely.  Artifacts are written exactly like ``scripts/explore.py``
  — ``report.json``/``report.txt`` are bit-identical to a local run.
* Maintenance flags (``--health``, ``--metrics``, ``--cache-stats``,
  ``--refresh``, ``--prune``, ``--drain``) print the server's JSON
  response.
"""

import argparse
import json
import sys
import time


def main() -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description="Submit jobs to a repro.serve server.")
    parser.add_argument(
        "--server", required=True, metavar="URL", help="server base URL"
    )
    parser.add_argument("--workload", metavar="NAME", help="suite workload to submit")
    parser.add_argument(
        "--preset",
        metavar="P",
        help="configuration preset for --workload "
        "(baseline, l15, optimized, monolithic, multi-gpu)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        metavar="F",
        help="scale the --workload down by this fraction (e.g. 0.25)",
    )
    parser.add_argument(
        "--sweep",
        action="append",
        default=None,
        metavar="NAME",
        help="built-in explore sweep to run through the server (repeatable)",
    )
    parser.add_argument(
        "--fast", action="store_true", help="4x-smaller workloads on every rung"
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N", help="sweep seed (default: 0)"
    )
    parser.add_argument(
        "--keep",
        type=float,
        default=0.5,
        metavar="F",
        help="halving promotion fraction (default: 0.5)",
    )
    parser.add_argument(
        "--out",
        default="explore",
        metavar="DIR",
        help="sweep artifact root (default: explore)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=3600.0,
        metavar="SECONDS",
        help="end-to-end wait limit per batch/job (default: 3600)",
    )
    parser.add_argument("--health", action="store_true", help="print /healthz")
    parser.add_argument("--metrics", action="store_true", help="print /metrics")
    parser.add_argument("--cache-stats", action="store_true", help="print /cache/stats")
    parser.add_argument(
        "--refresh", action="store_true", help="POST /cache/refresh and print"
    )
    parser.add_argument("--prune", action="store_true", help="POST /cache/prune and print")
    parser.add_argument("--drain", action="store_true", help="drain the server")
    parser.add_argument(
        "--grace",
        type=float,
        default=None,
        metavar="SECONDS",
        help="drain grace period (with --drain)",
    )
    opts = parser.parse_args()

    from repro.serve import RemoteError, ServeClient

    client = ServeClient(opts.server)
    try:
        return _run(client, opts)
    except RemoteError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _run(client, opts) -> int:
    """Dispatch the selected mode against ``client``."""
    did_something = False
    if opts.health:
        print(json.dumps(client.health(), indent=2))
        did_something = True
    if opts.metrics:
        print(json.dumps(client.metrics(), indent=2))
        did_something = True
    if opts.cache_stats:
        print(json.dumps(client.cache_stats(), indent=2))
        did_something = True
    if opts.refresh:
        print(json.dumps(client.refresh(), indent=2))
        did_something = True
    if opts.prune:
        print(json.dumps(client.prune(), indent=2))
        did_something = True

    if opts.workload:
        if _submit_single(client, opts) != 0:
            return 1
        did_something = True

    if opts.sweep:
        if _run_sweeps(client, opts) != 0:
            return 1
        did_something = True

    if opts.drain:
        print(json.dumps(client.drain(opts.grace), indent=2))
        did_something = True

    if not did_something:
        print(
            "nothing to do: pass --workload/--preset, --sweep, or a "
            "maintenance flag (--health, --metrics, ...)",
            file=sys.stderr,
        )
        return 1
    return 0


def _submit_single(client, opts) -> int:
    """Submit one (workload, preset) pair and wait for its result."""
    from repro.core import presets
    from repro.sim.result import SimResult
    from repro.workloads.suite import spec_by_name
    from repro.workloads.synthetic import SyntheticWorkload

    preset_factories = {
        "baseline": presets.baseline_mcm_gpu,
        "l15": presets.mcm_gpu_with_l15,
        "optimized": presets.optimized_mcm_gpu,
        "monolithic": presets.monolithic_gpu,
        "multi-gpu": presets.multi_gpu,
    }
    if opts.preset not in preset_factories:
        print(
            f"--preset must be one of: {', '.join(preset_factories)}",
            file=sys.stderr,
        )
        return 1
    try:
        spec = spec_by_name(opts.workload)
    except KeyError:
        print(f"unknown workload {opts.workload!r}", file=sys.stderr)
        return 1
    if opts.scale is not None:
        spec = spec.scaled_down(opts.scale)
    workload = SyntheticWorkload(spec)
    config = preset_factories[opts.preset]()

    view = client.submit(workload, config)
    print(f"job {view['id']}: {view['workload']} on {view['config']} ({view['how']})")
    view = client.wait_job(view["id"], timeout=opts.timeout)
    if view["state"] == "failed":
        error = view.get("error") or {}
        print(
            f"job failed ({error.get('kind', '?')}): {error.get('error', '')}",
            file=sys.stderr,
        )
        return 1
    result = SimResult.from_dict(view["result"])
    print(result.summary())
    return 0


def _run_sweeps(client, opts) -> int:
    """Run each requested sweep through the server via ``remote_runner``."""
    from pathlib import Path

    from repro.explore import BUILTIN_SWEEPS, build_plan, remote_runner, run_sweep
    from repro.explore.report import render_text, write_artifacts
    from repro.parallel import GLOBAL_METRICS

    unknown = [key for key in opts.sweep if key not in BUILTIN_SWEEPS]
    if unknown:
        print(f"unknown sweep(s): {', '.join(unknown)}", file=sys.stderr)
        return 1
    for key in opts.sweep:
        GLOBAL_METRICS.reset()
        start = time.time()
        plan = build_plan(key, fast=opts.fast, seed=opts.seed)
        runner = remote_runner(client, timeout=opts.timeout)
        report = run_sweep(plan, keep_fraction=opts.keep, runner=runner)
        paths = write_artifacts(report, Path(opts.out))
        print(render_text(report))
        metrics = GLOBAL_METRICS.report(per_config=False)
        if metrics != "no suite runs recorded":
            print(f"[{key} throughput] {metrics}")
        print(f"[{key}: {time.time() - start:.1f}s -> {paths['report.json'].parent}]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
