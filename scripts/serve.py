#!/usr/bin/env python
"""Run the ``repro.serve`` simulation job server.

Usage:
    python scripts/serve.py                                # defaults
    python scripts/serve.py --port 0 --workers 4           # ephemeral port
    python scripts/serve.py --cache-dir .cache --store store.json \\
        --timeout 120 --grace 30

Binds the asyncio HTTP/JSON API (see ``src/repro/serve/``) on
``--host:--port`` (``--port 0`` picks an ephemeral port; the actual
address is printed either way), backed by the shard-file result cache in
``--cache-dir`` (default: the repo's standard cache location, honoring
``REPRO_CACHE_DIR``) and a process pool of ``--workers`` simulators
(default: ``REPRO_WORKERS`` or the core count).

SIGTERM or SIGINT triggers a graceful drain: intake stops (new
submissions get HTTP 503), in-flight jobs get ``--grace`` seconds to
finish, stragglers are cancelled, and — with ``--store`` — the full job
store is written as a JSON artifact before the process exits.
"""

import argparse
import asyncio
import signal
import sys
from pathlib import Path


def main() -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description="Serve simulations over HTTP.")
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8731, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="simulation worker processes (default: REPRO_WORKERS or cores)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result-cache directory (default: standard cache location)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="write the job-store snapshot here on drain",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock limit (default: unlimited)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="pool rebuilds one job may survive before failing (default: 2)",
    )
    parser.add_argument(
        "--grace",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="drain grace period for in-flight jobs (default: 30)",
    )
    parser.add_argument(
        "--refresh",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="minimum seconds between cache shard refreshes (default: 2)",
    )
    opts = parser.parse_args()

    from repro.experiments.common import ResultCache
    from repro.serve import Scheduler, ServeApp, start_server

    async def run() -> int:
        cache = ResultCache(opts.cache_dir)
        scheduler = Scheduler(
            cache=cache,
            max_workers=opts.workers,
            timeout=opts.timeout,
            crash_retries=opts.retries,
            refresh_seconds=opts.refresh,
        )
        app = ServeApp(
            scheduler, store_path=Path(opts.store) if opts.store else None
        )
        server = await start_server(app, opts.host, opts.port)
        host, port = server.sockets[0].getsockname()[:2]
        print(f"repro.serve listening on http://{host}:{port}", flush=True)
        print(
            f"[{scheduler.executor.max_workers} workers, "
            f"cache at {cache.directory}]",
            flush=True,
        )

        loop = asyncio.get_running_loop()

        def request_drain() -> None:
            loop.create_task(app.drain(opts.grace))

        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, request_drain)

        await app.done.wait()
        server.close()
        await server.wait_closed()
        counts = scheduler.store.counts()
        print(
            f"[drained: {counts['done']} done, {counts['cached']} cached, "
            f"{counts['failed']} failed; {scheduler.sims_executed} simulated, "
            f"{scheduler.cache_served} cache-served, "
            f"{scheduler.coalesced} coalesced]",
            flush=True,
        )
        return 0

    return asyncio.run(run())


if __name__ == "__main__":
    sys.exit(main())
