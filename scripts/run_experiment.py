#!/usr/bin/env python
"""Run one paper experiment and print its table/series.

Usage:
    python scripts/run_experiment.py            # list experiments
    python scripts/run_experiment.py fig4       # run Figure 4
    python scripts/run_experiment.py all        # run everything (slow)

Results come from the shared disk cache when available, so re-running an
experiment after a benchmark session is instant.
"""

import sys
import time

from repro.experiments import EXPERIMENTS


def run(exp_id: str) -> None:
    module, entry = EXPERIMENTS[exp_id]
    start = time.time()
    result = getattr(module, entry)()
    elapsed = time.time() - start
    report = getattr(module, "report")
    try:
        text = report(result)
    except TypeError:
        text = report()  # static tables take no argument
    print(text)
    print(f"\n[{exp_id}: {elapsed:.1f}s]\n")


def main() -> int:
    args = sys.argv[1:]
    if not args:
        print("available experiments:")
        for exp_id, (module, _) in EXPERIMENTS.items():
            summary = (module.__doc__ or "").strip().splitlines()[0]
            print(f"  {exp_id:<8} {summary}")
        print("\nusage: python scripts/run_experiment.py <id> [<id> ...] | all")
        return 0
    if args == ["all"]:
        args = list(EXPERIMENTS)
    unknown = [arg for arg in args if arg not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 1
    for exp_id in args:
        run(exp_id)
    return 0


if __name__ == "__main__":
    sys.exit(main())
