#!/usr/bin/env python
"""Run one paper experiment and print its table/series.

Usage:
    python scripts/run_experiment.py                 # list experiments
    python scripts/run_experiment.py fig4            # run Figure 4
    python scripts/run_experiment.py --workers 8 all # run everything (slow)

Results come from the shared disk cache when available, so re-running an
experiment after a benchmark session is instant.  Suite runs fan out over
a process pool sized by ``--workers`` / ``REPRO_WORKERS`` (default: core
count); each experiment prints its throughput summary (sims/sec, cache
hit rate, per-config sim time) when it finishes.  ``--profile`` attaches
a telemetry probe to every simulated run and folds per-run digests (peak
pipe occupancy, quiesce tails) into that summary; for a deep profile of
one run use ``scripts/profile_run.py``.
"""

import argparse
import sys
import time
import traceback

from repro.experiments import EXPERIMENTS
from repro.parallel import GLOBAL_METRICS


def run(exp_id: str) -> None:
    """Run one experiment, print its report and throughput summary."""
    module, entry = EXPERIMENTS[exp_id]
    GLOBAL_METRICS.reset()
    start = time.time()
    result = getattr(module, entry)()
    elapsed = time.time() - start
    report = getattr(module, "report")
    try:
        text = report(result)
    except TypeError:
        text = report()  # static tables take no argument
    print(text)
    metrics = GLOBAL_METRICS.report()
    if metrics != "no suite runs recorded":
        print(f"\n[{exp_id} throughput] {metrics}")
    print(f"[{exp_id}: {elapsed:.1f}s]\n")


def main() -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Run paper experiments.", add_help=True
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size for suite runs (overrides REPRO_WORKERS; "
        "1 forces the serial path)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="attach a telemetry probe to every simulated run and append "
        "per-run profiling digests to the throughput summary (cached "
        "pairs are not re-simulated, so they carry no profile; use "
        "REPRO_NO_CACHE=1 to profile everything)",
    )
    parser.add_argument("experiments", nargs="*", metavar="id")
    opts = parser.parse_args()
    if opts.workers is not None or opts.profile:
        import os

        if opts.workers is not None:
            os.environ["REPRO_WORKERS"] = str(opts.workers)
        if opts.profile:
            os.environ["REPRO_PROFILE"] = "1"

    args = opts.experiments
    if not args:
        print("available experiments:")
        for exp_id, (module, _) in EXPERIMENTS.items():
            summary = (module.__doc__ or "").strip().splitlines()[0]
            print(f"  {exp_id:<8} {summary}")
        print("\nusage: python scripts/run_experiment.py [--workers N] <id> [<id> ...] | all")
        return 0
    if args == ["all"]:
        args = list(EXPERIMENTS)
    unknown = [arg for arg in args if arg not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 1
    failed = []
    for exp_id in args:
        # One broken experiment must not silence the rest of an `all` run,
        # but it must fail the process — CI keys off the exit status.
        try:
            run(exp_id)
        except Exception:
            traceback.print_exc()
            print(f"[{exp_id}: FAILED]\n", file=sys.stderr)
            failed.append(exp_id)
    if failed:
        print(f"{len(failed)} experiment(s) failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
