#!/usr/bin/env python
"""Design-space exploration CLI (see ``src/repro/explore/``).

Usage:
    python scripts/explore.py --list                      # show built-in sweeps
    python scripts/explore.py --sweep link_l15 --fast     # quick full-pipeline run
    python scripts/explore.py --sweep link_l15            # the real thing (slower)
    python scripts/explore.py --sweep smoke --out /tmp/x  # CI-sized smoke sweep
    python scripts/explore.py --sweep wide --analytical   # analytical rung-0 screen

Each sweep enumerates its candidate grid, ranks it by successive halving
(cheap screening rung, survivors promoted to the expensive rung), extracts
the Pareto frontier over (geomean speedup, link bandwidth, energy), runs
one-at-a-time sensitivity, and — where the sweep poses a threshold
question — bisects for the crossover point.  Artifacts land under
``<out>/<sweep>/``: ``report.json`` and ``report.txt`` are bit-identical
across re-runs with the same seed; ``run.json`` carries this run's cost
accounting (a warm re-run shows everything cache-served).

``--fast`` scales every rung's workloads down by 4x (the ``validate
--fast`` trick): same qualitative shapes, minutes instead of tens of
minutes.  Suite runs fan out over the process pool (``--workers`` /
``REPRO_WORKERS``) and share the disk result cache.
"""

import argparse
import os
import sys
import time


def main() -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description="Explore the MCM-GPU design space.")
    parser.add_argument(
        "--sweep",
        action="append",
        default=None,
        metavar="NAME",
        help="built-in sweep to run (repeatable; see --list)",
    )
    parser.add_argument("--list", action="store_true", help="list built-in sweeps")
    parser.add_argument(
        "--fast",
        action="store_true",
        help="4x-smaller workloads on every rung (qualitative shapes only)",
    )
    parser.add_argument(
        "--out",
        default="explore",
        metavar="DIR",
        help="artifact root; each sweep writes <out>/<sweep>/ (default: explore)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="seed for randomized sweep strategies (default: 0)",
    )
    parser.add_argument(
        "--keep",
        type=float,
        default=0.5,
        metavar="F",
        help="fraction of candidates promoted per halving rung (default: 0.5)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size for suite runs (overrides REPRO_WORKERS)",
    )
    parser.add_argument(
        "--analytical",
        action="store_true",
        help="screen rung 0 with the calibrated analytical model "
        "(needs golden/analytical.json; see scripts/calibrate.py --analytical)",
    )
    opts = parser.parse_args()
    if opts.workers is not None:
        os.environ["REPRO_WORKERS"] = str(opts.workers)

    from pathlib import Path

    from repro.explore import BUILTIN_SWEEPS, build_plan, run_sweep, write_artifacts
    from repro.explore.builtin import screen_for_plan
    from repro.explore.report import render_text
    from repro.experiments.common import default_cache
    from repro.parallel import GLOBAL_METRICS
    from repro.validate.analytical import CalibrationError, load_calibration

    calibration = None
    if opts.analytical:
        try:
            calibration = load_calibration()
        except CalibrationError as exc:
            print(f"--analytical unavailable: {exc}", file=sys.stderr)
            return 1

    if opts.list or not opts.sweep:
        print("built-in sweeps:")
        for key, (description, _) in BUILTIN_SWEEPS.items():
            print(f"  {key:<12} {description}")
        if not opts.list:
            print("\nusage: python scripts/explore.py --sweep <name> [--fast]")
        return 0

    unknown = [key for key in opts.sweep if key not in BUILTIN_SWEEPS]
    if unknown:
        print(f"unknown sweep(s): {', '.join(unknown)}", file=sys.stderr)
        return 1

    failed = False
    for key in opts.sweep:
        GLOBAL_METRICS.reset()
        start = time.time()
        plan = build_plan(key, fast=opts.fast, seed=opts.seed)
        screen = None if calibration is None else screen_for_plan(plan, calibration)
        report = run_sweep(plan, keep_fraction=opts.keep, screen=screen)
        paths = write_artifacts(report, Path(opts.out), cache=default_cache())
        print(render_text(report))
        metrics = GLOBAL_METRICS.report(per_config=False)
        if metrics != "no suite runs recorded":
            print(f"[{key} throughput] {metrics}")
        print(f"[{key}: {time.time() - start:.1f}s -> {paths['report.json'].parent}]\n")
        if not report.frontier:
            print(f"[{key}: empty Pareto frontier — check the sweep]", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
