#!/usr/bin/env python
"""Micro-benchmark: simulation throughput on the validation micro suite.

Runs the micro suite serially with the result cache bypassed (every run
simulates) and emits a numbered JSON report at the repository root::

    python scripts/bench.py                    # writes BENCH_6.json
    python scripts/bench.py --fast             # CI smoke: one repeat
    python scripts/bench.py --compare OLD.json # embed baseline + speedup

The figure of merit is ``runs_per_sec`` — end-to-end simulated runs per
wall-clock second on one core, the quantity every suite sweep scales
with; ``records_per_sec`` (trace records retired per second) tracks the
engine hot loop independently of workload sizing.  Per-config suite
timings localize a regression to a machine shape.  CI archives the JSON
so throughput regressions show up next to correctness failures.
"""

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.core.config import MODEL_REV
from repro.core.presets import baseline_mcm_gpu, optimized_mcm_gpu
from repro.sim.simulator import Simulator
from repro.validate.properties import micro_suite

#: PR number stamped into the default output name (``BENCH_<pr>.json``).
DEFAULT_PR = 6


def repo_root() -> Path:
    return Path(__file__).resolve().parents[1]


def machine_info() -> dict:
    """Environment the numbers were taken on (for apples-to-apples diffs)."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def _time_suite(config, workloads, repeats: int) -> dict:
    """Time ``repeats`` serial passes of ``workloads`` on one machine."""
    runs = 0
    records = 0
    start = time.perf_counter()
    for _ in range(repeats):
        simulator = Simulator(config)
        for workload in workloads:
            result = simulator.run(workload)
            runs += 1
            records += result.records
    seconds = time.perf_counter() - start
    return {
        "config": config.name,
        "runs": runs,
        "records": records,
        "seconds": round(seconds, 4),
        "runs_per_sec": round(runs / seconds, 2) if seconds > 0 else None,
        "records_per_sec": round(records / seconds) if seconds > 0 else None,
    }


def bench(repeats: int, micro: int) -> dict:
    """Benchmark the micro suite on the two headline machines."""
    workloads = micro_suite(micro)
    configs = [baseline_mcm_gpu(), optimized_mcm_gpu()]
    # Warm-up pass: first-run costs (pattern construction, trace
    # materialization) belong to neither the model nor the figure of merit.
    for config in configs:
        simulator = Simulator(config)
        for workload in workloads:
            simulator.run(workload)

    suites = [_time_suite(config, workloads, repeats) for config in configs]
    runs = sum(suite["runs"] for suite in suites)
    records = sum(suite["records"] for suite in suites)
    seconds = sum(suite["seconds"] for suite in suites)
    return {
        "bench": "micro-suite-throughput",
        "model_rev": MODEL_REV,
        "machine": machine_info(),
        "workloads": [workload.name for workload in workloads],
        "configs": [config.name for config in configs],
        "repeats": repeats,
        "suites": suites,
        "runs": runs,
        "records": records,
        "seconds": round(seconds, 4),
        "runs_per_sec": round(runs / seconds, 2) if seconds > 0 else None,
        "records_per_sec": round(records / seconds) if seconds > 0 else None,
    }


def attach_baseline(report: dict, baseline_path: Path) -> None:
    """Embed another bench report as the baseline and compute the speedup."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    report["baseline"] = {
        "path": str(baseline_path),
        "model_rev": baseline.get("model_rev"),
        "runs_per_sec": baseline.get("runs_per_sec"),
        "records_per_sec": baseline.get("records_per_sec"),
        "machine": baseline.get("machine"),
    }
    base_rate = baseline.get("runs_per_sec")
    if base_rate and report["runs_per_sec"]:
        report["speedup_vs_baseline"] = round(report["runs_per_sec"] / base_rate, 3)


def main() -> int:
    parser = argparse.ArgumentParser(description="Benchmark simulation throughput.")
    parser.add_argument(
        "--pr",
        type=int,
        default=DEFAULT_PR,
        metavar="N",
        help=f"PR number for the default BENCH_<N>.json name (default {DEFAULT_PR})",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output path (default BENCH_<pr>.json at the repo root)",
    )
    parser.add_argument("--repeats", type=int, default=3, metavar="N")
    parser.add_argument(
        "--micro", type=int, default=2, metavar="N", help="micro-suite size (1-4)"
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI smoke mode: a single repeat (timings are noisier)",
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="PATH",
        help="embed another bench JSON as the baseline and report the speedup",
    )
    opts = parser.parse_args()
    out = Path(opts.out) if opts.out else repo_root() / f"BENCH_{opts.pr}.json"
    repeats = 1 if opts.fast else opts.repeats
    report = bench(repeats, opts.micro)
    if opts.compare:
        attach_baseline(report, Path(opts.compare))
    with open(out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
