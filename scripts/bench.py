#!/usr/bin/env python
"""Micro-benchmark: simulation throughput on the validation micro suite.

Runs the micro suite serially on the baseline machine with the cache
bypassed (every run simulates) and emits a small JSON report::

    python scripts/bench.py --out BENCH_3.json

The figure of merit is ``runs_per_sec`` — end-to-end simulated runs per
wall-clock second on one core, the quantity every suite sweep scales
with.  CI archives the JSON so throughput regressions show up next to
correctness failures.
"""

import argparse
import json
import sys
import time

from repro.core.config import MODEL_REV
from repro.core.presets import baseline_mcm_gpu, optimized_mcm_gpu
from repro.sim.simulator import Simulator
from repro.validate.properties import micro_suite


def bench(repeats: int, micro: int) -> dict:
    """Time ``repeats`` passes of the micro suite on two machines."""
    workloads = micro_suite(micro)
    configs = [baseline_mcm_gpu(), optimized_mcm_gpu()]
    # Warm-up pass: first-run costs (pattern construction, trace caches)
    # belong to neither the model nor the figure of merit.
    for config in configs:
        simulator = Simulator(config)
        for workload in workloads:
            simulator.run(workload)

    runs = 0
    start = time.perf_counter()
    for _ in range(repeats):
        for config in configs:
            simulator = Simulator(config)
            for workload in workloads:
                simulator.run(workload)
                runs += 1
    seconds = time.perf_counter() - start
    return {
        "model_rev": MODEL_REV,
        "workloads": [workload.name for workload in workloads],
        "configs": [config.name for config in configs],
        "runs": runs,
        "seconds": round(seconds, 4),
        "runs_per_sec": round(runs / seconds, 2) if seconds > 0 else None,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description="Benchmark simulation throughput.")
    parser.add_argument("--out", default="BENCH_3.json", metavar="PATH")
    parser.add_argument("--repeats", type=int, default=3, metavar="N")
    parser.add_argument(
        "--micro", type=int, default=2, metavar="N", help="micro-suite size (1-4)"
    )
    opts = parser.parse_args()
    report = bench(opts.repeats, opts.micro)
    with open(opts.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
