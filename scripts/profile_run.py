#!/usr/bin/env python
"""Profile one workload on one preset and export its telemetry.

Usage:
    python scripts/profile_run.py                       # list presets/workloads
    python scripts/profile_run.py Stream baseline --trace out.json
    python scripts/profile_run.py Streamcluster optimized \\
        --trace trace.json --timeline timeline.json --window 2048

Runs the pair once with a telemetry probe attached (bypassing the result
cache — profiling wants a live run), prints the plain-text report, and
optionally writes a Perfetto-loadable Chrome trace (``--trace``) and/or a
raw JSON timeline (``--timeline``).  Open the trace at
https://ui.perfetto.dev or chrome://tracing.
"""

import argparse
import sys

from repro.core import presets
from repro.sim.simulator import Simulator
from repro.telemetry import (
    Telemetry,
    text_report,
    write_chrome_trace,
    write_json_timeline,
)
from repro.workloads.suite import all_specs, make_workload

#: Preset name -> zero-argument configuration factory.
PRESETS = {
    "baseline": presets.baseline_mcm_gpu,
    "l15": presets.mcm_gpu_with_l15,
    "optimized": presets.optimized_mcm_gpu,
    "monolithic": presets.monolithic_gpu,
    "multi-gpu": presets.multi_gpu,
}


def _list() -> None:
    print("presets:")
    for name, factory in PRESETS.items():
        print(f"  {name:<12} {factory().name}")
    print("\nworkloads:")
    names = [spec.name for spec in all_specs()]
    for start in range(0, len(names), 6):
        print("  " + ", ".join(names[start : start + 6]))


def main() -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description="Profile one simulation run.")
    parser.add_argument("workload", nargs="?", help="suite workload name")
    parser.add_argument("preset", nargs="?", help=f"one of: {', '.join(PRESETS)}")
    parser.add_argument("--trace", metavar="PATH", help="write a Chrome trace file")
    parser.add_argument("--timeline", metavar="PATH", help="write the raw JSON timeline")
    parser.add_argument(
        "--window",
        type=float,
        default=None,
        metavar="CYCLES",
        help="sampling window in cycles (default 4096)",
    )
    opts = parser.parse_args()

    if not opts.workload or not opts.preset:
        _list()
        return 0
    if opts.preset not in PRESETS:
        print(
            f"unknown preset {opts.preset!r}; choose from: {', '.join(PRESETS)}",
            file=sys.stderr,
        )
        return 1
    try:
        workload = make_workload(opts.workload)
    except KeyError:
        print(f"unknown workload {opts.workload!r}", file=sys.stderr)
        return 1

    telemetry = Telemetry() if opts.window is None else Telemetry(opts.window)
    config = PRESETS[opts.preset]()
    result = Simulator(config, telemetry=telemetry).run(workload)

    print(result.summary())
    print()
    print(text_report(telemetry))
    if opts.trace:
        write_chrome_trace(telemetry, opts.trace)
        print(f"\nchrome trace written to {opts.trace} (open in Perfetto)")
    if opts.timeline:
        write_json_timeline(telemetry, opts.timeline)
        print(f"timeline written to {opts.timeline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
