#!/usr/bin/env python
"""Calibration harness: compares model output against the paper's headlines.

Run while tuning workload/config parameters.  Uses the shared disk cache,
so unchanged (workload, system) pairs are free on re-run.  Each section
batches all of its configurations through one ``run_suites`` call, so the
process pool (``REPRO_WORKERS``) overlaps every (workload, config) pair.

Usage: python scripts/calibrate.py [section ...]
Sections: fig4 fig6 fig9 fig13 fig16 mono multi fig2 traffic all
(default: fast set)

``--analytical [--fast] [--bless]`` fits the analytical tier instead:
predicted vs golden cycles per workload class, predicted vs simulated
sweep scores on the calibration matrix, and (with ``--bless``) the
``golden/analytical.json`` artifact the explore screen loads.
"""

import math
import sys
import time

from repro.analysis.speedup import geomean, geomean_speedup, speedups
from repro.core.presets import (
    baseline_mcm_gpu,
    mcm_gpu_with_l15,
    monolithic_gpu,
    multi_gpu,
    optimized_mcm_gpu,
)
from repro.experiments.common import filter_names, names_in_category, run_suites
from repro.parallel import GLOBAL_METRICS
from repro.workloads.suite import suite_workloads
from repro.workloads.synthetic import Category

M = names_in_category(Category.M_INTENSIVE)
C = names_in_category(Category.C_INTENSIVE)
L = names_in_category(Category.LIMITED_PARALLELISM)


def by_cat(results, baselines):
    out = {}
    for label, names in (("M", M), ("C", C), ("L", L)):
        out[label] = geomean_speedup(filter_names(results, names), filter_names(baselines, names))
    out["all"] = geomean_speedup(results, baselines)
    return out


def show(label, cats, paper):
    print(f"{label:<34} " + "  ".join(f"{k}:{v:5.3f}" for k, v in cats.items()) + f"   paper: {paper}")


def fig4():
    print("== Fig 4: inter-GPM bandwidth sensitivity (slowdown vs 6TB/s) ==")
    settings = [(3072.0, "M~1.00"), (1536.0, "M~0.88"), (768.0, "M~0.60"), (384.0, "M~0.43")]
    ref, *swept = run_suites(
        [baseline_mcm_gpu(link_bandwidth=6144.0)]
        + [baseline_mcm_gpu(link_bandwidth=bw) for bw, _ in settings]
    )
    for (bw, paper), res in zip(settings, swept):
        show(f"link {bw:.0f} GB/s", by_cat(res, ref), paper)


def fig6():
    print("== Fig 6: L1.5 variants vs baseline (768 GB/s) ==")
    variants = [(8, True, ""), (16, False, "M lower"), (16, True, "M:1.114 C:~1.01 L:1.035"), (32, True, "M:1.183 (non-iso)")]
    base, *swept = run_suites(
        [baseline_mcm_gpu()]
        + [mcm_gpu_with_l15(l15_total_mb=mb, remote_only=remote) for mb, remote, _ in variants]
    )
    for (mb, remote, paper), res in zip(variants, swept):
        show(f"L1.5 {mb}MB remote={remote}", by_cat(res, base), paper)


def fig9():
    print("== Fig 9: L1.5(16MB,remote) + distributed scheduling vs baseline ==")
    base, res = run_suites(
        [baseline_mcm_gpu(), mcm_gpu_with_l15(16, True, scheduler="distributed")]
    )
    show("L1.5+DS", by_cat(res, base), "M:1.234 C:1.019 L:1.052")


def fig13():
    print("== Fig 13: L1.5 + DS + FT vs baseline ==")
    variants = [(16, ""), (8, "M:1.51 C:1.113 L:1.079")]
    base, *swept = run_suites(
        [baseline_mcm_gpu()]
        + [
            mcm_gpu_with_l15(mb, True, scheduler="distributed", placement="first_touch")
            for mb, _ in variants
        ]
    )
    for (mb, paper), res in zip(variants, swept):
        show(f"L1.5 {mb}MB +DS+FT", by_cat(res, base), paper)


def fig16():
    print("== Fig 16: each optimization alone + combined (geomean over 48) ==")
    from dataclasses import replace

    combos = [
        ("L1.5 alone", mcm_gpu_with_l15(16, True), "+5.2%"),
        ("DS alone", replace(baseline_mcm_gpu(name="mcm-ds-only"), scheduler="distributed"), "+0.3%"),
        ("FT alone", replace(baseline_mcm_gpu(name="mcm-ft-only"), placement="first_touch"), "-4.7%"),
        ("optimized (768)", optimized_mcm_gpu(), "+22.8%"),
        ("MCM 6TB/s", baseline_mcm_gpu(link_bandwidth=6144.0, name="mcm-6tbs"), "~+30%?"),
    ]
    base, *swept = run_suites([baseline_mcm_gpu()] + [cfg for _, cfg, _ in combos])
    for (label, _, paper), res in zip(combos, swept):
        show(label, by_cat(res, base), paper)


def mono():
    print("== Monolithic comparisons ==")
    base, opt, m128, m256 = run_suites(
        [baseline_mcm_gpu(), optimized_mcm_gpu(), monolithic_gpu(128), monolithic_gpu(256)]
    )
    print(f"opt vs mono-128: {geomean_speedup(opt, m128):.3f}  (paper 1.455)")
    print(f"mono-256 vs opt: {geomean_speedup(m256, opt):.3f}  (paper ~1.10)")
    print(f"mono-256 vs mono-128: {geomean_speedup(m256, m128):.3f}")
    print(f"baseline-mcm vs mono-128: {geomean_speedup(base, m128):.3f}")


def multi():
    print("== Fig 17: multi-GPU comparisons (vs baseline multi-GPU) ==")
    mg_base, mg_opt, mcm, mcm6, m256 = run_suites(
        [
            multi_gpu(optimized=False),
            multi_gpu(optimized=True),
            optimized_mcm_gpu(),
            baseline_mcm_gpu(link_bandwidth=6144.0, name="mcm-6tbs"),
            monolithic_gpu(256),
        ]
    )
    print(f"optimized multi-GPU: {geomean_speedup(mg_opt, mg_base):.3f} (paper 1.251)")
    print(f"MCM-GPU 768:        {geomean_speedup(mcm, mg_base):.3f} (paper 1.519)")
    print(f"mono-256:           {geomean_speedup(m256, mg_base):.3f} (paper ~1.66)")


def fig2():
    print("== Fig 2: SM scaling (speedup over 32 SMs, geomean by class) ==")
    counts = (64, 128, 256)
    ref, *swept = run_suites([monolithic_gpu(32)] + [monolithic_gpu(sms) for sms in counts])
    high = M + C
    for sms, res in zip(counts, swept):
        hi = geomean_speedup(filter_names(res, high), filter_names(ref, high))
        lo = geomean_speedup(filter_names(res, L), filter_names(ref, L))
        print(f"{sms:>4} SMs: high={hi:.2f} (linear {sms/32:.0f}) limited={lo:.2f}")


def traffic():
    print("== Inter-GPM traffic (avg TB/s across M-intensive) ==")
    base, l15, opt = run_suites(
        [baseline_mcm_gpu(), mcm_gpu_with_l15(16, True), optimized_mcm_gpu()]
    )
    for label, res, paper in (("baseline", base, "~2+"), ("L1.5", l15, "-17% M"), ("optimized", opt, "5x down")):
        mbw = sum(res[n].inter_gpm_tbps for n in M) / len(M)
        total = sum(r.link_bytes for r in res.values())
        print(f"{label:<12} M-avg {mbw:.2f} TB/s; total {total/1e9:.2f} GB moved")


def analytical(fast=False, bless=False):
    from repro.validate.analytical import default_calibration_path, fit_calibration

    print("== Analytical tier calibration (prediction vs exact simulator) ==")
    calibration, rows = fit_calibration(fast=fast)
    print(f"model r{calibration.model_rev}; {calibration.note}")
    print(f"{'class':<22} {'pairs':>5} {'scale':>7} {'band':>7}  worst |residual|")
    for name in sorted(calibration.classes):
        band = calibration.classes[name]
        residuals = [
            abs(float(r["log_error"]) - math.log(band.cycles_scale))
            for r in rows["golden"]
            if r["class"] == name
        ]
        print(
            f"{name:<22} {band.pairs:>5} {band.cycles_scale:7.3f} "
            f"{band.cycles_band:7.3f}  {max(residuals):.3f} log-cycles"
        )
    print(f"\nscore matrix ({len(rows['scores'])} points):")
    print(f"{'candidate':<42} {'family':<11} {'rung':>13} {'sim':>7} {'pred':>7} {'log err':>8}")
    for row in rows["scores"]:
        print(
            f"{row['candidate']:<42} {row['family']:<11} {row['rung']:>13} "
            f"{row['sim_score']:7.3f} {row['pred_score']:7.3f} {row['log_error']:+8.4f}"
        )
    print("\nblessed score bands (worst centered residual x safety, per sweep rung):")
    for key in sorted(calibration.score_bands):
        print(f"  {key:<26} +/-{calibration.score_bands[key]:.4f} log-score")
    print(f"  {'(widest)':<26} +/-{calibration.score_band:.4f} log-score")
    if bless:
        path = calibration.save(default_calibration_path())
        print(f"blessed -> {path}")
    else:
        print("(dry run; pass --bless to write golden/analytical.json)")


SECTIONS = {
    "fig4": fig4, "fig6": fig6, "fig9": fig9, "fig13": fig13,
    "fig16": fig16, "mono": mono, "multi": multi, "fig2": fig2,
    "traffic": traffic,
}

if __name__ == "__main__":
    argv = sys.argv[1:]
    if "--analytical" in argv:
        fast = "--fast" in argv
        bless = "--bless" in argv
        extra = [a for a in argv if a not in ("--analytical", "--fast", "--bless")]
        if extra:
            print(f"--analytical takes only --fast/--bless, got: {' '.join(extra)}")
            sys.exit(2)
        t0 = time.time()
        analytical(fast=fast, bless=bless)
        print(f"[analytical: {time.time()-t0:.0f}s]")
        sys.exit(0)
    args = argv or ["fig6", "fig9", "fig13", "fig16", "traffic"]
    if args == ["all"]:
        args = list(SECTIONS)
    for name in args:
        GLOBAL_METRICS.reset()
        t0 = time.time()
        SECTIONS[name]()
        metrics = GLOBAL_METRICS.report(per_config=False)
        if metrics != "no suite runs recorded":
            print(f"[{name} throughput] {metrics}")
        print(f"[{name}: {time.time()-t0:.0f}s]\n")
