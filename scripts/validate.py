#!/usr/bin/env python
"""Run the model-validation tiers (see ``src/repro/validate/``).

Usage:
    python scripts/validate.py quick              # live invariants, micro suite
    python scripts/validate.py properties         # metamorphic config sweeps
    python scripts/validate.py fidelity [--fast]  # paper shape-fidelity bands
    python scripts/validate.py ml [--fast]        # ML-era suite fidelity bands
    python scripts/validate.py topology [--fast]  # cross-topology hop bands
    python scripts/validate.py golden [--bless]   # golden-metrics drift gate
    python scripts/validate.py quick properties   # tiers combine freely

Tiers are ordered by cost: ``quick`` simulates a few shrunken workloads
with the live validator attached (seconds); ``properties`` sweeps ~10
small configs (tens of seconds); ``fidelity`` reruns the paper's headline
design points over the full suite (minutes cold, seconds cached);
``golden`` reruns the pinned golden matrix and diffs it against
``golden/metrics.json``.  Exit status is non-zero if any requested tier
fails.
"""

import argparse
import os
import sys
import time

TIERS = ("quick", "properties", "fidelity", "ml", "topology", "golden")


def run_quick(opts) -> bool:
    """Live invariant checking over the micro suite on key machines."""
    from repro.core.presets import baseline_mcm_gpu, monolithic_gpu, optimized_mcm_gpu
    from repro.validate import check_result, validated_run
    from repro.validate.properties import micro_suite

    workloads = micro_suite(opts.micro)
    configs = [baseline_mcm_gpu(), optimized_mcm_gpu(), monolithic_gpu(256)]
    failures = 0
    for config in configs:
        for workload in workloads:
            result, validator = validated_run(workload, config, strict=False)
            violations = validator.violations + check_result(result, config=config)
            status = "ok" if not violations else "FAIL"
            if violations:
                failures += 1
            print(
                f"  {workload.name:>14s} on {config.name:<20s} "
                f"{validator.kernels_checked} kernels checked  {status}"
            )
            for violation in violations:
                print(f"    {violation}")
    print(f"[quick] {len(configs) * len(workloads)} validated runs, {failures} failed")
    return failures == 0


def run_properties_tier(opts) -> bool:
    """Metamorphic properties over config sweeps of the micro suite."""
    from repro.validate.properties import micro_suite, run_properties

    outcomes = run_properties(micro_suite(opts.micro))
    for outcome in outcomes:
        status = "ok" if outcome.passed else "FAIL"
        print(f"  {outcome.name:<22s} {status}  {outcome.detail}")
    failed = sum(1 for outcome in outcomes if not outcome.passed)
    print(f"[properties] {len(outcomes)} properties, {failed} failed")
    return failed == 0


def run_fidelity_tier(opts) -> bool:
    """Two-sided bands on the paper's headline figures."""
    from repro.validate.fidelity import run_and_report

    passed, text = run_and_report(fast=opts.fast)
    print(text)
    return passed


def run_ml_tier(opts) -> bool:
    """Banded checks over the ML-era workload suite."""
    from repro.validate.fidelity import report, run_ml_fidelity

    checks = run_ml_fidelity(fast=opts.fast)
    print(report(checks))
    return all(check.passed for check in checks)


def run_topology_tier(opts) -> bool:
    """Cross-topology hop-ratio bands at 8 GPMs."""
    from repro.validate.fidelity import report, run_topology_fidelity

    checks = run_topology_fidelity(fast=opts.fast)
    print(report(checks))
    return all(check.passed for check in checks)


def run_golden_tier(opts) -> bool:
    """Golden-metrics snapshot: bless or diff."""
    from pathlib import Path

    from repro.validate.golden import GoldenStore, bless, compare

    store = GoldenStore(Path(opts.store)) if opts.store else GoldenStore()
    if opts.bless:
        count, path = bless(store, note=opts.note)
        print(f"[golden] blessed {count} entries into {path}")
        return True
    try:
        report = compare(store)
    except FileNotFoundError as error:
        print(f"[golden] {error}")
        return False
    print(report.render())
    return report.clean


RUNNERS = {
    "quick": run_quick,
    "properties": run_properties_tier,
    "fidelity": run_fidelity_tier,
    "ml": run_ml_tier,
    "topology": run_topology_tier,
    "golden": run_golden_tier,
}


def main() -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description="Validate the timing model.")
    parser.add_argument(
        "tiers",
        nargs="+",
        choices=TIERS,
        metavar="tier",
        help=f"one or more of: {', '.join(TIERS)}",
    )
    parser.add_argument(
        "--bless",
        action="store_true",
        help="golden tier: freeze the current metrics as the new snapshot",
    )
    parser.add_argument(
        "--note",
        default=None,
        metavar="TEXT",
        help="golden tier with --bless: provenance note stored in the snapshot",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="fidelity/ml tiers: shrunken workloads and widened bands",
    )
    parser.add_argument(
        "--micro",
        type=int,
        default=2,
        metavar="N",
        help="quick/properties tiers: number of micro-suite workloads (1-4)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="golden tier: snapshot path (default golden/metrics.json)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size for suite runs (overrides REPRO_WORKERS)",
    )
    opts = parser.parse_args()
    if opts.workers is not None:
        os.environ["REPRO_WORKERS"] = str(opts.workers)

    ok = True
    for tier in opts.tiers:
        print(f"== {tier} ==")
        start = time.time()
        passed = RUNNERS[tier](opts)
        print(f"[{tier}: {'passed' if passed else 'FAILED'} in {time.time() - start:.1f}s]\n")
        ok = ok and passed
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
