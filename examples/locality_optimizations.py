#!/usr/bin/env python
"""Step-by-step effect of the three locality optimizations (Section 5).

Starts from the baseline MCM-GPU and adds, one at a time and combined:

  1. the GPM-side remote-only L1.5 cache,
  2. distributed (batched) CTA scheduling,
  3. first-touch page placement,

printing per-category speedups and the inter-GPM traffic after each step —
the story told by Figures 6, 9, 13, 14 and 16.

Run with:  python examples/locality_optimizations.py [workload ...]
"""

import sys
from dataclasses import replace

from repro import baseline_mcm_gpu, make_workload, mcm_gpu_with_l15, optimized_mcm_gpu
from repro.experiments.common import run_one

STEPS = [
    ("baseline (Table 3)", baseline_mcm_gpu()),
    ("+ L1.5 (16MB remote-only)", mcm_gpu_with_l15(16, remote_only=True)),
    ("+ distributed scheduling", mcm_gpu_with_l15(16, remote_only=True, scheduler="distributed")),
    ("+ first touch (8MB split)", optimized_mcm_gpu()),
    ("DS alone", replace(baseline_mcm_gpu(name="mcm-ds-only"), scheduler="distributed")),
    ("FT alone", replace(baseline_mcm_gpu(name="mcm-ft-only"), placement="first_touch")),
]


def main():
    names = sys.argv[1:] or ["CoMD", "SSSP", "Kmeans", "DWT"]
    for name in names:
        workload = make_workload(name)
        print(f"=== {name} ({workload.category.value}) ===")
        baseline = run_one(workload, STEPS[0][1])
        print(f"{'configuration':<28} {'speedup':>8} {'inter-GPM TB/s':>15} "
              f"{'remote':>7} {'L1.5 hit':>9}")
        for label, config in STEPS:
            result = run_one(workload, config)
            print(
                f"{label:<28} {result.speedup_over(baseline):8.3f} "
                f"{result.inter_gpm_tbps:15.2f} "
                f"{result.remote_access_fraction:7.1%} "
                f"{result.l15.hit_rate:9.1%}"
            )
        print()


if __name__ == "__main__":
    main()
