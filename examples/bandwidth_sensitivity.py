#!/usr/bin/env python
"""Inter-GPM bandwidth sensitivity study (the Figure 4 experiment).

Sweeps the baseline MCM-GPU's link bandwidth across the paper's settings
and shows how each workload category degrades, side by side with the
Section 3.3.1 analytical sizing model's prediction of where the knee
falls.

Run with:  python examples/bandwidth_sensitivity.py [--fast]
"""

import sys

from repro import baseline_mcm_gpu, required_link_bandwidth
from repro.analysis.speedup import geomean_speedup
from repro.experiments.common import filter_names, names_in_category, run_suite
from repro.workloads.suite import suite_workloads
from repro.workloads.synthetic import Category

SETTINGS = [6144.0, 3072.0, 1536.0, 768.0, 384.0]


def main():
    fast = "--fast" in sys.argv
    workloads = suite_workloads(fast_factor=0.25 if fast else None)

    print("Analytical sizing (Section 3.3.1):")
    requirement = required_link_bandwidth(n_gpms=4, dram_bandwidth_per_partition=768.0)
    print(f"  per-GPM egress demand : {requirement.egress_per_gpm:7.0f} GB/s")
    print(f"  per-GPM link demand   : {requirement.per_gpm_link_demand:7.0f} GB/s"
          f"  (the paper's 4b = 3 TB/s)")
    print(f"  -> settings below ~{requirement.per_gpm_link_demand / 2:.0f} GB/s per link throttle DRAM\n")

    reference = run_suite(baseline_mcm_gpu(link_bandwidth=SETTINGS[0]), workloads)
    categories = {
        "M-Intensive": names_in_category(Category.M_INTENSIVE),
        "C-Intensive": names_in_category(Category.C_INTENSIVE),
        "Limited": names_in_category(Category.LIMITED_PARALLELISM),
    }

    print(f"{'link BW':>10} | " + " | ".join(f"{label:>12}" for label in categories))
    print("-" * 60)
    for setting in SETTINGS:
        results = run_suite(baseline_mcm_gpu(link_bandwidth=setting), workloads)
        cells = []
        for names in categories.values():
            relative = geomean_speedup(
                filter_names(results, names), filter_names(reference, names)
            )
            cells.append(f"{relative:12.3f}")
        print(f"{setting:8.0f}GB | " + " | ".join(cells))

    print("\nPaper reference (M-Intensive): 1.00 / ~1.00 / ~0.88 / ~0.60 / ~0.43")


if __name__ == "__main__":
    main()
