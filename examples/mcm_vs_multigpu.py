#!/usr/bin/env python
"""MCM-GPU vs multi-GPU vs monolithic (the Section 6 comparison).

Builds four 256-SM machines — a two-GPU board system (baseline and
optimized with a GPU-side remote cache), the optimized MCM-GPU, and the
unbuildable 256-SM monolithic GPU — and compares performance and
interconnect energy on a few representative workloads, plus the suite
geomean if --full is given.

Run with:  python examples/mcm_vs_multigpu.py [--full]
"""

import sys

from repro import make_workload, monolithic_gpu, multi_gpu, optimized_mcm_gpu
from repro.analysis.speedup import geomean_speedup
from repro.experiments.common import run_one, run_suite

SYSTEMS = [
    ("multi-GPU baseline", multi_gpu(optimized=False)),
    ("multi-GPU optimized", multi_gpu(optimized=True)),
    ("MCM-GPU optimized", optimized_mcm_gpu()),
    ("monolithic 256 SM", monolithic_gpu(256)),
]


def per_workload(names):
    for name in names:
        workload = make_workload(name)
        print(f"=== {name} ===")
        baseline = run_one(workload, SYSTEMS[0][1])
        for label, config in SYSTEMS:
            result = run_one(workload, config)
            energy = result.energy
            print(
                f"{label:<22} speedup {result.speedup_over(baseline):6.3f}   "
                f"link traffic {result.link_bytes / 1e6:8.1f} MB   "
                f"interconnect energy {energy.inter_module_joules * 1e3:8.3f} mJ"
            )
        print()


def full_suite():
    print("=== suite geomean (48 workloads) vs baseline multi-GPU ===")
    baseline = run_suite(SYSTEMS[0][1])
    for label, config in SYSTEMS[1:]:
        speedup = geomean_speedup(run_suite(config), baseline)
        print(f"{label:<22} {speedup:6.3f}")
    print("paper: optimized multi-GPU +25.1%, optimized MCM-GPU +51.9%")


def main():
    per_workload(["CoMD", "Stream", "BFS"])
    if "--full" in sys.argv:
        full_suite()


if __name__ == "__main__":
    main()
