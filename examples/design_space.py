#!/usr/bin/env python
"""Design-space exploration beyond the paper's main configurations.

Uses the library as a research tool: sweeps GPM count at fixed total SMs
(2x128 vs 4x64 vs 8x32), L1.5 capacity splits, and page sizes for
first-touch placement, reporting speedup over the Table 3 baseline for a
few representative workloads.  This mirrors the kind of follow-on
questions the paper leaves open (Section 5.2's dynamic CTA grouping,
Section 3.2's topology note).

Run with:  python examples/design_space.py
"""

from dataclasses import replace

from repro import baseline_mcm_gpu, make_workload, optimized_mcm_gpu
from repro.experiments.common import run_one

WORKLOADS = ["CoMD", "SSSP", "Stream"]


def sweep(title, configs):
    print(f"=== {title} ===")
    header = f"{'configuration':<34}" + "".join(f"{name:>10}" for name in WORKLOADS)
    print(header)
    baselines = {name: run_one(make_workload(name), baseline_mcm_gpu()) for name in WORKLOADS}
    for label, config in configs:
        cells = []
        for name in WORKLOADS:
            result = run_one(make_workload(name), config)
            cells.append(f"{result.speedup_over(baselines[name]):10.3f}")
        print(f"{label:<34}" + "".join(cells))
    print()


def main():
    gpm_variants = []
    for n in (2, 4, 8):
        config = optimized_mcm_gpu(name=f"opt-{n}gpm")
        config = replace(config, n_gpms=n, gpm=replace(config.gpm, n_sms=256 // n))
        gpm_variants.append((f"{n} GPMs x {256 // n} SMs", config))
    sweep("GPM count at 256 total SMs (optimized design)", gpm_variants)
    sweep(
        "L1.5 capacity split under DS + FT",
        [
            ("8MB L1.5 + 8MB L2 (paper's pick)", optimized_mcm_gpu(l15_total_mb=8)),
            ("16MB L1.5 + residual L2", optimized_mcm_gpu(l15_total_mb=16)),
        ],
    )
    sweep(
        "Page size for first-touch placement",
        [
            (f"page {page}B (scaled)", replace(optimized_mcm_gpu(name=f"opt-pg{page}"), page_bytes=page))
            for page in (512, 2048, 8192)
        ],
    )
    sweep(
        "Link bandwidth with all optimizations on",
        [
            (f"{int(bw)} GB/s links", optimized_mcm_gpu(link_bandwidth=bw))
            for bw in (384.0, 768.0, 1536.0)
        ],
    )


if __name__ == "__main__":
    main()
