#!/usr/bin/env python
"""Characterize the 48-workload suite without running timing simulations.

Prints, per workload, the trace-level properties behind the paper's
Section 4 classification — memory intensity, store fraction, inter-CTA
sharing, hot-set concentration — grouped by category, so the suite's
composition claims can be audited directly.

Run with:  python examples/suite_characterization.py [--full]
           (default samples 24 CTAs per workload; --full samples 64)
"""

import sys

from repro.workloads.characterize import profile_spec
from repro.workloads.suite import specs_by_category
from repro.workloads.synthetic import Category


def main():
    max_ctas = 64 if "--full" in sys.argv else 24
    for category in Category:
        print(f"=== {category.value} ===")
        print(
            f"{'workload':<14} {'pattern':<14} {'mem-int':>8} {'stores':>7} "
            f"{'shared':>7} {'hot10%':>7} {'coverage':>9}"
        )
        for spec in specs_by_category()[category]:
            profile = profile_spec(spec, max_ctas=max_ctas)
            intensity = profile.memory_intensity
            print(
                f"{spec.name:<14} {spec.pattern:<14} {intensity:8.3f} "
                f"{profile.store_fraction:7.1%} {profile.shared_line_fraction:7.1%} "
                f"{profile.hot_concentration:7.1%} {profile.footprint_coverage:9.1%}"
            )
        print()


if __name__ == "__main__":
    main()
