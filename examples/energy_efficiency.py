#!/usr/bin/env python
"""Interconnect energy comparison (the Section 6.2 efficiency argument).

MCM-GPUs integrate modules on package at 0.5 pJ/bit while multi-GPU
boards pay 10 pJ/bit (Table 2).  This example quantifies the argument on
real simulations: for a few workloads it reports each machine's
inter-module traffic, the joules it costs at that machine's tier, and the
combined performance+energy picture.

Run with:  python examples/energy_efficiency.py [workload ...]
"""

import sys

from repro import make_workload, multi_gpu, optimized_mcm_gpu
from repro.experiments.common import run_one
from repro.multigpu.system import compare_efficiency


def main():
    names = sys.argv[1:] or ["CoMD", "Kmeans", "BFS"]
    mcm_cfg = optimized_mcm_gpu()
    multi_cfg = multi_gpu(optimized=True)
    print(f"{'workload':<12} {'MCM mJ':>9} {'multi mJ':>9} {'energy x':>9} {'perf x':>8}")
    for name in names:
        workload = make_workload(name)
        mcm = run_one(workload, mcm_cfg)
        multi = run_one(workload, multi_cfg)
        comparison = compare_efficiency(mcm, multi)
        print(
            f"{name:<12} "
            f"{comparison.mcm_inter_module_joules * 1e3:9.3f} "
            f"{comparison.multi_gpu_inter_module_joules * 1e3:9.3f} "
            f"{comparison.energy_advantage:9.1f} "
            f"{comparison.speedup:8.2f}"
        )
    print(
        "\n(energy x = multi-GPU interconnect joules / MCM interconnect joules;"
        "\n perf x  = MCM speedup over the optimized multi-GPU)"
    )


if __name__ == "__main__":
    main()
