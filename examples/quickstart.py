#!/usr/bin/env python
"""Quickstart: simulate one workload on the paper's key machines.

Runs the Stream triad benchmark on the baseline MCM-GPU (Table 3), the
fully optimized MCM-GPU (Section 5.4), and the largest buildable
monolithic GPU, then prints the headline metrics the paper reasons about:
execution cycles, inter-GPM bandwidth, remote-access fraction, cache hit
rates, and data-movement energy.

Run with:  python examples/quickstart.py [workload-name]
"""

import sys

from repro import baseline_mcm_gpu, make_workload, monolithic_gpu, optimized_mcm_gpu, simulate


def describe(label, result):
    energy = result.energy
    print(f"--- {label} ---")
    print(f"  cycles              : {result.cycles:12,.0f}")
    print(f"  CTAs / kernels      : {result.ctas} / {result.kernels}")
    print(f"  loads / stores      : {result.loads:,} / {result.stores:,}")
    print(f"  L1 / L1.5 / L2 hit  : {result.l1.hit_rate:.1%} / "
          f"{result.l15.hit_rate:.1%} / {result.l2.hit_rate:.1%}")
    print(f"  remote accesses     : {result.remote_access_fraction:.1%}")
    print(f"  inter-GPM bandwidth : {result.inter_gpm_bandwidth:8,.0f} GB/s "
          f"({result.inter_gpm_tbps:.2f} TB/s)")
    print(f"  DRAM traffic        : {result.dram_bytes / 1e6:8.1f} MB")
    print(f"  interconnect energy : {energy.inter_module_joules * 1e3:8.3f} mJ "
          f"({energy.inter_module_tier.value} tier)")
    print()


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "Stream"
    workload = make_workload(name)
    print(f"Simulating {name!r} ({workload.category.value}, "
          f"{workload.spec.n_ctas} CTAs, "
          f"{workload.spec.footprint_bytes // 1024} KB scaled footprint)\n")

    baseline = simulate(workload, baseline_mcm_gpu())
    describe("baseline MCM-GPU (Table 3)", baseline)

    optimized = simulate(workload, optimized_mcm_gpu())
    describe("optimized MCM-GPU (L1.5 + DS + FT)", optimized)

    mono = simulate(workload, monolithic_gpu(128))
    describe("largest buildable monolithic GPU (128 SMs)", mono)

    print(f"optimized vs baseline speedup : {optimized.speedup_over(baseline):.3f}x")
    print(f"optimized vs monolithic-128   : "
          f"{mono.cycles / optimized.cycles:.3f}x")
    reduction = baseline.link_bytes / max(1, optimized.link_bytes)
    print(f"inter-GPM traffic reduction   : {reduction:.1f}x")


if __name__ == "__main__":
    main()
