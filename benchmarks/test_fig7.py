"""Figure 7: inter-GPM bandwidth reduction from the L1.5 cache."""

from repro.experiments import fig7_l15_bw


def test_fig7(run_once):
    comparison = run_once(fig7_l15_bw.run_fig7)
    print()
    print(fig7_l15_bw.report(comparison))

    # The L1.5 must cut total inter-GPM traffic noticeably (paper: ~28%
    # across the suite; we accept a broad band around that shape).
    assert comparison.reduction_factor > 1.1
    # Every category's average traffic goes down.
    for category, values in comparison.category_avg_tbps.items():
        assert values[1] <= values[0] * 1.02, category
    # Baseline M-intensive traffic sits in the TB/s regime (paper fig 7).
    m_avg_baseline = comparison.category_avg_tbps["M-Intensive"][0]
    assert m_avg_baseline > 1.0
