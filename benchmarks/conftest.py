"""Shared benchmark fixtures.

Each benchmark reproduces one table or figure: it runs the experiment once
under pytest-benchmark (``rounds=1`` — a full suite simulation is the unit
of work, statistical repetition adds nothing because the simulator is
deterministic and results are disk-cached), prints the paper-layout table,
and asserts the *shape* headlines the paper reports.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` exactly once under the benchmark timer and return its value."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
