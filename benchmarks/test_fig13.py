"""Figure 13: first-touch page placement (full optimization stack)."""

from repro.experiments import fig13_ft


def test_fig13(run_once):
    variants = run_once(fig13_ft.run_fig13)
    print()
    print(fig13_ft.report(variants))

    # Full stack with the 8 MB split: big memory-intensive gains
    # (paper: +51%).
    assert variants[8].m_geomean > 1.3
    # Once first-touch keeps traffic local, the 8 MB L1.5 + 8 MB L2 split
    # beats the 16 MB L1.5 + residual-L2 split (paper's key finding).
    assert variants[8].m_geomean > variants[16].m_geomean
    # All categories gain with the 8 MB split.
    assert variants[8].c_geomean > 1.0
    assert variants[8].limited_geomean > 1.0
