"""Ablation bench: scheduler policies on the optimized memory system."""

from repro.experiments import ablation_scheduler


def test_scheduler_ablation(run_once):
    ablation = run_once(ablation_scheduler.run_scheduler_ablation)
    print()
    print(ablation_scheduler.report(ablation))

    # First-touch placement needs the distributed scheduler's stable
    # CTA->GPM binding: both locality-aware schedulers beat centralized.
    assert ablation.overall["distributed"] > 1.05
    assert ablation.overall["dynamic"] > 1.05
    # The dynamic scheduler's stealing must at least hold the line overall...
    assert ablation.overall["dynamic"] > ablation.overall["distributed"] * 0.97
    # ...and on imbalanced workloads it should not trail static batching.
    assert (
        ablation.imbalanced_only["dynamic"]
        > ablation.imbalanced_only["distributed"] * 0.97
    )
