"""Figure 2: GPU performance scaling with SM count."""

from repro.experiments import fig2_scaling


def test_fig2(run_once):
    points = run_once(fig2_scaling.run_fig2, fig2_scaling.DEFAULT_SM_COUNTS)
    print()
    print(fig2_scaling.report(points))

    by_sms = {p.n_sms: p for p in points}
    # High-parallelism workloads keep scaling: a large fraction of linear
    # at 256 SMs (paper: 87.8%).
    assert by_sms[256].efficiency > 0.6
    assert by_sms[256].high_parallelism > 4.0
    # Limited-parallelism workloads plateau well below linear.
    assert by_sms[256].limited_parallelism < 0.62 * by_sms[256].linear
    # Monotone growth for the high-parallelism group.
    highs = [p.high_parallelism for p in points]
    assert all(b >= a * 0.98 for a, b in zip(highs, highs[1:]))
    # Limited parallelism flattens: the last doubling adds little.
    assert by_sms[256].limited_parallelism < by_sms[128].limited_parallelism * 1.4
