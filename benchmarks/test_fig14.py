"""Figure 14: inter-GPM bandwidth with first-touch placement."""

from repro.experiments import fig14_ft_bw


def test_fig14(run_once):
    comparison = run_once(fig14_ft_bw.run_fig14)
    print()
    print(fig14_ft_bw.report(comparison))

    # Headline: ~5x total traffic reduction for the optimized design.
    assert comparison.reduction_factor > 3.0
    # Several workloads nearly eliminate inter-GPM traffic.
    final = [values[-1] for values in comparison.per_workload_tbps.values()]
    assert sum(1 for value in final if value < 0.2) >= 3
