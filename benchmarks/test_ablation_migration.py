"""Ablation bench: dynamic page migration vs static first touch."""

from repro.experiments import ablation_migration


def test_migration_ablation(run_once):
    ablation = run_once(ablation_migration.run_migration_ablation)
    print()
    print(ablation_migration.report(ablation))

    # Migration is a refinement, not a revolution: it must not wreck the
    # optimized design (copy costs are charged), and it shouldn't change
    # the overall picture by more than a few percent either way.
    assert 0.9 < ablation.overall_speedup < 1.15
    for category, value in ablation.per_category.items():
        assert 0.85 < value < 1.25, category
