"""Figure 10: inter-GPM bandwidth with distributed scheduling."""

from repro.experiments import fig10_ds_bw


def test_fig10(run_once):
    comparison = run_once(fig10_ds_bw.run_fig10)
    print()
    print(fig10_ds_bw.report(comparison))

    # L1.5 + DS cuts more traffic than the L1.5 alone did (paper: 33% vs
    # 28% overall); at minimum the reduction must exceed Figure 7's floor.
    assert comparison.reduction_factor > 1.15
    m_values = comparison.category_avg_tbps["M-Intensive"]
    assert m_values[1] < m_values[0]
