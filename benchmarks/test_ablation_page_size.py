"""Ablation bench: page granularity for first-touch placement."""

from repro.experiments import ablation_page_size


def test_page_size_ablation(run_once):
    points = run_once(ablation_page_size.run_page_size_ablation)
    print()
    print(ablation_page_size.report(points))

    by_size = {p.page_bytes: p for p in points}
    # The default page is the reference point.
    assert by_size[2048].speedup == 1.0
    # No sweep point should collapse: first touch is robust across an
    # order of magnitude of page sizes.
    assert all(p.speedup > 0.8 for p in points)
    # Locality stays high everywhere on the optimized machine.
    assert all(p.mean_locality > 0.5 for p in points)
