"""Ablation bench: GPM count at constant totals (cost-locality trade)."""

from repro.experiments import gpm_scaling


def test_gpm_scaling(run_once):
    points = run_once(gpm_scaling.run_gpm_scaling)
    print()
    print(gpm_scaling.report(points))

    by_count = {p.n_gpms: p for p in points}
    # The 4-GPM machine is the reference.
    assert by_count[4].baseline_speedup == 1.0
    # On the unoptimized baseline, module count is a wash at fixed per-link
    # bandwidth: fewer modules mean less remote traffic (1/2 vs 3/4) but
    # also funnel twice the SMs through the same escape bandwidth, so the
    # bisection-per-SM loss roughly cancels the locality gain.
    assert 0.8 < by_count[2].baseline_speedup < 1.1
    # With the locality optimizations on, bigger modules win: almost all
    # traffic is local, so halving the module count mostly removes the
    # remaining NUMA exposure.
    assert by_count[2].optimized_speedup > 1.0
    # Eight small modules fragment the caches, raise the remote fraction
    # to 7/8, and add hops: clearly worse on both machines.
    assert by_count[8].baseline_speedup < 1.0
    assert by_count[8].optimized_speedup < 1.0
