"""Figure 17: MCM-GPU vs multi-GPU."""

from repro.experiments import fig17_multigpu


def test_fig17(run_once):
    comparison = run_once(fig17_multigpu.run_fig17)
    print()
    print(fig17_multigpu.report(comparison))

    speedups = comparison.speedups
    # The GPU-side remote cache helps the multi-GPU (paper: +25.1%).
    assert speedups["multi-gpu-optimized"] > 1.05
    # The optimized MCM-GPU beats the baseline multi-GPU clearly
    # (paper: +51.9%) and the optimized multi-GPU too (paper: +26.8%).
    assert speedups["mcm-optimized"] > speedups["multi-gpu-optimized"]
    assert comparison.mcm_over_optimized_multi_gpu() > 1.1
    # The on-package machine approaches the monolithic ceiling.
    assert speedups["monolithic-256"] >= speedups["mcm-optimized"] * 0.95
