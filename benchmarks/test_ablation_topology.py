"""Ablation bench: ring vs fully-connected topology (Section 3.2 extension)."""

from repro.experiments import topology_study


def test_topology_study(run_once):
    points = run_once(topology_study.run_topology_study)
    print()
    print(topology_study.report(points))

    baseline = points["baseline"]
    optimized = points["optimized"]
    # At iso port budget, one-hop routing should not lose on the
    # bandwidth-starved baseline (no pass-through traffic, lower latency).
    assert baseline.overall > 0.95
    # On the optimized machine almost all traffic is local, so topology
    # barely matters.
    assert 0.9 < optimized.overall < 1.1
