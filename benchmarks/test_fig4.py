"""Figure 4: performance sensitivity to inter-GPM link bandwidth."""

from repro.experiments import fig4_bandwidth


def test_fig4(run_once):
    points = run_once(fig4_bandwidth.run_fig4, fig4_bandwidth.DEFAULT_BANDWIDTHS)
    print()
    print(fig4_bandwidth.report(points))

    by_bw = {p.link_bandwidth: p for p in points}
    # 3 TB/s links are sufficient (paper: no further gain beyond 3 TB/s).
    assert by_bw[3072.0].m_intensive > 0.95
    # The baseline 768 GB/s setting costs M-intensive workloads heavily
    # (paper: ~40% degradation) and 384 GB/s even more (~57%).
    assert 0.45 < by_bw[768.0].m_intensive < 0.85
    assert by_bw[384.0].m_intensive < by_bw[768.0].m_intensive
    assert by_bw[384.0].m_intensive < 0.55
    # Compute-intensive workloads are less sensitive than memory-intensive.
    assert by_bw[768.0].c_intensive > by_bw[768.0].m_intensive
    # Limited-parallelism workloads are the least sensitive.
    assert by_bw[768.0].limited > by_bw[768.0].c_intensive
