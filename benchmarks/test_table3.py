"""Table 3: baseline MCM-GPU configuration."""

from repro.experiments import table3_baseline


def test_table3(run_once):
    rows = run_once(table3_baseline.run_table3)
    print()
    print(table3_baseline.report())

    assert len(rows) >= 8
    assert table3_baseline.matches_paper()
