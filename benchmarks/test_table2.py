"""Table 2: bandwidth and energy per integration domain."""

from repro.experiments import table2_domains


def test_table2(run_once):
    rows = run_once(table2_domains.run_table2)
    print()
    print(table2_domains.report())

    assert len(rows) == 4
    assert table2_domains.bandwidth_monotone_decreasing()
    assert table2_domains.energy_monotone_increasing()
    # Package links sit an order of magnitude below board links in energy.
    assert table2_domains.package_advantage_over_board() >= 10.0
