"""Figure 15: s-curve of optimized-MCM speedups over the full suite."""

from repro.experiments import fig15_scurve


def test_fig15(run_once):
    scurve = run_once(fig15_scurve.run_fig15)
    print()
    print(fig15_scurve.report(scurve))

    curve = scurve.curve
    assert len(curve) == 48
    # Most workloads improve, a handful degrade (paper: 31 up, 9 down).
    assert scurve.improved >= 24
    assert scurve.degraded >= 2
    # The tail has multi-x winners (paper: up to 3.5x / 4.4x).
    assert curve[-1] > 2.0
    # The head has real losers (paper: down to ~0.75).
    assert curve[0] < 0.97
