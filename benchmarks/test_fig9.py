"""Figure 9: distributed CTA scheduling on top of the L1.5."""

from repro.experiments import fig9_ds


def test_fig9(run_once):
    result = run_once(fig9_ds.run_fig9)
    print()
    print(fig9_ds.report(result))

    # L1.5 + DS clearly beats the baseline on memory-intensive workloads
    # (paper: +23.4%) and more than the L1.5 did alone (+11.4%).
    assert result.m_geomean > 1.12
    # Compute-intensive gains stay modest relative to M-intensive.
    assert result.c_geomean < result.m_geomean
    # No category collapses.
    assert result.limited_geomean > 0.9
