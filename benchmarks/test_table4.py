"""Table 4: memory-intensive workloads and their footprints."""

from repro.experiments import table4_workloads
from repro.workloads.synthetic import Category


def test_table4(run_once):
    rows = run_once(table4_workloads.run_table4)
    print()
    print(table4_workloads.report())

    assert len(rows) == 17
    composition = table4_workloads.suite_composition()
    assert composition["total"] == 48
    assert composition[Category.M_INTENSIVE] == 17
    # Footprints span the paper's range: tens of MB to multiple GB.
    footprints = [row[3] for row in rows]
    assert min(footprints) <= 40
    assert max(footprints) >= 5000
