"""Figure 6: L1.5 design-space exploration."""

from repro.experiments import fig6_l15


def test_fig6(run_once):
    variants = run_once(fig6_l15.run_fig6, fig6_l15.DEFAULT_VARIANTS)
    print()
    print(fig6_l15.report(variants))

    by_key = {(v.capacity_mb, v.remote_only): v for v in variants}
    # The 16 MB remote-only iso-transistor point helps memory-intensive
    # workloads (paper: +11.4%).
    assert by_key[(16, True)].m_intensive_geomean > 1.05
    # Capacity helps: 32 MB (non-iso) beats 16 MB beats 8 MB on M.
    assert (
        by_key[(32, True)].m_intensive_geomean
        >= by_key[(16, True)].m_intensive_geomean
        >= by_key[(8, True)].m_intensive_geomean
    )
    # Compute-intensive workloads barely move compared to M-intensive.
    assert by_key[(16, True)].c_intensive_geomean < by_key[(16, True)].m_intensive_geomean
    # The best iso-transistor point is one of the remote-only configs
    # (paper: remote-only is the chosen allocation policy).
    best = fig6_l15.best_iso_transistor(variants)
    assert best.remote_only
