"""Figure 16: breakdown of the optimizations' contributions."""

from repro.experiments import fig16_breakdown


def test_fig16(run_once):
    breakdown = run_once(fig16_breakdown.run_fig16)
    print()
    print(fig16_breakdown.report(breakdown))

    speedups = breakdown.speedups
    # L1.5 alone helps modestly (paper +5.2%).
    assert 1.0 < speedups["l15-alone"] < 1.15
    # DS alone and FT alone do little or hurt (paper +0.3% / -4.7%); the
    # mechanisms only pay off combined.
    assert speedups["ds-alone"] < 1.06
    assert speedups["ft-alone"] < 1.06
    # Combined: the paper's +22.8% headline.
    assert speedups["optimized"] > 1.15
    assert speedups["optimized"] > max(
        speedups["l15-alone"], speedups["ds-alone"], speedups["ft-alone"]
    )
    # The optimized design approaches the unbuildable monolithic GPU
    # (paper: within ~10%).
    assert breakdown.gap_to_monolithic() < 1.30
