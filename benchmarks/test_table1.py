"""Table 1: key characteristics of recent NVIDIA GPUs."""

from repro.experiments import table1_history


def test_table1(run_once):
    rows = run_once(table1_history.run_table1)
    print()
    print(table1_history.report())

    # Shape checks: the trends the paper's motivation rests on.
    assert len(rows) == 4
    sms = [g.sms for g in rows]
    assert sms[-1] > sms[0]  # SM counts grew across generations
    transistors = [g.transistors_billion for g in rows]
    assert all(b >= a for a, b in zip(transistors, transistors[1:]))
    assert table1_history.die_size_headroom() > 0.7  # near the reticle limit
