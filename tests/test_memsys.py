"""Unit tests for the memory-system request path."""

import pytest

from repro.core.gpu import build_system
from repro.core.memsys import LINE_BYTES, REQUEST_HEADER_BYTES
from repro.core.presets import baseline_mcm_gpu, mcm_gpu_with_l15


def interleaved_system(**kwargs):
    return build_system(baseline_mcm_gpu(**kwargs))


def line_homed_at(partition, n_partitions=4, offset=0):
    """A line address whose interleaved home is ``partition``."""
    return partition + n_partitions * offset


class TestLoadPath:
    def test_l1_hit_is_fast(self):
        system = interleaved_system()
        sm = system.gpms[0].sms[0]
        first = system.memsys.load(0.0, sm, 0)
        second = system.memsys.load(first, sm, 0)
        assert second - first == pytest.approx(sm.l1_hit_latency)

    def test_local_load_avoids_ring(self):
        system = interleaved_system()
        sm = system.gpms[0].sms[0]
        system.memsys.load(0.0, sm, line_homed_at(0))
        assert system.ring.total_link_bytes == 0
        assert system.memsys.remote_loads == 0

    def test_remote_load_crosses_ring_both_ways(self):
        system = interleaved_system()
        sm = system.gpms[0].sms[0]
        system.memsys.load(0.0, sm, line_homed_at(1))
        expected = REQUEST_HEADER_BYTES + LINE_BYTES + REQUEST_HEADER_BYTES
        assert system.ring.total_link_bytes == expected
        assert system.memsys.remote_loads == 1

    def test_two_hop_remote_costs_more_latency(self):
        system = interleaved_system()
        sm = system.gpms[0].sms[0]
        one_hop = system.memsys.load(0.0, sm, line_homed_at(1))
        system.reset()
        two_hop = system.memsys.load(0.0, sm, line_homed_at(2))
        assert two_hop > one_hop

    def test_remote_load_slower_than_local(self):
        system = interleaved_system()
        sm = system.gpms[0].sms[0]
        local = system.memsys.load(0.0, sm, line_homed_at(0))
        system.reset()
        remote = system.memsys.load(0.0, sm, line_homed_at(1))
        assert remote > local

    def test_l2_hit_avoids_dram(self):
        system = interleaved_system()
        sm = system.gpms[0].sms[0]
        line = line_homed_at(0)
        system.memsys.load(0.0, sm, line)
        reads_before = system.gpms[0].dram.reads
        # Different SM, same line: misses its own L1, hits the home L2.
        other = system.gpms[0].sms[1]
        system.memsys.load(0.0, other, line)
        assert system.gpms[0].dram.reads == reads_before


class TestL15Path:
    def test_remote_only_l15_captures_second_remote_access(self):
        system = build_system(mcm_gpu_with_l15(16, remote_only=True))
        gpm = system.gpms[0]
        line = line_homed_at(1)
        miss_time = system.memsys.load(0.0, gpm.sms[0], line)
        bytes_after_miss = system.ring.total_link_bytes
        hit_time = system.memsys.load(0.0, gpm.sms[1], line)
        assert system.ring.total_link_bytes == bytes_after_miss  # no new traffic
        assert hit_time < miss_time
        assert gpm.l15.stats.hits == 1

    def test_remote_only_l15_ignores_local_accesses(self):
        system = build_system(mcm_gpu_with_l15(16, remote_only=True))
        gpm = system.gpms[0]
        system.memsys.load(0.0, gpm.sms[0], line_homed_at(0))
        assert gpm.l15.stats.accesses == 0

    def test_all_policy_l15_caches_local_accesses_too(self):
        system = build_system(mcm_gpu_with_l15(16, remote_only=False))
        gpm = system.gpms[0]
        system.memsys.load(0.0, gpm.sms[0], line_homed_at(0))
        assert gpm.l15.stats.accesses == 1

    def test_l15_miss_penalty_applies(self):
        plain = build_system(baseline_mcm_gpu())
        cached = build_system(mcm_gpu_with_l15(16, remote_only=True))
        line = line_homed_at(1)
        t_plain = plain.memsys.load(0.0, plain.gpms[0].sms[0], line)
        t_cached = cached.memsys.load(0.0, cached.gpms[0].sms[0], line)
        assert t_cached > t_plain  # first access pays the extra tag check


class TestStorePath:
    def test_store_acks_immediately(self):
        system = interleaved_system()
        sm = system.gpms[0].sms[0]
        ack = system.memsys.store(5.0, sm, line_homed_at(1))
        assert ack == pytest.approx(6.0)

    def test_remote_store_sends_line_one_way(self):
        system = interleaved_system()
        sm = system.gpms[0].sms[0]
        system.memsys.store(0.0, sm, line_homed_at(1))
        assert system.ring.total_link_bytes == LINE_BYTES + REQUEST_HEADER_BYTES
        assert system.memsys.remote_stores == 1

    def test_store_miss_write_allocates_in_l2(self):
        system = interleaved_system()
        sm = system.gpms[0].sms[0]
        line = line_homed_at(0)
        system.memsys.store(0.0, sm, line)
        assert system.gpms[0].l2.probe(line)
        assert system.gpms[0].dram.reads == 1  # fetch-on-write

    def test_dirty_l2_eviction_writes_back(self):
        config = baseline_mcm_gpu()
        system = build_system(config)
        sm = system.gpms[0].sms[0]
        l2 = system.gpms[0].l2
        capacity = l2.capacity_lines
        # Dirty a line, then stream enough conflicting lines to evict it.
        target_set = 0
        system.memsys.store(0.0, sm, 0)
        writes_before = system.gpms[0].dram.writes
        for i in range(1, l2.ways + 2):
            system.memsys.load(0.0, sm, i * l2.n_sets * 4)  # same set, local
        assert system.gpms[0].dram.writes > writes_before

    def test_store_does_not_allocate_l1(self):
        system = interleaved_system()
        sm = system.gpms[0].sms[0]
        system.memsys.store(0.0, sm, 99 * 4)
        assert not sm.l1.probe(99 * 4)


class TestCounters:
    def test_remote_fraction_interleave(self):
        system = interleaved_system()
        sm = system.gpms[0].sms[0]
        for line in range(16):
            system.memsys.load(0.0, sm, line)
        assert system.memsys.remote_fraction == pytest.approx(0.75)
        assert system.memsys.accesses == 16
